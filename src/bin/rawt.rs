//! `rawt` — rank aggregation with ties, from the command line.
//!
//! ```text
//! rawt aggregate FILE [--algo NAME] [--seed N] [--normalize unify|project]
//!     Aggregate a dataset file (one `[{A},{B,C}]` ranking per line,
//!     `#` comments allowed). Rankings over different elements are
//!     normalized first (default: unification, §5.1).
//!
//! rawt compare FILE [--seed N] [--normalize unify|project]
//!     Run the whole panel of the paper's algorithms and report scores.
//!
//! rawt similarity FILE [--normalize unify|project]
//!     The dataset's intrinsic similarity s(R) (§6.2.2) and features.
//!
//! rawt distance 'RANKING' 'RANKING'
//!     Generalized Kendall-τ distance between two rankings.
//!
//! rawt generate (uniform|markov) --n N --m M [--steps T] [--seed N]
//!     Print a synthetic dataset (§6.1).
//! ```

use rank_aggregation_with_ties::prelude::*;
use rank_aggregation_with_ties::ragen::{MarkovGen, UniformSampler};
use rank_aggregation_with_ties::rank_core::normalize::Normalized;
use rank_aggregation_with_ties::rank_core::parse::{parse_dataset_lines, parse_ranking_labeled};
use std::process::exit;

fn die(msg: &str) -> ! {
    eprintln!("rawt: {msg}");
    exit(2);
}

struct Flags {
    positional: Vec<String>,
    algo: Option<String>,
    seed: u64,
    normalize: String,
    n: usize,
    m: usize,
    steps: usize,
}

fn parse_flags(args: &[String]) -> Flags {
    let mut f = Flags {
        positional: Vec::new(),
        algo: None,
        seed: 42,
        normalize: "unify".to_owned(),
        n: 10,
        m: 5,
        steps: 1000,
    };
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| die("missing flag value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--algo" => f.algo = Some(value(&mut i)),
            "--seed" => f.seed = value(&mut i).parse().unwrap_or_else(|_| die("bad --seed")),
            "--normalize" => f.normalize = value(&mut i),
            "--n" => f.n = value(&mut i).parse().unwrap_or_else(|_| die("bad --n")),
            "--m" => f.m = value(&mut i).parse().unwrap_or_else(|_| die("bad --m")),
            "--steps" => f.steps = value(&mut i).parse().unwrap_or_else(|_| die("bad --steps")),
            s if s.starts_with("--") => die(&format!("unknown flag {s}")),
            s => f.positional.push(s.to_owned()),
        }
        i += 1;
    }
    f
}

/// Load + normalize a dataset file; returns the dense dataset, the id
/// mapping and the universe for display.
fn load(path: &str, how: &str) -> (Normalized, Universe) {
    let body = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let mut universe = Universe::new();
    let raw = parse_dataset_lines(&body, &mut universe)
        .unwrap_or_else(|e| die(&format!("parse error in {path}: {e}")));
    if raw.is_empty() {
        die("the file contains no rankings");
    }
    let normalized = match how {
        "unify" => unification(&raw),
        "project" => projection(&raw),
        other => die(&format!("unknown normalization {other:?} (use unify|project)")),
    }
    .unwrap_or_else(|| die("normalization produced an empty dataset"));
    (normalized, universe)
}

fn algorithm_by_name(name: &str, min_runs: usize) -> Box<dyn ConsensusAlgorithm> {
    let mut panel = paper_algorithms(min_runs);
    panel.extend(extended_algorithms());
    panel.push(exact_algorithm());
    let names: Vec<String> = panel.iter().map(|a| a.name()).collect();
    panel
        .into_iter()
        .find(|a| a.name() == name)
        .unwrap_or_else(|| {
            die(&format!(
                "unknown algorithm {name:?}; available: {}",
                names.join(", ")
            ))
        })
}

fn cmd_aggregate(f: &Flags) {
    let path = f.positional.first().unwrap_or_else(|| die("aggregate needs a FILE"));
    let (norm, universe) = load(path, &f.normalize);
    let data = &norm.dataset;
    let algo_name = f.algo.clone().unwrap_or_else(|| {
        recommend(&DatasetFeatures::measure(data), Priority::Balanced).algorithm.to_owned()
    });
    let algo = algorithm_by_name(&algo_name, 20);
    let mut ctx = AlgoContext::seeded(f.seed);
    let consensus = algo.run(data, &mut ctx);
    let score = kemeny_score(&consensus, data);
    println!("algorithm:  {}", algo.name());
    println!("elements:   {} (m = {} rankings, {})", data.n(), data.m(), f.normalize);
    println!("consensus:  {}", norm.denormalize(&consensus).display_with(&universe));
    println!("K score:    {score}");
}

fn cmd_compare(f: &Flags) {
    let path = f.positional.first().unwrap_or_else(|| die("compare needs a FILE"));
    let (norm, universe) = load(path, &f.normalize);
    let data = &norm.dataset;
    println!(
        "n = {}, m = {}, similarity s(R) = {:.3}",
        data.n(),
        data.m(),
        dataset_similarity(data)
    );
    let mut results: Vec<(String, u64, Ranking)> = Vec::new();
    for algo in paper_algorithms(20) {
        if algo.name() == "Ailon3/2" && data.n() > 45 {
            continue;
        }
        let mut ctx = AlgoContext::seeded(f.seed);
        let consensus = algo.run(data, &mut ctx);
        results.push((algo.name(), kemeny_score(&consensus, data), consensus));
    }
    results.sort_by_key(|&(_, s, _)| s);
    let best = results.first().map(|&(_, s, _)| s).unwrap_or(0);
    for (name, score, consensus) in &results {
        println!(
            "{name:<16} K = {score:<6} m-gap = {:>6.2}%  {}",
            100.0 * gap(*score, best),
            norm.denormalize(consensus).display_with(&universe)
        );
    }
}

fn cmd_similarity(f: &Flags) {
    let path = f.positional.first().unwrap_or_else(|| die("similarity needs a FILE"));
    let (norm, _) = load(path, &f.normalize);
    let data = &norm.dataset;
    let features = DatasetFeatures::measure(data);
    println!("n = {}, m = {}", features.n, features.m);
    println!("similarity s(R) = {:.4}", features.similarity.unwrap_or(f64::NAN));
    println!("large ties present: {}", features.has_large_ties);
    for p in [Priority::Quality, Priority::Balanced, Priority::Speed] {
        let rec = recommend(&features, p);
        println!("recommended ({p:?}): {}", rec.algorithm);
    }
}

fn cmd_distance(f: &Flags) {
    if f.positional.len() != 2 {
        die("distance needs two 'RANKING' arguments");
    }
    let mut universe = Universe::new();
    let a = parse_ranking_labeled(&f.positional[0], &mut universe)
        .unwrap_or_else(|e| die(&format!("first ranking: {e}")));
    let b = parse_ranking_labeled(&f.positional[1], &mut universe)
        .unwrap_or_else(|e| die(&format!("second ranking: {e}")));
    if a.n_elements() != b.n_elements() || a.elements().any(|e| !b.contains(e)) {
        die("the rankings must be over the same elements");
    }
    println!("G  (generalized Kendall-τ) = {}", generalized_kendall_tau(&a, &b));
    println!("D  (classical, ties ignored) = {}", kendall_tau(&a, &b));
    println!("τ  (correlation, eq. 4) = {:.4}", tau_correlation(&a, &b));
}

fn cmd_generate(f: &Flags) {
    let kind = f.positional.first().map(String::as_str).unwrap_or("uniform");
    let mut rng = rand::SeedableRng::seed_from_u64(f.seed);
    let data = match kind {
        "uniform" => UniformSampler::new(f.n).sample_dataset(f.n, f.m, &mut rng),
        "markov" => MarkovGen::identity_seeded(f.n, f.steps).dataset(f.m, &mut rng),
        other => die(&format!("unknown generator {other:?} (use uniform|markov)")),
    };
    println!("# {kind} dataset: n = {}, m = {}, seed = {}", f.n, f.m, f.seed);
    for r in data.rankings() {
        println!("{r}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        die("usage: rawt <aggregate|compare|similarity|distance|generate> …");
    };
    let flags = parse_flags(rest);
    match cmd.as_str() {
        "aggregate" => cmd_aggregate(&flags),
        "compare" => cmd_compare(&flags),
        "similarity" => cmd_similarity(&flags),
        "distance" => cmd_distance(&flags),
        "generate" => cmd_generate(&flags),
        other => die(&format!("unknown command {other:?}")),
    }
}
