//! `rawt` — rank aggregation with ties, from the command line.
//!
//! The CLI is a thin shell over the engine API
//! ([`rank_core::engine::Engine`]): subcommands build
//! [`AggregationRequest`]s and print the resulting [`ConsensusReport`]s.
//!
//! ```text
//! rawt aggregate FILE [--algo SPEC] [--seed N] [--budget SECS]
//!                     [--normalize unify|project] [--progress] [--json]
//!                     [--lane auto|dense|matrix-free] [--remote ADDR]
//!     Aggregate a dataset file (one `[{A},{B,C}]` ranking per line,
//!     `#` comments allowed). Rankings over different elements are
//!     normalized first (default: unification, §5.1). Without --algo the
//!     §7.4 guidance picks the algorithm. SPEC is case-insensitive:
//!     `BioConsert`, `bestof(kwiksort,20)`, `MedRank(0.7)`, `Exact`, …
//!     --progress streams live incumbents to stderr while the job runs;
//!     Ctrl-C cancels cooperatively and returns the best-so-far ranking
//!     (outcome "cancelled"). --json emits the machine-readable report,
//!     including the outcome and the incumbent time-to-score trace.
//!     --remote submits the job to a `rawt serve` instance instead of
//!     running locally — same flags, same report, same rendering
//!     (bit-identical results for a fixed seed). Transient failures (a
//!     busy 429, a draining 503, a dropped connection) are retried with
//!     backoff, surfaced on stderr; an idempotency key generated per
//!     invocation guarantees retries never duplicate the job, even
//!     across a server crash and restart (DESIGN.md §12.4).
//!     --lane picks the pairwise-cost substrate (DESIGN.md §16): auto
//!     (default) goes matrix-free once the dense matrix would exceed its
//!     memory budget, dense/matrix-free force a side; unsupported specs
//!     always run dense, and the report's "lane" field records what ran.
//!     Local runs only.
//!
//! rawt compare FILE [--seed N] [--budget SECS] [--normalize unify|project]
//!              [--json]
//!     Run the paper's whole panel as one concurrent engine batch and
//!     report per-algorithm score, gap and outcome (--json for the full
//!     report array, traces included).
//!
//! rawt list [--json]
//!     The algorithm registry as Table 1 of the paper: canonical spec
//!     name, class tag ([K]/[G]/[P]), produces-ties column, aliases.
//!     --json emits the same registry dump `GET /v1/algorithms` serves.
//!
//! rawt serve [--addr HOST:PORT] [--max-jobs N] [--queue N]
//!            [--journal DIR] [--journal-fsync always|milestones|never]
//!            [--token TOKEN] [--heartbeat SECS]
//!     Run the aggregation service (see crates/service): anytime jobs
//!     over HTTP with streamed NDJSON incumbents, budget-aware
//!     scheduling, and 429 load shedding. SIGINT drains via cooperative
//!     cancel; a second SIGINT forces an immediate exit. --addr defaults
//!     to 127.0.0.1:7878 (port 0 picks an ephemeral port, printed on
//!     startup). --journal makes jobs durable (DESIGN.md §12): every
//!     submission and event is logged to DIR, and a restart with the
//!     same DIR re-serves finished jobs and deterministically re-runs
//!     interrupted ones. --token requires `Authorization: Bearer TOKEN`
//!     on every request except `GET /healthz` and `GET /metrics`; the
//!     token is held in memory only and never journaled. --heartbeat
//!     sets the event-stream keepalive cadence (default 15s). `GET
//!     /metrics` exposes the full telemetry registry (DESIGN.md §15) in
//!     Prometheus text format.
//!
//! rawt route --workers ADDR,ADDR,… [--addr HOST:PORT] [--token TOKEN]
//!     Run the sharded front tier (DESIGN.md §14.2): one address fanning
//!     out to many `rawt serve` workers. Jobs, batches and dataset
//!     sessions are routed by rendezvous hashing of their dataset
//!     fingerprint, so a session's follow-up requests stay on the worker
//!     holding its delta-patched matrix and a batch rides one worker's
//!     single matrix build. /healthz aggregates worker health; a dead
//!     worker is skipped for new submissions and answers 503 +
//!     Retry-After for state it holds. --token both authenticates
//!     clients and is forwarded to the workers. `GET /metrics` scrapes
//!     every worker, tags each series with a `worker="ADDR"` label and
//!     merges them with the router's own metrics, so one scrape sees
//!     the whole fleet.
//!
//! rawt top ADDR [--interval SECS] [--once] [--token TOKEN]
//!     Terminal dashboard over `/metrics` + `/healthz`: live queue
//!     depth and running jobs, per-algorithm p50/p99 solve latency,
//!     shed rate, and (against a router) per-worker health. Repaints
//!     every --interval seconds (default 2); --once prints a single
//!     frame and exits, for scripts.
//!
//! rawt session FILE [--algo SPEC] [--seed N] [--budget SECS]
//!              [--remote ADDR] [--id ID]
//!     An interactive live-dataset session (DESIGN.md §13): load FILE,
//!     then read edit/solve commands from stdin, one per line:
//!         add [{A},{B,C}]      append a ranking (new labels grow the
//!                              universe everywhere)
//!         remove N             drop the N-th ranking (0-based)
//!         replace N [{B},{A}]  swap the N-th ranking
//!         show                 current version, shape and rankings
//!         solve                aggregate the current dataset; each
//!                              solve after the first warm-starts from
//!                              the previous consensus
//!         quit                 end the session (EOF works too)
//!     Edits delta-patch the session's cost matrix in O(n²) instead of
//!     rebuilding it. --remote drives the same loop against a `rawt
//!     serve` instance over PUT/PATCH `/v1/datasets/{id}`; --id names
//!     the server-side dataset (it persists after quit; without --id a
//!     fresh one is created and deleted on quit).
//!
//! rawt similarity FILE [--normalize unify|project]
//!     The dataset's intrinsic similarity s(R) (§6.2.2) and features.
//!
//! rawt distance 'RANKING' 'RANKING'
//!     Generalized Kendall-τ distance between two rankings.
//!
//! rawt generate (uniform|markov) --n N --m M [--steps T] [--seed N]
//!     Print a synthetic dataset (§6.1).
//! ```

use rank_aggregation_with_ties::prelude::*;
use rank_aggregation_with_ties::ragen::{MarkovGen, UniformSampler};
use rank_aggregation_with_ties::rank_core::engine::{paper_panel, registry, Event};
use rank_aggregation_with_ties::rank_core::normalize::Normalized;
use rank_aggregation_with_ties::rank_core::parse::{parse_dataset_lines, parse_ranking_labeled};
use rank_aggregation_with_ties::rank_core::telemetry;
use service::client::{Client, RetryNotice, RetryPolicy};
use service::fault::FaultPlan;
use service::journal::FsyncPolicy;
use service::json::Json;
use service::proto::{self, JobSubmission};
use service::router::{Router, RouterConfig};
use service::server::{Server, ServerConfig};
use std::process::exit;
use std::time::Duration;

fn die(msg: &str) -> ! {
    eprintln!("rawt: {msg}");
    exit(2);
}

/// Cooperative Ctrl-C: the handler only bumps an atomic counter; the
/// `--progress` event loop observes it and cancels the job through its
/// [`JobHandle`], so the process still exits through the normal
/// best-so-far path. `rawt serve` reads the full count: the first press
/// drains cooperatively, a second one forces an immediate exit.
mod sigint {
    use std::sync::atomic::{AtomicU32, Ordering};

    static PRESSES: AtomicU32 = AtomicU32::new(0);

    pub fn pressed() -> bool {
        count() > 0
    }

    pub fn count() -> u32 {
        PRESSES.load(Ordering::SeqCst)
    }

    #[cfg(unix)]
    pub fn install() {
        unsafe extern "C" fn on_sigint(_signum: i32) {
            PRESSES.fetch_add(1, Ordering::SeqCst);
        }
        extern "C" {
            // libc's signal(2); the previous handler return value is not
            // needed, so it is declared as an opaque word.
            fn signal(signum: i32, handler: unsafe extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        unsafe {
            signal(SIGINT, on_sigint);
        }
    }

    #[cfg(not(unix))]
    pub fn install() {}
}

struct Flags {
    positional: Vec<String>,
    algo: Option<String>,
    seed: u64,
    budget: Option<Duration>,
    normalize: Normalization,
    lane: Option<LanePolicy>,
    json: bool,
    progress: bool,
    remote: Option<String>,
    addr: String,
    max_jobs: usize,
    queue: usize,
    journal: Option<String>,
    journal_fsync: FsyncPolicy,
    token: Option<String>,
    workers: Option<String>,
    id: Option<String>,
    n: usize,
    m: usize,
    steps: usize,
    heartbeat: u32,
    interval: f64,
    once: bool,
}

fn parse_flags(args: &[String]) -> Flags {
    let mut f = Flags {
        positional: Vec::new(),
        algo: None,
        seed: 42,
        budget: None,
        normalize: Normalization::Unification,
        lane: None,
        json: false,
        progress: false,
        remote: None,
        addr: "127.0.0.1:7878".to_owned(),
        max_jobs: ServerConfig::default().max_jobs,
        queue: ServerConfig::default().queue_capacity,
        journal: None,
        journal_fsync: FsyncPolicy::default(),
        token: None,
        workers: None,
        id: None,
        n: 10,
        m: 5,
        steps: 1000,
        heartbeat: ServerConfig::default().heartbeat_secs,
        interval: 2.0,
        once: false,
    };
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i)
            .cloned()
            .unwrap_or_else(|| die("missing flag value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--algo" => f.algo = Some(value(&mut i)),
            "--seed" => f.seed = value(&mut i).parse().unwrap_or_else(|_| die("bad --seed")),
            "--budget" => {
                let secs: f64 = value(&mut i)
                    .parse()
                    .unwrap_or_else(|_| die("bad --budget"));
                if secs <= 0.0 || !secs.is_finite() {
                    die("--budget must be positive seconds");
                }
                f.budget = Some(
                    Duration::try_from_secs_f64(secs)
                        .unwrap_or_else(|_| die("--budget is out of range")),
                );
            }
            "--normalize" => {
                f.normalize = value(&mut i).parse().unwrap_or_else(|e: String| die(&e))
            }
            "--lane" => {
                f.lane = Some(match value(&mut i).to_ascii_lowercase().as_str() {
                    "auto" => LanePolicy::Auto,
                    "dense" => LanePolicy::Dense,
                    "matrix-free" | "matrixfree" | "matrix_free" => LanePolicy::MatrixFree,
                    other => die(&format!(
                        "bad --lane {other:?} (use auto|dense|matrix-free)"
                    )),
                })
            }
            "--json" => f.json = true,
            "--progress" => f.progress = true,
            "--remote" => f.remote = Some(value(&mut i)),
            "--addr" => f.addr = value(&mut i),
            "--max-jobs" => {
                f.max_jobs = value(&mut i)
                    .parse()
                    .unwrap_or_else(|_| die("bad --max-jobs"));
                if f.max_jobs == 0 {
                    die("--max-jobs must be at least 1");
                }
            }
            "--queue" => {
                f.queue = value(&mut i).parse().unwrap_or_else(|_| die("bad --queue"));
                if f.queue == 0 {
                    die("--queue must be at least 1");
                }
            }
            "--journal" => f.journal = Some(value(&mut i)),
            "--token" => f.token = Some(value(&mut i)),
            "--workers" => f.workers = Some(value(&mut i)),
            "--id" => f.id = Some(value(&mut i)),
            "--journal-fsync" => {
                f.journal_fsync = value(&mut i).parse().unwrap_or_else(|e: String| die(&e))
            }
            "--heartbeat" => {
                f.heartbeat = value(&mut i)
                    .parse()
                    .unwrap_or_else(|_| die("bad --heartbeat"));
                if f.heartbeat == 0 {
                    die("--heartbeat must be at least 1 second");
                }
            }
            "--interval" => {
                f.interval = value(&mut i)
                    .parse()
                    .unwrap_or_else(|_| die("bad --interval"));
                if f.interval <= 0.0 || !f.interval.is_finite() {
                    die("--interval must be positive seconds");
                }
            }
            "--once" => f.once = true,
            "--n" => f.n = value(&mut i).parse().unwrap_or_else(|_| die("bad --n")),
            "--m" => f.m = value(&mut i).parse().unwrap_or_else(|_| die("bad --m")),
            "--steps" => f.steps = value(&mut i).parse().unwrap_or_else(|_| die("bad --steps")),
            s if s.starts_with("--") => die(&format!("unknown flag {s}")),
            s => f.positional.push(s.to_owned()),
        }
        i += 1;
    }
    f
}

// ------------------------------------------------------------- JSON output
//
// The serializers live in `service::proto`, shared with the HTTP server
// so the CLI's --json output and the wire protocol cannot drift apart.

use proto::report_json;

/// Load + normalize a dataset file; returns the dense dataset, the id
/// mapping and the universe for display.
fn load(path: &str, how: Normalization) -> (Normalized, Universe) {
    let body =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let mut universe = Universe::new();
    let raw = parse_dataset_lines(&body, &mut universe)
        .unwrap_or_else(|e| die(&format!("parse error in {path}: {e}")));
    if raw.is_empty() {
        die("the file contains no rankings");
    }
    let normalized = how
        .apply(&raw)
        .unwrap_or_else(|| die("normalization produced an empty dataset"));
    (normalized, universe)
}

/// Parse a user-supplied algorithm spec, case-insensitively, dying with a
/// "did you mean" suggestion on unknown names.
fn parse_spec(name: &str) -> AlgoSpec {
    AlgoSpec::parse(name).unwrap_or_else(|e| die(&format!("{e}; run `rawt list` for the registry")))
}

fn cmd_aggregate(f: &Flags) {
    let path = f
        .positional
        .first()
        .unwrap_or_else(|| die("aggregate needs a FILE"));
    if let Some(addr) = &f.remote {
        if f.lane.is_some() {
            die("--lane applies to local runs only (the wire protocol carries no lane)");
        }
        cmd_aggregate_remote(f, path, addr);
        return;
    }
    let (norm, universe) = load(path, f.normalize);
    let data = &norm.dataset;
    let spec = match &f.algo {
        Some(name) => parse_spec(name),
        None => {
            let rec = recommend(&DatasetFeatures::measure(data), Priority::Balanced);
            AlgoSpec::parse(rec.algorithm).expect("guidance names are registered")
        }
    };
    if let Some(cap) = spec.max_n() {
        if data.n() > cap {
            die(&format!(
                "{spec} handles at most n = {cap} elements; this dataset has {} (try another algorithm, see `rawt list`)",
                data.n()
            ));
        }
    }
    let mut request = AggregationRequest::new(data.clone(), spec).with_seed(f.seed);
    if let Some(budget) = f.budget {
        request = request.with_budget(budget);
    }
    if let Some(lane) = f.lane {
        request = request.with_lane(lane);
    }
    let engine = Engine::new();
    let report = if f.progress {
        run_with_progress(&engine, request)
    } else {
        engine.run(&request)
    };
    if f.json {
        println!(
            "{{\"n\":{},\"m\":{},\"normalization\":\"{}\",\"report\":{}}}",
            data.n(),
            data.m(),
            f.normalize,
            report_json(&report, &norm, &universe)
        );
        return;
    }
    println!("algorithm:  {} (spec: {})", report.algorithm(), report.spec);
    println!(
        "elements:   {} (m = {} rankings, {})",
        data.n(),
        data.m(),
        f.normalize
    );
    println!(
        "consensus:  {}",
        norm.denormalize(&report.ranking).display_with(&universe)
    );
    println!("K score:    {}", report.score);
    println!("lane:       {}", report.lane);
    println!("outcome:    {} in {:.1?}", report.outcome, report.elapsed);
}

/// Render a certified optimality gap for the `--progress` stream: the
/// live "how far from provably optimal" readout (empty until a bounding
/// solver publishes a lower bound; see DESIGN.md §11.2).
fn render_gap(gap: Option<u64>, score: u64) -> String {
    match gap {
        Some(0) => "  (gap 0 — optimal)".to_owned(),
        Some(g) if score > 0 => format!("  (gap {g}, {:.1}%)", 100.0 * g as f64 / score as f64),
        Some(g) => format!("  (gap {g})"),
        None => String::new(),
    }
}

/// Submit the request as an anytime job, stream its incumbents and
/// certified bounds to stderr, and translate Ctrl-C into a cooperative
/// cancel whose result is the best-so-far consensus (outcome
/// "cancelled").
fn run_with_progress(engine: &Engine, request: AggregationRequest) -> ConsensusReport {
    sigint::install();
    let handle = engine.submit(request);
    let mut cancelled = false;
    loop {
        if sigint::pressed() && !cancelled {
            eprintln!("rawt: Ctrl-C — cancelling, returning the best-so-far consensus");
            handle.cancel();
            cancelled = true;
        }
        match handle.next_event(Duration::from_millis(50)) {
            Some(Event::Started { spec, seed }) => {
                eprintln!("started:    {spec} (seed {seed})");
            }
            Some(Event::Incumbent {
                score,
                gap,
                elapsed,
            }) => {
                eprintln!(
                    "incumbent:  K = {score} at {:.3}s{}",
                    elapsed.as_secs_f64(),
                    render_gap(gap, score)
                );
            }
            Some(Event::LowerBound {
                lower_bound,
                gap,
                elapsed,
            }) => {
                let against = gap.map(|g| lower_bound + g);
                eprintln!(
                    "bound:      K >= {lower_bound} at {:.3}s{}",
                    elapsed.as_secs_f64(),
                    against.map_or(String::new(), |s| render_gap(gap, s))
                );
            }
            Some(Event::Finished(outcome)) => {
                eprintln!("finished:   {outcome}");
                break;
            }
            None => {
                if handle.is_finished() {
                    break;
                }
            }
        }
    }
    handle.wait()
}

// --------------------------------------------------------- remote client

/// A fresh idempotency key for this CLI invocation: pid + wall-clock
/// nanos is unique across concurrent and sequential runs on one machine,
/// which is the scope a client-generated key needs.
fn invocation_key() -> String {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos());
    format!("rawt-{}-{nanos:x}", std::process::id())
}

/// A client for `addr`, authenticated when `--token` was given.
fn make_client(f: &Flags, addr: &str) -> Client {
    match &f.token {
        Some(token) => Client::with_token(addr, token),
        None => Client::new(addr),
    }
}

/// Surface one client retry on stderr ("server busy, retrying in 2s…").
fn print_retry(notice: &RetryNotice) {
    eprintln!(
        "rawt: {}, retrying in {:.1}s (attempt {}/{})",
        notice.reason,
        notice.delay.as_secs_f64(),
        notice.attempt + 1,
        notice.max_attempts
    );
}

/// `aggregate --remote ADDR`: submit the dataset file to a `rawt serve`
/// instance, optionally stream its incumbents, and render the final
/// report exactly like the local path (the engine underneath is the same
/// code, so a fixed seed yields a bit-identical report).
fn cmd_aggregate_remote(f: &Flags, path: &str, addr: &str) {
    let body =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let client = make_client(f, addr);
    let submission = JobSubmission {
        dataset: body,
        algo: f.algo.clone(),
        seed: f.seed,
        budget: f.budget,
        normalize: f.normalize,
        // One key per invocation: retries of this submission (below, or
        // by a wrapper re-running the CLI against the same key) can
        // never duplicate the job, even across a server crash.
        idempotency_key: Some(invocation_key()),
        dataset_id: None,
        follow: false,
    };
    let job = client
        .submit_with_retry(&submission, &RetryPolicy::default(), print_retry)
        .unwrap_or_else(|e| die(&format!("submit to {addr}: {e}")));
    if job.deduplicated {
        eprintln!("rawt: job {} already submitted — reattaching", job.id);
    }
    let status = if f.progress {
        stream_remote_progress(&client, job.id);
        client
            .status(job.id)
            .unwrap_or_else(|e| die(&format!("fetching job {}: {e}", job.id)))
    } else {
        // wait() already returns the final status document.
        client
            .wait(job.id)
            .unwrap_or_else(|e| die(&format!("waiting on job {}: {e}", job.id)))
    };
    let report = status
        .get("report")
        .filter(|r| !r.is_null())
        .unwrap_or_else(|| die(&format!("job {} ended without a report: {status}", job.id)));
    if f.json {
        // The same envelope as the local path. The report is spliced out
        // of the raw response, byte-for-byte as the server's shared
        // serializer produced it — re-serializing the parsed tree would
        // reorder keys and reformat floats, drifting from local --json.
        let raw = client
            .status_raw(job.id)
            .unwrap_or_else(|e| die(&format!("fetching job {}: {e}", job.id)));
        let report_raw = raw
            .rfind("\"report\":")
            // "report" is the status document's final field; its value
            // runs to the envelope's closing brace.
            .map(|i| &raw[i + "\"report\":".len()..raw.len() - 1])
            .unwrap_or_else(|| die(&format!("job {} status has no report: {raw}", job.id)));
        println!(
            "{{\"n\":{},\"m\":{},\"normalization\":\"{}\",\"report\":{report_raw}}}",
            job.n, job.m, f.normalize
        );
        return;
    }
    let text = |key: &str| {
        report
            .get(key)
            .and_then(Json::as_str)
            .unwrap_or_else(|| die(&format!("report is missing {key:?}: {report}")))
    };
    let num = |key: &str| {
        report
            .get(key)
            .and_then(Json::as_f64)
            .unwrap_or_else(|| die(&format!("report is missing {key:?}: {report}")))
    };
    println!("algorithm:  {} (spec: {})", text("algorithm"), text("spec"));
    println!(
        "elements:   {} (m = {} rankings, {})",
        job.n, job.m, f.normalize
    );
    println!(
        "consensus:  {}",
        render_label_ranking(report.get("ranking"))
    );
    println!("K score:    {}", num("score") as u64);
    // Older servers predate the lane field; default to the only lane
    // they had rather than dying on a missing key.
    println!(
        "lane:       {}",
        report.get("lane").and_then(Json::as_str).unwrap_or("dense")
    );
    println!(
        "outcome:    {} in {:.1?}",
        text("outcome"),
        Duration::from_secs_f64(num("elapsed_secs"))
    );
}

/// Render the wire form of a ranking (nested label arrays,
/// `[["A"],["B","C"]]`) back to the paper's `[{A},{B,C}]` notation —
/// the same text the local path prints.
fn render_label_ranking(ranking: Option<&Json>) -> String {
    let buckets = ranking
        .and_then(Json::as_array)
        .unwrap_or_else(|| die("report carries no ranking"));
    let rendered: Vec<String> = buckets
        .iter()
        .map(|bucket| {
            let labels: Vec<&str> = bucket
                .as_array()
                .unwrap_or_default()
                .iter()
                .filter_map(Json::as_str)
                .collect();
            format!("{{{}}}", labels.join(","))
        })
        .collect();
    format!("[{}]", rendered.join(","))
}

/// Stream a remote job's events to stderr with the same rendering as the
/// local `--progress` loop; Ctrl-C becomes a `DELETE` (cooperative
/// cancel over the wire) and the loop keeps draining until `finished`.
///
/// The event stream can sit in a blocking socket read while the job is
/// quiet, so Ctrl-C is watched from a side thread polling every 100ms —
/// the same latency the local path gets from its 50ms event poll —
/// instead of being checked only when an event happens to arrive.
fn stream_remote_progress(client: &Client, id: u64) {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    sigint::install();
    let drained = Arc::new(AtomicBool::new(false));
    let watcher = {
        let client = client.clone();
        let drained = Arc::clone(&drained);
        std::thread::spawn(move || {
            let mut cancelled = false;
            while !drained.load(Ordering::Relaxed) {
                if sigint::pressed() && !cancelled {
                    eprintln!("rawt: Ctrl-C — cancelling, returning the best-so-far consensus");
                    let _ = client.cancel(id);
                    cancelled = true;
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        })
    };
    // The reconnecting follower: a dropped connection (or a server
    // restart — the journal replay re-serves the history) resumes the
    // stream instead of killing the render.
    let events = client.follow_events(id, RetryPolicy::default(), print_retry);
    for event in events {
        let event = event.unwrap_or_else(|e| die(&format!("event stream for job {id}: {e}")));
        match event.get("event").and_then(Json::as_str) {
            Some("started") => {
                eprintln!(
                    "started:    {} (seed {})",
                    event.get("spec").and_then(Json::as_str).unwrap_or("?"),
                    event.get("seed").and_then(Json::as_u64).unwrap_or(0)
                );
            }
            Some("incumbent") => {
                let score = event.get("score").and_then(Json::as_u64).unwrap_or(0);
                eprintln!(
                    "incumbent:  K = {score} at {:.3}s{}",
                    event
                        .get("elapsed_secs")
                        .and_then(Json::as_f64)
                        .unwrap_or(0.0),
                    render_gap(event.get("gap").and_then(Json::as_u64), score)
                );
            }
            Some("lower_bound") => {
                let lower_bound = event.get("lower_bound").and_then(Json::as_u64).unwrap_or(0);
                let gap = event.get("gap").and_then(Json::as_u64);
                eprintln!(
                    "bound:      K >= {lower_bound} at {:.3}s{}",
                    event
                        .get("elapsed_secs")
                        .and_then(Json::as_f64)
                        .unwrap_or(0.0),
                    gap.map_or(String::new(), |g| render_gap(Some(g), lower_bound + g))
                );
            }
            Some("finished") => {
                eprintln!(
                    "finished:   {}",
                    event.get("outcome").and_then(Json::as_str).unwrap_or("?")
                );
            }
            _ => {}
        }
    }
    drained.store(true, Ordering::Relaxed);
    let _ = watcher.join();
}

/// `rawt serve`: run the aggregation service until SIGINT, then drain
/// via cooperative cancel; a second SIGINT abandons the drain and exits
/// immediately (status 130) — the journal makes that safe, a restart
/// recovers whatever the drain would have finished.
fn cmd_serve(f: &Flags) {
    let faults = std::sync::Arc::new(FaultPlan::from_env());
    if faults.any() {
        eprintln!("rawt: WARNING: fault injection armed via RAWT_FAULTS — not for production");
    }
    let config = ServerConfig {
        max_jobs: f.max_jobs,
        queue_capacity: f.queue,
        journal_dir: f.journal.clone().map(std::path::PathBuf::from),
        journal_fsync: f.journal_fsync,
        token: f.token.clone(),
        faults,
        heartbeat_secs: f.heartbeat,
        ..ServerConfig::default()
    };
    let server = Server::bind(f.addr.as_str(), config.clone())
        .unwrap_or_else(|e| die(&format!("cannot bind {}: {e}", f.addr)));
    let metrics = server.metrics();
    let addr = server
        .local_addr()
        .unwrap_or_else(|e| die(&format!("no local address: {e}")));
    let shutdown = server
        .shutdown_handle()
        .unwrap_or_else(|e| die(&format!("no shutdown handle: {e}")));
    let durability = match &f.journal {
        Some(dir) => format!(", journal {dir} [{}]", f.journal_fsync),
        None => String::new(),
    };
    println!(
        "rawt: serving on http://{addr} (max-jobs {}, queue {}{durability})",
        config.max_jobs, config.queue_capacity
    );
    // The startup line is the machine-readable contract for wrappers
    // (tests, CI) that need the ephemeral port; make sure it is visible
    // before any request lands.
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    sigint::install();
    let serve_thread = std::thread::spawn(move || server.serve());
    let mut drain: Option<std::thread::JoinHandle<()>> = None;
    // The abrupt exit still accounts for itself: one final telemetry
    // line says what the process abandoned (the journal makes the
    // abandonment safe — a restart recovers it).
    let force_exit = |why: &str| -> ! {
        eprintln!(
            "rawt: telemetry: {why} — {} accepted, {} finished, {} queued, {} running at exit",
            metrics.counter_total("rawt_jobs_accepted_total"),
            metrics.counter_total("rawt_jobs_finished_total"),
            metrics.gauge_value("rawt_queue_depth", &[]).unwrap_or(0),
            metrics.gauge_value("rawt_jobs_running", &[]).unwrap_or(0),
        );
        eprintln!("rawt: second SIGINT — forcing exit without drain");
        exit(130);
    };
    loop {
        std::thread::sleep(Duration::from_millis(100));
        // The force-exit check runs first, and again before declaring
        // the drain done: a second Ctrl-C wins even when the cooperative
        // drain finishes in between (the journal makes the abrupt exit
        // safe — a restart recovers what the drain would have finished).
        if sigint::count() >= 2 {
            force_exit("forced exit mid-drain");
        }
        if sigint::pressed() && drain.is_none() {
            eprintln!(
                "rawt: SIGINT — draining (cancelling live jobs); press Ctrl-C again to force exit"
            );
            // shutdown() blocks until every live job has cancelled, so
            // it runs on its own thread to keep this loop listening for
            // the second Ctrl-C.
            let shutdown = shutdown.clone();
            drain = Some(std::thread::spawn(move || shutdown.shutdown()));
        }
        if serve_thread.is_finished() {
            if sigint::count() >= 2 {
                force_exit("forced exit after serve loop ended");
            }
            break;
        }
    }
    if let Some(drain) = drain {
        let _ = drain.join();
    }
    match serve_thread.join() {
        Ok(Ok(())) => eprintln!("rawt: drained, bye"),
        Ok(Err(e)) => die(&format!("serve loop failed: {e}")),
        Err(_) => die("serve loop panicked"),
    }
}

/// `rawt route`: run the rendezvous-hashing front tier until SIGINT.
/// The router holds no job state worth draining — stopping the accept
/// loop is the whole shutdown.
fn cmd_route(f: &Flags) {
    let workers: Vec<String> = f
        .workers
        .as_deref()
        .unwrap_or_else(|| die("route needs --workers ADDR,ADDR,…"))
        .split(',')
        .map(str::trim)
        .filter(|w| !w.is_empty())
        .map(str::to_owned)
        .collect();
    let config = RouterConfig {
        workers: workers.clone(),
        token: f.token.clone(),
    };
    let router = Router::bind(f.addr.as_str(), config)
        .unwrap_or_else(|e| die(&format!("cannot bind {}: {e}", f.addr)));
    let addr = router
        .local_addr()
        .unwrap_or_else(|e| die(&format!("no local address: {e}")));
    let shutdown = router
        .shutdown_handle()
        .unwrap_or_else(|e| die(&format!("no shutdown handle: {e}")));
    println!(
        "rawt: routing on http://{addr} -> {} worker{} [{}]",
        workers.len(),
        if workers.len() == 1 { "" } else { "s" },
        workers.join(", ")
    );
    // Same machine-readable startup contract as `rawt serve`: the
    // `http://` line carries the ephemeral port for wrappers and CI.
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    sigint::install();
    let serve_thread = std::thread::spawn(move || router.serve());
    loop {
        std::thread::sleep(Duration::from_millis(100));
        if sigint::pressed() {
            eprintln!("rawt: SIGINT — stopping the router (workers keep running)");
            shutdown.shutdown();
            break;
        }
        if serve_thread.is_finished() {
            break;
        }
    }
    match serve_thread.join() {
        Ok(Ok(())) => eprintln!("rawt: router stopped, bye"),
        Ok(Err(e)) => die(&format!("route loop failed: {e}")),
        Err(_) => die("route loop panicked"),
    }
}

/// One per-algorithm latency row for the `rawt top` dashboard: algorithm
/// label, completed-solve count, and p50/p99 solve latency in seconds.
/// Router scrapes carry a `worker` label on every series; rows aggregate
/// across workers by summing the per-`le` cumulative bucket counts
/// (log₂ histograms share one fixed grid, so the sums stay cumulative).
fn solve_latency_rows(families: &[telemetry::Family]) -> Vec<(String, u64, f64, f64)> {
    use std::collections::BTreeMap;
    let Some(family) = families.iter().find(|f| f.name == "rawt_solve_seconds") else {
        return Vec::new();
    };
    let mut by_algo: BTreeMap<String, (BTreeMap<String, f64>, u64)> = BTreeMap::new();
    for sample in &family.samples {
        let algo = sample.label("algo").unwrap_or("?").to_owned();
        let entry = by_algo.entry(algo).or_default();
        if sample.name.ends_with("_bucket") {
            let le = sample.label("le").unwrap_or("+Inf").to_owned();
            *entry.0.entry(le).or_default() += sample.value;
        } else if sample.name.ends_with("_count") {
            entry.1 += sample.value as u64;
        }
    }
    by_algo
        .into_iter()
        .map(|(algo, (buckets, count))| {
            let mut pairs: Vec<(f64, f64)> = buckets
                .into_iter()
                .map(|(le, cumulative)| {
                    let bound = if le == "+Inf" {
                        f64::INFINITY
                    } else {
                        le.parse().unwrap_or(f64::INFINITY)
                    };
                    (bound, cumulative)
                })
                .collect();
            pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
            let p50 = telemetry::quantile_from_buckets(pairs.clone(), 0.5).unwrap_or(0.0);
            let p99 = telemetry::quantile_from_buckets(pairs, 0.99).unwrap_or(0.0);
            (algo, count, p50, p99)
        })
        .collect()
}

/// Sum every series of a counter/gauge family (collapsing `algo`,
/// `class`, `worker`, … labels into one fleet-wide number).
fn family_total(families: &[telemetry::Family], name: &str) -> f64 {
    families
        .iter()
        .filter(|f| f.name == name)
        .flat_map(|f| &f.samples)
        .filter(|s| s.name == name)
        .map(|s| s.value)
        .sum()
}

/// `rawt top ADDR`: a terminal dashboard over `/metrics` + `/healthz`,
/// repainted every `--interval` seconds (`--once` prints one frame, for
/// scripts and tests). Works against a worker and against a router —
/// the router's exposition is the whole fleet, worker-labelled.
fn cmd_top(f: &Flags) {
    let addr = f
        .positional
        .first()
        .unwrap_or_else(|| die("top needs an ADDR (a rawt serve or rawt route address)"));
    let client = match &f.token {
        Some(token) => Client::with_token(addr, token),
        None => Client::new(addr),
    };
    sigint::install();
    loop {
        let exposition = client
            .metrics_text()
            .unwrap_or_else(|e| die(&format!("cannot scrape {addr}/metrics: {e}")));
        let families = telemetry::parse_exposition(&exposition);
        let health = client.healthz().ok();
        if !f.once {
            // ANSI clear + home: repaint in place like top(1).
            print!("\x1b[2J\x1b[H");
        }
        let status = health
            .as_ref()
            .and_then(|h| h.get("status").and_then(Json::as_str).map(str::to_owned))
            .unwrap_or_else(|| "unknown".to_owned());
        println!("rawt top — {addr} [{status}]");
        let queued = family_total(&families, "rawt_queue_depth") as i64;
        let running = family_total(&families, "rawt_jobs_running") as i64;
        let accepted = family_total(&families, "rawt_jobs_accepted_total") as u64;
        let finished = family_total(&families, "rawt_jobs_finished_total") as u64;
        let shed = family_total(&families, "rawt_jobs_shed_total") as u64;
        let subscribers = family_total(&families, "rawt_stream_subscribers") as i64;
        let shed_rate = if accepted + shed > 0 {
            100.0 * shed as f64 / (accepted + shed) as f64
        } else {
            0.0
        };
        println!(
            "jobs: {queued} queued, {running} running, {finished}/{accepted} finished, \
             {shed} shed ({shed_rate:.1}%), {subscribers} stream subscriber(s)"
        );
        let rows = solve_latency_rows(&families);
        if rows.is_empty() {
            println!("solve latency: no completed jobs yet");
        } else {
            println!(
                "{:<28} {:>8} {:>10} {:>10}",
                "algorithm", "solves", "p50", "p99"
            );
            for (algo, count, p50, p99) in rows {
                println!(
                    "{algo:<28} {count:>8} {:>9.1}ms {:>9.1}ms",
                    p50 * 1e3,
                    p99 * 1e3
                );
            }
        }
        // A router's /healthz lists per-worker health; a worker's has no
        // "workers" array and this section simply disappears.
        if let Some(workers) = health
            .as_ref()
            .and_then(|h| h.get("workers").and_then(Json::as_array))
        {
            println!("workers:");
            for worker in workers {
                let w_addr = worker.get("addr").and_then(Json::as_str).unwrap_or("?");
                let alive = worker.get("alive").and_then(Json::as_bool).unwrap_or(false);
                let w_status = worker
                    .get("health")
                    .and_then(|h| h.get("status"))
                    .and_then(Json::as_str)
                    .unwrap_or(if alive { "ok" } else { "down" });
                println!("  {w_addr:<24} {}", if alive { w_status } else { "DOWN" });
            }
        }
        if f.once || sigint::pressed() {
            return;
        }
        // Sleep in 100 ms steps so Ctrl-C lands promptly mid-interval.
        let mut remaining = Duration::from_secs_f64(f.interval);
        while !remaining.is_zero() && !sigint::pressed() {
            let step = remaining.min(Duration::from_millis(100));
            std::thread::sleep(step);
            remaining -= step;
        }
        if sigint::pressed() {
            return;
        }
    }
}

fn cmd_compare(f: &Flags) {
    let path = f
        .positional
        .first()
        .unwrap_or_else(|| die("compare needs a FILE"));
    let (norm, universe) = load(path, f.normalize);
    let data = &norm.dataset;
    if !f.json {
        println!(
            "n = {}, m = {}, similarity s(R) = {:.3}",
            data.n(),
            data.m(),
            dataset_similarity(data)
        );
    }
    // The paper's panel as one engine batch; size-bounded members (the
    // LP-based Ailon) sit instances beyond their cap out.
    let specs = paper_panel(20)
        .into_iter()
        .filter(|s| s.max_n().is_none_or(|cap| data.n() <= cap));
    let mut batch = AggregationRequest::batch(data.clone())
        .specs(specs)
        .seed(f.seed);
    if let Some(budget) = f.budget {
        batch = batch.budget(budget);
    }
    let mut reports = Engine::new().run_batch(&batch.build());
    reports.sort_by_key(|r| r.score);
    if f.json {
        let objects: Vec<String> = reports
            .iter()
            .map(|r| report_json(r, &norm, &universe))
            .collect();
        println!(
            "{{\"n\":{},\"m\":{},\"similarity\":{:.6},\"normalization\":\"{}\",\"reports\":[{}]}}",
            data.n(),
            data.m(),
            dataset_similarity(data),
            f.normalize,
            objects.join(",")
        );
        return;
    }
    for r in &reports {
        let gap = r.gap.unwrap_or(f64::NAN);
        let flag = if r.outcome.completed() {
            ""
        } else {
            "  (timed out)"
        };
        println!(
            "{:<16} K = {:<6} m-gap = {:>6.2}%  {}{flag}",
            r.algorithm(),
            r.score,
            100.0 * gap,
            norm.denormalize(&r.ranking).display_with(&universe)
        );
    }
}

fn cmd_list(f: &Flags) {
    if f.json {
        // The exact payload `GET /v1/algorithms` serves (same serializer).
        println!("{}", proto::registry_json());
        return;
    }
    println!("registered algorithms (case-insensitive; see `rawt aggregate --algo`):");
    println!();
    // Table 1 of the paper: name, class tag ([K] Kemeny-style / [G]
    // generalized / [P] positional), whether the (adapted) algorithm can
    // produce ties, and the method family.
    println!("{:<18} {:<6} {:<6} METHOD", "NAME", "CLASS", "TIES");
    for e in registry() {
        let example = (e.example)();
        let ties = if example.produces_ties() { "yes" } else { "no" };
        // Entry classes read "[K] linear programming"; split the Table 1
        // tag off the family text (the exact solver has no tag).
        let (tag, family) = match e.class.split_once(' ') {
            Some((tag, rest)) if tag.starts_with('[') => (tag, rest),
            _ => ("-", e.class),
        };
        println!("{:<18} {:<6} {:<6} {}", e.canonical, tag, ties, family);
        println!("{:<18} {:<6} {:<6} {}", "", "", "", e.summary);
        println!(
            "{:<18} {:<6} {:<6} example: {example}  paper name: {}",
            "",
            "",
            "",
            example.paper_name()
        );
        if !e.aliases.is_empty() {
            println!(
                "{:<18} {:<6} {:<6} aliases: {}",
                "",
                "",
                "",
                e.aliases.join(", ")
            );
        }
    }
    println!();
    println!("presets: the paper panel is `rawt compare`'s batch; BestOf(base,runs)");
    println!("wraps any randomized base, e.g. BestOf(KwikSort,20) = KwikSortMin.");
}

// ------------------------------------------------------------- sessions

/// One parsed `rawt session` REPL line.
enum SessionCmd {
    Add(String),
    Remove(usize),
    Replace(usize, String),
    Show,
    Solve,
    Quit,
}

/// Parse one session command line; `Err` is the message to print.
fn parse_session_cmd(line: &str) -> Result<SessionCmd, String> {
    let line = line.trim();
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((verb, rest)) => (verb, rest.trim()),
        None => (line, ""),
    };
    match (verb, rest) {
        ("add", r) if !r.is_empty() => Ok(SessionCmd::Add(r.to_owned())),
        ("remove", r) => r
            .parse()
            .map(SessionCmd::Remove)
            .map_err(|_| "usage: remove N".to_owned()),
        ("replace", r) => match r.split_once(char::is_whitespace) {
            Some((index, ranking)) => index
                .parse()
                .map(|i| SessionCmd::Replace(i, ranking.trim().to_owned()))
                .map_err(|_| "usage: replace N [{A},{B}]".to_owned()),
            None => Err("usage: replace N [{A},{B}]".to_owned()),
        },
        ("show", "") => Ok(SessionCmd::Show),
        ("solve", "") => Ok(SessionCmd::Solve),
        ("quit" | "exit", "") => Ok(SessionCmd::Quit),
        _ => Err(format!(
            "unknown command {line:?} (add/remove/replace/show/solve/quit)"
        )),
    }
}

/// `rawt session`: the interactive edit/re-solve loop over a
/// [`DatasetSession`](rank_aggregation_with_ties::rank_core::session::DatasetSession)
/// — delta-patched matrix, warm-started solves
/// (locally in-process, or against a server's live dataset with
/// `--remote`).
fn cmd_session(f: &Flags) {
    let path = f
        .positional
        .first()
        .unwrap_or_else(|| die("session needs a FILE"));
    let body =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    match &f.remote {
        Some(addr) => cmd_session_remote(f, &body, addr),
        None => cmd_session_local(f, &body),
    }
}

fn cmd_session_local(f: &Flags, body: &str) {
    use rank_aggregation_with_ties::rank_core::normalize::unification;
    use rank_aggregation_with_ties::rank_core::session::DatasetSession;
    let mut universe = Universe::new();
    let raw = parse_dataset_lines(body, &mut universe)
        .unwrap_or_else(|e| die(&format!("parse error: {e}")));
    if raw.is_empty() {
        die("the file contains no rankings");
    }
    // Unification over appearance-ordered interning is the identity
    // mapping, so the session's dense element i *is* universe label i —
    // the same invariant the server's live datasets rely on.
    let norm = unification(&raw).unwrap_or_else(|| die("normalization produced an empty dataset"));
    let mut session = DatasetSession::new(norm.dataset);
    let engine = Engine::new();
    println!(
        "session: v{} n = {} m = {} (commands: add/remove/replace/show/solve/quit)",
        session.version(),
        session.n(),
        session.m()
    );
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        use std::io::BufRead as _;
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break; // EOF ends the session like `quit`
        }
        if line.trim().is_empty() || line.trim_start().starts_with('#') {
            continue;
        }
        let cmd = match parse_session_cmd(&line) {
            Ok(cmd) => cmd,
            Err(message) => {
                eprintln!("rawt: {message}");
                continue;
            }
        };
        // Edits parse their ranking against a scratch copy of the
        // universe, committed only when the session accepts the edit —
        // a refused edit must not leak freshly interned labels.
        let mut scratch = universe.clone();
        let result = match cmd {
            SessionCmd::Quit => break,
            SessionCmd::Show => {
                println!(
                    "v{} n = {} m = {}",
                    session.version(),
                    session.n(),
                    session.m()
                );
                for (i, r) in session.rankings().iter().enumerate() {
                    println!("  [{i}] {}", r.display_with(&universe));
                }
                continue;
            }
            SessionCmd::Solve => {
                let spec = match &f.algo {
                    Some(name) => parse_spec(name),
                    None => {
                        let features = DatasetFeatures::measure(&session.dataset());
                        let rec = recommend(&features, Priority::Balanced);
                        AlgoSpec::parse(rec.algorithm).expect("guidance names are registered")
                    }
                };
                if let Some(cap) = spec.max_n() {
                    if session.n() > cap {
                        eprintln!(
                            "rawt: {spec} handles at most n = {cap}; the session has {}",
                            session.n()
                        );
                        continue;
                    }
                }
                let report = session.resolve(&engine, spec, f.seed, f.budget);
                println!(
                    "v{} K = {}  {}  ({} in {:.1?})",
                    session.version(),
                    report.score,
                    report.ranking.display_with(&universe),
                    report.outcome,
                    report.elapsed
                );
                continue;
            }
            SessionCmd::Add(text) => parse_ranking_labeled(&text, &mut scratch)
                .map_err(|e| e.to_string())
                .and_then(|r| session.add_ranking(r).map_err(|e| e.to_string())),
            SessionCmd::Remove(index) => session.remove_ranking(index).map_err(|e| e.to_string()),
            SessionCmd::Replace(index, text) => parse_ranking_labeled(&text, &mut scratch)
                .map_err(|e| e.to_string())
                .and_then(|r| session.replace_ranking(index, r).map_err(|e| e.to_string())),
        };
        match result {
            Ok(version) => {
                universe = scratch;
                println!("v{version} n = {} m = {}", session.n(), session.m());
            }
            Err(message) => eprintln!("rawt: {message}"),
        }
    }
}

fn cmd_session_remote(f: &Flags, body: &str, addr: &str) {
    let client = make_client(f, addr);
    let (id, ephemeral) = match &f.id {
        Some(id) => (id.clone(), false),
        None => (invocation_key(), true),
    };
    let created = client
        .create_dataset(&id, body)
        .unwrap_or_else(|e| die(&format!("PUT dataset {id:?} on {addr}: {e}")));
    let shape = |doc: &Json| {
        (
            doc.get("version").and_then(Json::as_u64).unwrap_or(0),
            doc.get("n").and_then(Json::as_u64).unwrap_or(0),
            doc.get("m").and_then(Json::as_u64).unwrap_or(0),
        )
    };
    let (version, n, m) = shape(&created);
    let display = addr.strip_prefix("http://").unwrap_or(addr);
    println!("session: dataset {id} v{version} n = {n} m = {m} on http://{display}");
    let one_op = |op: &str| {
        client
            .patch_dataset(&id, &format!("{{\"ops\":[{op}]}}"))
            .map_err(|e| e.to_string())
    };
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        use std::io::BufRead as _;
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        if line.trim().is_empty() || line.trim_start().starts_with('#') {
            continue;
        }
        let cmd = match parse_session_cmd(&line) {
            Ok(cmd) => cmd,
            Err(message) => {
                eprintln!("rawt: {message}");
                continue;
            }
        };
        let result = match cmd {
            SessionCmd::Quit => break,
            SessionCmd::Show => {
                match client.get_dataset(&id) {
                    Ok(doc) => {
                        let (version, n, m) = shape(&doc);
                        println!("v{version} n = {n} m = {m}");
                        if let Some(text) = doc.get("dataset").and_then(Json::as_str) {
                            for (i, r) in text.lines().enumerate() {
                                println!("  [{i}] {r}");
                            }
                        }
                    }
                    Err(e) => eprintln!("rawt: GET dataset: {e}"),
                }
                continue;
            }
            SessionCmd::Solve => {
                let submission = JobSubmission {
                    algo: f.algo.clone(),
                    seed: f.seed,
                    budget: f.budget,
                    idempotency_key: Some(invocation_key()),
                    ..JobSubmission::for_dataset(&id)
                };
                let job = match client.submit(&submission) {
                    Ok(job) => job,
                    Err(e) => {
                        eprintln!("rawt: submit: {e}");
                        continue;
                    }
                };
                match client.wait(job.id) {
                    Ok(done) => {
                        let report = done.get("report").cloned().unwrap_or(Json::Null);
                        let score = report.get("score").and_then(Json::as_u64).unwrap_or(0);
                        let outcome = report
                            .get("outcome")
                            .and_then(Json::as_str)
                            .unwrap_or("?")
                            .to_owned();
                        println!(
                            "job {} K = {score}  {}  ({outcome})",
                            job.id,
                            render_label_ranking(report.get("ranking"))
                        );
                    }
                    Err(e) => eprintln!("rawt: waiting on job {}: {e}", job.id),
                }
                continue;
            }
            SessionCmd::Add(text) => one_op(&format!(
                "{{\"op\":\"add\",\"ranking\":\"{}\"}}",
                service::json::escape(&text)
            )),
            SessionCmd::Remove(index) => {
                one_op(&format!("{{\"op\":\"remove\",\"index\":{index}}}"))
            }
            SessionCmd::Replace(index, text) => one_op(&format!(
                "{{\"op\":\"replace\",\"index\":{index},\"ranking\":\"{}\"}}",
                service::json::escape(&text)
            )),
        };
        match result {
            Ok(doc) => {
                let (version, n, m) = shape(&doc);
                println!("v{version} n = {n} m = {m}");
            }
            Err(message) => eprintln!("rawt: {message}"),
        }
    }
    if ephemeral {
        // This invocation created the dataset; clean it up on the way out
        // (with --id the dataset is a named, persistent resource).
        let _ = client.delete_dataset(&id);
    }
}

fn cmd_similarity(f: &Flags) {
    let path = f
        .positional
        .first()
        .unwrap_or_else(|| die("similarity needs a FILE"));
    let (norm, _) = load(path, f.normalize);
    let data = &norm.dataset;
    let features = DatasetFeatures::measure(data);
    println!("n = {}, m = {}", features.n, features.m);
    println!(
        "similarity s(R) = {:.4}",
        features.similarity.unwrap_or(f64::NAN)
    );
    println!("large ties present: {}", features.has_large_ties);
    for p in [Priority::Quality, Priority::Balanced, Priority::Speed] {
        let rec = recommend(&features, p);
        println!("recommended ({p:?}): {}", rec.algorithm);
    }
}

fn cmd_distance(f: &Flags) {
    if f.positional.len() != 2 {
        die("distance needs two 'RANKING' arguments");
    }
    let mut universe = Universe::new();
    let a = parse_ranking_labeled(&f.positional[0], &mut universe)
        .unwrap_or_else(|e| die(&format!("first ranking: {e}")));
    let b = parse_ranking_labeled(&f.positional[1], &mut universe)
        .unwrap_or_else(|e| die(&format!("second ranking: {e}")));
    if a.n_elements() != b.n_elements() || a.elements().any(|e| !b.contains(e)) {
        die("the rankings must be over the same elements");
    }
    println!(
        "G  (generalized Kendall-τ) = {}",
        generalized_kendall_tau(&a, &b)
    );
    println!("D  (classical, ties ignored) = {}", kendall_tau(&a, &b));
    println!("τ  (correlation, eq. 4) = {:.4}", tau_correlation(&a, &b));
}

fn cmd_generate(f: &Flags) {
    let kind = f
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or("uniform");
    let mut rng = rand::SeedableRng::seed_from_u64(f.seed);
    let data = match kind {
        "uniform" => UniformSampler::new(f.n).sample_dataset(f.n, f.m, &mut rng),
        "markov" => MarkovGen::identity_seeded(f.n, f.steps).dataset(f.m, &mut rng),
        other => die(&format!("unknown generator {other:?} (use uniform|markov)")),
    };
    println!(
        "# {kind} dataset: n = {}, m = {}, seed = {}",
        f.n, f.m, f.seed
    );
    for r in data.rankings() {
        println!("{r}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        die("usage: rawt <aggregate|compare|list|serve|route|top|session|similarity|distance|generate> …");
    };
    let flags = parse_flags(rest);
    match cmd.as_str() {
        "aggregate" => cmd_aggregate(&flags),
        "compare" => cmd_compare(&flags),
        "list" => cmd_list(&flags),
        "serve" => cmd_serve(&flags),
        "route" => cmd_route(&flags),
        "top" => cmd_top(&flags),
        "session" => cmd_session(&flags),
        "similarity" => cmd_similarity(&flags),
        "distance" => cmd_distance(&flags),
        "generate" => cmd_generate(&flags),
        other => die(&format!("unknown command {other:?}")),
    }
}
