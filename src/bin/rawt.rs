//! `rawt` — rank aggregation with ties, from the command line.
//!
//! The CLI is a thin shell over the engine API
//! ([`rank_core::engine::Engine`]): subcommands build
//! [`AggregationRequest`]s and print the resulting [`ConsensusReport`]s.
//!
//! ```text
//! rawt aggregate FILE [--algo SPEC] [--seed N] [--budget SECS]
//!                     [--normalize unify|project]
//!     Aggregate a dataset file (one `[{A},{B,C}]` ranking per line,
//!     `#` comments allowed). Rankings over different elements are
//!     normalized first (default: unification, §5.1). Without --algo the
//!     §7.4 guidance picks the algorithm. SPEC is case-insensitive:
//!     `BioConsert`, `bestof(kwiksort,20)`, `MedRank(0.7)`, `Exact`, …
//!
//! rawt compare FILE [--seed N] [--budget SECS] [--normalize unify|project]
//!     Run the paper's whole panel as one concurrent engine batch and
//!     report per-algorithm score, gap and outcome.
//!
//! rawt list
//!     The algorithm registry: canonical spec names, aliases, classes.
//!
//! rawt similarity FILE [--normalize unify|project]
//!     The dataset's intrinsic similarity s(R) (§6.2.2) and features.
//!
//! rawt distance 'RANKING' 'RANKING'
//!     Generalized Kendall-τ distance between two rankings.
//!
//! rawt generate (uniform|markov) --n N --m M [--steps T] [--seed N]
//!     Print a synthetic dataset (§6.1).
//! ```

use rank_aggregation_with_ties::prelude::*;
use rank_aggregation_with_ties::ragen::{MarkovGen, UniformSampler};
use rank_aggregation_with_ties::rank_core::engine::{paper_panel, registry};
use rank_aggregation_with_ties::rank_core::normalize::Normalized;
use rank_aggregation_with_ties::rank_core::parse::{parse_dataset_lines, parse_ranking_labeled};
use std::process::exit;
use std::time::Duration;

fn die(msg: &str) -> ! {
    eprintln!("rawt: {msg}");
    exit(2);
}

struct Flags {
    positional: Vec<String>,
    algo: Option<String>,
    seed: u64,
    budget: Option<Duration>,
    normalize: Normalization,
    n: usize,
    m: usize,
    steps: usize,
}

fn parse_flags(args: &[String]) -> Flags {
    let mut f = Flags {
        positional: Vec::new(),
        algo: None,
        seed: 42,
        budget: None,
        normalize: Normalization::Unification,
        n: 10,
        m: 5,
        steps: 1000,
    };
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i)
            .cloned()
            .unwrap_or_else(|| die("missing flag value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--algo" => f.algo = Some(value(&mut i)),
            "--seed" => f.seed = value(&mut i).parse().unwrap_or_else(|_| die("bad --seed")),
            "--budget" => {
                let secs: f64 = value(&mut i)
                    .parse()
                    .unwrap_or_else(|_| die("bad --budget"));
                if secs <= 0.0 || !secs.is_finite() {
                    die("--budget must be positive seconds");
                }
                f.budget = Some(Duration::from_secs_f64(secs));
            }
            "--normalize" => {
                f.normalize = value(&mut i).parse().unwrap_or_else(|e: String| die(&e))
            }
            "--n" => f.n = value(&mut i).parse().unwrap_or_else(|_| die("bad --n")),
            "--m" => f.m = value(&mut i).parse().unwrap_or_else(|_| die("bad --m")),
            "--steps" => f.steps = value(&mut i).parse().unwrap_or_else(|_| die("bad --steps")),
            s if s.starts_with("--") => die(&format!("unknown flag {s}")),
            s => f.positional.push(s.to_owned()),
        }
        i += 1;
    }
    f
}

/// Load + normalize a dataset file; returns the dense dataset, the id
/// mapping and the universe for display.
fn load(path: &str, how: Normalization) -> (Normalized, Universe) {
    let body =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let mut universe = Universe::new();
    let raw = parse_dataset_lines(&body, &mut universe)
        .unwrap_or_else(|e| die(&format!("parse error in {path}: {e}")));
    if raw.is_empty() {
        die("the file contains no rankings");
    }
    let normalized = how
        .apply(&raw)
        .unwrap_or_else(|| die("normalization produced an empty dataset"));
    (normalized, universe)
}

/// Parse a user-supplied algorithm spec, case-insensitively, dying with a
/// "did you mean" suggestion on unknown names.
fn parse_spec(name: &str) -> AlgoSpec {
    AlgoSpec::parse(name).unwrap_or_else(|e| die(&format!("{e}; run `rawt list` for the registry")))
}

fn cmd_aggregate(f: &Flags) {
    let path = f
        .positional
        .first()
        .unwrap_or_else(|| die("aggregate needs a FILE"));
    let (norm, universe) = load(path, f.normalize);
    let data = &norm.dataset;
    let spec = match &f.algo {
        Some(name) => parse_spec(name),
        None => {
            let rec = recommend(&DatasetFeatures::measure(data), Priority::Balanced);
            AlgoSpec::parse(rec.algorithm).expect("guidance names are registered")
        }
    };
    if let Some(cap) = spec.max_n() {
        if data.n() > cap {
            die(&format!(
                "{spec} handles at most n = {cap} elements; this dataset has {} (try another algorithm, see `rawt list`)",
                data.n()
            ));
        }
    }
    let mut request = AggregationRequest::new(data.clone(), spec).with_seed(f.seed);
    if let Some(budget) = f.budget {
        request = request.with_budget(budget);
    }
    let report = Engine::new().run(&request);
    println!("algorithm:  {} (spec: {})", report.algorithm(), report.spec);
    println!(
        "elements:   {} (m = {} rankings, {})",
        data.n(),
        data.m(),
        f.normalize
    );
    println!(
        "consensus:  {}",
        norm.denormalize(&report.ranking).display_with(&universe)
    );
    println!("K score:    {}", report.score);
    println!("outcome:    {} in {:.1?}", report.outcome, report.elapsed);
}

fn cmd_compare(f: &Flags) {
    let path = f
        .positional
        .first()
        .unwrap_or_else(|| die("compare needs a FILE"));
    let (norm, universe) = load(path, f.normalize);
    let data = &norm.dataset;
    println!(
        "n = {}, m = {}, similarity s(R) = {:.3}",
        data.n(),
        data.m(),
        dataset_similarity(data)
    );
    // The paper's panel as one engine batch; size-bounded members (the
    // LP-based Ailon) sit instances beyond their cap out.
    let specs = paper_panel(20)
        .into_iter()
        .filter(|s| s.max_n().is_none_or(|cap| data.n() <= cap));
    let mut batch = AggregationRequest::batch(data.clone())
        .specs(specs)
        .seed(f.seed);
    if let Some(budget) = f.budget {
        batch = batch.budget(budget);
    }
    let mut reports = Engine::new().run_batch(&batch.build());
    reports.sort_by_key(|r| r.score);
    for r in &reports {
        let gap = r.gap.unwrap_or(f64::NAN);
        let flag = if r.outcome.completed() {
            ""
        } else {
            "  (timed out)"
        };
        println!(
            "{:<16} K = {:<6} m-gap = {:>6.2}%  {}{flag}",
            r.algorithm(),
            r.score,
            100.0 * gap,
            norm.denormalize(&r.ranking).display_with(&universe)
        );
    }
}

fn cmd_list() {
    println!("registered algorithms (case-insensitive; see `rawt aggregate --algo`):");
    println!();
    for e in registry() {
        let example = (e.example)();
        let ties = if example.produces_ties() {
            "ties"
        } else {
            "no ties"
        };
        println!("{:<18} {:<24} {}", e.canonical, e.class, e.summary);
        println!(
            "{:<18} {:<24} example: {example}  paper name: {}  ({ties})",
            "",
            "",
            example.paper_name()
        );
        if !e.aliases.is_empty() {
            println!("{:<18} {:<24} aliases: {}", "", "", e.aliases.join(", "));
        }
    }
    println!();
    println!("presets: the paper panel is `rawt compare`'s batch; BestOf(base,runs)");
    println!("wraps any randomized base, e.g. BestOf(KwikSort,20) = KwikSortMin.");
}

fn cmd_similarity(f: &Flags) {
    let path = f
        .positional
        .first()
        .unwrap_or_else(|| die("similarity needs a FILE"));
    let (norm, _) = load(path, f.normalize);
    let data = &norm.dataset;
    let features = DatasetFeatures::measure(data);
    println!("n = {}, m = {}", features.n, features.m);
    println!(
        "similarity s(R) = {:.4}",
        features.similarity.unwrap_or(f64::NAN)
    );
    println!("large ties present: {}", features.has_large_ties);
    for p in [Priority::Quality, Priority::Balanced, Priority::Speed] {
        let rec = recommend(&features, p);
        println!("recommended ({p:?}): {}", rec.algorithm);
    }
}

fn cmd_distance(f: &Flags) {
    if f.positional.len() != 2 {
        die("distance needs two 'RANKING' arguments");
    }
    let mut universe = Universe::new();
    let a = parse_ranking_labeled(&f.positional[0], &mut universe)
        .unwrap_or_else(|e| die(&format!("first ranking: {e}")));
    let b = parse_ranking_labeled(&f.positional[1], &mut universe)
        .unwrap_or_else(|e| die(&format!("second ranking: {e}")));
    if a.n_elements() != b.n_elements() || a.elements().any(|e| !b.contains(e)) {
        die("the rankings must be over the same elements");
    }
    println!(
        "G  (generalized Kendall-τ) = {}",
        generalized_kendall_tau(&a, &b)
    );
    println!("D  (classical, ties ignored) = {}", kendall_tau(&a, &b));
    println!("τ  (correlation, eq. 4) = {:.4}", tau_correlation(&a, &b));
}

fn cmd_generate(f: &Flags) {
    let kind = f
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or("uniform");
    let mut rng = rand::SeedableRng::seed_from_u64(f.seed);
    let data = match kind {
        "uniform" => UniformSampler::new(f.n).sample_dataset(f.n, f.m, &mut rng),
        "markov" => MarkovGen::identity_seeded(f.n, f.steps).dataset(f.m, &mut rng),
        other => die(&format!("unknown generator {other:?} (use uniform|markov)")),
    };
    println!(
        "# {kind} dataset: n = {}, m = {}, seed = {}",
        f.n, f.m, f.seed
    );
    for r in data.rankings() {
        println!("{r}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        die("usage: rawt <aggregate|compare|list|similarity|distance|generate> …");
    };
    let flags = parse_flags(rest);
    match cmd.as_str() {
        "aggregate" => cmd_aggregate(&flags),
        "compare" => cmd_compare(&flags),
        "list" => cmd_list(),
        "similarity" => cmd_similarity(&flags),
        "distance" => cmd_distance(&flags),
        "generate" => cmd_generate(&flags),
        other => die(&format!("unknown command {other:?}")),
    }
}
