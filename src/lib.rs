//! # Rank aggregation with ties
//!
//! A Rust reproduction of *“Rank aggregation with ties: Experiments and
//! Analysis”* (Brancotte, Yang, Blin, Cohen-Boulakia, Denise, Hamel —
//! PVLDB 8(11), 2015): the complete algorithm suite for aggregating
//! rankings whose elements may be tied, the first exact solver for the
//! problem, the paper's synthetic dataset generators, and the full
//! experimental harness regenerating every table and figure.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! * [`rank_core`] — data model ([`rank_core::Ranking`],
//!   [`rank_core::Dataset`]), generalized Kendall-τ distances, all
//!   aggregation algorithms, normalization, guidance.
//! * [`ragen`] — exact-uniform / Markov-chain / unified-top-k dataset
//!   generators.
//! * [`datasets`] — real-world dataset facsimiles (WebSearch, F1,
//!   SkiCross, BioMedical).
//! * [`bignum`] — arbitrary-precision integers behind the uniform sampler.
//! * [`lpsolve`] — the simplex + branch-and-bound substrate behind the
//!   exact LPB formulation and Ailon 3/2.
//! * [`service`] — the network front door (DESIGN.md §10): a
//!   dependency-free HTTP server streaming anytime jobs as NDJSON over
//!   the engine's budget-aware scheduler, plus the matching client
//!   (`rawt serve` / `rawt aggregate --remote`).
//!
//! The front door is the engine API: describe *what* to aggregate with a
//! typed [`rank_core::engine::AlgoSpec`], submit
//! [`rank_core::engine::AggregationRequest`]s to a long-lived
//! [`rank_core::engine::Engine`], and read the ranking, Kemeny score,
//! elapsed time and per-request outcome back out of the
//! [`rank_core::engine::ConsensusReport`]:
//!
//! ```
//! use rank_aggregation_with_ties::prelude::*;
//!
//! // The paper's §2.2 running example (A=0, B=1, C=2, D=3).
//! let r1 = Ranking::from_slices(&[&[0], &[3], &[1, 2]]).unwrap();
//! let r2 = Ranking::from_slices(&[&[0], &[1, 2], &[3]]).unwrap();
//! let r3 = Ranking::from_slices(&[&[3], &[0, 2], &[1]]).unwrap();
//! let data = Dataset::new(vec![r1, r2, r3]).unwrap();
//!
//! let engine = Engine::new();
//! let request = AggregationRequest::new(data, AlgoSpec::parse("BioConsert").unwrap())
//!     .with_seed(42);
//! let report = engine.run(&request);
//! assert_eq!(report.score, 5);
//! assert_eq!(report.outcome, Outcome::Heuristic); // heuristics never *prove*
//! ```
//!
//! Batches run concurrently over one shared cost-matrix cache:
//!
//! ```
//! # use rank_aggregation_with_ties::prelude::*;
//! # let r1 = Ranking::from_slices(&[&[0], &[3], &[1, 2]]).unwrap();
//! # let r2 = Ranking::from_slices(&[&[0], &[1, 2], &[3]]).unwrap();
//! # let r3 = Ranking::from_slices(&[&[3], &[0, 2], &[1]]).unwrap();
//! # let data = Dataset::new(vec![r1, r2, r3]).unwrap();
//! let engine = Engine::new();
//! let requests = AggregationRequest::batch(data)
//!     .specs(paper_panel(10))
//!     .spec(AlgoSpec::Exact)
//!     .seed(42)
//!     .build();
//! let reports = engine.run_batch(&requests);
//! assert_eq!(reports.len(), 14);
//! assert!(reports.iter().any(|r| r.outcome == Outcome::Optimal));
//! // The heuristic panel shared ONE cost-matrix build; the second one is
//! // the exact solver's block decomposition building a sub-instance.
//! assert!(engine.cache().builds() <= 2);
//! ```
//!
//! Long-running requests are **anytime jobs** (DESIGN.md §9): submit one,
//! stream its improving incumbents and tightening certified lower bounds
//! (DESIGN.md §11), harvest the best-so-far at any moment, or cancel
//! cooperatively — the job returns its best incumbent with
//! `Outcome::Cancelled`:
//!
//! ```
//! # use rank_aggregation_with_ties::prelude::*;
//! # let r1 = Ranking::from_slices(&[&[0], &[3], &[1, 2]]).unwrap();
//! # let r2 = Ranking::from_slices(&[&[0], &[1, 2], &[3]]).unwrap();
//! # let r3 = Ranking::from_slices(&[&[3], &[0, 2], &[1]]).unwrap();
//! # let data = Dataset::new(vec![r1, r2, r3]).unwrap();
//! let engine = Engine::new();
//! let handle = engine.submit(AggregationRequest::new(data, AlgoSpec::Exact));
//! let mut incumbents = 0;
//! for event in handle.events() {
//!     match event {
//!         Event::Started { spec, .. } => assert_eq!(spec, AlgoSpec::Exact),
//!         Event::Incumbent { .. } => incumbents += 1, // strictly improving scores
//!         Event::LowerBound { .. } => {} // strictly tightening certified bounds
//!         Event::Finished(outcome) => assert_eq!(outcome, Outcome::Optimal),
//!     }
//! }
//! let report = handle.wait();
//! assert!(incumbents >= 1);
//! // Every report carries its quality-vs-time curve, ending at the score;
//! // a proved-optimal run's certified bound meets its score (gap 0).
//! assert_eq!(report.trace.last().unwrap().score, report.score);
//! assert_eq!(report.lower_bound, Some(report.score));
//! assert_eq!(report.certified_gap(), Some(0));
//! ```

pub use bignum;
pub use datasets;
pub use lpsolve;
pub use ragen;
pub use rank_core;
pub use service;

/// The most common imports in one place.
pub mod prelude {
    pub use rank_core::algorithms::bioconsert::BioConsert;
    pub use rank_core::algorithms::exact::ExactAlgorithm;
    pub use rank_core::algorithms::{
        exact_algorithm, extended_algorithms, paper_algorithms, AlgoContext, ConsensusAlgorithm,
        Control,
    };
    pub use rank_core::distance::{generalized_kendall_tau, kendall_tau};
    pub use rank_core::engine::{
        extended_panel, full_panel, paper_panel, AggregationRequest, AlgoSpec, BatchBuilder,
        CancelToken, ConsensusReport, Engine, Event, ExecPolicy, IncumbentSink, JobHandle,
        KernelLane, LanePolicy, Normalization, Outcome, SpecErrorKind, SpecParseError, Threading,
        TracePoint,
    };
    pub use rank_core::guidance::{recommend, DatasetFeatures, Priority};
    pub use rank_core::normalize::{projection, top_k, unification};
    pub use rank_core::score::{gap, kemeny_score};
    pub use rank_core::similarity::{dataset_similarity, tau_correlation};
    pub use rank_core::{Dataset, Element, PairTable, Ranking, Universe};
}
