//! The HTTP server: anytime aggregation jobs over the wire.
//!
//! Endpoint surface (DESIGN.md §10.1):
//!
//! | Method   | Path                   | Meaning                                        |
//! |----------|------------------------|------------------------------------------------|
//! | `POST`   | `/v1/jobs`             | submit a job (dataset + spec + seed + budget)  |
//! | `GET`    | `/v1/jobs/{id}/events` | stream NDJSON lifecycle events (chunked)       |
//! | `GET`    | `/v1/jobs/{id}`        | job status + best-so-far report incl. trace    |
//! | `DELETE` | `/v1/jobs/{id}`        | cooperative cancel                             |
//! | `GET`    | `/v1/algorithms`       | the algorithm registry                         |
//! | `GET`    | `/healthz`             | liveness + scheduler stats                     |
//!
//! Submissions flow through [`Engine::try_submit`]: when the scheduler's
//! admission queue is full the server sheds the request with **429** and
//! a `Retry-After` header — running jobs are never affected. Each accepted
//! job gets a collector thread that drains the
//! [`JobHandle`](rank_core::engine::JobHandle)'s event
//! stream into a replayable per-job log (so `GET …/events` works for
//! late and repeated subscribers, streaming live past the replay point)
//! and stores the final report. Connection handling is
//! thread-per-connection with `Connection: close` semantics — the
//! protocol is one exchange per connection, which keeps the server free
//! of any read-multiplexing machinery while still serving streams of
//! concurrent clients (the bench's service section measures exactly
//! that).

use crate::fault::FaultPlan;
use crate::http::{self, ChunkedWriter, HttpError, Request};
use crate::journal::{FsyncPolicy, Journal, JournalWriter};
use crate::proto::{self, JobSubmission, SubmissionError};
use rank_core::engine::{
    AdmissionError, AggregationRequest, AlgoSpec, Engine, Event, SchedulerConfig,
};
use rank_core::guidance::{recommend, DatasetFeatures, Priority};
use rank_core::normalize::Normalized;
use rank_core::parse::parse_dataset_lines;
use rank_core::{Dataset, Universe};
use std::collections::HashMap;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How the server is shaped.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent-job cap (the scheduler's worker-pool width).
    pub max_jobs: usize,
    /// Admission-queue bound; beyond it, submissions get 429.
    pub queue_capacity: usize,
    /// Completed jobs retained for status queries before the oldest are
    /// evicted (their journal segments are deleted with them).
    pub retain_done: usize,
    /// Durable job journal directory (DESIGN.md §12). `None` keeps the
    /// pre-durability in-memory behavior; `Some(dir)` journals every job
    /// and replays the directory on [`Server::bind`] — finished jobs
    /// become servable again, interrupted jobs are re-admitted and re-run
    /// to bit-identical reports.
    pub journal_dir: Option<PathBuf>,
    /// When the journal fsyncs (only meaningful with `journal_dir`).
    pub journal_fsync: FsyncPolicy,
    /// Fault-injection hooks (testing; all off by default).
    pub faults: Arc<FaultPlan>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_jobs: rank_core::parallel::num_threads().max(2),
            queue_capacity: rank_core::engine::DEFAULT_QUEUE_CAPACITY,
            retain_done: 256,
            journal_dir: None,
            journal_fsync: FsyncPolicy::default(),
            faults: Arc::new(FaultPlan::none()),
        }
    }
}

/// Everything one served job carries: identity, the pieces needed to
/// serialize its results back to input labels, a cancel token usable
/// while another thread streams its events, and the replayable event log.
struct JobRecord {
    id: u64,
    spec: AlgoSpec,
    seed: u64,
    n: usize,
    m: usize,
    normalize: rank_core::engine::Normalization,
    universe: Universe,
    norm: Normalized,
    cancel: rank_core::engine::CancelToken,
    sink: Arc<rank_core::engine::IncumbentSink>,
    /// The submission's idempotency key, so eviction can release it.
    idempotency: Option<String>,
    state: Mutex<JobProgress>,
    advanced: Condvar,
}

#[derive(Default)]
struct JobProgress {
    /// Serialized NDJSON event lines, in emission order (the replay log).
    events: Vec<String>,
    /// Whether the job has started executing (left the admission queue).
    started: bool,
    /// The final report as a JSON object, once the job finished.
    report_json: Option<String>,
    /// The final outcome's display form, once finished.
    outcome: Option<String>,
    done: bool,
}

/// The three-way lifecycle label every status-bearing response uses.
fn state_name(progress: &JobProgress) -> &'static str {
    if progress.done {
        "done"
    } else if progress.started {
        "running"
    } else {
        "queued"
    }
}

impl JobRecord {
    fn queue_state(&self) -> &'static str {
        state_name(&self.state.lock().expect("job state poisoned"))
    }
}

struct ServerState {
    engine: Engine,
    jobs: Mutex<JobTable>,
    started: Instant,
    accepted_total: AtomicU64,
    shutting_down: AtomicBool,
    /// The durable journal, when `--journal` is configured.
    journal: Option<Journal>,
    /// Set by the journal on a write/fsync failure: the server keeps
    /// running in-memory and `/healthz` reports `"degraded"`.
    degraded: Arc<AtomicBool>,
    config: ServerConfig,
}

#[derive(Default)]
struct JobTable {
    next_id: u64,
    /// Insertion-ordered so eviction drops the oldest finished job.
    order: Vec<u64>,
    records: HashMap<u64, Arc<JobRecord>>,
    /// Idempotency key → job id (rebuilt from the journal on recovery,
    /// so a retried submit after a crash still finds its job).
    keys: HashMap<String, u64>,
}

/// The aggregation service over one TCP listener.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

/// A handle for stopping a running server from another thread.
#[derive(Clone)]
pub struct ShutdownHandle {
    state: Arc<ServerState>,
    addr: std::net::SocketAddr,
}

impl ShutdownHandle {
    /// Drain the server: stop accepting, cooperatively cancel every
    /// queued and running job, and make [`Server::serve`] return. Event
    /// streams end naturally (each cancelled job still emits `Finished`).
    pub fn shutdown(&self) {
        self.state.shutting_down.store(true, Ordering::SeqCst);
        self.state.engine.shutdown_drain();
        // Unblock the accept loop with a no-op connection to ourselves.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Bind to `addr` (use port 0 for an ephemeral port; read the actual
    /// one back with [`Server::local_addr`]).
    ///
    /// With [`ServerConfig::journal_dir`] set, the directory is replayed
    /// *before* this returns: journaled finished jobs become servable
    /// again and interrupted jobs are re-admitted through the scheduler's
    /// recovered class (ascending id order — deterministic), each
    /// re-recording into a fresh journal segment. The listener is bound
    /// first, but no connection is accepted until [`Server::serve`], so a
    /// returned `Server` is fully recovered and ready.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let engine = Engine::with_scheduler(
            rank_core::parallel::num_threads(),
            SchedulerConfig {
                max_concurrent: config.max_jobs,
                queue_capacity: config.queue_capacity,
            },
        );
        let degraded = Arc::new(AtomicBool::new(false));
        let journal = match &config.journal_dir {
            None => None,
            Some(dir) => Some(
                Journal::open(dir, config.journal_fsync)?
                    .with_faults(Arc::clone(&config.faults))
                    .with_degraded_flag(Arc::clone(&degraded)),
            ),
        };
        let state = Arc::new(ServerState {
            engine,
            jobs: Mutex::new(JobTable::default()),
            started: Instant::now(),
            accepted_total: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
            journal,
            degraded,
            config,
        });
        if state.journal.is_some() {
            recover(&state)?;
        }
        Ok(Server { listener, state })
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop [`Server::serve`] from another thread (or a
    /// signal handler's polling loop).
    pub fn shutdown_handle(&self) -> std::io::Result<ShutdownHandle> {
        Ok(ShutdownHandle {
            state: Arc::clone(&self.state),
            addr: self.local_addr()?,
        })
    }

    /// Accept connections until [`ShutdownHandle::shutdown`] is called.
    /// Each connection is served on its own thread; a handler panic kills
    /// only that connection (and is answered with a 500 when possible).
    pub fn serve(self) -> std::io::Result<()> {
        for connection in self.listener.incoming() {
            if self.state.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            let stream = match connection {
                Ok(stream) => stream,
                Err(_) => continue,
            };
            if self.state.config.faults.should_drop_accept() {
                // Fault hook: simulate flaky networking by closing the
                // connection unanswered (drives the client's retry and
                // reconnect paths in the recovery tests).
                drop(stream);
                continue;
            }
            let state = Arc::clone(&self.state);
            let _ = std::thread::Builder::new()
                .name("rank-conn".to_owned())
                .spawn(move || {
                    // Belt and braces: handlers map bad input to 4xx
                    // themselves; catch_unwind turns an unexpected panic
                    // into a dropped connection instead of a dead server.
                    let _ = catch_unwind(AssertUnwindSafe(|| handle_connection(stream, &state)));
                });
        }
        Ok(())
    }
}

fn handle_connection(mut stream: TcpStream, state: &Arc<ServerState>) {
    // A stuck or silent client may hold the socket, but not forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let mut reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(_) => return,
    };
    let request = match http::read_request(&mut reader) {
        Ok(request) => request,
        Err(HttpError::BodyTooLarge(_)) => {
            respond_error(&mut stream, 413, "request body too large", None);
            return;
        }
        Err(HttpError::Malformed(message)) => {
            respond_error(&mut stream, 400, &message, None);
            return;
        }
        Err(HttpError::Io(_)) => return,
    };
    route(&mut stream, &request, state);
}

fn respond_error(stream: &mut TcpStream, status: u16, message: &str, suggestion: Option<&str>) {
    let body = proto::error_json(message, suggestion);
    let _ = http::write_response(stream, status, "application/json", &[], body.as_bytes());
}

fn respond_json(stream: &mut TcpStream, status: u16, body: &str) {
    let _ = http::write_response(stream, status, "application/json", &[], body.as_bytes());
}

fn route(stream: &mut TcpStream, request: &Request, state: &Arc<ServerState>) {
    let path = request.path.trim_end_matches('/');
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => healthz(stream, state),
        ("GET", "/v1/algorithms") => respond_json(stream, 200, &proto::registry_json()),
        ("POST", "/v1/jobs") => submit_job(stream, request, state),
        (method, path) if path.starts_with("/v1/jobs/") => {
            let rest = &path["/v1/jobs/".len()..];
            let (id_text, tail) = match rest.split_once('/') {
                None => (rest, None),
                Some((id, tail)) => (id, Some(tail)),
            };
            let Ok(id) = id_text.parse::<u64>() else {
                respond_error(stream, 400, &format!("bad job id {id_text:?}"), None);
                return;
            };
            let record = state
                .jobs
                .lock()
                .expect("job table poisoned")
                .records
                .get(&id)
                .cloned();
            let Some(record) = record else {
                respond_error(stream, 404, &format!("no such job {id}"), None);
                return;
            };
            match (method, tail) {
                ("GET", None) => job_status(stream, &record),
                ("DELETE", None) => {
                    record.cancel.cancel();
                    respond_json(
                        stream,
                        202,
                        &format!(
                            "{{\"id\":{id},\"cancelling\":true,\"state\":\"{}\"}}",
                            record.queue_state()
                        ),
                    );
                }
                ("GET", Some("events")) => stream_events(stream, &record),
                _ => respond_error(stream, 405, "unsupported method for this path", None),
            }
        }
        ("POST", _) | ("GET", _) | ("DELETE", _) => {
            respond_error(stream, 404, &format!("no such endpoint {path:?}"), None)
        }
        (method, _) => respond_error(stream, 405, &format!("unsupported method {method}"), None),
    }
}

fn healthz(stream: &mut TcpStream, state: &Arc<ServerState>) {
    let stats = state.engine.scheduler_stats();
    let degraded = state.degraded.load(Ordering::SeqCst);
    let journal = match (&state.journal, degraded) {
        (None, _) => "off",
        (Some(_), true) => "degraded",
        (Some(_), false) => "active",
    };
    let body = format!(
        concat!(
            "{{\"status\":\"{}\",\"journal\":\"{}\",\"uptime_secs\":{:.1},",
            "\"jobs_accepted\":{},\"jobs_queued\":{},\"jobs_running\":{},",
            "\"max_jobs\":{},\"queue_capacity\":{}}}"
        ),
        if degraded { "degraded" } else { "ok" },
        journal,
        state.started.elapsed().as_secs_f64(),
        state.accepted_total.load(Ordering::Relaxed),
        stats.queued,
        stats.running,
        stats.max_concurrent,
        stats.queue_capacity,
    );
    respond_json(stream, 200, &body);
}

/// A submission after parsing and validation: everything needed to build
/// the engine request and the job record. One code path produces this for
/// both live `POST /v1/jobs` bodies and journaled submissions replayed on
/// recovery, so a re-admitted job is prepared exactly like the original.
struct Prepared {
    universe: Universe,
    norm: Normalized,
    data: Arc<Dataset>,
    spec: AlgoSpec,
}

/// Dataset text → raw rankings → normalized dense dataset → resolved
/// spec. Parse and structural errors are typed ([`SubmissionError`], HTTP
/// 400 material), never a panic.
fn prepare_submission(submission: &JobSubmission) -> Result<Prepared, SubmissionError> {
    let mut universe = Universe::new();
    let raw = parse_dataset_lines(&submission.dataset, &mut universe)
        .map_err(|e| SubmissionError::new(format!("dataset: {e}")))?;
    if raw.is_empty() {
        return Err(SubmissionError::new("dataset contains no rankings"));
    }
    let norm = submission
        .normalize
        .apply(&raw)
        .ok_or_else(|| SubmissionError::new("normalization produced an empty dataset"))?;
    // One copy of the dense dataset, shared by the request (Arc) and
    // readable for the n/m/guidance checks below.
    let data = Arc::new(norm.dataset.clone());
    let spec = match &submission.algo {
        Some(name) => AlgoSpec::parse(name).map_err(|e| SubmissionError {
            message: e.to_string(),
            suggestion: e.suggestion.clone(),
        })?,
        None => {
            let rec = recommend(&DatasetFeatures::measure(&data), Priority::Balanced);
            AlgoSpec::parse(rec.algorithm).expect("guidance names are registered")
        }
    };
    if let Some(cap) = spec.max_n() {
        if data.n() > cap {
            return Err(SubmissionError::new(format!(
                "{spec} handles at most n = {cap} elements; this dataset has {}",
                data.n()
            )));
        }
    }
    Ok(Prepared {
        universe,
        norm,
        data,
        spec,
    })
}

/// The engine request for a prepared submission — shared by the live
/// submit path and recovery re-admission, so both run the identical
/// (spec, seed, budget) and the recovered report is bit-identical to an
/// uninterrupted run.
fn build_request(prepared: &Prepared, submission: &JobSubmission) -> AggregationRequest {
    let mut request = AggregationRequest::new(Arc::clone(&prepared.data), prepared.spec.clone())
        .with_seed(submission.seed);
    if let Some(budget) = submission.budget {
        request = request.with_budget(budget);
    }
    request
}

/// The submission as journaled: the original body with the *resolved*
/// algorithm spec filled in, so recovery re-runs exactly what ran — even
/// when guidance picked the algorithm (guidance is deterministic, but
/// pinning the pick in the record makes the journal self-contained).
fn journaled_submission_json(submission: &JobSubmission, spec: &AlgoSpec) -> String {
    let mut resolved = submission.clone();
    resolved.algo = Some(spec.to_string());
    resolved.to_json()
}

/// The `POST /v1/jobs` response body (also returned, with
/// `"deduplicated":true` and status 200, for an idempotent retry).
fn submit_body(record: &JobRecord, deduplicated: bool) -> String {
    format!(
        concat!(
            "{{\"id\":{},\"spec\":\"{}\",\"seed\":{},\"n\":{},\"m\":{},",
            "\"deduplicated\":{},\"events\":\"/v1/jobs/{}/events\",\"status\":\"/v1/jobs/{}\"}}"
        ),
        record.id,
        crate::json::escape(&record.spec.to_string()),
        record.seed,
        record.n,
        record.m,
        deduplicated,
        record.id,
        record.id,
    )
}

/// `POST /v1/jobs`: parse, validate, dedupe, admit, journal, record.
fn submit_job(stream: &mut TcpStream, request: &Request, state: &Arc<ServerState>) {
    if state.shutting_down.load(Ordering::SeqCst) {
        respond_error(stream, 503, "server is draining", None);
        return;
    }
    let Ok(body) = std::str::from_utf8(&request.body) else {
        respond_error(stream, 400, "request body is not UTF-8", None);
        return;
    };
    let submission = match JobSubmission::from_json(body) {
        Ok(submission) => submission,
        Err(e) => {
            respond_error(stream, 400, &e.message, e.suggestion.as_deref());
            return;
        }
    };
    // Idempotent retry? Answer with the existing job (recovered ones
    // included — the key map is rebuilt from the journal on restart)
    // before spending any parsing or admission work on the body.
    if let Some(key) = &submission.idempotency_key {
        let table = state.jobs.lock().expect("job table poisoned");
        if let Some(record) = table.keys.get(key).and_then(|id| table.records.get(id)) {
            let body = submit_body(record, true);
            drop(table);
            respond_json(stream, 200, &body);
            return;
        }
    }
    let prepared = match prepare_submission(&submission) {
        Ok(prepared) => prepared,
        Err(e) => {
            respond_error(stream, 400, &e.message, e.suggestion.as_deref());
            return;
        }
    };
    let handle = match state
        .engine
        .try_submit(build_request(&prepared, &submission))
    {
        Ok(handle) => handle,
        Err(AdmissionError::QueueFull {
            queued,
            capacity,
            retry_after,
        }) => {
            let secs = retry_after.as_secs().max(1);
            let body = format!(
                "{{\"error\":\"admission queue full ({queued}/{capacity})\",\"retry_after_secs\":{secs}}}"
            );
            let _ = http::write_response(
                stream,
                429,
                "application/json",
                &[("Retry-After", secs.to_string())],
                body.as_bytes(),
            );
            return;
        }
        Err(AdmissionError::ShuttingDown) => {
            respond_error(stream, 503, "server is draining", None);
            return;
        }
    };
    let (record, deduplicated) = {
        let mut table = state.jobs.lock().expect("job table poisoned");
        // Re-check the key under the insertion lock: a concurrent twin
        // may have won the race since the pre-parse check. The loser's
        // admitted handle is cancelled and dropped — its job resolves at
        // the first checkpoint, unrecorded.
        if let Some(existing) = submission
            .idempotency_key
            .as_ref()
            .and_then(|key| table.keys.get(key))
            .and_then(|id| table.records.get(id))
        {
            let existing = Arc::clone(existing);
            drop(table);
            handle.cancel();
            drop(handle);
            (existing, true)
        } else {
            let id = table.next_id;
            table.next_id += 1;
            let record = Arc::new(JobRecord {
                id,
                spec: prepared.spec,
                seed: submission.seed,
                n: prepared.data.n(),
                m: prepared.data.m(),
                normalize: submission.normalize,
                universe: prepared.universe,
                norm: prepared.norm,
                cancel: handle.cancel_token(),
                sink: Arc::clone(handle.sink()),
                idempotency: submission.idempotency_key.clone(),
                state: Mutex::new(JobProgress::default()),
                advanced: Condvar::new(),
            });
            table.order.push(id);
            table.records.insert(id, Arc::clone(&record));
            if let Some(key) = &submission.idempotency_key {
                table.keys.insert(key.clone(), id);
            }
            evict_done(&mut table, state.config.retain_done, state.journal.as_ref());
            state.accepted_total.fetch_add(1, Ordering::Relaxed);
            let writer = state.journal.as_ref().and_then(|journal| {
                journal.begin_job(id, 0, &journaled_submission_json(&submission, &record.spec))
            });
            // The collector owns the handle: it drains the event stream
            // into the replay log (and the journal) and stores the final
            // report. It is the only consumer of the raw event channel;
            // HTTP subscribers read the log.
            {
                let record = Arc::clone(&record);
                let _ = std::thread::Builder::new()
                    .name(format!("rank-collect-{id}"))
                    .spawn(move || collect(&record, handle, writer));
            }
            (record, false)
        }
    };
    let status = if deduplicated { 200 } else { 202 };
    respond_json(stream, status, &submit_body(&record, deduplicated));
}

/// Replay the journal directory into the job table ([`Server::bind`]):
/// finished jobs become servable records (status, report, and event
/// replay intact); interrupted jobs are re-admitted through the
/// scheduler's recovered class in ascending id order, re-recording into
/// segment `n+1`. Unreadable or corrupt journal *entries* are skipped
/// (counted by the replay); only a directory-level I/O failure is fatal.
fn recover(state: &Arc<ServerState>) -> std::io::Result<()> {
    let journal = state.journal.as_ref().expect("recover without a journal");
    let replay = journal.replay()?;
    let mut recovered_done = 0usize;
    let mut readmitted = 0usize;
    let mut table = state.jobs.lock().expect("job table poisoned");
    for job in replay.jobs {
        // Fresh ids continue above every journaled one.
        table.next_id = table.next_id.max(job.id + 1);
        let prepared = match prepare_submission(&job.submission) {
            Ok(prepared) => prepared,
            Err(e) => {
                eprintln!(
                    "rawt: journal: dropping unrecoverable job {} ({})",
                    job.id, e.message
                );
                continue;
            }
        };
        let record = if let Some(finished) = job.finished {
            recovered_done += 1;
            // Servable as-is: replayable events, outcome, and the exact
            // original report bytes. The live sink is empty (its trace
            // died with the old process) — the report carries the full
            // trace, and `best` reads null like any pre-start job.
            Arc::new(JobRecord {
                id: job.id,
                spec: prepared.spec,
                seed: job.submission.seed,
                n: prepared.data.n(),
                m: prepared.data.m(),
                normalize: job.submission.normalize,
                universe: prepared.universe,
                norm: prepared.norm,
                cancel: rank_core::engine::CancelToken::new(),
                sink: Arc::new(rank_core::engine::IncumbentSink::new()),
                idempotency: job.submission.idempotency_key.clone(),
                state: Mutex::new(JobProgress {
                    events: job.events,
                    started: true,
                    report_json: finished.report_json,
                    outcome: Some(finished.outcome),
                    done: true,
                }),
                advanced: Condvar::new(),
            })
        } else {
            readmitted += 1;
            // Interrupted: deterministically re-run from the journaled
            // (spec, seed, budget). `submit_recovered` places it ahead
            // of all fresh traffic, FIFO in this (ascending id) order.
            let handle = state
                .engine
                .submit_recovered(build_request(&prepared, &job.submission));
            let record = Arc::new(JobRecord {
                id: job.id,
                spec: prepared.spec,
                seed: job.submission.seed,
                n: prepared.data.n(),
                m: prepared.data.m(),
                normalize: job.submission.normalize,
                universe: prepared.universe,
                norm: prepared.norm,
                cancel: handle.cancel_token(),
                sink: Arc::clone(handle.sink()),
                idempotency: job.submission.idempotency_key.clone(),
                state: Mutex::new(JobProgress::default()),
                advanced: Condvar::new(),
            });
            state.accepted_total.fetch_add(1, Ordering::Relaxed);
            let writer = journal.begin_job(
                job.id,
                job.segment + 1,
                &journaled_submission_json(&job.submission, &record.spec),
            );
            {
                let record = Arc::clone(&record);
                let _ = std::thread::Builder::new()
                    .name(format!("rank-collect-{}", job.id))
                    .spawn(move || collect(&record, handle, writer));
            }
            record
        };
        table.order.push(job.id);
        if let Some(key) = &record.idempotency {
            table.keys.insert(key.clone(), job.id);
        }
        table.records.insert(job.id, record);
    }
    drop(table);
    if recovered_done + readmitted > 0 || replay.dropped_lines > 0 {
        eprintln!(
            "rawt: journal: recovered {recovered_done} finished + {readmitted} interrupted job(s) ({} lines, {} dropped, {} unusable file(s))",
            replay.lines_read, replay.dropped_lines, replay.corrupt_files
        );
    }
    Ok(())
}

/// Drop the oldest *finished* records beyond the retention bound (live
/// jobs are never evicted — their handles and collectors are running).
/// An evicted job releases its idempotency key and journal segments, so
/// the on-disk recovery set stays as bounded as the in-memory table.
fn evict_done(table: &mut JobTable, retain_done: usize, journal: Option<&Journal>) {
    let done_ids: Vec<u64> = table
        .order
        .iter()
        .copied()
        .filter(|id| {
            table
                .records
                .get(id)
                .is_some_and(|r| r.state.lock().expect("job state poisoned").done)
        })
        .collect();
    if done_ids.len() <= retain_done {
        return;
    }
    let drop_count = done_ids.len() - retain_done;
    for id in &done_ids[..drop_count] {
        if let Some(record) = table.records.remove(id) {
            if let Some(key) = &record.idempotency {
                table.keys.remove(key);
            }
            if let Some(journal) = journal {
                journal.remove_job(*id);
            }
        }
        table.order.retain(|o| o != id);
    }
}

/// Drain one job's event stream into its replay log (and journal), then
/// collect and serialize the final report (closing the journal segment
/// with a terminal record).
fn collect(
    record: &Arc<JobRecord>,
    handle: rank_core::engine::JobHandle,
    mut writer: Option<JournalWriter>,
) {
    for event in handle.events() {
        let line = proto::event_json(&event);
        if let Some(writer) = writer.as_mut() {
            writer.append_event(&line);
        }
        let mut progress = record.state.lock().expect("job state poisoned");
        if matches!(event, Event::Started { .. }) {
            progress.started = true;
        }
        progress.events.push(line);
        drop(progress);
        record.advanced.notify_all();
    }
    // The stream has ended; the report is ready (or the kernel panicked).
    let report = catch_unwind(AssertUnwindSafe(|| handle.wait()));
    let mut progress = record.state.lock().expect("job state poisoned");
    match report {
        Ok(report) => {
            let report_json = proto::report_json(&report, &record.norm, &record.universe);
            let outcome = report.outcome.to_string();
            if let Some(writer) = writer.as_mut() {
                writer.finish(&outcome, Some(&report_json));
            }
            progress.outcome = Some(outcome);
            progress.report_json = Some(report_json);
        }
        Err(_) => {
            let line = "{\"event\":\"failed\",\"error\":\"internal kernel panic\"}".to_owned();
            if let Some(writer) = writer.as_mut() {
                writer.append_event(&line);
                writer.finish("failed", None);
            }
            progress.outcome = Some("failed".to_owned());
            progress.events.push(line);
        }
    }
    progress.done = true;
    drop(progress);
    record.advanced.notify_all();
}

/// `GET /v1/jobs/{id}`: status + best-so-far (trace from the sink, full
/// report once done).
fn job_status(stream: &mut TcpStream, record: &Arc<JobRecord>) {
    let trace: Vec<String> = record
        .sink
        .trace()
        .iter()
        .map(proto::trace_point_json)
        .collect();
    let best = match record.sink.best_so_far() {
        None => "null".to_owned(),
        Some((score, ranking)) => format!(
            "{{\"score\":{score},\"ranking\":{}}}",
            proto::ranking_json(&record.norm.denormalize(&ranking), &record.universe)
        ),
    };
    let progress = record.state.lock().expect("job state poisoned");
    let state_name = state_name(&progress);
    let report = progress
        .report_json
        .clone()
        .unwrap_or_else(|| "null".to_owned());
    let outcome = progress
        .outcome
        .clone()
        .map_or("null".to_owned(), |o| format!("\"{o}\""));
    drop(progress);
    let body = format!(
        concat!(
            "{{\"id\":{},\"spec\":\"{}\",\"seed\":{},\"n\":{},\"m\":{},",
            "\"normalization\":\"{}\",\"state\":\"{state}\",\"outcome\":{outcome},",
            "\"best\":{best},\"trace\":[{trace}],\"report\":{report}}}"
        ),
        record.id,
        crate::json::escape(&record.spec.to_string()),
        record.seed,
        record.n,
        record.m,
        record.normalize,
        state = state_name,
        outcome = outcome,
        best = best,
        trace = trace.join(","),
        report = report,
    );
    respond_json(stream, 200, &body);
}

/// Seconds of event silence before an `…/events` stream emits a
/// keepalive line, so quiet long-running jobs stay distinguishable from
/// dead connections under client read timeouts.
const HEARTBEAT_SECS: u32 = 15;

/// `GET /v1/jobs/{id}/events`: replay the log from the start, then follow
/// live until the job is done — chunked NDJSON, one event per line.
/// Quiet stretches are bridged with `{"event":"heartbeat"}` lines
/// (streamed only, never recorded in the replay log).
fn stream_events(stream: &mut TcpStream, record: &Arc<JobRecord>) {
    let mut writer = match ChunkedWriter::begin(stream, "application/x-ndjson") {
        Ok(writer) => writer,
        Err(_) => return,
    };
    let mut cursor = 0usize;
    loop {
        let (batch, done) = {
            let mut progress = record.state.lock().expect("job state poisoned");
            let mut quiet = 0u32;
            while progress.events.len() == cursor && !progress.done && quiet < HEARTBEAT_SECS {
                let (next, timeout) = record
                    .advanced
                    .wait_timeout(progress, Duration::from_secs(1))
                    .expect("job state poisoned");
                progress = next;
                if timeout.timed_out() {
                    quiet += 1;
                }
            }
            (progress.events[cursor..].to_vec(), progress.done)
        };
        if batch.is_empty() && !done {
            // A long-quiet solver (e.g. an unbudgeted exact proof): send
            // a keepalive so the subscriber's read timeout does not
            // mistake the silence for a dead server.
            if writer.write_line("{\"event\":\"heartbeat\"}").is_err() {
                return;
            }
            continue;
        }
        for line in &batch {
            if writer.write_line(line).is_err() {
                return; // subscriber went away; the job keeps running
            }
        }
        cursor += batch.len();
        if done {
            // Nothing is appended after `done` is set (the collector's
            // final line lands before it), so the batch was complete.
            let _ = writer.finish();
            return;
        }
    }
}
