//! The HTTP server: anytime aggregation jobs over the wire.
//!
//! Endpoint surface (DESIGN.md §10.1):
//!
//! | Method   | Path                   | Meaning                                        |
//! |----------|------------------------|------------------------------------------------|
//! | `POST`   | `/v1/jobs`             | submit a job (dataset + spec + seed + budget)  |
//! | `GET`    | `/v1/jobs/{id}/events` | stream NDJSON lifecycle events (chunked)       |
//! | `GET`    | `/v1/jobs/{id}`        | job status + best-so-far report incl. trace    |
//! | `DELETE` | `/v1/jobs/{id}`        | cooperative cancel                             |
//! | `GET`    | `/v1/algorithms`       | the algorithm registry                         |
//! | `GET`    | `/healthz`             | liveness + scheduler stats                     |
//!
//! Submissions flow through [`Engine::try_submit`]: when the scheduler's
//! admission queue is full the server sheds the request with **429** and
//! a `Retry-After` header — running jobs are never affected. Each accepted
//! job gets a collector thread that drains the
//! [`JobHandle`](rank_core::engine::JobHandle)'s event
//! stream into a replayable per-job log (so `GET …/events` works for
//! late and repeated subscribers, streaming live past the replay point)
//! and stores the final report. Connection handling is
//! thread-per-connection with `Connection: close` semantics — the
//! protocol is one exchange per connection, which keeps the server free
//! of any read-multiplexing machinery while still serving streams of
//! concurrent clients (the bench's service section measures exactly
//! that).

use crate::http::{self, ChunkedWriter, HttpError, Request};
use crate::proto::{self, JobSubmission};
use rank_core::engine::{
    AdmissionError, AggregationRequest, AlgoSpec, Engine, Event, SchedulerConfig,
};
use rank_core::guidance::{recommend, DatasetFeatures, Priority};
use rank_core::normalize::Normalized;
use rank_core::parse::parse_dataset_lines;
use rank_core::Universe;
use std::collections::HashMap;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How the server is shaped.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Concurrent-job cap (the scheduler's worker-pool width).
    pub max_jobs: usize,
    /// Admission-queue bound; beyond it, submissions get 429.
    pub queue_capacity: usize,
    /// Completed jobs retained for status queries before the oldest are
    /// evicted.
    pub retain_done: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_jobs: rank_core::parallel::num_threads().max(2),
            queue_capacity: rank_core::engine::DEFAULT_QUEUE_CAPACITY,
            retain_done: 256,
        }
    }
}

/// Everything one served job carries: identity, the pieces needed to
/// serialize its results back to input labels, a cancel token usable
/// while another thread streams its events, and the replayable event log.
struct JobRecord {
    id: u64,
    spec: AlgoSpec,
    seed: u64,
    n: usize,
    m: usize,
    normalize: rank_core::engine::Normalization,
    universe: Universe,
    norm: Normalized,
    cancel: rank_core::engine::CancelToken,
    sink: Arc<rank_core::engine::IncumbentSink>,
    state: Mutex<JobProgress>,
    advanced: Condvar,
}

#[derive(Default)]
struct JobProgress {
    /// Serialized NDJSON event lines, in emission order (the replay log).
    events: Vec<String>,
    /// Whether the job has started executing (left the admission queue).
    started: bool,
    /// The final report as a JSON object, once the job finished.
    report_json: Option<String>,
    /// The final outcome's display form, once finished.
    outcome: Option<String>,
    done: bool,
}

/// The three-way lifecycle label every status-bearing response uses.
fn state_name(progress: &JobProgress) -> &'static str {
    if progress.done {
        "done"
    } else if progress.started {
        "running"
    } else {
        "queued"
    }
}

impl JobRecord {
    fn queue_state(&self) -> &'static str {
        state_name(&self.state.lock().expect("job state poisoned"))
    }
}

struct ServerState {
    engine: Engine,
    jobs: Mutex<JobTable>,
    started: Instant,
    accepted_total: AtomicU64,
    shutting_down: AtomicBool,
    config: ServerConfig,
}

#[derive(Default)]
struct JobTable {
    next_id: u64,
    /// Insertion-ordered so eviction drops the oldest finished job.
    order: Vec<u64>,
    records: HashMap<u64, Arc<JobRecord>>,
}

/// The aggregation service over one TCP listener.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

/// A handle for stopping a running server from another thread.
#[derive(Clone)]
pub struct ShutdownHandle {
    state: Arc<ServerState>,
    addr: std::net::SocketAddr,
}

impl ShutdownHandle {
    /// Drain the server: stop accepting, cooperatively cancel every
    /// queued and running job, and make [`Server::serve`] return. Event
    /// streams end naturally (each cancelled job still emits `Finished`).
    pub fn shutdown(&self) {
        self.state.shutting_down.store(true, Ordering::SeqCst);
        self.state.engine.shutdown_drain();
        // Unblock the accept loop with a no-op connection to ourselves.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Bind to `addr` (use port 0 for an ephemeral port; read the actual
    /// one back with [`Server::local_addr`]).
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let engine = Engine::with_scheduler(
            rank_core::parallel::num_threads(),
            SchedulerConfig {
                max_concurrent: config.max_jobs,
                queue_capacity: config.queue_capacity,
            },
        );
        Ok(Server {
            listener,
            state: Arc::new(ServerState {
                engine,
                jobs: Mutex::new(JobTable::default()),
                started: Instant::now(),
                accepted_total: AtomicU64::new(0),
                shutting_down: AtomicBool::new(false),
                config,
            }),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop [`Server::serve`] from another thread (or a
    /// signal handler's polling loop).
    pub fn shutdown_handle(&self) -> std::io::Result<ShutdownHandle> {
        Ok(ShutdownHandle {
            state: Arc::clone(&self.state),
            addr: self.local_addr()?,
        })
    }

    /// Accept connections until [`ShutdownHandle::shutdown`] is called.
    /// Each connection is served on its own thread; a handler panic kills
    /// only that connection (and is answered with a 500 when possible).
    pub fn serve(self) -> std::io::Result<()> {
        for connection in self.listener.incoming() {
            if self.state.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            let stream = match connection {
                Ok(stream) => stream,
                Err(_) => continue,
            };
            let state = Arc::clone(&self.state);
            let _ = std::thread::Builder::new()
                .name("rank-conn".to_owned())
                .spawn(move || {
                    // Belt and braces: handlers map bad input to 4xx
                    // themselves; catch_unwind turns an unexpected panic
                    // into a dropped connection instead of a dead server.
                    let _ = catch_unwind(AssertUnwindSafe(|| handle_connection(stream, &state)));
                });
        }
        Ok(())
    }
}

fn handle_connection(mut stream: TcpStream, state: &Arc<ServerState>) {
    // A stuck or silent client may hold the socket, but not forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let mut reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(_) => return,
    };
    let request = match http::read_request(&mut reader) {
        Ok(request) => request,
        Err(HttpError::BodyTooLarge(_)) => {
            respond_error(&mut stream, 413, "request body too large", None);
            return;
        }
        Err(HttpError::Malformed(message)) => {
            respond_error(&mut stream, 400, &message, None);
            return;
        }
        Err(HttpError::Io(_)) => return,
    };
    route(&mut stream, &request, state);
}

fn respond_error(stream: &mut TcpStream, status: u16, message: &str, suggestion: Option<&str>) {
    let body = proto::error_json(message, suggestion);
    let _ = http::write_response(stream, status, "application/json", &[], body.as_bytes());
}

fn respond_json(stream: &mut TcpStream, status: u16, body: &str) {
    let _ = http::write_response(stream, status, "application/json", &[], body.as_bytes());
}

fn route(stream: &mut TcpStream, request: &Request, state: &Arc<ServerState>) {
    let path = request.path.trim_end_matches('/');
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => healthz(stream, state),
        ("GET", "/v1/algorithms") => respond_json(stream, 200, &proto::registry_json()),
        ("POST", "/v1/jobs") => submit_job(stream, request, state),
        (method, path) if path.starts_with("/v1/jobs/") => {
            let rest = &path["/v1/jobs/".len()..];
            let (id_text, tail) = match rest.split_once('/') {
                None => (rest, None),
                Some((id, tail)) => (id, Some(tail)),
            };
            let Ok(id) = id_text.parse::<u64>() else {
                respond_error(stream, 400, &format!("bad job id {id_text:?}"), None);
                return;
            };
            let record = state
                .jobs
                .lock()
                .expect("job table poisoned")
                .records
                .get(&id)
                .cloned();
            let Some(record) = record else {
                respond_error(stream, 404, &format!("no such job {id}"), None);
                return;
            };
            match (method, tail) {
                ("GET", None) => job_status(stream, &record),
                ("DELETE", None) => {
                    record.cancel.cancel();
                    respond_json(
                        stream,
                        202,
                        &format!(
                            "{{\"id\":{id},\"cancelling\":true,\"state\":\"{}\"}}",
                            record.queue_state()
                        ),
                    );
                }
                ("GET", Some("events")) => stream_events(stream, &record),
                _ => respond_error(stream, 405, "unsupported method for this path", None),
            }
        }
        ("POST", _) | ("GET", _) | ("DELETE", _) => {
            respond_error(stream, 404, &format!("no such endpoint {path:?}"), None)
        }
        (method, _) => respond_error(stream, 405, &format!("unsupported method {method}"), None),
    }
}

fn healthz(stream: &mut TcpStream, state: &Arc<ServerState>) {
    let stats = state.engine.scheduler_stats();
    let body = format!(
        concat!(
            "{{\"status\":\"ok\",\"uptime_secs\":{:.1},\"jobs_accepted\":{},",
            "\"jobs_queued\":{},\"jobs_running\":{},",
            "\"max_jobs\":{},\"queue_capacity\":{}}}"
        ),
        state.started.elapsed().as_secs_f64(),
        state.accepted_total.load(Ordering::Relaxed),
        stats.queued,
        stats.running,
        stats.max_concurrent,
        stats.queue_capacity,
    );
    respond_json(stream, 200, &body);
}

/// `POST /v1/jobs`: parse, validate, normalize, admit, record.
fn submit_job(stream: &mut TcpStream, request: &Request, state: &Arc<ServerState>) {
    if state.shutting_down.load(Ordering::SeqCst) {
        respond_error(stream, 503, "server is draining", None);
        return;
    }
    let Ok(body) = std::str::from_utf8(&request.body) else {
        respond_error(stream, 400, "request body is not UTF-8", None);
        return;
    };
    let submission = match JobSubmission::from_json(body) {
        Ok(submission) => submission,
        Err(e) => {
            respond_error(stream, 400, &e.message, e.suggestion.as_deref());
            return;
        }
    };
    // Dataset text → raw rankings → normalized dense dataset. Parse and
    // structural errors are the client's: typed 400s, never a panic.
    let mut universe = Universe::new();
    let raw = match parse_dataset_lines(&submission.dataset, &mut universe) {
        Ok(raw) => raw,
        Err(e) => {
            respond_error(stream, 400, &format!("dataset: {e}"), None);
            return;
        }
    };
    if raw.is_empty() {
        respond_error(stream, 400, "dataset contains no rankings", None);
        return;
    }
    let Some(norm) = submission.normalize.apply(&raw) else {
        respond_error(stream, 400, "normalization produced an empty dataset", None);
        return;
    };
    // One copy of the dense dataset, shared by the request (Arc) and
    // readable for the n/m/guidance checks below.
    let data = std::sync::Arc::new(norm.dataset.clone());
    let spec = match &submission.algo {
        Some(name) => match AlgoSpec::parse(name) {
            Ok(spec) => spec,
            Err(e) => {
                respond_error(stream, 400, &e.to_string(), e.suggestion.as_deref());
                return;
            }
        },
        None => {
            let rec = recommend(&DatasetFeatures::measure(&data), Priority::Balanced);
            AlgoSpec::parse(rec.algorithm).expect("guidance names are registered")
        }
    };
    if let Some(cap) = spec.max_n() {
        if data.n() > cap {
            respond_error(
                stream,
                400,
                &format!(
                    "{spec} handles at most n = {cap} elements; this dataset has {}",
                    data.n()
                ),
                None,
            );
            return;
        }
    }
    let mut agg_request =
        AggregationRequest::new(Arc::clone(&data), spec.clone()).with_seed(submission.seed);
    if let Some(budget) = submission.budget {
        agg_request = agg_request.with_budget(budget);
    }
    let handle = match state.engine.try_submit(agg_request) {
        Ok(handle) => handle,
        Err(AdmissionError::QueueFull {
            queued,
            capacity,
            retry_after,
        }) => {
            let secs = retry_after.as_secs().max(1);
            let body = format!(
                "{{\"error\":\"admission queue full ({queued}/{capacity})\",\"retry_after_secs\":{secs}}}"
            );
            let _ = http::write_response(
                stream,
                429,
                "application/json",
                &[("Retry-After", secs.to_string())],
                body.as_bytes(),
            );
            return;
        }
        Err(AdmissionError::ShuttingDown) => {
            respond_error(stream, 503, "server is draining", None);
            return;
        }
    };
    let record = {
        let mut table = state.jobs.lock().expect("job table poisoned");
        let id = table.next_id;
        table.next_id += 1;
        let record = Arc::new(JobRecord {
            id,
            spec,
            seed: submission.seed,
            n: data.n(),
            m: data.m(),
            normalize: submission.normalize,
            universe,
            norm,
            cancel: handle.cancel_token(),
            sink: Arc::clone(handle.sink()),
            state: Mutex::new(JobProgress::default()),
            advanced: Condvar::new(),
        });
        table.order.push(id);
        table.records.insert(id, Arc::clone(&record));
        evict_done(&mut table, state.config.retain_done);
        record
    };
    state.accepted_total.fetch_add(1, Ordering::Relaxed);
    // The collector owns the handle: it drains the event stream into the
    // replay log and stores the final report. It is the only consumer of
    // the raw event channel; HTTP subscribers read the log.
    {
        let record = Arc::clone(&record);
        let _ = std::thread::Builder::new()
            .name(format!("rank-collect-{}", record.id))
            .spawn(move || collect(&record, handle));
    }
    let body = format!(
        concat!(
            "{{\"id\":{},\"spec\":\"{}\",\"seed\":{},\"n\":{},\"m\":{},",
            "\"events\":\"/v1/jobs/{}/events\",\"status\":\"/v1/jobs/{}\"}}"
        ),
        record.id,
        crate::json::escape(&record.spec.to_string()),
        record.seed,
        record.n,
        record.m,
        record.id,
        record.id,
    );
    respond_json(stream, 202, &body);
}

/// Drop the oldest *finished* records beyond the retention bound (live
/// jobs are never evicted — their handles and collectors are running).
fn evict_done(table: &mut JobTable, retain_done: usize) {
    let done_ids: Vec<u64> = table
        .order
        .iter()
        .copied()
        .filter(|id| {
            table
                .records
                .get(id)
                .is_some_and(|r| r.state.lock().expect("job state poisoned").done)
        })
        .collect();
    if done_ids.len() <= retain_done {
        return;
    }
    let drop_count = done_ids.len() - retain_done;
    for id in &done_ids[..drop_count] {
        table.records.remove(id);
        table.order.retain(|o| o != id);
    }
}

/// Drain one job's event stream into its replay log, then collect and
/// serialize the final report.
fn collect(record: &Arc<JobRecord>, handle: rank_core::engine::JobHandle) {
    for event in handle.events() {
        let line = proto::event_json(&event);
        let mut progress = record.state.lock().expect("job state poisoned");
        if matches!(event, Event::Started { .. }) {
            progress.started = true;
        }
        progress.events.push(line);
        drop(progress);
        record.advanced.notify_all();
    }
    // The stream has ended; the report is ready (or the kernel panicked).
    let report = catch_unwind(AssertUnwindSafe(|| handle.wait()));
    let mut progress = record.state.lock().expect("job state poisoned");
    match report {
        Ok(report) => {
            progress.outcome = Some(report.outcome.to_string());
            progress.report_json =
                Some(proto::report_json(&report, &record.norm, &record.universe));
        }
        Err(_) => {
            progress.outcome = Some("failed".to_owned());
            progress
                .events
                .push("{\"event\":\"failed\",\"error\":\"internal kernel panic\"}".to_owned());
        }
    }
    progress.done = true;
    drop(progress);
    record.advanced.notify_all();
}

/// `GET /v1/jobs/{id}`: status + best-so-far (trace from the sink, full
/// report once done).
fn job_status(stream: &mut TcpStream, record: &Arc<JobRecord>) {
    let trace: Vec<String> = record
        .sink
        .trace()
        .iter()
        .map(proto::trace_point_json)
        .collect();
    let best = match record.sink.best_so_far() {
        None => "null".to_owned(),
        Some((score, ranking)) => format!(
            "{{\"score\":{score},\"ranking\":{}}}",
            proto::ranking_json(&record.norm.denormalize(&ranking), &record.universe)
        ),
    };
    let progress = record.state.lock().expect("job state poisoned");
    let state_name = state_name(&progress);
    let report = progress
        .report_json
        .clone()
        .unwrap_or_else(|| "null".to_owned());
    let outcome = progress
        .outcome
        .clone()
        .map_or("null".to_owned(), |o| format!("\"{o}\""));
    drop(progress);
    let body = format!(
        concat!(
            "{{\"id\":{},\"spec\":\"{}\",\"seed\":{},\"n\":{},\"m\":{},",
            "\"normalization\":\"{}\",\"state\":\"{state}\",\"outcome\":{outcome},",
            "\"best\":{best},\"trace\":[{trace}],\"report\":{report}}}"
        ),
        record.id,
        crate::json::escape(&record.spec.to_string()),
        record.seed,
        record.n,
        record.m,
        record.normalize,
        state = state_name,
        outcome = outcome,
        best = best,
        trace = trace.join(","),
        report = report,
    );
    respond_json(stream, 200, &body);
}

/// Seconds of event silence before an `…/events` stream emits a
/// keepalive line, so quiet long-running jobs stay distinguishable from
/// dead connections under client read timeouts.
const HEARTBEAT_SECS: u32 = 15;

/// `GET /v1/jobs/{id}/events`: replay the log from the start, then follow
/// live until the job is done — chunked NDJSON, one event per line.
/// Quiet stretches are bridged with `{"event":"heartbeat"}` lines
/// (streamed only, never recorded in the replay log).
fn stream_events(stream: &mut TcpStream, record: &Arc<JobRecord>) {
    let mut writer = match ChunkedWriter::begin(stream, "application/x-ndjson") {
        Ok(writer) => writer,
        Err(_) => return,
    };
    let mut cursor = 0usize;
    loop {
        let (batch, done) = {
            let mut progress = record.state.lock().expect("job state poisoned");
            let mut quiet = 0u32;
            while progress.events.len() == cursor && !progress.done && quiet < HEARTBEAT_SECS {
                let (next, timeout) = record
                    .advanced
                    .wait_timeout(progress, Duration::from_secs(1))
                    .expect("job state poisoned");
                progress = next;
                if timeout.timed_out() {
                    quiet += 1;
                }
            }
            (progress.events[cursor..].to_vec(), progress.done)
        };
        if batch.is_empty() && !done {
            // A long-quiet solver (e.g. an unbudgeted exact proof): send
            // a keepalive so the subscriber's read timeout does not
            // mistake the silence for a dead server.
            if writer.write_line("{\"event\":\"heartbeat\"}").is_err() {
                return;
            }
            continue;
        }
        for line in &batch {
            if writer.write_line(line).is_err() {
                return; // subscriber went away; the job keeps running
            }
        }
        cursor += batch.len();
        if done {
            // Nothing is appended after `done` is set (the collector's
            // final line lands before it), so the batch was complete.
            let _ = writer.finish();
            return;
        }
    }
}
