//! The HTTP server: anytime aggregation jobs over the wire, plus live
//! dataset sessions (DESIGN.md §13).
//!
//! Endpoint surface (DESIGN.md §10.1, §13.4):
//!
//! | Method   | Path                   | Meaning                                        |
//! |----------|------------------------|------------------------------------------------|
//! | `POST`   | `/v1/jobs`             | submit a job (dataset or dataset_id + spec)    |
//! | `GET`    | `/v1/jobs/{id}/events` | stream NDJSON lifecycle events (chunked)       |
//! | `GET`    | `/v1/jobs/{id}`        | job status + best-so-far report incl. trace    |
//! | `DELETE` | `/v1/jobs/{id}`        | cooperative cancel (ends a live job's follow)  |
//! | `PUT`    | `/v1/datasets/{id}`    | create a live dataset (create-only, 409 dupes) |
//! | `PATCH`  | `/v1/datasets/{id}`    | apply add/remove/replace ops, one version each |
//! | `GET`    | `/v1/datasets/{id}`    | current text + version + n + m                 |
//! | `DELETE` | `/v1/datasets/{id}`    | drop the dataset (live jobs on it finish)      |
//! | `GET`    | `/v1/algorithms`       | the algorithm registry                         |
//! | `GET`    | `/healthz`             | liveness + scheduler stats                     |
//!
//! Submissions flow through [`Engine::try_submit`]: when the scheduler's
//! admission queue is full the server sheds the request with **429** and
//! a `Retry-After` header — running jobs are never affected. Each accepted
//! job gets a collector thread that drains the
//! [`JobHandle`](rank_core::engine::JobHandle)'s event
//! stream into a replayable per-job log (so `GET …/events` works for
//! late and repeated subscribers, streaming live past the replay point)
//! and stores the final report.
//!
//! A job submitted with `"dataset_id"` aggregates the live dataset's
//! current snapshot, warm-started from the dataset's last recorded
//! consensus; its own consensus is recorded back as the next warm hint.
//! With `"follow": true` the job never finishes on its own: every dataset
//! version bump re-solves (warm-started), re-emitting incumbents tagged
//! `"dataset_version"`, until the job is cancelled or the dataset
//! deleted.
//!
//! Connection handling is thread-per-connection with HTTP/1.1
//! keep-alive: sized exchanges loop on one connection (a 30 s read
//! timeout bounds idle ones); event streams are their connection's last
//! response (`Connection: close`).

use crate::fault::FaultPlan;
use crate::http::{self, ChunkedWriter, HttpError, Request};
use crate::journal::{FsyncPolicy, Journal, JournalWriter, RecoveredDataset};
use crate::json::Json;
use crate::proto::{self, BatchSubmission, JobSubmission, SubmissionError};
use rank_core::engine::{
    AdmissionError, AggregationRequest, AlgoSpec, CancelToken, Engine, Event, IncumbentSink,
    SchedulerConfig,
};
use rank_core::guidance::{recommend, DatasetFeatures, Priority};
use rank_core::normalize::Normalized;
use rank_core::parse::{parse_dataset_lines, parse_ranking_labeled};
use rank_core::session::DatasetSession;
use rank_core::telemetry::{Counter, Gauge, Histogram, MetricsRegistry};
use rank_core::{CostMatrix, Dataset, Element, Universe};
use std::collections::HashMap;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How the server is shaped.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent-job cap (the scheduler's worker-pool width).
    pub max_jobs: usize,
    /// Admission-queue bound; beyond it, submissions get 429.
    pub queue_capacity: usize,
    /// Completed jobs retained for status queries before the oldest are
    /// evicted (their journal segments are deleted with them).
    pub retain_done: usize,
    /// Durable job journal directory (DESIGN.md §12). `None` keeps the
    /// pre-durability in-memory behavior; `Some(dir)` journals every job
    /// and replays the directory on [`Server::bind`] — finished jobs
    /// become servable again, interrupted jobs are re-admitted and re-run
    /// to bit-identical reports.
    pub journal_dir: Option<PathBuf>,
    /// When the journal fsyncs (only meaningful with `journal_dir`).
    pub journal_fsync: FsyncPolicy,
    /// Fault-injection hooks (testing; all off by default).
    pub faults: Arc<FaultPlan>,
    /// Bearer token every request except `GET /healthz` must present
    /// (`Authorization: Bearer <token>`); `None` serves unauthenticated.
    /// The token lives only in this config — it is never journaled, so a
    /// journal directory can be shipped around without leaking it.
    pub token: Option<String>,
    /// Seconds of event silence before an NDJSON `…/events` stream emits
    /// a `{"event":"heartbeat"}` keepalive line, so quiet long-running
    /// jobs stay distinguishable from dead connections under client read
    /// timeouts. Tests and demos lower it to avoid wall-clock waits.
    pub heartbeat_secs: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_jobs: rank_core::parallel::num_threads().max(2),
            queue_capacity: rank_core::engine::DEFAULT_QUEUE_CAPACITY,
            retain_done: 256,
            journal_dir: None,
            journal_fsync: FsyncPolicy::default(),
            faults: Arc::new(FaultPlan::none()),
            token: None,
            heartbeat_secs: 15,
        }
    }
}

/// Server-tier metric handles, resolved once at [`Server::bind`] against
/// the engine's registry (DESIGN.md §15) — request paths pay relaxed
/// atomic ops, not a registry lock.
struct ServerMetrics {
    /// Jobs accepted into the table: fresh submits, batch sub-jobs, and
    /// journal re-admissions (`/healthz` reads this back as
    /// `jobs_accepted`, so healthz and /metrics cannot drift).
    jobs_accepted: Arc<Counter>,
    /// Live NDJSON event-stream subscribers (per-job + batch streams).
    stream_subscribers: Arc<Gauge>,
    /// Delta-patch latency of one accepted dataset edit op.
    session_patch_seconds: Arc<Histogram>,
    /// Full session rebuild latency (dataset PUT and journal recovery).
    session_rebuild_seconds: Arc<Histogram>,
}

impl ServerMetrics {
    fn resolve(registry: &MetricsRegistry) -> ServerMetrics {
        ServerMetrics {
            jobs_accepted: registry.counter(
                "rawt_jobs_accepted_total",
                "Jobs accepted into the job table (submits, batch sub-jobs, recoveries).",
                &[],
            ),
            stream_subscribers: registry.gauge(
                "rawt_stream_subscribers",
                "Currently connected NDJSON event-stream subscribers.",
                &[],
            ),
            session_patch_seconds: registry.histogram(
                "rawt_session_patch_seconds",
                "Delta-patch latency of one accepted live-dataset edit op.",
                &[],
            ),
            session_rebuild_seconds: registry.histogram(
                "rawt_session_rebuild_seconds",
                "Full dataset-session rebuild latency (PUT and recovery).",
                &[],
            ),
        }
    }
}

/// While alive, holds one unit on a gauge; dropping releases it on every
/// return path (stream handlers have several).
struct GaugeGuard(Arc<Gauge>);

impl GaugeGuard {
    fn enter(gauge: &Arc<Gauge>) -> GaugeGuard {
        gauge.inc();
        GaugeGuard(Arc::clone(gauge))
    }
}

impl Drop for GaugeGuard {
    fn drop(&mut self) {
        self.0.dec();
    }
}

/// Everything one served job carries: identity, the pieces needed to
/// serialize its results back to input labels, a cancel token usable
/// while another thread streams its events, and the replayable event log.
struct JobRecord {
    id: u64,
    spec: AlgoSpec,
    seed: u64,
    normalize: rank_core::engine::Normalization,
    /// The submission's idempotency key, so eviction can release it.
    idempotency: Option<String>,
    /// The live dataset this job aggregates, when submitted by
    /// `dataset_id` — the collector records the consensus back into it
    /// as the next warm hint.
    dataset: Option<Arc<LiveDataset>>,
    /// Set for `"follow": true` jobs: flipping it ends the follow loop
    /// after the in-flight round (DELETE flips it and pokes the
    /// dataset's condvar).
    follow_stop: Option<AtomicBool>,
    /// The parts that change per follow round (for ordinary jobs they
    /// are written once at submission): dataset shape, denormalization
    /// context, and the current round's sink + cancel token.
    live: Mutex<LiveRefs>,
    state: Mutex<JobProgress>,
    advanced: Condvar,
}

/// The round-scoped half of a [`JobRecord`] (see its `live` field).
struct LiveRefs {
    n: usize,
    m: usize,
    universe: Universe,
    norm: Normalized,
    sink: Arc<IncumbentSink>,
    cancel: CancelToken,
}

/// One live dataset (`PUT /v1/datasets/{id}`): a [`DatasetSession`]
/// (delta-patched matrix, version counter, warm hint) plus the label
/// universe it was parsed against and its journal writer. `changed` is
/// notified on every edit and on deletion — follow loops sleep on it.
struct LiveDataset {
    id: String,
    state: Mutex<DatasetState>,
    changed: Condvar,
}

struct DatasetState {
    universe: Universe,
    session: DatasetSession,
    writer: Option<JournalWriter>,
    /// Set by `DELETE /v1/datasets/{id}`: the dataset is gone from the
    /// table; follow loops still holding an `Arc` see this and finish.
    deleted: bool,
}

impl LiveDataset {
    fn lock(&self) -> std::sync::MutexGuard<'_, DatasetState> {
        self.state.lock().expect("dataset state poisoned")
    }
}

/// The input rankings rendered back to the repo's dataset text format,
/// one `[{A},{B,C}]` line per ranking.
fn dataset_text(session: &DatasetSession, universe: &Universe) -> String {
    let lines: Vec<String> = session
        .rankings()
        .iter()
        .map(|r| r.display_with(universe))
        .collect();
    lines.join("\n")
}

/// The identity [`Normalized`] for a dataset-id job: live sessions keep
/// their rankings dense and unified, so dense id `i` *is* universe
/// element `i` — no remapping ever happens.
fn identity_norm(data: &Dataset) -> Normalized {
    Normalized {
        dataset: data.clone(),
        mapping: (0..data.n() as u32).map(Element).collect(),
    }
}

#[derive(Default)]
struct JobProgress {
    /// Serialized NDJSON event lines, in emission order (the replay log).
    events: Vec<String>,
    /// Whether the job has started executing (left the admission queue).
    started: bool,
    /// The final report as a JSON object, once the job finished.
    report_json: Option<String>,
    /// The final outcome's display form, once finished.
    outcome: Option<String>,
    done: bool,
}

/// The three-way lifecycle label every status-bearing response uses.
fn state_name(progress: &JobProgress) -> &'static str {
    if progress.done {
        "done"
    } else if progress.started {
        "running"
    } else {
        "queued"
    }
}

impl JobRecord {
    fn queue_state(&self) -> &'static str {
        state_name(&self.state.lock().expect("job state poisoned"))
    }

    fn live(&self) -> std::sync::MutexGuard<'_, LiveRefs> {
        self.live.lock().expect("job live refs poisoned")
    }
}

/// One accepted `POST /v1/batches`: the panel's sub-jobs in spec order.
/// The batch holds its own `Arc`s to the records, so batch status and the
/// merged event stream keep working even after `retain_done` eviction
/// drops a sub-job from the job table.
struct BatchRecord {
    id: u64,
    idempotency: Option<String>,
    seed: u64,
    jobs: Vec<Arc<JobRecord>>,
}

#[derive(Default)]
struct BatchTable {
    next_id: u64,
    records: HashMap<u64, Arc<BatchRecord>>,
    /// Batch idempotency key → batch id (separate key space from jobs).
    keys: HashMap<String, u64>,
}

struct ServerState {
    engine: Engine,
    jobs: Mutex<JobTable>,
    batches: Mutex<BatchTable>,
    /// Live datasets by id (`PUT /v1/datasets/{id}` creates, `DELETE`
    /// removes).
    datasets: Mutex<HashMap<String, Arc<LiveDataset>>>,
    started: Instant,
    metrics: ServerMetrics,
    shutting_down: AtomicBool,
    /// The durable journal, when `--journal` is configured.
    journal: Option<Journal>,
    /// Set by the journal on a write/fsync failure: the server keeps
    /// running in-memory and `/healthz` reports `"degraded"`.
    degraded: Arc<AtomicBool>,
    config: ServerConfig,
}

#[derive(Default)]
struct JobTable {
    next_id: u64,
    /// Insertion-ordered so eviction drops the oldest finished job.
    order: Vec<u64>,
    records: HashMap<u64, Arc<JobRecord>>,
    /// Idempotency key → job id (rebuilt from the journal on recovery,
    /// so a retried submit after a crash still finds its job).
    keys: HashMap<String, u64>,
}

/// The aggregation service over one TCP listener.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

/// A handle for stopping a running server from another thread.
#[derive(Clone)]
pub struct ShutdownHandle {
    state: Arc<ServerState>,
    addr: std::net::SocketAddr,
}

impl ShutdownHandle {
    /// Drain the server: stop accepting, cooperatively cancel every
    /// queued and running job, and make [`Server::serve`] return. Event
    /// streams end naturally (each cancelled job still emits `Finished`).
    pub fn shutdown(&self) {
        self.state.shutting_down.store(true, Ordering::SeqCst);
        self.state.engine.shutdown_drain();
        // Unblock the accept loop with a no-op connection to ourselves.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Bind to `addr` (use port 0 for an ephemeral port; read the actual
    /// one back with [`Server::local_addr`]).
    ///
    /// With [`ServerConfig::journal_dir`] set, the directory is replayed
    /// *before* this returns: journaled finished jobs become servable
    /// again and interrupted jobs are re-admitted through the scheduler's
    /// recovered class (ascending id order — deterministic), each
    /// re-recording into a fresh journal segment. The listener is bound
    /// first, but no connection is accepted until [`Server::serve`], so a
    /// returned `Server` is fully recovered and ready.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let engine = Engine::with_scheduler(
            rank_core::parallel::num_threads(),
            SchedulerConfig {
                max_concurrent: config.max_jobs,
                queue_capacity: config.queue_capacity,
            },
        );
        let degraded = Arc::new(AtomicBool::new(false));
        let journal = match &config.journal_dir {
            None => None,
            Some(dir) => Some(
                Journal::open(dir, config.journal_fsync)?
                    .with_faults(Arc::clone(&config.faults))
                    .with_degraded_flag(Arc::clone(&degraded))
                    .with_metrics(engine.metrics()),
            ),
        };
        let metrics = ServerMetrics::resolve(engine.metrics());
        let state = Arc::new(ServerState {
            engine,
            jobs: Mutex::new(JobTable::default()),
            batches: Mutex::new(BatchTable::default()),
            datasets: Mutex::new(HashMap::new()),
            started: Instant::now(),
            metrics,
            shutting_down: AtomicBool::new(false),
            journal,
            degraded,
            config,
        });
        if state.journal.is_some() {
            recover(&state)?;
        }
        Ok(Server { listener, state })
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The engine's metrics registry — the same one `GET /metrics`
    /// renders, shared so a host process (the CLI's signal paths) can
    /// report telemetry after the server moves into its serve thread.
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(self.state.engine.metrics())
    }

    /// A handle that can stop [`Server::serve`] from another thread (or a
    /// signal handler's polling loop).
    pub fn shutdown_handle(&self) -> std::io::Result<ShutdownHandle> {
        Ok(ShutdownHandle {
            state: Arc::clone(&self.state),
            addr: self.local_addr()?,
        })
    }

    /// Accept connections until [`ShutdownHandle::shutdown`] is called.
    /// Each connection is served on its own thread; a handler panic kills
    /// only that connection (and is answered with a 500 when possible).
    pub fn serve(self) -> std::io::Result<()> {
        for connection in self.listener.incoming() {
            if self.state.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            let stream = match connection {
                Ok(stream) => stream,
                Err(_) => continue,
            };
            if self.state.config.faults.should_drop_accept() {
                // Fault hook: simulate flaky networking by closing the
                // connection unanswered (drives the client's retry and
                // reconnect paths in the recovery tests).
                drop(stream);
                continue;
            }
            let state = Arc::clone(&self.state);
            let _ = std::thread::Builder::new()
                .name("rank-conn".to_owned())
                .spawn(move || {
                    // Belt and braces: handlers map bad input to 4xx
                    // themselves; catch_unwind turns an unexpected panic
                    // into a dropped connection instead of a dead server.
                    let _ = catch_unwind(AssertUnwindSafe(|| handle_connection(stream, &state)));
                });
        }
        Ok(())
    }
}

/// What a handled request means for the connection: loop for another
/// request, or close (event streams end their connection by design).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Served {
    KeepAlive,
    Close,
}

fn handle_connection(mut stream: TcpStream, state: &Arc<ServerState>) {
    // A stuck or silent client may hold the socket, but not forever —
    // the same timeout also bounds how long an idle keep-alive
    // connection occupies its thread.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    // Responses and streamed events are small writes on a long-lived
    // socket: without TCP_NODELAY, Nagle holds the second write of a
    // response until the client's delayed ACK (~40 ms per keep-alive
    // round trip on loopback).
    let _ = stream.set_nodelay(true);
    let mut reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(_) => return,
    };
    loop {
        let request = match http::read_request(&mut reader) {
            Ok(request) => request,
            Err(HttpError::BodyTooLarge(_)) => {
                respond_error(&mut stream, 413, "request body too large", None, false);
                return;
            }
            Err(HttpError::Malformed(message)) => {
                // Framing is no longer trustworthy: answer and close.
                respond_error(&mut stream, 400, &message, None, false);
                return;
            }
            // A clean EOF between requests is how keep-alive ends.
            Err(HttpError::Io(_)) => return,
        };
        let keep = request.keep_alive();
        let endpoint = endpoint_label(&request.method, request.path.trim_end_matches('/'));
        let handle_start = Instant::now();
        let served = route(&mut stream, &request, state, keep);
        observe_request(state, endpoint, handle_start.elapsed());
        match served {
            Served::KeepAlive if keep => continue,
            _ => return,
        }
    }
}

/// The stable per-endpoint label for the HTTP request metrics — path
/// parameters collapse (`/v1/jobs/17` and `/v1/jobs/99` are both
/// `job_status`) so the label set stays bounded.
fn endpoint_label(method: &str, path: &str) -> &'static str {
    match (method, path) {
        ("GET", "/healthz") => "healthz",
        ("GET", "/metrics") => "metrics",
        ("GET", "/v1/algorithms") => "algorithms",
        ("POST", "/v1/jobs") => "job_submit",
        ("POST", "/v1/batches") => "batch_submit",
        (method, path) if path.starts_with("/v1/batches/") => match (method, path) {
            ("GET", p) if p.ends_with("/events") => "batch_events",
            ("GET", _) => "batch_status",
            _ => "other",
        },
        (method, path) if path.starts_with("/v1/datasets/") => match method {
            "PUT" => "dataset_create",
            "PATCH" => "dataset_edit",
            "GET" => "dataset_get",
            "DELETE" => "dataset_delete",
            _ => "other",
        },
        (method, path) if path.starts_with("/v1/jobs/") => match (method, path) {
            ("GET", p) if p.ends_with("/events") => "job_events",
            ("GET", _) => "job_status",
            ("DELETE", _) => "job_cancel",
            _ => "other",
        },
        _ => "other",
    }
}

/// Count one handled request and its wall time under its endpoint label.
/// Event streams record at stream end, so their latency is the stream's
/// lifetime — that is what the connection actually occupied.
fn observe_request(state: &ServerState, endpoint: &str, elapsed: Duration) {
    let registry = state.engine.metrics();
    let labels = [("endpoint", endpoint)];
    registry
        .counter(
            "rawt_http_requests_total",
            "HTTP requests handled, by endpoint.",
            &labels,
        )
        .inc();
    registry
        .histogram(
            "rawt_http_request_seconds",
            "HTTP request handling latency, by endpoint.",
            &labels,
        )
        .record(elapsed);
}

fn respond_error(
    stream: &mut TcpStream,
    status: u16,
    message: &str,
    suggestion: Option<&str>,
    keep: bool,
) -> Served {
    let body = proto::error_json(message, suggestion);
    let _ = http::write_response(
        stream,
        status,
        "application/json",
        &[],
        body.as_bytes(),
        keep,
    );
    Served::KeepAlive
}

fn respond_json(stream: &mut TcpStream, status: u16, body: &str, keep: bool) -> Served {
    let _ = http::write_response(
        stream,
        status,
        "application/json",
        &[],
        body.as_bytes(),
        keep,
    );
    Served::KeepAlive
}

/// Whether `request` presents the configured bearer token. `GET /healthz`
/// and `GET /metrics` are exempt so load balancers, the router's liveness
/// probes, and metric scrapers work without credentials; everything else
/// on an authenticated server gets 401 on a missing or mismatched token.
fn authorized(request: &Request, state: &ServerState, path: &str) -> bool {
    let Some(token) = &state.config.token else {
        return true;
    };
    if path == "/healthz" || path == "/metrics" {
        return true;
    }
    request
        .header("authorization")
        .and_then(|v| v.strip_prefix("Bearer "))
        .is_some_and(|presented| presented.trim() == token)
}

fn route(
    stream: &mut TcpStream,
    request: &Request,
    state: &Arc<ServerState>,
    keep: bool,
) -> Served {
    let path = request.path.trim_end_matches('/');
    if !authorized(request, state, path) {
        return respond_error(
            stream,
            401,
            "missing or invalid bearer token (send Authorization: Bearer <token>)",
            None,
            keep,
        );
    }
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => healthz(stream, state, keep),
        ("GET", "/metrics") => metrics_exposition(stream, state, keep),
        ("GET", "/v1/algorithms") => respond_json(stream, 200, &proto::registry_json(), keep),
        ("POST", "/v1/jobs") => submit_job(stream, request, state, keep),
        ("POST", "/v1/batches") => submit_batch(stream, request, state, keep),
        (_, "/healthz" | "/metrics" | "/v1/algorithms" | "/v1/jobs" | "/v1/batches") => {
            respond_error(stream, 405, "unsupported method for this path", None, keep)
        }
        (method, path) if path.starts_with("/v1/batches/") => {
            let rest = &path["/v1/batches/".len()..];
            let (id_text, tail) = match rest.split_once('/') {
                None => (rest, None),
                Some((id, tail)) => (id, Some(tail)),
            };
            let Ok(id) = id_text.parse::<u64>() else {
                return respond_error(
                    stream,
                    400,
                    &format!("bad batch id {id_text:?}"),
                    None,
                    keep,
                );
            };
            let batch = state
                .batches
                .lock()
                .expect("batch table poisoned")
                .records
                .get(&id)
                .cloned();
            let Some(batch) = batch else {
                return respond_error(stream, 404, &format!("no such batch {id}"), None, keep);
            };
            match (method, tail) {
                ("GET", None) => batch_status(stream, &batch, keep),
                ("GET", Some("events")) => stream_batch_events(stream, state, &batch),
                _ => respond_error(stream, 405, "unsupported method for this path", None, keep),
            }
        }
        (method, path) if path.starts_with("/v1/datasets/") => {
            let id = &path["/v1/datasets/".len()..];
            if !proto::valid_dataset_id(id) {
                return respond_error(
                    stream,
                    400,
                    &format!("bad dataset id {id:?} (1-64 characters from [A-Za-z0-9_-])"),
                    None,
                    keep,
                );
            }
            match method {
                "PUT" => create_dataset(stream, request, state, id, keep),
                "PATCH" => edit_dataset(stream, request, state, id, keep),
                "GET" => get_dataset(stream, state, id, keep),
                "DELETE" => delete_dataset(stream, state, id, keep),
                _ => respond_error(stream, 405, "unsupported method for this path", None, keep),
            }
        }
        (method, path) if path.starts_with("/v1/jobs/") => {
            let rest = &path["/v1/jobs/".len()..];
            let (id_text, tail) = match rest.split_once('/') {
                None => (rest, None),
                Some((id, tail)) => (id, Some(tail)),
            };
            let Ok(id) = id_text.parse::<u64>() else {
                return respond_error(stream, 400, &format!("bad job id {id_text:?}"), None, keep);
            };
            let record = state
                .jobs
                .lock()
                .expect("job table poisoned")
                .records
                .get(&id)
                .cloned();
            let Some(record) = record else {
                return respond_error(stream, 404, &format!("no such job {id}"), None, keep);
            };
            match (method, tail) {
                ("GET", None) => job_status(stream, &record, keep),
                ("DELETE", None) => {
                    record.live().cancel.cancel();
                    if let Some(stop) = &record.follow_stop {
                        stop.store(true, Ordering::SeqCst);
                        if let Some(dataset) = &record.dataset {
                            dataset.changed.notify_all();
                        }
                    }
                    respond_json(
                        stream,
                        202,
                        &format!(
                            "{{\"id\":{id},\"cancelling\":true,\"state\":\"{}\"}}",
                            record.queue_state()
                        ),
                        keep,
                    )
                }
                ("GET", Some("events")) => stream_events(stream, state, &record),
                _ => respond_error(stream, 405, "unsupported method for this path", None, keep),
            }
        }
        ("POST", _) | ("GET", _) | ("DELETE", _) | ("PUT", _) | ("PATCH", _) => respond_error(
            stream,
            404,
            &format!("no such endpoint {path:?}"),
            None,
            keep,
        ),
        (method, _) => respond_error(
            stream,
            405,
            &format!("unsupported method {method}"),
            None,
            keep,
        ),
    }
}

fn healthz(stream: &mut TcpStream, state: &Arc<ServerState>, keep: bool) -> Served {
    let stats = state.engine.scheduler_stats();
    let degraded = state.degraded.load(Ordering::SeqCst);
    let journal = match (&state.journal, degraded) {
        (None, _) => "off",
        (Some(_), true) => "degraded",
        (Some(_), false) => "active",
    };
    let datasets = state.datasets.lock().expect("dataset table poisoned").len();
    // Every count is read back from the telemetry registry — /healthz
    // and /metrics are two views of one source and cannot drift.
    let registry = state.engine.metrics();
    let body = format!(
        concat!(
            "{{\"status\":\"{}\",\"journal\":\"{}\",\"uptime_secs\":{:.1},",
            "\"jobs_accepted\":{},\"jobs_queued\":{},\"jobs_running\":{},",
            "\"datasets\":{},\"matrix_builds\":{},\"max_jobs\":{},\"queue_capacity\":{}}}"
        ),
        if degraded { "degraded" } else { "ok" },
        journal,
        state.started.elapsed().as_secs_f64(),
        registry.counter_total("rawt_jobs_accepted_total"),
        registry.gauge_value("rawt_queue_depth", &[]).unwrap_or(0),
        registry.gauge_value("rawt_jobs_running", &[]).unwrap_or(0),
        datasets,
        registry.counter_total("rawt_matrix_builds_total"),
        stats.max_concurrent,
        stats.queue_capacity,
    );
    respond_json(stream, 200, &body, keep)
}

/// `GET /metrics`: the engine registry — every tier hangs its families
/// off it — rendered in Prometheus text exposition format.
fn metrics_exposition(stream: &mut TcpStream, state: &Arc<ServerState>, keep: bool) -> Served {
    let body = state.engine.metrics().render_prometheus();
    let _ = http::write_response(
        stream,
        200,
        "text/plain; version=0.0.4",
        &[],
        body.as_bytes(),
        keep,
    );
    Served::KeepAlive
}

/// One structurally parsed `PATCH /v1/datasets/{id}` op, label text still
/// unresolved (labels are parsed against the dataset's universe under its
/// lock, at apply time).
enum DatasetOp {
    Add { ranking: String },
    Remove { index: usize },
    Replace { index: usize, ranking: String },
}

impl DatasetOp {
    /// The canonical JSON of the op — what the journal records, and what
    /// recovery feeds back through [`DatasetOp::parse`].
    fn to_json(&self) -> String {
        match self {
            DatasetOp::Add { ranking } => {
                format!(
                    "{{\"op\":\"add\",\"ranking\":\"{}\"}}",
                    crate::json::escape(ranking)
                )
            }
            DatasetOp::Remove { index } => format!("{{\"op\":\"remove\",\"index\":{index}}}"),
            DatasetOp::Replace { index, ranking } => format!(
                "{{\"op\":\"replace\",\"index\":{index},\"ranking\":\"{}\"}}",
                crate::json::escape(ranking)
            ),
        }
    }

    /// Parse one op object. Structural errors only; ranking text is
    /// validated at apply time.
    fn parse(doc: &Json) -> Result<DatasetOp, String> {
        let kind = doc
            .get("op")
            .and_then(Json::as_str)
            .ok_or("each op needs an \"op\" field (add|remove|replace)")?;
        let index = || {
            doc.get("index")
                .and_then(Json::as_u64)
                .map(|i| i as usize)
                .ok_or_else(|| format!("op {kind:?} needs a non-negative \"index\""))
        };
        let ranking = || {
            doc.get("ranking")
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("op {kind:?} needs a \"ranking\" string"))
        };
        match kind {
            "add" => Ok(DatasetOp::Add {
                ranking: ranking()?,
            }),
            "remove" => Ok(DatasetOp::Remove { index: index()? }),
            "replace" => Ok(DatasetOp::Replace {
                index: index()?,
                ranking: ranking()?,
            }),
            other => Err(format!("unknown op {other:?} (use add|remove|replace)")),
        }
    }
}

/// Apply one op to a dataset: parse any ranking text against a *clone*
/// of the universe, patch the session, and only then commit the clone —
/// a refused op must not leak half-interned labels. Returns the new
/// version.
fn apply_op(
    universe: &mut Universe,
    session: &mut DatasetSession,
    op: &DatasetOp,
) -> Result<u64, String> {
    let parse = |text: &str, universe: &mut Universe| {
        parse_ranking_labeled(text, universe).map_err(|e| format!("ranking: {e}"))
    };
    match op {
        DatasetOp::Add { ranking } => {
            let mut scratch = universe.clone();
            let r = parse(ranking, &mut scratch)?;
            let version = session.add_ranking(r).map_err(|e| e.to_string())?;
            *universe = scratch;
            Ok(version)
        }
        DatasetOp::Remove { index } => session.remove_ranking(*index).map_err(|e| e.to_string()),
        DatasetOp::Replace { index, ranking } => {
            let mut scratch = universe.clone();
            let r = parse(ranking, &mut scratch)?;
            let version = session
                .replace_ranking(*index, r)
                .map_err(|e| e.to_string())?;
            *universe = scratch;
            Ok(version)
        }
    }
}

/// Rebuild a live dataset from its journal file: the consolidated text,
/// then each durably recorded edit, landing at the journaled version.
fn rebuild_dataset(ds: &RecoveredDataset) -> Result<(Universe, DatasetSession), String> {
    let (mut universe, mut session) = build_session(&ds.dataset)?;
    session.restore_version(ds.version);
    for (version, op_json) in &ds.edits {
        let doc = Json::parse(op_json).map_err(|e| format!("edit record: {e}"))?;
        let op = DatasetOp::parse(&doc)?;
        apply_op(&mut universe, &mut session, &op)?;
        session.restore_version(*version);
    }
    Ok((universe, session))
}

/// Shared body of the PUT and recovery paths: dataset text → universe +
/// unified session. Mirrors `prepare_submission`'s unification semantics,
/// so a live dataset and a one-shot `"dataset"` job see identical inputs.
fn build_session(text: &str) -> Result<(Universe, DatasetSession), String> {
    let mut universe = Universe::new();
    let raw = parse_dataset_lines(text, &mut universe).map_err(|e| format!("dataset: {e}"))?;
    if raw.is_empty() {
        return Err("dataset contains no rankings".to_owned());
    }
    let norm =
        rank_core::normalize::unification(&raw).expect("non-empty raw rankings always unify");
    Ok((universe, DatasetSession::new(norm.dataset)))
}

/// `PUT /v1/datasets/{id}`: create-only (409 on an existing id). Body:
/// `{"dataset":"<text>"}`.
fn create_dataset(
    stream: &mut TcpStream,
    request: &Request,
    state: &Arc<ServerState>,
    id: &str,
    keep: bool,
) -> Served {
    let Ok(body) = std::str::from_utf8(&request.body) else {
        return respond_error(stream, 400, "request body is not UTF-8", None, keep);
    };
    let text = match Json::parse(body)
        .ok()
        .as_ref()
        .and_then(|doc| doc.get("dataset"))
        .and_then(Json::as_str)
    {
        Some(text) if !text.trim().is_empty() => text.to_owned(),
        _ => {
            return respond_error(
                stream,
                400,
                "body must be {\"dataset\":\"<one ranking per line>\"}",
                None,
                keep,
            );
        }
    };
    let rebuild_start = Instant::now();
    let (universe, session) = match build_session(&text) {
        Ok(built) => built,
        Err(message) => return respond_error(stream, 400, &message, None, keep),
    };
    state
        .metrics
        .session_rebuild_seconds
        .record(rebuild_start.elapsed());
    let (n, m) = (session.n(), session.m());
    {
        let mut datasets = state.datasets.lock().expect("dataset table poisoned");
        if datasets.contains_key(id) {
            return respond_error(
                stream,
                409,
                &format!("dataset {id:?} already exists (PATCH it, or DELETE first)"),
                None,
                keep,
            );
        }
        let writer = state
            .journal
            .as_ref()
            .and_then(|journal| journal.begin_dataset(id, &dataset_text(&session, &universe), 1));
        datasets.insert(
            id.to_owned(),
            Arc::new(LiveDataset {
                id: id.to_owned(),
                state: Mutex::new(DatasetState {
                    universe,
                    session,
                    writer,
                    deleted: false,
                }),
                changed: Condvar::new(),
            }),
        );
    }
    respond_json(
        stream,
        201,
        &format!(
            "{{\"id\":\"{}\",\"version\":1,\"n\":{n},\"m\":{m}}}",
            crate::json::escape(id)
        ),
        keep,
    )
}

/// `PATCH /v1/datasets/{id}`: apply `{"ops":[…]}` in order, one version
/// bump (and one journal record) per successful op. A failing op stops
/// the sequence with a 409 that reports both the applied count and the
/// version reached — ops before it stay applied (each is an independent,
/// durably journaled edit).
fn edit_dataset(
    stream: &mut TcpStream,
    request: &Request,
    state: &Arc<ServerState>,
    id: &str,
    keep: bool,
) -> Served {
    let Ok(body) = std::str::from_utf8(&request.body) else {
        return respond_error(stream, 400, "request body is not UTF-8", None, keep);
    };
    let ops: Vec<DatasetOp> = {
        let parsed = Json::parse(body).ok();
        let list = parsed
            .as_ref()
            .and_then(|doc| doc.get("ops"))
            .and_then(Json::as_array);
        let Some(list) = list else {
            return respond_error(
                stream,
                400,
                "body must be {\"ops\":[{\"op\":\"add\",\"ranking\":\"…\"},…]}",
                None,
                keep,
            );
        };
        if list.is_empty() {
            return respond_error(stream, 400, "\"ops\" is empty", None, keep);
        }
        match list.iter().map(DatasetOp::parse).collect() {
            Ok(ops) => ops,
            Err(message) => return respond_error(stream, 400, &message, None, keep),
        }
    };
    let dataset = state
        .datasets
        .lock()
        .expect("dataset table poisoned")
        .get(id)
        .cloned();
    let Some(dataset) = dataset else {
        return respond_error(stream, 404, &format!("no such dataset {id:?}"), None, keep);
    };
    let mut applied = 0usize;
    let mut failure: Option<String> = None;
    let (version, n, m) = {
        let mut guard = dataset.lock();
        let ds = &mut *guard;
        for op in &ops {
            let patch_start = Instant::now();
            let applied_op = apply_op(&mut ds.universe, &mut ds.session, op);
            state
                .metrics
                .session_patch_seconds
                .record(patch_start.elapsed());
            match applied_op {
                Ok(version) => {
                    applied += 1;
                    if let Some(writer) = ds.writer.as_mut() {
                        writer.append_dataset_edit(&op.to_json(), version);
                    }
                }
                Err(message) => {
                    failure = Some(format!("op {applied}: {message}"));
                    break;
                }
            }
        }
        (ds.session.version(), ds.session.n(), ds.session.m())
    };
    if applied > 0 {
        // Edits landed: wake every follow loop sleeping on this dataset.
        dataset.changed.notify_all();
    }
    match failure {
        None => respond_json(
            stream,
            200,
            &format!(
                "{{\"id\":\"{}\",\"version\":{version},\"n\":{n},\"m\":{m},\"applied\":{applied}}}",
                crate::json::escape(id)
            ),
            keep,
        ),
        Some(message) => respond_json(
            stream,
            409,
            &format!(
                "{{\"error\":\"{}\",\"version\":{version},\"applied\":{applied}}}",
                crate::json::escape(&message)
            ),
            keep,
        ),
    }
}

/// `GET /v1/datasets/{id}`: the current text, version, and shape.
fn get_dataset(stream: &mut TcpStream, state: &Arc<ServerState>, id: &str, keep: bool) -> Served {
    let dataset = state
        .datasets
        .lock()
        .expect("dataset table poisoned")
        .get(id)
        .cloned();
    let Some(dataset) = dataset else {
        return respond_error(stream, 404, &format!("no such dataset {id:?}"), None, keep);
    };
    let ds = dataset.lock();
    let body = format!(
        "{{\"id\":\"{}\",\"version\":{},\"n\":{},\"m\":{},\"dataset\":\"{}\"}}",
        crate::json::escape(id),
        ds.session.version(),
        ds.session.n(),
        ds.session.m(),
        crate::json::escape(&dataset_text(&ds.session, &ds.universe)),
    );
    drop(ds);
    respond_json(stream, 200, &body, keep)
}

/// `DELETE /v1/datasets/{id}`: drop the dataset and its journal file.
/// Follow jobs on it observe `deleted` and finish as cancelled.
fn delete_dataset(
    stream: &mut TcpStream,
    state: &Arc<ServerState>,
    id: &str,
    keep: bool,
) -> Served {
    let removed = state
        .datasets
        .lock()
        .expect("dataset table poisoned")
        .remove(id);
    let Some(dataset) = removed else {
        return respond_error(stream, 404, &format!("no such dataset {id:?}"), None, keep);
    };
    {
        let mut ds = dataset.lock();
        ds.deleted = true;
        ds.writer = None;
    }
    dataset.changed.notify_all();
    if let Some(journal) = &state.journal {
        journal.remove_dataset(id);
    }
    respond_json(
        stream,
        200,
        &format!(
            "{{\"id\":\"{}\",\"deleted\":true}}",
            crate::json::escape(id)
        ),
        keep,
    )
}

/// A submission after parsing and validation: everything needed to build
/// the engine request and the job record. One code path produces this for
/// both live `POST /v1/jobs` bodies and journaled submissions replayed on
/// recovery, so a re-admitted job is prepared exactly like the original.
struct Prepared {
    universe: Universe,
    norm: Normalized,
    data: Arc<Dataset>,
    spec: AlgoSpec,
}

/// A prepared submission plus its live-dataset context (absent for
/// inline-dataset jobs): the warm-start hint and version snapshotted at
/// preparation, and the dataset handle for consensus record-back.
struct PreparedJob {
    prepared: Prepared,
    warm: Option<rank_core::algorithms::WarmStart>,
    /// The dataset version the snapshot was taken at (0 for inline jobs;
    /// live versions start at 1).
    version: u64,
    dataset: Option<Arc<LiveDataset>>,
    /// The session's delta-patched cost matrix, snapshotted with the
    /// dataset — attached to the request so the engine skips its own
    /// `O(m·n²)` rebuild (absent for inline jobs).
    matrix: Option<Arc<CostMatrix>>,
}

/// Resolve the algorithm spec (explicit, or §7.4 guidance) and check its
/// size cap against the dataset.
fn resolve_spec(submission: &JobSubmission, data: &Dataset) -> Result<AlgoSpec, SubmissionError> {
    let spec = match &submission.algo {
        Some(name) => AlgoSpec::parse(name).map_err(|e| SubmissionError {
            message: e.to_string(),
            suggestion: e.suggestion.clone(),
        })?,
        None => {
            let rec = recommend(&DatasetFeatures::measure(data), Priority::Balanced);
            AlgoSpec::parse(rec.algorithm).expect("guidance names are registered")
        }
    };
    if let Some(cap) = spec.max_n() {
        if data.n() > cap {
            return Err(SubmissionError::new(format!(
                "{spec} handles at most n = {cap} elements; this dataset has {}",
                data.n()
            )));
        }
    }
    Ok(spec)
}

/// Dataset text → raw rankings → normalized dense dataset → resolved
/// spec. Parse and structural errors are typed ([`SubmissionError`], HTTP
/// 400 material), never a panic.
fn prepare_submission(submission: &JobSubmission) -> Result<Prepared, SubmissionError> {
    let mut universe = Universe::new();
    let raw = parse_dataset_lines(&submission.dataset, &mut universe)
        .map_err(|e| SubmissionError::new(format!("dataset: {e}")))?;
    if raw.is_empty() {
        return Err(SubmissionError::new("dataset contains no rankings"));
    }
    let norm = submission
        .normalize
        .apply(&raw)
        .ok_or_else(|| SubmissionError::new("normalization produced an empty dataset"))?;
    // One copy of the dense dataset, shared by the request (Arc) and
    // readable for the n/m/guidance checks below.
    let data = Arc::new(norm.dataset.clone());
    let spec = resolve_spec(submission, &data)?;
    Ok(Prepared {
        universe,
        norm,
        data,
        spec,
    })
}

/// Prepare a `"dataset_id"` job: snapshot the live dataset (frozen copy,
/// universe, warm hint, version) under its lock, then resolve the spec
/// against the snapshot. The error carries the HTTP status (404 for a
/// missing dataset, 400 otherwise).
fn prepare_dataset_job(
    state: &Arc<ServerState>,
    submission: &JobSubmission,
) -> Result<PreparedJob, (u16, SubmissionError)> {
    let id = submission.dataset_id.as_deref().expect("caller checked");
    let dataset = state
        .datasets
        .lock()
        .expect("dataset table poisoned")
        .get(id)
        .cloned()
        .ok_or_else(|| (404, SubmissionError::new(format!("no such dataset {id:?}"))))?;
    let (data, universe, warm, version, matrix) = {
        let ds = dataset.lock();
        (
            Arc::new(ds.session.dataset()),
            ds.universe.clone(),
            ds.session.warm_start(),
            ds.session.version(),
            Arc::new(ds.session.matrix().clone()),
        )
    };
    let spec = resolve_spec(submission, &data).map_err(|e| (400, e))?;
    let norm = identity_norm(&data);
    Ok(PreparedJob {
        prepared: Prepared {
            universe,
            norm,
            data,
            spec,
        },
        warm,
        version,
        dataset: Some(dataset),
        matrix: Some(matrix),
    })
}

/// One preparation entry point for both job kinds — the live submit path
/// and recovery re-admission go through it, so both run identically.
fn prepare_any(
    state: &Arc<ServerState>,
    submission: &JobSubmission,
) -> Result<PreparedJob, (u16, SubmissionError)> {
    if submission.dataset_id.is_some() {
        prepare_dataset_job(state, submission)
    } else {
        prepare_submission(submission)
            .map(|prepared| PreparedJob {
                prepared,
                warm: None,
                version: 0,
                dataset: None,
                matrix: None,
            })
            .map_err(|e| (400, e))
    }
}

/// The engine request for a prepared submission — shared by the live
/// submit path and recovery re-admission, so both run the identical
/// (spec, seed, budget) and the recovered report is bit-identical to an
/// uninterrupted run. Dataset jobs additionally carry the warm hint.
fn build_request(pj: &PreparedJob, submission: &JobSubmission) -> AggregationRequest {
    let mut request =
        AggregationRequest::new(Arc::clone(&pj.prepared.data), pj.prepared.spec.clone())
            .with_seed(submission.seed);
    if let Some(budget) = submission.budget {
        request = request.with_budget(budget);
    }
    if let Some(warm) = pj.warm.clone() {
        request = request.with_warm_start(warm);
    }
    if let Some(matrix) = &pj.matrix {
        request = request.with_cost_matrix(Arc::clone(matrix));
    }
    request
}

/// The submission as journaled: the original body with the *resolved*
/// algorithm spec filled in, so recovery re-runs exactly what ran — even
/// when guidance picked the algorithm (guidance is deterministic, but
/// pinning the pick in the record makes the journal self-contained).
fn journaled_submission_json(submission: &JobSubmission, spec: &AlgoSpec) -> String {
    let mut resolved = submission.clone();
    resolved.algo = Some(spec.to_string());
    resolved.to_json()
}

/// The `POST /v1/jobs` response body (also returned, with
/// `"deduplicated":true` and status 200, for an idempotent retry).
fn submit_body(record: &JobRecord, deduplicated: bool) -> String {
    let (n, m) = {
        let live = record.live();
        (live.n, live.m)
    };
    format!(
        concat!(
            "{{\"id\":{},\"spec\":\"{}\",\"seed\":{},\"n\":{},\"m\":{},",
            "\"deduplicated\":{},\"events\":\"/v1/jobs/{}/events\",\"status\":\"/v1/jobs/{}\"}}"
        ),
        record.id,
        crate::json::escape(&record.spec.to_string()),
        record.seed,
        n,
        m,
        deduplicated,
        record.id,
        record.id,
    )
}

/// Build the [`JobRecord`] for a prepared job, consuming the preparation
/// (universe and denormalization context move into the record's live
/// half). Shared by submit and both recovery paths so the record shape
/// can never drift between them.
fn make_record(
    id: u64,
    submission: &JobSubmission,
    pj: PreparedJob,
    sink: Arc<IncumbentSink>,
    cancel: CancelToken,
    progress: JobProgress,
) -> JobRecord {
    JobRecord {
        id,
        spec: pj.prepared.spec,
        seed: submission.seed,
        normalize: submission.normalize,
        idempotency: submission.idempotency_key.clone(),
        dataset: pj.dataset,
        follow_stop: submission.follow.then(|| AtomicBool::new(false)),
        live: Mutex::new(LiveRefs {
            n: pj.prepared.data.n(),
            m: pj.prepared.data.m(),
            universe: pj.prepared.universe,
            norm: pj.prepared.norm,
            sink,
            cancel,
        }),
        state: Mutex::new(progress),
        advanced: Condvar::new(),
    }
}

/// Spawn the owning thread for an admitted job: the follow loop for
/// `"follow": true` jobs, the one-shot collector otherwise. Either way
/// the thread is the only consumer of the raw engine event channel; HTTP
/// subscribers read the record's replay log.
fn spawn_owner(
    state: &Arc<ServerState>,
    record: &Arc<JobRecord>,
    handle: rank_core::engine::JobHandle,
    writer: Option<JournalWriter>,
    follow: FollowSpawn,
) {
    let record = Arc::clone(record);
    let id = record.id;
    match follow {
        FollowSpawn::Follow {
            dataset,
            spec,
            seed,
            budget,
            version,
        } => {
            let state = Arc::clone(state);
            let _ = std::thread::Builder::new()
                .name(format!("rank-follow-{id}"))
                .spawn(move || {
                    follow_loop(
                        &state, &record, &dataset, &spec, seed, budget, handle, version, writer,
                    );
                });
        }
        FollowSpawn::Collect => {
            let _ = std::thread::Builder::new()
                .name(format!("rank-collect-{id}"))
                .spawn(move || collect(&record, handle, writer));
        }
    }
}

/// How [`spawn_owner`] should run an admitted job.
enum FollowSpawn {
    Collect,
    Follow {
        dataset: Arc<LiveDataset>,
        spec: AlgoSpec,
        seed: u64,
        budget: Option<Duration>,
        version: u64,
    },
}

impl FollowSpawn {
    /// The spawn mode for a submission: follow jobs carry everything the
    /// loop needs to re-admit later rounds.
    fn for_submission(submission: &JobSubmission, pj: &PreparedJob) -> FollowSpawn {
        if submission.follow {
            FollowSpawn::Follow {
                dataset: Arc::clone(pj.dataset.as_ref().expect("proto: follow requires dataset")),
                spec: pj.prepared.spec.clone(),
                seed: submission.seed,
                budget: submission.budget,
                version: pj.version,
            }
        } else {
            FollowSpawn::Collect
        }
    }
}

/// `POST /v1/jobs`: parse, validate, dedupe, admit, journal, record.
fn submit_job(
    stream: &mut TcpStream,
    request: &Request,
    state: &Arc<ServerState>,
    keep: bool,
) -> Served {
    if state.shutting_down.load(Ordering::SeqCst) {
        return respond_error(stream, 503, "server is draining", None, keep);
    }
    let Ok(body) = std::str::from_utf8(&request.body) else {
        return respond_error(stream, 400, "request body is not UTF-8", None, keep);
    };
    let submission = match JobSubmission::from_json(body) {
        Ok(submission) => submission,
        Err(e) => {
            return respond_error(stream, 400, &e.message, e.suggestion.as_deref(), keep);
        }
    };
    // Idempotent retry? Answer with the existing job (recovered ones
    // included — the key map is rebuilt from the journal on restart)
    // before spending any parsing or admission work on the body.
    if let Some(key) = &submission.idempotency_key {
        let table = state.jobs.lock().expect("job table poisoned");
        if let Some(record) = table.keys.get(key).and_then(|id| table.records.get(id)) {
            let body = submit_body(record, true);
            drop(table);
            return respond_json(stream, 200, &body, keep);
        }
    }
    let pj = match prepare_any(state, &submission) {
        Ok(pj) => pj,
        Err((status, e)) => {
            return respond_error(stream, status, &e.message, e.suggestion.as_deref(), keep);
        }
    };
    let handle = match state.engine.try_submit(build_request(&pj, &submission)) {
        Ok(handle) => handle,
        Err(AdmissionError::QueueFull {
            queued,
            capacity,
            retry_after,
        }) => {
            let secs = retry_after.as_secs().max(1);
            let body = format!(
                "{{\"error\":\"admission queue full ({queued}/{capacity})\",\"retry_after_secs\":{secs}}}"
            );
            let _ = http::write_response(
                stream,
                429,
                "application/json",
                &[("Retry-After", secs.to_string())],
                body.as_bytes(),
                keep,
            );
            return Served::KeepAlive;
        }
        Err(AdmissionError::ShuttingDown) => {
            return respond_error(stream, 503, "server is draining", None, keep);
        }
    };
    let (record, deduplicated) = {
        let mut table = state.jobs.lock().expect("job table poisoned");
        // Re-check the key under the insertion lock: a concurrent twin
        // may have won the race since the pre-parse check. The loser's
        // admitted handle is cancelled and dropped — its job resolves at
        // the first checkpoint, unrecorded.
        if let Some(existing) = submission
            .idempotency_key
            .as_ref()
            .and_then(|key| table.keys.get(key))
            .and_then(|id| table.records.get(id))
        {
            let existing = Arc::clone(existing);
            drop(table);
            handle.cancel();
            drop(handle);
            (existing, true)
        } else {
            let id = table.next_id;
            table.next_id += 1;
            let journaled = journaled_submission_json(&submission, &pj.prepared.spec);
            let follow = FollowSpawn::for_submission(&submission, &pj);
            let record = Arc::new(make_record(
                id,
                &submission,
                pj,
                Arc::clone(handle.sink()),
                handle.cancel_token(),
                JobProgress::default(),
            ));
            table.order.push(id);
            table.records.insert(id, Arc::clone(&record));
            if let Some(key) = &submission.idempotency_key {
                table.keys.insert(key.clone(), id);
            }
            evict_done(&mut table, state.config.retain_done, state.journal.as_ref());
            state.metrics.jobs_accepted.inc();
            let writer = state
                .journal
                .as_ref()
                .and_then(|journal| journal.begin_job(id, 0, &journaled));
            spawn_owner(state, &record, handle, writer, follow);
            (record, false)
        }
    };
    let status = if deduplicated { 200 } else { 202 };
    respond_json(stream, status, &submit_body(&record, deduplicated), keep)
}

/// The `POST /v1/batches` response body (also the idempotent-retry body,
/// with `"deduplicated":true`): batch identity plus one entry per sub-job
/// with its individual endpoints, in panel order.
fn batch_body(batch: &BatchRecord, deduplicated: bool) -> String {
    let (n, m) = {
        let live = batch.jobs[0].live();
        (live.n, live.m)
    };
    let jobs: Vec<String> = batch
        .jobs
        .iter()
        .map(|job| {
            format!(
                "{{\"spec\":\"{}\",\"id\":{},\"events\":\"/v1/jobs/{}/events\",\"status\":\"/v1/jobs/{}\"}}",
                crate::json::escape(&job.spec.to_string()),
                job.id,
                job.id,
                job.id,
            )
        })
        .collect();
    format!(
        concat!(
            "{{\"id\":{},\"seed\":{},\"n\":{n},\"m\":{m},\"deduplicated\":{},",
            "\"jobs\":[{}],\"events\":\"/v1/batches/{}/events\",\"status\":\"/v1/batches/{}\"}}"
        ),
        batch.id,
        batch.seed,
        deduplicated,
        jobs.join(","),
        batch.id,
        batch.id,
        n = n,
        m = m,
    )
}

/// `POST /v1/batches`: one dataset, a panel of specs, admitted through
/// the scheduler as a single all-or-nothing unit. Every sub-job shares
/// the dataset's one `O(m·n²)` cost-matrix build through the engine
/// cache (the requests share one `Arc<Dataset>`, so they hit the same
/// cache entry; the cache holds its lock across the build, so concurrent
/// sub-jobs wait for the first build instead of repeating it).
///
/// Batches are not journaled: a batch is a convenience fan-out over the
/// panel, and its sub-jobs are cheap to resubmit as a unit — the
/// idempotency key makes that retry safe (DESIGN.md §14.1).
fn submit_batch(
    stream: &mut TcpStream,
    request: &Request,
    state: &Arc<ServerState>,
    keep: bool,
) -> Served {
    if state.shutting_down.load(Ordering::SeqCst) {
        return respond_error(stream, 503, "server is draining", None, keep);
    }
    let Ok(body) = std::str::from_utf8(&request.body) else {
        return respond_error(stream, 400, "request body is not UTF-8", None, keep);
    };
    let submission = match BatchSubmission::from_json(body) {
        Ok(submission) => submission,
        Err(e) => {
            return respond_error(stream, 400, &e.message, e.suggestion.as_deref(), keep);
        }
    };
    if let Some(key) = &submission.idempotency_key {
        let table = state.batches.lock().expect("batch table poisoned");
        if let Some(batch) = table.keys.get(key).and_then(|id| table.records.get(id)) {
            let body = batch_body(batch, true);
            drop(table);
            return respond_json(stream, 200, &body, keep);
        }
    }
    // Parse + normalize the dataset once, resolve every spec against it.
    let job_submission = |spec: &str| JobSubmission {
        algo: Some(spec.to_owned()),
        seed: submission.seed,
        budget: submission.budget,
        normalize: submission.normalize,
        ..JobSubmission::new(submission.dataset.clone())
    };
    let mut prepared = Vec::with_capacity(submission.specs.len());
    for spec in &submission.specs {
        match prepare_submission(&job_submission(spec)) {
            Ok(pj) => prepared.push(pj),
            Err(e) => {
                let message = format!("spec {spec:?}: {}", e.message);
                return respond_error(stream, 400, &message, e.suggestion.as_deref(), keep);
            }
        }
    }
    // One dense dataset for the whole panel: the first preparation's Arc
    // is shared by every request, so the engine cache sees one
    // fingerprint and pays one matrix build.
    let data = Arc::clone(&prepared[0].data);
    let requests: Vec<AggregationRequest> = prepared
        .iter()
        .map(|p| {
            let mut request = AggregationRequest::new(Arc::clone(&data), p.spec.clone())
                .with_seed(submission.seed);
            if let Some(budget) = submission.budget {
                request = request.with_budget(budget);
            }
            request
        })
        .collect();
    let handles = match state.engine.try_submit_batch(requests) {
        Ok(handles) => handles,
        Err(AdmissionError::QueueFull {
            queued,
            capacity,
            retry_after,
        }) => {
            let secs = retry_after.as_secs().max(1);
            let body = format!(
                "{{\"error\":\"admission queue full ({queued}/{capacity}); batch of {} needs room for all\",\"retry_after_secs\":{secs}}}",
                submission.specs.len()
            );
            let _ = http::write_response(
                stream,
                429,
                "application/json",
                &[("Retry-After", secs.to_string())],
                body.as_bytes(),
                keep,
            );
            return Served::KeepAlive;
        }
        Err(AdmissionError::ShuttingDown) => {
            return respond_error(stream, 503, "server is draining", None, keep);
        }
    };
    let (batch, deduplicated) = {
        let mut batches = state.batches.lock().expect("batch table poisoned");
        // Same race re-check as jobs: a concurrent twin with our key may
        // have landed since the pre-parse check; the loser cancels its
        // whole admitted panel.
        if let Some(existing) = submission
            .idempotency_key
            .as_ref()
            .and_then(|key| batches.keys.get(key))
            .and_then(|id| batches.records.get(id))
        {
            let existing = Arc::clone(existing);
            drop(batches);
            for handle in handles {
                handle.cancel();
            }
            (existing, true)
        } else {
            let mut jobs = Vec::with_capacity(handles.len());
            {
                let mut table = state.jobs.lock().expect("job table poisoned");
                for (prep, handle) in prepared.into_iter().zip(handles) {
                    let id = table.next_id;
                    table.next_id += 1;
                    let spec = prep.spec.clone();
                    let record = Arc::new(make_record(
                        id,
                        &job_submission(&spec.to_string()),
                        PreparedJob {
                            prepared: prep,
                            warm: None,
                            version: 0,
                            dataset: None,
                            matrix: None,
                        },
                        Arc::clone(handle.sink()),
                        handle.cancel_token(),
                        JobProgress::default(),
                    ));
                    table.order.push(id);
                    table.records.insert(id, Arc::clone(&record));
                    state.metrics.jobs_accepted.inc();
                    spawn_owner(state, &record, handle, None, FollowSpawn::Collect);
                    jobs.push(record);
                }
                evict_done(&mut table, state.config.retain_done, state.journal.as_ref());
            }
            let id = batches.next_id;
            batches.next_id += 1;
            let batch = Arc::new(BatchRecord {
                id,
                idempotency: submission.idempotency_key.clone(),
                seed: submission.seed,
                jobs,
            });
            batches.records.insert(id, Arc::clone(&batch));
            if let Some(key) = &batch.idempotency {
                batches.keys.insert(key.clone(), id);
            }
            (batch, false)
        }
    };
    let status = if deduplicated { 200 } else { 202 };
    respond_json(stream, status, &batch_body(&batch, deduplicated), keep)
}

/// `GET /v1/batches/{id}`: the panel's aggregate state plus each
/// sub-job's state, outcome, and (once done) full report — one call reads
/// the whole panel back.
fn batch_status(stream: &mut TcpStream, batch: &Arc<BatchRecord>, keep: bool) -> Served {
    let mut all_done = true;
    let mut any_started = false;
    let jobs: Vec<String> = batch
        .jobs
        .iter()
        .map(|job| {
            let progress = job.state.lock().expect("job state poisoned");
            let state_name = state_name(&progress);
            all_done &= progress.done;
            any_started |= progress.started || progress.done;
            let outcome = progress
                .outcome
                .clone()
                .map_or("null".to_owned(), |o| format!("\"{o}\""));
            let report = progress
                .report_json
                .clone()
                .unwrap_or_else(|| "null".to_owned());
            drop(progress);
            format!(
                "{{\"spec\":\"{}\",\"id\":{},\"state\":\"{state_name}\",\"outcome\":{outcome},\"report\":{report}}}",
                crate::json::escape(&job.spec.to_string()),
                job.id,
            )
        })
        .collect();
    let state_name = if all_done {
        "done"
    } else if any_started {
        "running"
    } else {
        "queued"
    };
    let body = format!(
        "{{\"id\":{},\"seed\":{},\"state\":\"{state_name}\",\"jobs\":[{}]}}",
        batch.id,
        batch.seed,
        jobs.join(","),
    );
    respond_json(stream, 200, &body, keep)
}

/// Splice `"spec"` and `"job"` fields into a serialized event object, so
/// each line of a batch's merged stream names the sub-job it came from.
fn tag_spec(line: &str, spec: &str, job_id: u64) -> String {
    match line.rfind('}') {
        Some(i) => format!(
            "{},\"spec\":\"{}\",\"job\":{job_id}}}",
            &line[..i],
            crate::json::escape(spec)
        ),
        None => line.to_owned(),
    }
}

/// `GET /v1/batches/{id}/events`: the panel's event logs merged into one
/// chunked NDJSON stream, every line tagged `"spec"`/`"job"`. Within one
/// sub-job, lines keep their emission order; across sub-jobs the merge is
/// arrival-ordered (the panel runs concurrently). Ends when every sub-job
/// is done; quiet stretches are bridged with heartbeats like the per-job
/// stream.
fn stream_batch_events(
    stream: &mut TcpStream,
    state: &Arc<ServerState>,
    batch: &Arc<BatchRecord>,
) -> Served {
    let mut writer = match ChunkedWriter::begin(stream, "application/x-ndjson") {
        Ok(writer) => writer,
        Err(_) => return Served::Close,
    };
    let _subscriber = GaugeGuard::enter(&state.metrics.stream_subscribers);
    let specs: Vec<String> = batch.jobs.iter().map(|j| j.spec.to_string()).collect();
    let mut cursors = vec![0usize; batch.jobs.len()];
    let mut quiet = Duration::ZERO;
    loop {
        let mut wrote = false;
        let mut all_done = true;
        for (i, job) in batch.jobs.iter().enumerate() {
            let (batch_lines, done) = {
                let progress = job.state.lock().expect("job state poisoned");
                (progress.events[cursors[i]..].to_vec(), progress.done)
            };
            all_done &= done;
            for line in &batch_lines {
                if writer
                    .write_line(&tag_spec(line, &specs[i], job.id))
                    .is_err()
                {
                    return Served::Close; // subscriber went away; jobs keep running
                }
            }
            cursors[i] += batch_lines.len();
            wrote |= !batch_lines.is_empty();
        }
        if all_done {
            let _ = writer.finish();
            return Served::Close;
        }
        if wrote {
            quiet = Duration::ZERO;
        } else {
            // Poll-merge: each sub-job has its own condvar, so the merged
            // stream polls at a coarse interval instead of waiting on one.
            let step = Duration::from_millis(25);
            std::thread::sleep(step);
            quiet += step;
            if quiet >= Duration::from_secs(state.config.heartbeat_secs as u64) {
                if writer.write_line("{\"event\":\"heartbeat\"}").is_err() {
                    return Served::Close;
                }
                quiet = Duration::ZERO;
            }
        }
    }
}

/// Splice a `"dataset_version"` field into a serialized event object, so
/// every line a follow job emits names the dataset version its round
/// solved. Non-object lines pass through untouched.
fn tag_version(line: &str, version: u64) -> String {
    match line.rfind('}') {
        Some(i) => format!("{},\"dataset_version\":{version}}}", &line[..i]),
        None => line.to_owned(),
    }
}

/// The owning loop of a `"follow": true` job: run one consensus round,
/// record it back into the dataset session as the next warm hint, then
/// sleep on the dataset's condvar until its version moves and re-admit a
/// fresh round warm-started from the last consensus.
///
/// Stream shape: per-round events are version-tagged; each round ends
/// with a `{"event":"resolved",...}` line instead of `finished` (clients
/// treat `finished` as end-of-stream, and a follow job survives its
/// rounds). The single real `finished` line — outcome `cancelled` — is
/// emitted when the follow ends: job DELETE, dataset DELETE, or server
/// shutdown.
#[allow(clippy::too_many_arguments)]
fn follow_loop(
    state: &Arc<ServerState>,
    record: &Arc<JobRecord>,
    dataset: &Arc<LiveDataset>,
    spec: &AlgoSpec,
    seed: u64,
    budget: Option<Duration>,
    mut handle: rank_core::engine::JobHandle,
    mut version: u64,
    mut writer: Option<JournalWriter>,
) {
    let stopped = || {
        record
            .follow_stop
            .as_ref()
            .is_some_and(|stop| stop.load(Ordering::SeqCst))
            || state.shutting_down.load(Ordering::SeqCst)
    };
    let push_event = |line: String, writer: &mut Option<JournalWriter>, started: bool| {
        if let Some(writer) = writer.as_mut() {
            writer.append_event(&line);
        }
        let mut progress = record.state.lock().expect("job state poisoned");
        if started {
            progress.started = true;
        }
        progress.events.push(line);
        drop(progress);
        record.advanced.notify_all();
    };
    loop {
        // Drain this round's events, version-tagged. The engine's
        // per-round `finished` is suppressed — subscribers would read it
        // as end-of-stream — and replaced by `resolved` below.
        for event in handle.events() {
            if matches!(event, Event::Finished { .. }) {
                continue;
            }
            let started = matches!(event, Event::Started { .. });
            push_event(
                tag_version(&proto::event_json(&event), version),
                &mut writer,
                started,
            );
        }
        match catch_unwind(AssertUnwindSafe(|| handle.wait())) {
            Ok(report) => {
                // Feed the consensus back: it becomes the warm hint for
                // this loop's next round *and* for any other job on the
                // dataset. Refused only if the session's universe moved
                // past the snapshot mid-round — then it is simply stale.
                {
                    let mut ds = dataset.lock();
                    if !ds.deleted {
                        let _ = ds.session.record_consensus(report.ranking.clone());
                    }
                }
                let report_json = {
                    let live = record.live();
                    proto::report_json(&report, &live.norm, &live.universe)
                };
                let outcome = report.outcome.to_string();
                let resolved = tag_version(
                    &format!(
                        "{{\"event\":\"resolved\",\"outcome\":\"{}\",\"score\":{}}}",
                        crate::json::escape(&outcome),
                        report.score
                    ),
                    version,
                );
                if let Some(writer) = writer.as_mut() {
                    writer.append_event(&resolved);
                }
                let mut progress = record.state.lock().expect("job state poisoned");
                progress.started = true;
                progress.events.push(resolved);
                progress.outcome = Some(outcome);
                progress.report_json = Some(report_json);
                drop(progress);
                record.advanced.notify_all();
            }
            Err(_) => {
                let line = "{\"event\":\"failed\",\"error\":\"internal kernel panic\"}".to_owned();
                if let Some(writer) = writer.as_mut() {
                    writer.append_event(&line);
                    writer.finish("failed", None);
                }
                let mut progress = record.state.lock().expect("job state poisoned");
                progress.events.push(line);
                progress.outcome = Some("failed".to_owned());
                progress.done = true;
                drop(progress);
                record.advanced.notify_all();
                return;
            }
        }
        // Sleep until the dataset's version moves (or the follow ends).
        let next = 'wait: loop {
            if stopped() {
                break 'wait None;
            }
            let ds = dataset.lock();
            if ds.deleted {
                break 'wait None;
            }
            if ds.session.version() != version {
                break 'wait Some((
                    ds.session.version(),
                    Arc::new(ds.session.dataset()),
                    ds.universe.clone(),
                    ds.session.warm_start(),
                    Arc::new(ds.session.matrix().clone()),
                ));
            }
            // Timed wait so job-DELETE and shutdown (which poke the
            // condvar best-effort) are noticed within a bounded delay
            // even if a notification is missed.
            drop(
                dataset
                    .changed
                    .wait_timeout(ds, Duration::from_millis(250))
                    .expect("dataset state poisoned"),
            );
        };
        let Some((new_version, data, universe, warm, matrix)) = next else {
            break;
        };
        if let Some(cap) = spec.max_n() {
            if data.n() > cap {
                let line = format!(
                    "{{\"event\":\"failed\",\"error\":\"dataset {} grew to n = {} past the n = {cap} cap for {spec}\"}}",
                    crate::json::escape(&dataset.id),
                    data.n()
                );
                push_event(line, &mut writer, false);
                break;
            }
        }
        // Re-admit as regular traffic; a full queue backs this loop off
        // rather than erroring the job.
        let new_handle = 'admit: loop {
            if stopped() {
                break 'admit None;
            }
            let mut request =
                AggregationRequest::new(Arc::clone(&data), spec.clone()).with_seed(seed);
            if let Some(budget) = budget {
                request = request.with_budget(budget);
            }
            if let Some(warm) = warm.clone() {
                request = request.with_warm_start(warm);
            }
            // The session's delta-patched matrix rides along: a follow
            // round never pays the engine-side rebuild either.
            request = request.with_cost_matrix(Arc::clone(&matrix));
            match state.engine.try_submit(request) {
                Ok(handle) => break 'admit Some(handle),
                Err(AdmissionError::QueueFull { retry_after, .. }) => {
                    std::thread::sleep(retry_after.min(Duration::from_millis(250)));
                }
                Err(AdmissionError::ShuttingDown) => break 'admit None,
            }
        };
        let Some(new_handle) = new_handle else {
            break;
        };
        version = new_version;
        {
            let mut live = record.live();
            live.n = data.n();
            live.m = data.m();
            live.norm = identity_norm(&data);
            live.universe = universe;
            live.sink = Arc::clone(new_handle.sink());
            live.cancel = new_handle.cancel_token();
        }
        handle = new_handle;
    }
    // The follow ended. The terminal outcome is always `cancelled` —
    // a follow job never completes on its own; something stopped it.
    let line = "{\"event\":\"finished\",\"outcome\":\"cancelled\"}".to_owned();
    let report_json = record
        .state
        .lock()
        .expect("job state poisoned")
        .report_json
        .clone();
    if let Some(writer) = writer.as_mut() {
        writer.append_event(&line);
        writer.finish("cancelled", report_json.as_deref());
    }
    let mut progress = record.state.lock().expect("job state poisoned");
    progress.events.push(line);
    progress.outcome = Some("cancelled".to_owned());
    progress.done = true;
    drop(progress);
    record.advanced.notify_all();
}

/// Replay the journal directory into the job table ([`Server::bind`]):
/// finished jobs become servable records (status, report, and event
/// replay intact); interrupted jobs are re-admitted through the
/// scheduler's recovered class in ascending id order, re-recording into
/// segment `n+1`. Unreadable or corrupt journal *entries* are skipped
/// (counted by the replay); only a directory-level I/O failure is fatal.
fn recover(state: &Arc<ServerState>) -> std::io::Result<()> {
    let journal = state.journal.as_ref().expect("recover without a journal");
    // Datasets first: jobs journaled by `dataset_id` resolve against the
    // recovered table. Each recovered dataset's journal is consolidated —
    // rewritten as a single create at the current version — so the edit
    // log cannot grow without bound across restarts. Warm hints are
    // in-memory only: the first post-restart round on a dataset runs
    // cold, at the recovered version.
    let mut recovered_datasets = 0usize;
    for ds in journal.replay_datasets()? {
        let rebuild_start = Instant::now();
        let rebuilt = rebuild_dataset(&ds);
        state
            .metrics
            .session_rebuild_seconds
            .record(rebuild_start.elapsed());
        match rebuilt {
            Ok((universe, session)) => {
                let writer = journal.begin_dataset(
                    &ds.id,
                    &dataset_text(&session, &universe),
                    session.version(),
                );
                let live = Arc::new(LiveDataset {
                    id: ds.id.clone(),
                    state: Mutex::new(DatasetState {
                        universe,
                        session,
                        writer,
                        deleted: false,
                    }),
                    changed: Condvar::new(),
                });
                state
                    .datasets
                    .lock()
                    .expect("dataset table poisoned")
                    .insert(ds.id.clone(), live);
                recovered_datasets += 1;
            }
            Err(message) => {
                eprintln!(
                    "rawt: journal: dropping unrecoverable dataset {:?} ({message})",
                    ds.id
                );
                journal.remove_dataset(&ds.id);
            }
        }
    }
    let replay = journal.replay()?;
    let mut recovered_done = 0usize;
    let mut readmitted = 0usize;
    let mut table = state.jobs.lock().expect("job table poisoned");
    for job in replay.jobs {
        // Fresh ids continue above every journaled one.
        table.next_id = table.next_id.max(job.id + 1);
        let pj = match prepare_any(state, &job.submission) {
            Ok(pj) => pj,
            Err((_, e)) => {
                eprintln!(
                    "rawt: journal: dropping unrecoverable job {} ({})",
                    job.id, e.message
                );
                continue;
            }
        };
        let record = if let Some(finished) = job.finished {
            recovered_done += 1;
            // Servable as-is: replayable events, outcome, and the exact
            // original report bytes. The live sink is empty (its trace
            // died with the old process) — the report carries the full
            // trace, and `best` reads null like any pre-start job.
            Arc::new(make_record(
                job.id,
                &job.submission,
                pj,
                Arc::new(rank_core::engine::IncumbentSink::new()),
                rank_core::engine::CancelToken::new(),
                JobProgress {
                    events: job.events,
                    started: true,
                    report_json: finished.report_json,
                    outcome: Some(finished.outcome),
                    done: true,
                },
            ))
        } else {
            readmitted += 1;
            // Interrupted: deterministically re-run from the journaled
            // (spec, seed, budget). `submit_recovered` places it ahead
            // of all fresh traffic, FIFO in this (ascending id) order.
            // A follow job resumes following from the dataset's
            // recovered version.
            let handle = state
                .engine
                .submit_recovered(build_request(&pj, &job.submission));
            let journaled = journaled_submission_json(&job.submission, &pj.prepared.spec);
            let follow = FollowSpawn::for_submission(&job.submission, &pj);
            let record = Arc::new(make_record(
                job.id,
                &job.submission,
                pj,
                Arc::clone(handle.sink()),
                handle.cancel_token(),
                JobProgress::default(),
            ));
            state.metrics.jobs_accepted.inc();
            let writer = journal.begin_job(job.id, job.segment + 1, &journaled);
            spawn_owner(state, &record, handle, writer, follow);
            record
        };
        table.order.push(job.id);
        if let Some(key) = &record.idempotency {
            table.keys.insert(key.clone(), job.id);
        }
        table.records.insert(job.id, record);
    }
    drop(table);
    if recovered_datasets + recovered_done + readmitted > 0 || replay.dropped_lines > 0 {
        eprintln!(
            "rawt: journal: recovered {recovered_datasets} dataset(s) + {recovered_done} finished + {readmitted} interrupted job(s) ({} lines, {} dropped, {} unusable file(s))",
            replay.lines_read, replay.dropped_lines, replay.corrupt_files
        );
    }
    Ok(())
}

/// Drop the oldest *finished* records beyond the retention bound (live
/// jobs are never evicted — their handles and collectors are running).
/// An evicted job releases its idempotency key and journal segments, so
/// the on-disk recovery set stays as bounded as the in-memory table.
fn evict_done(table: &mut JobTable, retain_done: usize, journal: Option<&Journal>) {
    let done_ids: Vec<u64> = table
        .order
        .iter()
        .copied()
        .filter(|id| {
            table
                .records
                .get(id)
                .is_some_and(|r| r.state.lock().expect("job state poisoned").done)
        })
        .collect();
    if done_ids.len() <= retain_done {
        return;
    }
    let drop_count = done_ids.len() - retain_done;
    for id in &done_ids[..drop_count] {
        if let Some(record) = table.records.remove(id) {
            if let Some(key) = &record.idempotency {
                table.keys.remove(key);
            }
            if let Some(journal) = journal {
                journal.remove_job(*id);
            }
        }
        table.order.retain(|o| o != id);
    }
}

/// Drain one job's event stream into its replay log (and journal), then
/// collect and serialize the final report (closing the journal segment
/// with a terminal record).
fn collect(
    record: &Arc<JobRecord>,
    handle: rank_core::engine::JobHandle,
    mut writer: Option<JournalWriter>,
) {
    for event in handle.events() {
        let line = proto::event_json(&event);
        if let Some(writer) = writer.as_mut() {
            writer.append_event(&line);
        }
        let mut progress = record.state.lock().expect("job state poisoned");
        if matches!(event, Event::Started { .. }) {
            progress.started = true;
        }
        progress.events.push(line);
        drop(progress);
        record.advanced.notify_all();
    }
    // The stream has ended; the report is ready (or the kernel panicked).
    let report = catch_unwind(AssertUnwindSafe(|| handle.wait()));
    match report {
        Ok(report) => {
            // A dataset-id job records its consensus back into the live
            // session: the next solve on this dataset warm-starts from
            // it. (Refused harmlessly if the dataset grew mid-run.)
            if let Some(dataset) = &record.dataset {
                let mut ds = dataset.lock();
                if !ds.deleted {
                    let _ = ds.session.record_consensus(report.ranking.clone());
                }
            }
            let report_json = {
                let live = record.live();
                proto::report_json(&report, &live.norm, &live.universe)
            };
            let outcome = report.outcome.to_string();
            if let Some(writer) = writer.as_mut() {
                writer.finish(&outcome, Some(&report_json));
            }
            let mut progress = record.state.lock().expect("job state poisoned");
            progress.outcome = Some(outcome);
            progress.report_json = Some(report_json);
            progress.done = true;
        }
        Err(_) => {
            let line = "{\"event\":\"failed\",\"error\":\"internal kernel panic\"}".to_owned();
            if let Some(writer) = writer.as_mut() {
                writer.append_event(&line);
                writer.finish("failed", None);
            }
            let mut progress = record.state.lock().expect("job state poisoned");
            progress.outcome = Some("failed".to_owned());
            progress.events.push(line);
            progress.done = true;
        }
    }
    record.advanced.notify_all();
}

/// `GET /v1/jobs/{id}`: status + best-so-far (trace from the sink, full
/// report once done).
fn job_status(stream: &mut TcpStream, record: &Arc<JobRecord>, keep: bool) -> Served {
    // Snapshot the round-scoped refs as one consistent set (a follow
    // round swap replaces sink and denormalization context together).
    let live = record.live();
    let trace: Vec<String> = live
        .sink
        .trace()
        .iter()
        .map(proto::trace_point_json)
        .collect();
    let best = match live.sink.best_so_far() {
        None => "null".to_owned(),
        Some((score, ranking)) => format!(
            "{{\"score\":{score},\"ranking\":{}}}",
            proto::ranking_json(&live.norm.denormalize(&ranking), &live.universe)
        ),
    };
    let (n, m) = (live.n, live.m);
    drop(live);
    let progress = record.state.lock().expect("job state poisoned");
    let state_name = state_name(&progress);
    let report = progress
        .report_json
        .clone()
        .unwrap_or_else(|| "null".to_owned());
    let outcome = progress
        .outcome
        .clone()
        .map_or("null".to_owned(), |o| format!("\"{o}\""));
    drop(progress);
    let body = format!(
        concat!(
            "{{\"id\":{},\"spec\":\"{}\",\"seed\":{},\"n\":{},\"m\":{},",
            "\"normalization\":\"{}\",\"state\":\"{state}\",\"outcome\":{outcome},",
            "\"best\":{best},\"trace\":[{trace}],\"report\":{report}}}"
        ),
        record.id,
        crate::json::escape(&record.spec.to_string()),
        record.seed,
        n,
        m,
        record.normalize,
        state = state_name,
        outcome = outcome,
        best = best,
        trace = trace.join(","),
        report = report,
    );
    respond_json(stream, 200, &body, keep)
}

/// `GET /v1/jobs/{id}/events`: replay the log from the start, then follow
/// live until the job is done — chunked NDJSON, one event per line.
/// Quiet stretches are bridged with `{"event":"heartbeat"}` lines
/// (streamed only, never recorded in the replay log) every
/// [`ServerConfig::heartbeat_secs`] seconds of silence.
fn stream_events(
    stream: &mut TcpStream,
    state: &Arc<ServerState>,
    record: &Arc<JobRecord>,
) -> Served {
    let mut writer = match ChunkedWriter::begin(stream, "application/x-ndjson") {
        Ok(writer) => writer,
        Err(_) => return Served::Close,
    };
    let _subscriber = GaugeGuard::enter(&state.metrics.stream_subscribers);
    let heartbeat_secs = state.config.heartbeat_secs;
    let mut cursor = 0usize;
    loop {
        let (batch, done) = {
            let mut progress = record.state.lock().expect("job state poisoned");
            let mut quiet = 0u32;
            while progress.events.len() == cursor && !progress.done && quiet < heartbeat_secs {
                let (next, timeout) = record
                    .advanced
                    .wait_timeout(progress, Duration::from_secs(1))
                    .expect("job state poisoned");
                progress = next;
                if timeout.timed_out() {
                    quiet += 1;
                }
            }
            (progress.events[cursor..].to_vec(), progress.done)
        };
        if batch.is_empty() && !done {
            // A long-quiet solver (e.g. an unbudgeted exact proof): send
            // a keepalive so the subscriber's read timeout does not
            // mistake the silence for a dead server.
            if writer.write_line("{\"event\":\"heartbeat\"}").is_err() {
                return Served::Close;
            }
            continue;
        }
        for line in &batch {
            if writer.write_line(line).is_err() {
                return Served::Close; // subscriber went away; the job keeps running
            }
        }
        cursor += batch.len();
        if done {
            // Nothing is appended after `done` is set (the collector's
            // final line lands before it), so the batch was complete.
            let _ = writer.finish();
            return Served::Close;
        }
    }
}
