//! Durable job journal: an append-only, CRC-framed NDJSON log per job,
//! replayed on startup for crash recovery (DESIGN.md §12).
//!
//! Every accepted job gets one file per *segment* (`job-<id>-s<seg>.ndjson`)
//! holding, in order:
//!
//! 1. a **submission record** — `{"rec":"submit","id":…,"segment":…,
//!    "submission":{…}}` carrying the full resolved [`JobSubmission`]
//!    (algorithm spec filled in even when guidance picked it, idempotency
//!    key included) plus the assigned job id;
//! 2. the job's **event lines**, byte-for-byte the
//!    [`event_json`](crate::proto::event_json) NDJSON the server streams
//!    to subscribers (heartbeats are streamed-only and never journaled);
//! 3. a **terminal record** — `{"rec":"done","outcome":…,"report":…}`
//!    with the final report's exact serialization (spliced back out on
//!    replay, so a restarted server serves byte-identical reports).
//!
//! Each line is framed as `crc32hex8 SP json LF`. On replay, a segment is
//! read up to the first line whose CRC or JSON fails to check — a torn
//! tail (the half-written line of a crash mid-`write`) or mid-file
//! corruption silently truncates the segment rather than poisoning it.
//! A job whose chosen segment ends without a terminal record is
//! *unfinished*: the server re-admits it from the journaled submission
//! (every algorithm is bit-identical for a fixed (spec, seed), so the
//! re-run provably converges to the same report) and records the re-run
//! into the next segment number, leaving the truncated segment in place
//! as evidence. A job with a terminal record is served as finished —
//! status, report, and event replay all survive the restart.
//!
//! Durability is configurable via [`FsyncPolicy`]; write failures never
//! take the server down — they flip a shared degraded flag (surfaced as
//! `/healthz` `"status":"degraded"`) and the server continues in-memory,
//! exactly as it ran before journalling existed.

use crate::fault::FaultPlan;
use crate::json::Json;
use crate::proto::JobSubmission;
use rank_core::telemetry::{Counter, Histogram, MetricsRegistry};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Resolved journal telemetry handles: resolved once when the registry
/// is attached, so the append path pays only relaxed atomic ops, never
/// a registry lock.
#[derive(Debug)]
struct JournalMetrics {
    append_seconds: Arc<Histogram>,
    fsync_seconds: Arc<Histogram>,
    replay_seconds: Arc<Histogram>,
    degraded_total: Arc<Counter>,
}

impl JournalMetrics {
    fn resolve(registry: &MetricsRegistry) -> JournalMetrics {
        JournalMetrics {
            append_seconds: registry.histogram(
                "rawt_journal_append_seconds",
                "Wall time writing one framed journal record.",
                &[],
            ),
            fsync_seconds: registry.histogram(
                "rawt_journal_fsync_seconds",
                "Wall time of journal fdatasync calls.",
                &[],
            ),
            replay_seconds: registry.histogram(
                "rawt_journal_replay_seconds",
                "Wall time of startup journal replays.",
                &[],
            ),
            degraded_total: registry.counter(
                "rawt_journal_degraded_total",
                "Times the journal degraded to in-memory after a write or fsync failure.",
                &[],
            ),
        }
    }
}

/// When the journal calls fsync.
///
/// The journal is an *append-only redo log*: losing its tail can only
/// turn a finished job back into an unfinished one, which recovery then
/// re-runs to the same answer. That makes relaxed policies safe in a way
/// they would not be for a general database log — the trade is restart
/// work, not correctness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// fsync after every record — maximal durability, one `fdatasync`
    /// per incumbent.
    Always,
    /// fsync at milestones only (the submission and terminal records):
    /// a crash can lose intermediate incumbents but never an accepted
    /// job or a completed report that the fsync returned for. The
    /// default.
    #[default]
    Milestones,
    /// Never fsync — leave flushing to the OS. Cheapest; a crash may
    /// lose recently finished work (it is re-run on restart).
    Never,
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Milestones => "milestones",
            FsyncPolicy::Never => "never",
        })
    }
}

impl std::str::FromStr for FsyncPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "always" => Ok(FsyncPolicy::Always),
            "milestones" => Ok(FsyncPolicy::Milestones),
            "never" => Ok(FsyncPolicy::Never),
            other => Err(format!(
                "unknown fsync policy {other:?} (use always|milestones|never)"
            )),
        }
    }
}

/// CRC-32 (IEEE, the zlib polynomial) over the JSON payload of each
/// journal line — torn-tail detection, not cryptography.
fn crc32(bytes: &[u8]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    }
    static TABLE: [u32; 256] = table();
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Frame one JSON document as a journal line: `crc32hex8 SP json LF`.
/// Public so tests and benches can fabricate journals byte-exactly.
pub fn frame_line(json: &str) -> String {
    format!("{:08x} {json}\n", crc32(json.as_bytes()))
}

/// Unframe one journal line: verify the CRC and return the JSON payload.
/// `None` for anything torn, truncated, or corrupted.
fn unframe_line(line: &str) -> Option<&str> {
    let (crc_hex, json) = line.split_once(' ')?;
    if crc_hex.len() != 8 {
        return None;
    }
    let crc = u32::from_str_radix(crc_hex, 16).ok()?;
    (crc == crc32(json.as_bytes())).then_some(json)
}

/// The journal file for `id`'s segment `segment`.
fn segment_file_name(id: u64, segment: u32) -> String {
    format!("job-{id}-s{segment}.ndjson")
}

/// Parse a `job-<id>-s<seg>.ndjson` file name back to `(id, segment)`.
/// The strict `job-` prefix keeps the `dataset-…` family invisible here
/// (and vice versa) — the two replays never read each other's files.
fn parse_file_name(name: &str) -> Option<(u64, u32)> {
    let rest = name.strip_prefix("job-")?.strip_suffix(".ndjson")?;
    let (id, seg) = rest.split_once("-s")?;
    Some((id.parse().ok()?, seg.parse().ok()?))
}

/// The journal file for a live dataset (DESIGN.md §13.5). One file per
/// dataset, not segmented: recovery rewrites it consolidated (the
/// current text at the current version), so it stays bounded by the
/// dataset size plus the edits since the last restart.
fn dataset_file_name(id: &str) -> String {
    format!("dataset-{id}.ndjson")
}

/// Parse a `dataset-<id>.ndjson` file name back to the dataset id.
fn parse_dataset_file_name(name: &str) -> Option<&str> {
    name.strip_prefix("dataset-")?.strip_suffix(".ndjson")
}

/// A journal directory: the factory for per-job writers and the replay
/// reader. Cloneable and cheap to share (the degraded flag and fault
/// plan are `Arc`s).
#[derive(Debug, Clone)]
pub struct Journal {
    dir: PathBuf,
    fsync: FsyncPolicy,
    faults: Arc<FaultPlan>,
    degraded: Arc<AtomicBool>,
    metrics: Option<Arc<JournalMetrics>>,
}

/// One job recovered from the journal on startup.
#[derive(Debug, Clone)]
pub struct RecoveredJob {
    /// The job id assigned before the restart (preserved across it).
    pub id: u64,
    /// The segment the recovery was read from; a re-run writes
    /// `segment + 1`.
    pub segment: u32,
    /// The resolved submission as journaled (spec, seed, budget,
    /// normalization, idempotency key).
    pub submission: JobSubmission,
    /// The replayable event lines recorded before the crash.
    pub events: Vec<String>,
    /// The terminal record, when the job completed before the restart;
    /// `None` means the job was interrupted and must be re-run.
    pub finished: Option<FinishedJob>,
}

/// The terminal record of a recovered finished job.
#[derive(Debug, Clone)]
pub struct FinishedJob {
    /// The outcome's display form (`optimal`, `heuristic`, …).
    pub outcome: String,
    /// The final report, byte-for-byte as originally serialized
    /// (`None` for jobs that failed without one).
    pub report_json: Option<String>,
}

/// One live dataset recovered from its journal file on startup.
#[derive(Debug, Clone)]
pub struct RecoveredDataset {
    /// The dataset id (the `{id}` of `PUT /v1/datasets/{id}`).
    pub id: String,
    /// The dataset text as of the creation record.
    pub dataset: String,
    /// The creation record's version (1 for a fresh PUT; the
    /// consolidated version after a recovery rewrite).
    pub version: u64,
    /// Valid edit records after the creation record, in order:
    /// `(version_after_edit, op_json)`.
    pub edits: Vec<(u64, String)>,
}

/// Everything a startup replay learned, plus counters for observability
/// (the bench's recovery section reports replay throughput from
/// `lines_read`).
#[derive(Debug, Clone, Default)]
pub struct Replay {
    /// Recovered jobs in ascending id order (the deterministic
    /// re-admission order).
    pub jobs: Vec<RecoveredJob>,
    /// Total journal lines read (valid or not) across all segments.
    pub lines_read: usize,
    /// Lines dropped by CRC/JSON validation (torn tails, corruption).
    pub dropped_lines: usize,
    /// Segment files that yielded no usable submission record (empty,
    /// fully corrupt, or foreign files matching the name pattern).
    pub corrupt_files: usize,
}

impl Journal {
    /// Open (creating if needed) a journal directory with the given
    /// fsync policy, no fault hooks, and a fresh degraded flag.
    pub fn open(dir: impl Into<PathBuf>, fsync: FsyncPolicy) -> io::Result<Journal> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Journal {
            dir,
            fsync,
            faults: Arc::new(FaultPlan::none()),
            degraded: Arc::new(AtomicBool::new(false)),
            metrics: None,
        })
    }

    /// Attach a fault plan (testing; see [`FaultPlan`]).
    pub fn with_faults(mut self, faults: Arc<FaultPlan>) -> Journal {
        self.faults = faults;
        self
    }

    /// Attach a metrics registry: append/fsync/replay latencies and the
    /// degraded-transition counter land in it (DESIGN.md §15).
    pub fn with_metrics(mut self, registry: &MetricsRegistry) -> Journal {
        self.metrics = Some(Arc::new(JournalMetrics::resolve(registry)));
        self
    }

    /// Share an external degraded flag (the server surfaces it via
    /// `/healthz`).
    pub fn with_degraded_flag(mut self, flag: Arc<AtomicBool>) -> Journal {
        self.degraded = flag;
        self
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether a write or fsync failure has degraded the journal (all
    /// writers are no-ops from then on; the server continues in-memory).
    pub fn degraded(&self) -> bool {
        self.degraded.load(Ordering::SeqCst)
    }

    /// Start journalling one job: create its segment file and write the
    /// submission record. Returns `None` when the journal is degraded or
    /// the file cannot be created (which degrades it) — the job then
    /// runs unjournaled, exactly as before durability existed.
    pub fn begin_job(&self, id: u64, segment: u32, submission_json: &str) -> Option<JournalWriter> {
        if self.degraded() {
            return None;
        }
        let path = self.dir.join(segment_file_name(id, segment));
        let file = match OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
        {
            Ok(file) => file,
            Err(e) => {
                self.degrade(&format!("create {}: {e}", path.display()));
                return None;
            }
        };
        let mut writer = JournalWriter {
            file: Some(file),
            path,
            fsync: self.fsync,
            faults: Arc::clone(&self.faults),
            degraded: Arc::clone(&self.degraded),
            metrics: self.metrics.clone(),
        };
        let record =
            format!("{{\"rec\":\"submit\",\"id\":{id},\"segment\":{segment},\"submission\":{submission_json}}}");
        writer.append(&record, true);
        Some(writer)
    }

    /// Start journalling one live dataset: create (truncating) its
    /// `dataset-{id}.ndjson` file and write the creation record — the
    /// full dataset text at `version` — as a milestone. Called both on
    /// `PUT /v1/datasets/{id}` (version 1) and on recovery, where it
    /// consolidates the replayed text + edits back into one record so
    /// the file does not grow across restarts. `None` degrades exactly
    /// like [`Journal::begin_job`].
    pub fn begin_dataset(&self, id: &str, dataset: &str, version: u64) -> Option<JournalWriter> {
        if self.degraded() {
            return None;
        }
        let path = self.dir.join(dataset_file_name(id));
        let file = match OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
        {
            Ok(file) => file,
            Err(e) => {
                self.degrade(&format!("create {}: {e}", path.display()));
                return None;
            }
        };
        let mut writer = JournalWriter {
            file: Some(file),
            path,
            fsync: self.fsync,
            faults: Arc::clone(&self.faults),
            degraded: Arc::clone(&self.degraded),
            metrics: self.metrics.clone(),
        };
        let record = format!(
            "{{\"rec\":\"ds-create\",\"id\":\"{}\",\"version\":{version},\"dataset\":\"{}\"}}",
            crate::json::escape(id),
            crate::json::escape(dataset)
        );
        writer.append(&record, true);
        Some(writer)
    }

    /// Delete a live dataset's journal file (`DELETE /v1/datasets/{id}`).
    pub fn remove_dataset(&self, id: &str) {
        let _ = fs::remove_file(self.dir.join(dataset_file_name(id)));
    }

    /// Replay the `dataset-…` family: each file yields the created text,
    /// its base version, and the valid edit records after it (ascending
    /// id order). Torn tails truncate a file's edit suffix, never poison
    /// it — the dataset recovers at the last durably recorded version.
    pub fn replay_datasets(&self) -> io::Result<Vec<RecoveredDataset>> {
        let mut names: Vec<String> = fs::read_dir(&self.dir)?
            .flatten()
            .filter_map(|e| e.file_name().to_str().map(str::to_owned))
            .filter(|n| parse_dataset_file_name(n).is_some())
            .collect();
        names.sort();
        let mut recovered = Vec::new();
        for name in names {
            let Ok(content) = fs::read_to_string(self.dir.join(&name)) else {
                continue;
            };
            let id = parse_dataset_file_name(&name).expect("filtered above");
            if let Some(ds) = read_dataset_file(id, &content) {
                recovered.push(ds);
            }
        }
        Ok(recovered)
    }

    /// Delete every segment of `id` (called when the server evicts a
    /// finished job past its retention bound, so the on-disk set stays
    /// as bounded as the in-memory table).
    pub fn remove_job(&self, id: u64) {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            if let Some((file_id, _)) = name.to_str().and_then(parse_file_name) {
                if file_id == id {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
    }

    fn degrade(&self, why: &str) {
        if !self.degraded.swap(true, Ordering::SeqCst) {
            if let Some(metrics) = &self.metrics {
                metrics.degraded_total.inc();
            }
            eprintln!("rawt: journal degraded ({why}); continuing in-memory");
        }
    }

    /// Replay the directory: group segments by job id, pick each job's
    /// highest segment holding a valid submission record, and read it up
    /// to the first torn or corrupt line. Never panics on corruption —
    /// bad lines and unusable files are counted, not fatal. Only a
    /// directory-level I/O failure (unreadable dir) is an error.
    pub fn replay(&self) -> io::Result<Replay> {
        let replay_start = Instant::now();
        let mut replay = Replay::default();
        // Best segment per job id: (segment, submission, events, finished).
        let mut best: std::collections::HashMap<u64, RecoveredJob> =
            std::collections::HashMap::new();
        let mut names: Vec<String> = fs::read_dir(&self.dir)?
            .flatten()
            .filter_map(|e| e.file_name().to_str().map(str::to_owned))
            .filter(|n| parse_file_name(n).is_some())
            .collect();
        // Deterministic scan order (read_dir order is filesystem-defined).
        names.sort();
        for name in names {
            let content = match fs::read_to_string(self.dir.join(&name)) {
                Ok(content) => content,
                Err(_) => {
                    replay.corrupt_files += 1;
                    continue;
                }
            };
            match read_segment(&content, &mut replay) {
                Some(job) => {
                    let replace = best
                        .get(&job.id)
                        .is_none_or(|current| job.segment > current.segment);
                    if replace {
                        best.insert(job.id, job);
                    }
                }
                None => replay.corrupt_files += 1,
            }
        }
        replay.jobs = best.into_values().collect();
        replay.jobs.sort_by_key(|j| j.id);
        if let Some(metrics) = &self.metrics {
            metrics.replay_seconds.record(replay_start.elapsed());
        }
        Ok(replay)
    }
}

/// Parse one segment's text. `None` when no valid submission record
/// leads the file (empty, torn-before-submit, or garbage).
fn read_segment(content: &str, replay: &mut Replay) -> Option<RecoveredJob> {
    let mut job: Option<RecoveredJob> = None;
    let mut lines = content.split('\n').filter(|l| !l.is_empty());
    while let Some(line) = lines.next() {
        replay.lines_read += 1;
        // Torn or corrupt line: drop it and everything after it — the
        // suffix of an append-only log is untrustworthy past the first
        // bad frame.
        let doc = match unframe_line(line).and_then(|json| Json::parse(json).ok()) {
            Some(doc) => doc,
            None => {
                replay.dropped_lines += 1 + lines.count();
                break;
            }
        };
        let json = unframe_line(line).expect("validated above");
        let rec = doc.get("rec").and_then(Json::as_str);
        match job.as_mut() {
            None => {
                // The first valid line must be the submission record.
                if rec != Some("submit") {
                    return None;
                }
                let id = doc.get("id").and_then(Json::as_u64)?;
                let segment = doc.get("segment").and_then(Json::as_u64).unwrap_or(0) as u32;
                let submission = doc
                    .get("submission")
                    .and_then(|s| JobSubmission::from_json(&s.to_string()).ok())?;
                job = Some(RecoveredJob {
                    id,
                    segment,
                    submission,
                    events: Vec::new(),
                    finished: None,
                });
            }
            Some(current) => match rec {
                Some("done") => {
                    let outcome = doc
                        .get("outcome")
                        .and_then(Json::as_str)
                        .unwrap_or("failed")
                        .to_owned();
                    // Splice the report out of the *raw* record so a
                    // restarted server serves the exact original bytes
                    // (re-serializing the parsed tree would reorder keys
                    // and reformat floats).
                    let report_json = match doc.get("report") {
                        Some(r) if !r.is_null() => json
                            .find(",\"report\":")
                            .map(|i| json[i + ",\"report\":".len()..json.len() - 1].to_owned()),
                        _ => None,
                    };
                    current.finished = Some(FinishedJob {
                        outcome,
                        report_json,
                    });
                    // The terminal record is the last one the writer
                    // emits; anything after it is ignored.
                    break;
                }
                None if doc.get("event").is_some() => {
                    current.events.push(json.to_owned());
                }
                // Unknown record type from a future version: skip it.
                _ => {}
            },
        }
    }
    job
}

/// Parse one `dataset-…` file. `None` when no valid `ds-create` record
/// (for this id) leads the file.
fn read_dataset_file(id: &str, content: &str) -> Option<RecoveredDataset> {
    let mut ds: Option<RecoveredDataset> = None;
    for line in content.split('\n').filter(|l| !l.is_empty()) {
        // Same torn-tail rule as job segments: stop at the first bad
        // frame — everything after it is untrustworthy.
        let Some(json) = unframe_line(line) else {
            break;
        };
        let Ok(doc) = Json::parse(json) else { break };
        let rec = doc.get("rec").and_then(Json::as_str);
        match ds.as_mut() {
            None => {
                if rec != Some("ds-create") || doc.get("id").and_then(Json::as_str) != Some(id) {
                    return None;
                }
                ds = Some(RecoveredDataset {
                    id: id.to_owned(),
                    dataset: doc.get("dataset").and_then(Json::as_str)?.to_owned(),
                    version: doc.get("version").and_then(Json::as_u64).unwrap_or(1),
                    edits: Vec::new(),
                });
            }
            Some(current) => {
                if rec == Some("ds-edit") && doc.get("op").is_some() {
                    if let (Some(version), Some(op)) =
                        (doc.get("version").and_then(Json::as_u64), raw_edit_op(json))
                    {
                        current.edits.push((version, op.to_owned()));
                    }
                }
                // Unknown record type from a future version: skip it.
            }
        }
    }
    ds
}

/// The verbatim `"op"` payload of a `ds-edit` record, sliced out of the
/// raw line instead of re-serialized from the parsed document — parsing
/// would reorder object keys, and replay must hand back the exact bytes
/// the client journaled. Relies on the fixed record layout
/// [`JournalWriter::append_dataset_edit`] writes: the first `"op":` is
/// the record's own key and the record's closing brace is the last byte.
fn raw_edit_op(json: &str) -> Option<&str> {
    let start = json.find("\"op\":")? + "\"op\":".len();
    let end = json.len().checked_sub(1)?;
    json.get(start..end)
}

/// The append side of one job's journal segment. Owned by the job's
/// collector thread; every method is infallible by design — an I/O or
/// fsync failure degrades the whole journal (shared flag) and turns this
/// writer into a no-op, never an error the job could trip over.
#[derive(Debug)]
pub struct JournalWriter {
    file: Option<File>,
    path: PathBuf,
    fsync: FsyncPolicy,
    faults: Arc<FaultPlan>,
    degraded: Arc<AtomicBool>,
    metrics: Option<Arc<JournalMetrics>>,
}

impl JournalWriter {
    /// Append one event line (the exact `event_json` NDJSON the server
    /// streams; no heartbeats).
    pub fn append_event(&mut self, line: &str) {
        self.append(line, false);
    }

    /// Append one dataset edit record (milestone — an accepted edit must
    /// survive a crash, or the dataset silently reverts on restart).
    /// `op_json` is the applied op exactly as submitted, e.g.
    /// `{"op":"add","ranking":"[{A},{B}]"}`; `version` is the dataset
    /// version *after* the edit.
    pub fn append_dataset_edit(&mut self, op_json: &str, version: u64) {
        let record = format!("{{\"rec\":\"ds-edit\",\"version\":{version},\"op\":{op_json}}}");
        self.append(&record, true);
    }

    /// Append the terminal record and close the segment. `report_json`
    /// is spliced in verbatim so replay can serve the original bytes.
    pub fn finish(&mut self, outcome: &str, report_json: Option<&str>) {
        let report = report_json.unwrap_or("null");
        let record = format!(
            "{{\"rec\":\"done\",\"outcome\":\"{}\",\"report\":{report}}}",
            crate::json::escape(outcome)
        );
        if self.faults.torn_terminal {
            // Fault hook: crash mid-write — half the framed bytes land,
            // no fsync, and the writer is dead. Replay must treat the
            // torn line as absent and re-run the job.
            if let Some(file) = self.file.take() {
                let framed = frame_line(&record);
                let half = &framed.as_bytes()[..framed.len() / 2];
                let mut file = file;
                let _ = file.write_all(half);
                let _ = file.flush();
            }
            return;
        }
        self.append(&record, true);
        self.file = None;
    }

    /// The segment file this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn append(&mut self, json: &str, milestone: bool) {
        if self.degraded.load(Ordering::SeqCst) {
            self.file = None;
        }
        let Some(file) = self.file.as_mut() else {
            return;
        };
        let write_start = Instant::now();
        if let Err(e) = file.write_all(frame_line(json).as_bytes()) {
            self.fail(&format!("write: {e}"));
            return;
        }
        if let Some(metrics) = &self.metrics {
            metrics.append_seconds.record(write_start.elapsed());
        }
        let should_sync = match self.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::Milestones => milestone,
            FsyncPolicy::Never => false,
        };
        if should_sync {
            if self.faults.fsync_error {
                self.fail("fsync: injected fault");
                return;
            }
            let sync_start = Instant::now();
            if let Err(e) = file.sync_data() {
                self.fail(&format!("fsync: {e}"));
                return;
            }
            if let Some(metrics) = &self.metrics {
                metrics.fsync_seconds.record(sync_start.elapsed());
            }
        }
    }

    fn fail(&mut self, why: &str) {
        self.file = None;
        if !self.degraded.swap(true, Ordering::SeqCst) {
            if let Some(metrics) = &self.metrics {
                metrics.degraded_total.inc();
            }
            eprintln!(
                "rawt: journal degraded ({why} on {}); continuing in-memory",
                self.path.display()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rawt-journal-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc_framing_roundtrips_and_rejects_flips() {
        let json = r#"{"event":"incumbent","score":7}"#;
        let framed = frame_line(json);
        assert_eq!(unframe_line(framed.trim_end()), Some(json));
        let flipped = framed.trim_end().replace("score\":7", "score\":8");
        assert_eq!(unframe_line(&flipped), None, "payload flip must fail CRC");
        assert_eq!(unframe_line("not a journal line"), None);
        assert_eq!(unframe_line(""), None);
    }

    #[test]
    fn writes_then_replays_one_finished_job() {
        let dir = temp_dir("roundtrip");
        let journal = Journal::open(&dir, FsyncPolicy::Always).unwrap();
        let sub = JobSubmission {
            algo: Some("Borda".into()),
            idempotency_key: Some("key-1".into()),
            ..JobSubmission::new("[{A},{B}]")
        };
        let mut w = journal.begin_job(7, 0, &sub.to_json()).unwrap();
        w.append_event(r#"{"event":"started","spec":"Borda","seed":42}"#);
        w.append_event(r#"{"event":"incumbent","score":3,"gap":null,"elapsed_secs":0.001000}"#);
        w.finish("heuristic", Some(r#"{"score":3,"elapsed_secs":0.100000}"#));
        let replay = journal.replay().unwrap();
        assert_eq!(replay.jobs.len(), 1);
        assert_eq!(replay.dropped_lines, 0);
        let job = &replay.jobs[0];
        assert_eq!((job.id, job.segment), (7, 0));
        assert_eq!(job.submission, sub);
        assert_eq!(job.events.len(), 2);
        let fin = job.finished.as_ref().expect("terminal record");
        assert_eq!(fin.outcome, "heuristic");
        // Byte-exact splice, float formatting preserved.
        assert_eq!(
            fin.report_json.as_deref(),
            Some(r#"{"score":3,"elapsed_secs":0.100000}"#)
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_turns_a_finished_job_back_into_an_unfinished_one() {
        let dir = temp_dir("torn");
        let faults = Arc::new(FaultPlan::none().with_torn_terminal());
        let journal = Journal::open(&dir, FsyncPolicy::Never)
            .unwrap()
            .with_faults(faults);
        let sub = JobSubmission::new("[{A},{B}]");
        let mut w = journal.begin_job(0, 0, &sub.to_json()).unwrap();
        w.append_event(r#"{"event":"started","spec":"Borda","seed":42}"#);
        w.finish("heuristic", Some(r#"{"score":3}"#));
        // A torn write is a crash, not an I/O error: not degraded.
        assert!(!journal.degraded());
        let replay = Journal::open(&dir, FsyncPolicy::Never)
            .unwrap()
            .replay()
            .unwrap();
        assert_eq!(replay.jobs.len(), 1);
        assert!(replay.jobs[0].finished.is_none(), "torn terminal dropped");
        assert_eq!(replay.jobs[0].events.len(), 1);
        assert_eq!(replay.dropped_lines, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_fault_degrades_instead_of_erroring() {
        let dir = temp_dir("fsync");
        let faults = Arc::new(FaultPlan::none().with_fsync_error());
        let journal = Journal::open(&dir, FsyncPolicy::Always)
            .unwrap()
            .with_faults(faults);
        let sub = JobSubmission::new("[{A},{B}]");
        // The submission record is a milestone: its fsync fails, the
        // journal degrades, and later begin_job calls return None.
        let w = journal.begin_job(0, 0, &sub.to_json());
        assert!(w.is_some(), "the writer itself is created before the sync");
        assert!(journal.degraded());
        assert!(journal.begin_job(1, 0, &sub.to_json()).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn highest_valid_segment_wins() {
        let dir = temp_dir("segments");
        let journal = Journal::open(&dir, FsyncPolicy::Never).unwrap();
        let sub = JobSubmission::new("[{A},{B}]");
        // s0: interrupted (no terminal). s1: the re-run, finished.
        let mut w0 = journal.begin_job(3, 0, &sub.to_json()).unwrap();
        w0.append_event(r#"{"event":"started","spec":"Borda","seed":42}"#);
        drop(w0);
        let mut w1 = journal.begin_job(3, 1, &sub.to_json()).unwrap();
        w1.append_event(r#"{"event":"started","spec":"Borda","seed":42}"#);
        w1.finish("heuristic", Some(r#"{"score":3}"#));
        let replay = journal.replay().unwrap();
        assert_eq!(replay.jobs.len(), 1);
        assert_eq!(replay.jobs[0].segment, 1);
        assert!(replay.jobs[0].finished.is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dataset_family_roundtrips_and_is_invisible_to_job_replay() {
        let dir = temp_dir("datasets");
        let journal = Journal::open(&dir, FsyncPolicy::Never).unwrap();
        let mut w = journal
            .begin_dataset("live-1", "[{A},{B}]\n[{B},{A}]", 1)
            .unwrap();
        w.append_dataset_edit(r#"{"op":"add","ranking":"[{B},{A}]"}"#, 2);
        w.append_dataset_edit(r#"{"op":"remove","index":0}"#, 3);
        drop(w);
        // Job replay must not see dataset files (and vice versa).
        assert!(journal.replay().unwrap().jobs.is_empty());
        let recovered = journal.replay_datasets().unwrap();
        assert_eq!(recovered.len(), 1);
        let ds = &recovered[0];
        assert_eq!(ds.id, "live-1");
        assert_eq!(ds.dataset, "[{A},{B}]\n[{B},{A}]");
        assert_eq!(ds.version, 1);
        assert_eq!(
            ds.edits,
            vec![
                (2, r#"{"op":"add","ranking":"[{B},{A}]"}"#.to_owned()),
                (3, r#"{"op":"remove","index":0}"#.to_owned()),
            ]
        );
        // Consolidation: a recovery rewrite truncates back to one record.
        drop(journal.begin_dataset("live-1", "[{B},{A}]", 3).unwrap());
        let recovered = journal.replay_datasets().unwrap();
        assert_eq!(recovered[0].version, 3);
        assert_eq!(recovered[0].dataset, "[{B},{A}]");
        assert!(recovered[0].edits.is_empty());
        journal.remove_dataset("live-1");
        assert!(journal.replay_datasets().unwrap().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_dataset_edit_recovers_at_the_previous_version() {
        let dir = temp_dir("ds-torn");
        let journal = Journal::open(&dir, FsyncPolicy::Never).unwrap();
        let mut w = journal.begin_dataset("d", "[{A},{B}]", 1).unwrap();
        w.append_dataset_edit(r#"{"op":"add","ranking":"[{B},{A}]"}"#, 2);
        drop(w);
        // Tear the last line in half, as a crash mid-append would.
        let path = dir.join("dataset-d.ndjson");
        let content = fs::read_to_string(&path).unwrap();
        let keep = content.len() - 10;
        fs::write(&path, &content[..keep]).unwrap();
        let recovered = journal.replay_datasets().unwrap();
        assert_eq!(recovered.len(), 1);
        assert!(recovered[0].edits.is_empty(), "torn edit dropped");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn remove_job_deletes_every_segment() {
        let dir = temp_dir("remove");
        let journal = Journal::open(&dir, FsyncPolicy::Never).unwrap();
        let sub = JobSubmission::new("[{A},{B}]");
        drop(journal.begin_job(5, 0, &sub.to_json()).unwrap());
        drop(journal.begin_job(5, 1, &sub.to_json()).unwrap());
        drop(journal.begin_job(6, 0, &sub.to_json()).unwrap());
        journal.remove_job(5);
        let replay = journal.replay().unwrap();
        assert_eq!(replay.jobs.len(), 1);
        assert_eq!(replay.jobs[0].id, 6);
        let _ = fs::remove_dir_all(&dir);
    }
}
