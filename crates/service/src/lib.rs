//! Network aggregation service: the engine's anytime jobs, served over
//! the wire (DESIGN.md §10).
//!
//! The paper's product is a panel of consensus algorithms whose
//! quality-vs-time tradeoff only matters if callers can consume it; this
//! crate makes the [`Engine`](rank_core::engine::Engine) a remote API. A
//! dependency-free HTTP/1.1 [`Server`] over `std::net` (no crates.io
//! access — the same offline discipline as `crates/shims/`) exposes:
//!
//! * `POST /v1/jobs` — dataset text + [`AlgoSpec`] + seed + budget, admitted
//!   through the engine's budget-aware scheduler (full queue ⇒ **429** +
//!   `Retry-After`; running jobs are never shed);
//! * `GET /v1/jobs/{id}/events` — the job's `started` /
//!   strictly-improving `incumbent` / strictly-tightening `lower_bound`
//!   / `finished` lifecycle as chunked NDJSON, replayable for late
//!   subscribers; each `gap` field is the certified optimality gap
//!   `score − lower_bound` (DESIGN.md §11.2);
//! * `GET /v1/jobs/{id}` — status with the best-so-far consensus, the live
//!   incumbent trace, and the full report once done;
//! * `DELETE /v1/jobs/{id}` — cooperative cancel over the wire;
//! * `GET /v1/algorithms` — the registry (the serializer `rawt list --json`
//!   shares);
//! * `GET /healthz` — liveness + scheduler stats.
//!
//! [`client::Client`] is the matching blocking client —
//! `rawt aggregate --remote ADDR` is a thin shell over it, rendering the
//! same report as the local path, bit-identically for fixed seeds
//! (pinned by `tests/service_api.rs`).
//!
//! [`AlgoSpec`]: rank_core::engine::AlgoSpec
//!
//! # In-process quickstart
//!
//! ```
//! use service::client::Client;
//! use service::proto::JobSubmission;
//! use service::server::{Server, ServerConfig};
//!
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
//! let addr = server.local_addr().unwrap().to_string();
//! let shutdown = server.shutdown_handle().unwrap();
//! std::thread::spawn(move || server.serve());
//!
//! let client = Client::new(&addr);
//! let job = client
//!     .submit(&JobSubmission {
//!         algo: Some("Exact".into()),
//!         ..JobSubmission::new("[{A},{D},{B,C}]\n[{A},{B,C},{D}]\n[{D},{A,C},{B}]")
//!     })
//!     .unwrap();
//! let done = client.wait(job.id).unwrap();
//! let report = done.get("report").unwrap();
//! assert_eq!(report.get("score").and_then(|s| s.as_u64()), Some(5));
//! shutdown.shutdown();
//! ```

// Keep every public item documented: the docs CI job runs rustdoc with
// `-D warnings`, so an undocumented addition fails the build instead of
// rotting silently.
#![warn(missing_docs)]

pub mod client;
pub mod fault;
pub mod http;
pub mod journal;
pub mod json;
pub mod proto;
pub mod router;
pub mod server;

pub use client::{Client, ClientError, RetryPolicy, Submitted, SubmittedBatch};
pub use fault::FaultPlan;
pub use journal::{FsyncPolicy, Journal};
pub use json::Json;
pub use proto::{BatchSubmission, JobSubmission};
pub use router::{Router, RouterConfig, RouterShutdown};
pub use server::{Server, ServerConfig, ShutdownHandle};
