//! Fault injection for crash-safety testing (DESIGN.md §12.5).
//!
//! A [`FaultPlan`] is a set of switchable failure hooks compiled into the
//! journal writer and the server's accept loop. In production every hook
//! is off and each check is one relaxed atomic load; the recovery tests
//! (`tests/recovery_api.rs`) and the CI crash smoke turn individual hooks
//! on to manufacture the failures a real deployment only sees rarely:
//!
//! * **torn terminal line** — the journal writer emits only a prefix of a
//!   job's terminal record and stops, simulating a crash mid-`write(2)`
//!   (the torn-tail case the CRC framing exists to detect);
//! * **fsync error** — the first fsync attempt reports failure, driving
//!   the degraded-mode path (journal off, server stays up, `/healthz`
//!   flips to `"degraded"`);
//! * **dropped connections** — the accept loop closes every *k*-th
//!   connection without reading it, exercising the client's retry and
//!   event-stream-reconnect paths against connection loss.
//!
//! In-process tests construct plans programmatically and hand them to
//! [`ServerConfig`](crate::server::ServerConfig); external processes (the
//! CI smoke driving the real `rawt serve` binary) switch the same hooks
//! through the `RAWT_FAULTS` environment variable, a comma-separated list
//! of `torn-terminal`, `fsync-error`, and `drop-accept=K` tokens. SIGKILL
//! needs no hook — it is delivered for real, from outside.

use std::sync::atomic::{AtomicU32, Ordering};

/// Switchable failure hooks for the journal writer and the accept loop.
/// The default plan has every fault off; see the module docs for what
/// each hook simulates.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Tear the next terminal journal record: write only half its bytes,
    /// skip the fsync, and disable the writer (as a crash would).
    pub torn_terminal: bool,
    /// Make the first fsync attempt fail, triggering degraded mode.
    pub fsync_error: bool,
    /// Drop (close unanswered) every `k`-th accepted connection, `0` = off.
    pub drop_accept_every: u32,
    /// Counter behind [`FaultPlan::should_drop_accept`].
    accepted: AtomicU32,
}

impl FaultPlan {
    /// A plan with every fault off (what [`Default`] also returns).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Arm the torn-terminal-record hook (chainable).
    pub fn with_torn_terminal(mut self) -> Self {
        self.torn_terminal = true;
        self
    }

    /// Arm the failing-fsync hook (chainable).
    pub fn with_fsync_error(mut self) -> Self {
        self.fsync_error = true;
        self
    }

    /// Arm the dropped-connection hook for every `k`-th accept (chainable).
    pub fn with_drop_accept(mut self, k: u32) -> Self {
        self.drop_accept_every = k;
        self
    }

    /// Parse the `RAWT_FAULTS` environment variable: a comma-separated
    /// list of `torn-terminal`, `fsync-error`, `drop-accept=K`. Unknown
    /// tokens are ignored (a fault harness must never take the server
    /// down by itself); an unset or empty variable yields the off plan.
    pub fn from_env() -> Self {
        let mut plan = FaultPlan::default();
        let Ok(spec) = std::env::var("RAWT_FAULTS") else {
            return plan;
        };
        for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            match token.split_once('=') {
                None if token == "torn-terminal" => plan.torn_terminal = true,
                None if token == "fsync-error" => plan.fsync_error = true,
                Some(("drop-accept", k)) => {
                    plan.drop_accept_every = k.parse().unwrap_or(0);
                }
                _ => {}
            }
        }
        plan
    }

    /// Whether any hook is armed (used to log a loud warning on startup —
    /// a fault plan in production would be an accident).
    pub fn any(&self) -> bool {
        self.torn_terminal || self.fsync_error || self.drop_accept_every > 0
    }

    /// Accept-loop hook: count this connection and say whether to drop it
    /// (every `drop_accept_every`-th one; never when the hook is off).
    pub fn should_drop_accept(&self) -> bool {
        if self.drop_accept_every == 0 {
            return false;
        }
        let n = self.accepted.fetch_add(1, Ordering::Relaxed) + 1;
        n.is_multiple_of(self.drop_accept_every)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_plan_never_fires() {
        let plan = FaultPlan::none();
        assert!(!plan.any());
        for _ in 0..100 {
            assert!(!plan.should_drop_accept());
        }
    }

    #[test]
    fn drop_accept_fires_every_kth() {
        let plan = FaultPlan {
            drop_accept_every: 3,
            ..FaultPlan::default()
        };
        let pattern: Vec<bool> = (0..6).map(|_| plan.should_drop_accept()).collect();
        assert_eq!(pattern, vec![false, false, true, false, false, true]);
    }
}
