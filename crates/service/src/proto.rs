//! The service protocol: the JSON shapes shared by the HTTP server, the
//! remote client, and the CLI's local `--json` output.
//!
//! One serializer per shape, used by every front end, so `rawt list
//! --json` and `GET /v1/algorithms` can never drift apart, and a remote
//! `rawt aggregate` renders bit-identically to the local path (the
//! service-api test pins that).
//!
//! * [`registry_json`] — the algorithm registry dump;
//! * [`report_json`] / [`ranking_json`] — a [`ConsensusReport`] with its
//!   ranking denormalized back to input labels, trace included;
//! * [`event_json`] — one NDJSON line per anytime [`Event`];
//! * [`JobSubmission`] — the `POST /v1/jobs` body, parsed and validated
//!   ([`JobSubmission::from_json`]) with typed, suggestion-carrying
//!   errors (HTTP 400 material, never a panicking thread).

use crate::json::{escape, Json};
use rank_core::engine::{registry, ConsensusReport, Event, Normalization, TracePoint};
use rank_core::normalize::Normalized;
use rank_core::{Ranking, Universe};
use std::fmt::Write as _;
use std::time::Duration;

/// The algorithm registry as a JSON array — the single serializer behind
/// both `GET /v1/algorithms` and `rawt list --json`.
pub fn registry_json() -> String {
    let mut out = String::from("[");
    for (i, entry) in registry().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let example = (entry.example)();
        let aliases: Vec<String> = entry
            .aliases
            .iter()
            .map(|a| format!("\"{}\"", escape(a)))
            .collect();
        let _ = write!(
            out,
            concat!(
                "{{\"name\":\"{}\",\"class\":\"{}\",\"produces_ties\":{},",
                "\"summary\":\"{}\",\"example\":\"{}\",\"paper_name\":\"{}\",",
                "\"aliases\":[{}]}}"
            ),
            escape(entry.canonical),
            escape(entry.class),
            example.produces_ties(),
            escape(entry.summary),
            escape(&example.to_string()),
            escape(&example.paper_name()),
            aliases.join(",")
        );
    }
    out.push(']');
    out
}

/// A (denormalized) ranking as nested label arrays: `[["A"],["B","C"]]`.
pub fn ranking_json(r: &Ranking, universe: &Universe) -> String {
    let buckets: Vec<String> = r
        .buckets()
        .map(|b| {
            let labels: Vec<String> = b
                .iter()
                .map(|&e| format!("\"{}\"", escape(universe.name(e))))
                .collect();
            format!("[{}]", labels.join(","))
        })
        .collect();
    format!("[{}]", buckets.join(","))
}

/// One incumbent [`TracePoint`] as a JSON object — used by the final
/// report's trace and the live trace of the server's job-status document,
/// so the two can never drift apart. `lower_bound` is the certified
/// bound known at that moment (`null` until a bounding solver proves
/// one); `score − lower_bound` is a true optimality gap.
pub fn trace_point_json(p: &TracePoint) -> String {
    let lb = p.lower_bound.map_or("null".to_owned(), |lb| lb.to_string());
    format!(
        "{{\"elapsed_secs\":{:.6},\"score\":{},\"lower_bound\":{lb}}}",
        p.elapsed.as_secs_f64(),
        p.score
    )
}

/// One [`ConsensusReport`] as a JSON object (outcome + incumbent trace +
/// phase breakdown included), with the ranking denormalized back to
/// input labels. This is the exact shape `rawt aggregate --json` has
/// emitted since the anytime PR; the server's job reports reuse it
/// verbatim.
///
/// The `phases` object is serialized *last* so its `serialize_secs` can
/// be the measured wall-clock of serializing everything before it — the
/// report struct itself carries zero there (serialization hasn't
/// happened yet when the engine builds the report). The journal splices
/// these bytes verbatim on replay, so journaled and re-served reports
/// keep their phase breakdown with no re-measurement.
pub fn report_json(report: &ConsensusReport, norm: &Normalized, universe: &Universe) -> String {
    let serialize_start = std::time::Instant::now();
    let gap = report.gap.map_or("null".to_owned(), |g| format!("{g:.6}"));
    let lower_bound = report
        .lower_bound
        .map_or("null".to_owned(), |lb| lb.to_string());
    let trace: Vec<String> = report.trace.iter().map(trace_point_json).collect();
    let mut out = format!(
        concat!(
            "{{\"algorithm\":\"{}\",\"spec\":\"{}\",\"seed\":{},",
            "\"score\":{},\"gap\":{},\"lower_bound\":{},\"outcome\":\"{}\",",
            "\"lane\":\"{}\",",
            "\"elapsed_secs\":{:.6},\"ranking\":{},\"trace\":[{}],"
        ),
        escape(&report.algorithm()),
        escape(&report.spec.to_string()),
        report.seed,
        report.score,
        gap,
        lower_bound,
        report.outcome,
        report.lane.as_str(),
        report.elapsed.as_secs_f64(),
        ranking_json(&norm.denormalize(&report.ranking), universe),
        trace.join(",")
    );
    let phases = &report.phases;
    let serialize = if phases.serialize.is_zero() {
        serialize_start.elapsed()
    } else {
        phases.serialize
    };
    let _ = write!(
        out,
        concat!(
            "\"phases\":{{\"queue_wait_secs\":{:.6},\"matrix_build_secs\":{:.6},",
            "\"matrix_cached\":{},\"solve_secs\":{:.6},\"serialize_secs\":{:.6}}}}}"
        ),
        phases.queue_wait.as_secs_f64(),
        phases.matrix_build.as_secs_f64(),
        phases.matrix_cached,
        phases.solve.as_secs_f64(),
        serialize.as_secs_f64()
    );
    out
}

/// One anytime [`Event`] as an NDJSON line (no trailing newline — the
/// chunked writer appends it). Incumbent scores strictly decrease and
/// `lower_bound` values strictly increase along a stream; every `gap`
/// field is the certified optimality gap `score − lower_bound`
/// (DESIGN.md §11.2), `null` until a bounding solver proves one.
pub fn event_json(event: &Event) -> String {
    match event {
        Event::Started { spec, seed } => {
            format!(
                "{{\"event\":\"started\",\"spec\":\"{}\",\"seed\":{seed}}}",
                escape(&spec.to_string())
            )
        }
        Event::Incumbent {
            score,
            gap,
            elapsed,
        } => {
            // `gap` is the certified optimality gap `score − lower_bound`
            // (integer cost units), null until a solver proves a bound.
            let gap = gap.map_or("null".to_owned(), |g| g.to_string());
            format!(
                "{{\"event\":\"incumbent\",\"score\":{score},\"gap\":{gap},\"elapsed_secs\":{:.6}}}",
                elapsed.as_secs_f64()
            )
        }
        Event::LowerBound {
            lower_bound,
            gap,
            elapsed,
        } => {
            let gap = gap.map_or("null".to_owned(), |g| g.to_string());
            format!(
                "{{\"event\":\"lower_bound\",\"lower_bound\":{lower_bound},\"gap\":{gap},\"elapsed_secs\":{:.6}}}",
                elapsed.as_secs_f64()
            )
        }
        Event::Finished(outcome) => {
            format!("{{\"event\":\"finished\",\"outcome\":\"{outcome}\"}}")
        }
    }
}

/// An error-response body: `{"error":"...","suggestion":...}`.
pub fn error_json(message: &str, suggestion: Option<&str>) -> String {
    let suggestion = suggestion.map_or("null".to_owned(), |s| format!("\"{}\"", escape(s)));
    format!(
        "{{\"error\":\"{}\",\"suggestion\":{suggestion}}}",
        escape(message)
    )
}

/// Whether `id` is a legal live-dataset name: 1–64 characters from
/// `[A-Za-z0-9_-]`. The alphabet is deliberately filename-safe — each
/// dataset journals to `dataset-{id}.ndjson`, so the id must never be
/// able to traverse paths or collide with the `job-…` family.
pub fn valid_dataset_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 64
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

/// A validated `POST /v1/jobs` body.
///
/// The dataset travels as the repo's text format (one `[{A},{B,C}]`
/// ranking per line, `#` comments allowed) — the same bytes a dataset
/// file holds, so `rawt aggregate --remote FILE` is a straight
/// read-and-post.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSubmission {
    /// Dataset text (see above). Empty when [`JobSubmission::dataset_id`]
    /// names a live dataset instead.
    pub dataset: String,
    /// Name of a live dataset (`PUT /v1/datasets/{id}`) to aggregate
    /// instead of inline text. Mutually exclusive with `dataset`.
    pub dataset_id: Option<String>,
    /// Live mode (DESIGN.md §13.4): after finishing, the job re-solves
    /// whenever its dataset is edited, warm-started from its own previous
    /// consensus, re-emitting version-tagged events until cancelled.
    /// Requires `dataset_id`.
    pub follow: bool,
    /// Algorithm spec string; `None` lets the server's §7.4 guidance pick.
    pub algo: Option<String>,
    /// RNG seed (default 42, matching the CLI).
    pub seed: u64,
    /// Wall-clock budget; also the scheduler's ordering key.
    pub budget: Option<Duration>,
    /// Normalization policy (default unification, §5.1).
    pub normalize: Normalization,
    /// Client-supplied idempotency key: two `POST /v1/jobs` carrying the
    /// same key address the same job — the second returns the first's
    /// identity instead of creating a duplicate. The key survives in the
    /// job's journal record, so a retry after a server crash+restart
    /// still deduplicates (DESIGN.md §12.4).
    pub idempotency_key: Option<String>,
}

/// Rejection of a submission body, with an optional "did you mean"-style
/// suggestion (the server sends both as a 400 [`error_json`] body).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmissionError {
    /// What was wrong.
    pub message: String,
    /// A close valid alternative, when one exists.
    pub suggestion: Option<String>,
}

impl SubmissionError {
    /// A rejection with no suggestion attached.
    pub fn new(message: impl Into<String>) -> Self {
        SubmissionError {
            message: message.into(),
            suggestion: None,
        }
    }
}

impl std::fmt::Display for SubmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)?;
        if let Some(s) = &self.suggestion {
            write!(f, " (did you mean {s:?}?)")?;
        }
        Ok(())
    }
}

impl JobSubmission {
    /// A submission with the defaults the CLI uses (seed 42, no budget,
    /// unification, guidance-picked algorithm).
    pub fn new(dataset: impl Into<String>) -> Self {
        JobSubmission {
            dataset: dataset.into(),
            dataset_id: None,
            follow: false,
            algo: None,
            seed: 42,
            budget: None,
            normalize: Normalization::Unification,
            idempotency_key: None,
        }
    }

    /// A submission addressing a live dataset by id instead of carrying
    /// inline text (CLI defaults otherwise, like [`JobSubmission::new`]).
    pub fn for_dataset(id: impl Into<String>) -> Self {
        JobSubmission {
            dataset_id: Some(id.into()),
            ..JobSubmission::new("")
        }
    }

    /// Parse and validate a request body. Every rejection is typed: bad
    /// JSON, a missing/empty dataset, an unparseable budget (zero,
    /// negative, non-finite), or an unknown normalization. The algorithm
    /// spec itself is validated later against the registry (so its
    /// rejection carries the registry's own suggestion).
    pub fn from_json(body: &str) -> Result<JobSubmission, SubmissionError> {
        let doc =
            Json::parse(body).map_err(|e| SubmissionError::new(format!("request body: {e}")))?;
        if !matches!(doc, Json::Obj(_)) {
            return Err(SubmissionError::new("request body must be a JSON object"));
        }
        let dataset_id = match doc.get("dataset_id") {
            None => None,
            Some(v) if v.is_null() => None,
            Some(v) => {
                let id = v
                    .as_str()
                    .ok_or_else(|| SubmissionError::new("\"dataset_id\" must be a string"))?;
                if !valid_dataset_id(id) {
                    return Err(SubmissionError::new(format!(
                        "\"dataset_id\" {id:?} is invalid (1-64 characters from [A-Za-z0-9_-])"
                    )));
                }
                Some(id.to_owned())
            }
        };
        let dataset = match (doc.get("dataset").filter(|v| !v.is_null()), &dataset_id) {
            (Some(_), Some(_)) => {
                return Err(SubmissionError::new(
                    "provide either \"dataset\" or \"dataset_id\", not both",
                ));
            }
            (None, Some(_)) => String::new(),
            (None, None) => {
                return Err(SubmissionError::new(
                    "missing required field \"dataset\" (or \"dataset_id\")",
                ));
            }
            (Some(v), None) => {
                let text = v
                    .as_str()
                    .ok_or_else(|| SubmissionError::new("\"dataset\" must be a string"))?;
                if text.trim().is_empty() {
                    return Err(SubmissionError::new("\"dataset\" is empty"));
                }
                text.to_owned()
            }
        };
        let follow = match doc.get("follow") {
            None => false,
            Some(v) if v.is_null() => false,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| SubmissionError::new("\"follow\" must be a boolean"))?,
        };
        if follow && dataset_id.is_none() {
            return Err(SubmissionError::new(
                "\"follow\":true requires \"dataset_id\" (only live datasets can be followed)",
            ));
        }
        let algo = match doc.get("algo") {
            None => None,
            Some(v) if v.is_null() => None,
            Some(v) => Some(
                v.as_str()
                    .ok_or_else(|| SubmissionError::new("\"algo\" must be a string"))?
                    .to_owned(),
            ),
        };
        let seed = match doc.get("seed") {
            None => 42,
            Some(v) => v
                .as_u64()
                .ok_or_else(|| SubmissionError::new("\"seed\" must be a non-negative integer"))?,
        };
        let budget = match doc.get("budget_secs") {
            None => None,
            Some(v) if v.is_null() => None,
            Some(v) => {
                let secs = v
                    .as_f64()
                    .ok_or_else(|| SubmissionError::new("\"budget_secs\" must be a number"))?;
                if !(secs.is_finite() && secs > 0.0) {
                    return Err(SubmissionError::new(format!(
                        "\"budget_secs\" must be positive, got {secs}"
                    )));
                }
                // try_from: an absurdly large value must be a 400, not a
                // Duration-overflow panic in the connection thread.
                Some(Duration::try_from_secs_f64(secs).map_err(|_| {
                    SubmissionError::new(format!("\"budget_secs\" {secs} is out of range"))
                })?)
            }
        };
        let normalize = match doc.get("normalize") {
            None => Normalization::Unification,
            Some(v) => {
                let text = v
                    .as_str()
                    .ok_or_else(|| SubmissionError::new("\"normalize\" must be a string"))?;
                text.parse().map_err(|e: String| SubmissionError {
                    message: e,
                    suggestion: None,
                })?
            }
        };
        let idempotency_key = match doc.get("idempotency_key") {
            None => None,
            Some(v) if v.is_null() => None,
            Some(v) => {
                let key = v
                    .as_str()
                    .ok_or_else(|| SubmissionError::new("\"idempotency_key\" must be a string"))?;
                if key.is_empty() || key.len() > 256 {
                    return Err(SubmissionError::new(
                        "\"idempotency_key\" must be 1..=256 characters",
                    ));
                }
                Some(key.to_owned())
            }
        };
        Ok(JobSubmission {
            dataset,
            dataset_id,
            follow,
            algo,
            seed,
            budget,
            normalize,
            idempotency_key,
        })
    }

    /// Serialize for `POST /v1/jobs` (the client side).
    pub fn to_json(&self) -> String {
        let mut out = match &self.dataset_id {
            Some(id) => format!("{{\"dataset_id\":\"{}\"", escape(id)),
            None => format!("{{\"dataset\":\"{}\"", escape(&self.dataset)),
        };
        if self.follow {
            out.push_str(",\"follow\":true");
        }
        if let Some(algo) = &self.algo {
            let _ = write!(out, ",\"algo\":\"{}\"", escape(algo));
        }
        let _ = write!(out, ",\"seed\":{}", self.seed);
        if let Some(budget) = self.budget {
            let _ = write!(out, ",\"budget_secs\":{}", budget.as_secs_f64());
        }
        if let Some(key) = &self.idempotency_key {
            let _ = write!(out, ",\"idempotency_key\":\"{}\"", escape(key));
        }
        let _ = write!(out, ",\"normalize\":\"{}\"}}", self.normalize);
        out
    }
}

/// Upper bound on the specs a single `POST /v1/batches` may carry. A
/// panel bigger than this should be split by the caller; the cap keeps
/// one batch from monopolizing the admission queue (default capacity
/// 128), since batches are admitted all-or-nothing.
pub const MAX_BATCH_SPECS: usize = 32;

/// A validated `POST /v1/batches` body: one dataset, a panel of specs.
///
/// The whole panel is admitted through the scheduler as one unit (all
/// sub-jobs or none) and every sub-job shares the dataset's single
/// `O(m·n²)` cost-matrix build through the engine cache — the service
/// counterpart of [`rank_core::engine::Engine::run_batch`].
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSubmission {
    /// Dataset text, same wire format as [`JobSubmission::dataset`].
    pub dataset: String,
    /// Algorithm spec strings, one sub-job each (1..=[`MAX_BATCH_SPECS`]).
    pub specs: Vec<String>,
    /// RNG seed shared by the panel (per-run streams are decorrelated by
    /// spec name, as in the in-process engine).
    pub seed: u64,
    /// Wall-clock budget applied to each sub-job.
    pub budget: Option<Duration>,
    /// Normalization policy (default unification, §5.1).
    pub normalize: Normalization,
    /// Idempotency key for the batch as a whole, same contract as
    /// [`JobSubmission::idempotency_key`].
    pub idempotency_key: Option<String>,
}

impl BatchSubmission {
    /// A batch with the CLI defaults (seed 42, no budget, unification).
    pub fn new(dataset: impl Into<String>, specs: Vec<String>) -> Self {
        BatchSubmission {
            dataset: dataset.into(),
            specs,
            seed: 42,
            budget: None,
            normalize: Normalization::Unification,
            idempotency_key: None,
        }
    }

    /// Parse and validate a `POST /v1/batches` body; same rejection
    /// discipline as [`JobSubmission::from_json`].
    pub fn from_json(body: &str) -> Result<BatchSubmission, SubmissionError> {
        let doc =
            Json::parse(body).map_err(|e| SubmissionError::new(format!("request body: {e}")))?;
        if !matches!(doc, Json::Obj(_)) {
            return Err(SubmissionError::new("request body must be a JSON object"));
        }
        let dataset = match doc.get("dataset").filter(|v| !v.is_null()) {
            None => {
                return Err(SubmissionError::new(
                    "missing required field \"dataset\" (batches carry inline text)",
                ));
            }
            Some(v) => {
                let text = v
                    .as_str()
                    .ok_or_else(|| SubmissionError::new("\"dataset\" must be a string"))?;
                if text.trim().is_empty() {
                    return Err(SubmissionError::new("\"dataset\" is empty"));
                }
                text.to_owned()
            }
        };
        let specs = match doc.get("specs").filter(|v| !v.is_null()) {
            None => {
                return Err(SubmissionError::new(
                    "missing required field \"specs\" (a non-empty array of algorithm names)",
                ));
            }
            Some(v) => {
                let items = v
                    .as_array()
                    .ok_or_else(|| SubmissionError::new("\"specs\" must be an array"))?;
                if items.is_empty() {
                    return Err(SubmissionError::new("\"specs\" is empty"));
                }
                if items.len() > MAX_BATCH_SPECS {
                    return Err(SubmissionError::new(format!(
                        "\"specs\" holds {} entries; a batch carries at most {MAX_BATCH_SPECS}",
                        items.len()
                    )));
                }
                items
                    .iter()
                    .map(|item| {
                        item.as_str().map(str::to_owned).ok_or_else(|| {
                            SubmissionError::new("\"specs\" entries must be strings")
                        })
                    })
                    .collect::<Result<Vec<String>, SubmissionError>>()?
            }
        };
        let seed = match doc.get("seed") {
            None => 42,
            Some(v) => v
                .as_u64()
                .ok_or_else(|| SubmissionError::new("\"seed\" must be a non-negative integer"))?,
        };
        let budget = match doc.get("budget_secs") {
            None => None,
            Some(v) if v.is_null() => None,
            Some(v) => {
                let secs = v
                    .as_f64()
                    .ok_or_else(|| SubmissionError::new("\"budget_secs\" must be a number"))?;
                if !(secs.is_finite() && secs > 0.0) {
                    return Err(SubmissionError::new(format!(
                        "\"budget_secs\" must be positive, got {secs}"
                    )));
                }
                Some(Duration::try_from_secs_f64(secs).map_err(|_| {
                    SubmissionError::new(format!("\"budget_secs\" {secs} is out of range"))
                })?)
            }
        };
        let normalize = match doc.get("normalize") {
            None => Normalization::Unification,
            Some(v) => {
                let text = v
                    .as_str()
                    .ok_or_else(|| SubmissionError::new("\"normalize\" must be a string"))?;
                text.parse().map_err(|e: String| SubmissionError {
                    message: e,
                    suggestion: None,
                })?
            }
        };
        let idempotency_key = match doc.get("idempotency_key") {
            None => None,
            Some(v) if v.is_null() => None,
            Some(v) => {
                let key = v
                    .as_str()
                    .ok_or_else(|| SubmissionError::new("\"idempotency_key\" must be a string"))?;
                if key.is_empty() || key.len() > 256 {
                    return Err(SubmissionError::new(
                        "\"idempotency_key\" must be 1..=256 characters",
                    ));
                }
                Some(key.to_owned())
            }
        };
        Ok(BatchSubmission {
            dataset,
            specs,
            seed,
            budget,
            normalize,
            idempotency_key,
        })
    }

    /// Serialize for `POST /v1/batches` (the client side).
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"dataset\":\"{}\"", escape(&self.dataset));
        let specs: Vec<String> = self
            .specs
            .iter()
            .map(|s| format!("\"{}\"", escape(s)))
            .collect();
        let _ = write!(out, ",\"specs\":[{}]", specs.join(","));
        let _ = write!(out, ",\"seed\":{}", self.seed);
        if let Some(budget) = self.budget {
            let _ = write!(out, ",\"budget_secs\":{}", budget.as_secs_f64());
        }
        if let Some(key) = &self.idempotency_key {
            let _ = write!(out, ",\"idempotency_key\":\"{}\"", escape(key));
        }
        let _ = write!(out, ",\"normalize\":\"{}\"}}", self.normalize);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submission_roundtrips() {
        let sub = JobSubmission {
            algo: Some("BestOf(KwikSort,20)".to_owned()),
            seed: 7,
            budget: Some(Duration::from_millis(1500)),
            normalize: Normalization::Projection,
            idempotency_key: Some("retry-abc123".to_owned()),
            ..JobSubmission::new("[{A},{B,C}]\n[{B},{A,C}]")
        };
        assert_eq!(JobSubmission::from_json(&sub.to_json()), Ok(sub));
    }

    #[test]
    fn defaults_match_the_cli() {
        let sub = JobSubmission::from_json(r#"{"dataset":"[{A},{B}]"}"#).unwrap();
        assert_eq!(sub.seed, 42);
        assert_eq!(sub.budget, None);
        assert_eq!(sub.normalize, Normalization::Unification);
        assert_eq!(sub.algo, None);
        assert_eq!(sub.idempotency_key, None);
    }

    #[test]
    fn rejects_bad_budgets_and_truncated_bodies() {
        for (body, needle) in [
            (r#"{"dataset":"[{A}]","budget_secs":0}"#, "positive"),
            (r#"{"dataset":"[{A}]","budget_secs":-3}"#, "positive"),
            (r#"{"dataset":"[{A}]","budget_secs":1e20}"#, "out of range"),
            (r#"{"dataset":"[{A}]","budget_secs":"x"}"#, "number"),
            (r#"{"dataset":"[{A}]""#, "request body"),
            (r#"{"algo":"Borda"}"#, "dataset"),
            (r#"{"dataset":""}"#, "empty"),
            (r#"{"dataset":"[{A}]","normalize":"sideways"}"#, "unknown"),
            (r#"{"dataset":"[{A}]","seed":-1}"#, "non-negative"),
            (r#"{"dataset":"[{A}]","idempotency_key":""}"#, "1..=256"),
            (r#"{"dataset":"[{A}]","idempotency_key":7}"#, "string"),
        ] {
            let err = JobSubmission::from_json(body).expect_err(body);
            assert!(
                err.message.contains(needle),
                "{body}: {} should mention {needle:?}",
                err.message
            );
        }
    }

    #[test]
    fn dataset_id_submissions_roundtrip_and_validate() {
        let sub = JobSubmission {
            follow: true,
            seed: 9,
            ..JobSubmission::for_dataset("live-1")
        };
        assert_eq!(JobSubmission::from_json(&sub.to_json()), Ok(sub));

        for (body, needle) in [
            (r#"{"dataset_id":"a b"}"#, "invalid"),
            (r#"{"dataset_id":"../x"}"#, "invalid"),
            (r#"{"dataset_id":""}"#, "invalid"),
            (r#"{"dataset_id":7}"#, "string"),
            (r#"{"dataset":"[{A}]","dataset_id":"d"}"#, "not both"),
            (r#"{"dataset":"[{A}]","follow":true}"#, "dataset_id"),
            (r#"{"dataset_id":"d","follow":"yes"}"#, "boolean"),
            (r#"{}"#, "dataset"),
        ] {
            let err = JobSubmission::from_json(body).expect_err(body);
            assert!(
                err.message.contains(needle),
                "{body}: {} should mention {needle:?}",
                err.message
            );
        }
        assert!(valid_dataset_id("ok_Name-42"));
        assert!(!valid_dataset_id(&"x".repeat(65)));
    }

    #[test]
    fn batch_submission_roundtrips_and_validates() {
        let sub = BatchSubmission {
            seed: 11,
            budget: Some(Duration::from_millis(2500)),
            normalize: Normalization::Projection,
            idempotency_key: Some("panel-1".to_owned()),
            ..BatchSubmission::new(
                "[{A},{B,C}]\n[{B},{A,C}]",
                vec!["Exact".to_owned(), "BioConsert".to_owned()],
            )
        };
        assert_eq!(BatchSubmission::from_json(&sub.to_json()), Ok(sub));

        let too_many = format!(
            r#"{{"dataset":"[{{A}}]","specs":[{}]}}"#,
            vec![r#""Borda""#; MAX_BATCH_SPECS + 1].join(",")
        );
        for (body, needle) in [
            (r#"{"specs":["Borda"]}"#, "dataset"),
            (r#"{"dataset":"[{A}]"}"#, "specs"),
            (r#"{"dataset":"[{A}]","specs":[]}"#, "empty"),
            (r#"{"dataset":"[{A}]","specs":"Borda"}"#, "array"),
            (r#"{"dataset":"[{A}]","specs":[7]}"#, "strings"),
            (
                r#"{"dataset":"[{A}]","specs":["B"],"budget_secs":0}"#,
                "positive",
            ),
            (too_many.as_str(), "at most"),
        ] {
            let err = BatchSubmission::from_json(body).expect_err(body);
            assert!(
                err.message.contains(needle),
                "{body}: {} should mention {needle:?}",
                err.message
            );
        }
    }

    #[test]
    fn registry_json_is_valid_and_complete() {
        let doc = Json::parse(&registry_json()).unwrap();
        let entries = doc.as_array().unwrap();
        assert_eq!(entries.len(), registry().len());
        assert!(entries.iter().any(|e| {
            e.get("name").and_then(Json::as_str) == Some("BioConsert")
                && e.get("produces_ties").and_then(Json::as_bool) == Some(true)
        }));
    }
}
