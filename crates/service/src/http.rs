//! A deliberately small HTTP/1.1 layer over `std::net`: request parsing,
//! response writing, and chunked transfer encoding for NDJSON streams.
//!
//! No crates.io access means no hyper/axum (the `crates/shims` offline
//! discipline); the service speaks just enough HTTP/1.1 for its own
//! protocol, strictly: `GET`/`POST`/`DELETE`, `Content-Length` bodies
//! with a hard size cap, persistent connections for sized exchanges
//! (HTTP/1.1 keep-alive; `Connection: close` on request), and chunked
//! responses for event streams (always close — a stream is the
//! connection's last exchange). Anything outside that — oversized bodies,
//! truncated requests, unknown methods — maps to a typed [`HttpError`]
//! the server turns into a 4xx, never a panic.

use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest accepted request body (1 MiB — datasets at the service's
/// target sizes are a few hundred KiB of text at most).
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Largest accepted request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 << 10;

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The connection died or timed out mid-request.
    Io(io::Error),
    /// The bytes did not form a valid HTTP/1.1 request.
    Malformed(String),
    /// The declared `Content-Length` exceeds [`MAX_BODY_BYTES`].
    BodyTooLarge(usize),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "connection error: {e}"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::BodyTooLarge(n) => {
                write!(f, "request body of {n} bytes exceeds {MAX_BODY_BYTES}")
            }
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET` / `POST` / `DELETE` / … (uppercased as received).
    pub method: String,
    /// The path, query string stripped (the protocol uses none).
    pub path: String,
    /// Header name/value pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` was given).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client allows the connection to be reused after this
    /// exchange (HTTP/1.1 default keep-alive; an explicit
    /// `Connection: close` opts out).
    pub fn keep_alive(&self) -> bool {
        !self
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Read one request from `reader` (a buffered connection).
pub fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, HttpError> {
    let mut head = String::new();
    // Request line + headers, CRLF-terminated, blank line ends the head.
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-head".into()));
        }
        if head.len() + line.len() > MAX_HEAD_BYTES {
            return Err(HttpError::Malformed("request head too large".into()));
        }
        if line == "\r\n" || line == "\n" {
            break;
        }
        head.push_str(&line);
        if head.lines().count() == 1 && !head.contains("HTTP/") {
            // Keep reading: the request line may span reads only via the
            // BufReader, which read_line already handles; this guard is
            // about plainly non-HTTP openings.
            if head.len() > 256 {
                return Err(HttpError::Malformed("not an HTTP request".into()));
            }
        }
    }
    let mut lines = head.lines();
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request".into()))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing method".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported version {version:?}"
        )));
    }
    let path = target.split('?').next().unwrap_or(target).to_owned();
    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("bad Content-Length {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::BodyTooLarge(content_length));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|_| {
        // A short body is a *truncated* request — the declared length
        // never arrived — which the server reports as a client error.
        HttpError::Malformed(format!(
            "body shorter than the declared Content-Length of {content_length}"
        ))
    })?;
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// Standard reason phrase for the status codes the protocol uses.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        401 => "Unauthorized",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write one complete (non-streamed) response and flush. `extra_headers`
/// are emitted verbatim (e.g. `("Retry-After", "2")`). `keep_alive`
/// chooses the `Connection` header — the server passes the client's own
/// preference through, so an agreed-on connection serves many exchanges.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    // One write for head + body: a sized response must never straddle a
    // Nagle boundary on a keep-alive connection.
    let mut frame = head.into_bytes();
    frame.extend_from_slice(body);
    stream.write_all(&frame)?;
    stream.flush()
}

/// A chunked-transfer response writer for NDJSON event streams: one
/// chunk per line, flushed immediately so subscribers see incumbents as
/// they land, closed with the zero-length terminator.
pub struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedWriter<'a> {
    /// Write the response head (status 200, `Transfer-Encoding: chunked`)
    /// and return the chunk writer.
    pub fn begin(stream: &'a mut TcpStream, content_type: &str) -> io::Result<Self> {
        let head = format!(
            "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\nCache-Control: no-store\r\n\r\n"
        );
        stream.write_all(head.as_bytes())?;
        stream.flush()?;
        Ok(ChunkedWriter { stream })
    }

    /// Write one NDJSON line (the newline is appended here) as a chunk.
    pub fn write_line(&mut self, line: &str) -> io::Result<()> {
        let payload_len = line.len() + 1;
        write!(self.stream, "{payload_len:x}\r\n{line}\n\r\n")?;
        self.stream.flush()
    }

    /// Terminate the chunk stream.
    pub fn finish(self) -> io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

/// Client side: write one request (used by the CLI's `--remote` path and
/// the tests). `body` is sent with a `Content-Length`; `None` sends none.
/// `keep_alive` asks the server to hold the connection open for the next
/// exchange (the pooled client sends it for every sized exchange;
/// streaming requests send `close`, since a chunked stream is always the
/// connection's last response).
pub fn write_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    host: &str,
    body: Option<(&str, &[u8])>,
    keep_alive: bool,
) -> io::Result<()> {
    write_request_with_headers(stream, method, path, host, &[], body, keep_alive)
}

/// [`write_request`] with extra request headers emitted verbatim — the
/// authenticated client sends `("Authorization", "Bearer …")` here, and
/// the router forwards a worker-bound request's credentials the same way.
pub fn write_request_with_headers(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    host: &str,
    extra_headers: &[(&str, String)],
    body: Option<(&str, &[u8])>,
    keep_alive: bool,
) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut head =
        format!("{method} {path} HTTP/1.1\r\nHost: {host}\r\nConnection: {connection}\r\n");
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    if let Some((content_type, payload)) = body {
        head.push_str(&format!(
            "Content-Type: {content_type}\r\nContent-Length: {}\r\n",
            payload.len()
        ));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    if let Some((_, payload)) = body {
        stream.write_all(payload)?;
    }
    stream.flush()
}

/// Client side: a parsed response head plus a reader positioned at the
/// body. The body is either sized (`Content-Length`) or chunked.
pub struct ClientResponse {
    /// The status code.
    pub status: u16,
    /// Headers, names lowercased.
    pub headers: Vec<(String, String)>,
    reader: BufReader<TcpStream>,
    chunked: bool,
    content_length: Option<usize>,
}

impl ClientResponse {
    /// Read the status line and headers from `stream`.
    pub fn read(stream: TcpStream) -> Result<Self, HttpError> {
        Self::read_from(BufReader::new(stream))
    }

    /// [`ClientResponse::read`] over an already-buffered connection — the
    /// entry point for a pooled keep-alive connection, whose reader must
    /// survive across exchanges (a fresh `BufReader` would drop any bytes
    /// the old one had buffered past the previous body).
    pub fn read_from(mut reader: BufReader<TcpStream>) -> Result<Self, HttpError> {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            // The server closed without answering (crash, drop-accept
            // fault). An I/O error, not a protocol one: this is the
            // retryable "connection dropped" case for the client.
            return Err(HttpError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before a response arrived",
            )));
        }
        let mut parts = line.split_whitespace();
        let version = parts
            .next()
            .ok_or_else(|| HttpError::Malformed("empty response".into()))?;
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::Malformed(format!("bad version {version:?}")));
        }
        let status: u16 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| HttpError::Malformed("bad status code".into()))?;
        let mut headers = Vec::new();
        loop {
            let mut header_line = String::new();
            let n = reader.read_line(&mut header_line)?;
            if n == 0 {
                return Err(HttpError::Malformed("connection closed mid-head".into()));
            }
            if header_line == "\r\n" || header_line == "\n" {
                break;
            }
            if let Some((name, value)) = header_line.split_once(':') {
                headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
            }
        }
        let chunked = headers
            .iter()
            .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
        let content_length = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse().ok());
        Ok(ClientResponse {
            status,
            headers,
            reader,
            chunked,
            content_length,
        })
    }

    /// First value of `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Read the entire body as text (sized, chunked, or read-to-end).
    pub fn body_string(self) -> Result<String, HttpError> {
        Ok(self.into_body_and_reader()?.0)
    }

    /// Read the entire body as text and return the connection's reader
    /// when it is reusable: the body was sized (`Content-Length`) and the
    /// server did not answer `Connection: close`. `None` means the
    /// connection is spent (chunked or read-to-end bodies consume it; a
    /// `close` response will be shut by the server). This is what the
    /// pooled client uses to put a keep-alive connection back.
    pub fn into_body_and_reader(
        mut self,
    ) -> Result<(String, Option<BufReader<TcpStream>>), HttpError> {
        let mut bytes = Vec::new();
        let mut reusable = false;
        if self.chunked {
            while let Some(chunk) = read_chunk(&mut self.reader)? {
                bytes.extend_from_slice(&chunk);
            }
        } else if let Some(n) = self.content_length {
            bytes.resize(n, 0);
            self.reader.read_exact(&mut bytes)?;
            reusable = !self
                .headers
                .iter()
                .any(|(k, v)| k == "connection" && v.eq_ignore_ascii_case("close"));
        } else {
            self.reader.read_to_end(&mut bytes)?;
        }
        let text = String::from_utf8(bytes)
            .map_err(|_| HttpError::Malformed("body is not UTF-8".into()))?;
        Ok((text, reusable.then_some(self.reader)))
    }

    /// Iterate the NDJSON lines of a chunked body as they arrive. Ends on
    /// the chunk terminator (or connection close).
    pub fn lines(self) -> NdjsonLines {
        NdjsonLines {
            reader: self.reader,
            chunked: self.chunked,
            buffer: Vec::new(),
            done: false,
        }
    }
}

/// Read one chunk; `Ok(None)` on the zero-length terminator.
fn read_chunk(reader: &mut BufReader<TcpStream>) -> Result<Option<Vec<u8>>, HttpError> {
    let mut size_line = String::new();
    if reader.read_line(&mut size_line)? == 0 {
        return Ok(None); // connection closed: treat as end of stream
    }
    let size = usize::from_str_radix(size_line.trim(), 16)
        .map_err(|_| HttpError::Malformed(format!("bad chunk size {size_line:?}")))?;
    if size == 0 {
        // Consume the trailing CRLF after the terminator, if present.
        let mut crlf = String::new();
        let _ = reader.read_line(&mut crlf);
        return Ok(None);
    }
    let mut chunk = vec![0u8; size];
    reader.read_exact(&mut chunk)?;
    let mut crlf = [0u8; 2];
    reader.read_exact(&mut crlf)?;
    Ok(Some(chunk))
}

/// Streaming line iterator over a chunked NDJSON body.
pub struct NdjsonLines {
    reader: BufReader<TcpStream>,
    chunked: bool,
    buffer: Vec<u8>,
    done: bool,
}

impl Iterator for NdjsonLines {
    type Item = Result<String, HttpError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            // A complete line already buffered?
            if let Some(nl) = self.buffer.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buffer.drain(..=nl).collect();
                let text = String::from_utf8_lossy(&line).trim_end().to_owned();
                if text.is_empty() {
                    continue;
                }
                return Some(Ok(text));
            }
            if self.done {
                // Flush a trailing unterminated line, if any.
                if self.buffer.is_empty() {
                    return None;
                }
                let text = String::from_utf8_lossy(&self.buffer).trim_end().to_owned();
                self.buffer.clear();
                if text.is_empty() {
                    return None;
                }
                return Some(Ok(text));
            }
            if self.chunked {
                match read_chunk(&mut self.reader) {
                    Ok(Some(chunk)) => self.buffer.extend_from_slice(&chunk),
                    Ok(None) => self.done = true,
                    Err(e) => {
                        self.done = true;
                        return Some(Err(e));
                    }
                }
            } else {
                let mut byte_buf = [0u8; 4096];
                match self.reader.read(&mut byte_buf) {
                    Ok(0) => self.done = true,
                    Ok(n) => self.buffer.extend_from_slice(&byte_buf[..n]),
                    Err(e) => {
                        self.done = true;
                        return Some(Err(e.into()));
                    }
                }
            }
        }
    }
}
