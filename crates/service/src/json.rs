//! A minimal JSON value: parse, navigate, serialize.
//!
//! The build environment has no crates.io access, so serde is unavailable
//! (the same offline discipline as `crates/shims/`). The service's wire
//! bodies are small and flat, so this hand-rolled tree — strict enough to
//! reject the truncated/malformed bodies the API tests throw at it —
//! covers everything the protocol needs: request parsing on the server,
//! response parsing in the client, and re-serialization when the CLI
//! reassembles a remote report into its local `--json` envelope.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`; the protocol's integers
    /// are well within the 2⁵³ exact range).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is not significant anywhere in the protocol,
    /// so a sorted map keeps comparisons and re-serialization stable.
    Obj(BTreeMap<String, Json>),
}

/// Parse failure: byte offset plus what was expected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse one complete JSON document (trailing garbage is an error —
    /// a truncated body must not silently parse as its prefix).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err(pos, "trailing characters after the document"));
        }
        Ok(value)
    }

    /// Object field access; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => Some(*x as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

impl fmt::Display for Json {
    /// Compact serialization (no whitespace), the wire format everywhere.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(x) => {
                if x.fract() == 0.0 && x.abs() <= 2f64.powi(53) {
                    write!(f, "{}", *x as i64)
                } else {
                    write!(f, "{x}")
                }
            }
            Json::Str(s) => write!(f, "\"{}\"", escape(s)),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(map) => {
                write!(f, "{{")?;
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "\"{}\":{value}", escape(key))?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Escape a string for embedding between JSON quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn err(offset: usize, message: &str) -> JsonError {
    JsonError {
        offset,
        message: message.to_owned(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(_) => Err(err(*pos, "expected a JSON value")),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(err(*pos, &format!("expected {literal:?}")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ASCII");
    text.parse::<f64>()
        .ok()
        .filter(|x| x.is_finite())
        .map(Json::Num)
        .ok_or_else(|| err(start, "malformed number"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    None => return Err(err(*pos, "unterminated escape")),
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = parse_hex4(bytes, *pos + 1)
                            .ok_or_else(|| err(*pos, "expected four hex digits after \\u"))?;
                        *pos += 4;
                        // Surrogate pair: a high surrogate must be followed
                        // by an escaped low surrogate.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            if bytes.get(*pos + 1) == Some(&b'\\')
                                && bytes.get(*pos + 2) == Some(&b'u')
                            {
                                let low = parse_hex4(bytes, *pos + 3)
                                    .ok_or_else(|| err(*pos, "bad low surrogate"))?;
                                *pos += 6;
                                let combined = 0x10000
                                    + ((code - 0xD800) << 10)
                                    + (low
                                        .checked_sub(0xDC00)
                                        .ok_or_else(|| err(*pos, "bad low surrogate"))?);
                                char::from_u32(combined)
                                    .ok_or_else(|| err(*pos, "invalid surrogate pair"))?
                            } else {
                                return Err(err(*pos, "lone high surrogate"));
                            }
                        } else {
                            char::from_u32(code).ok_or_else(|| err(*pos, "invalid codepoint"))?
                        };
                        out.push(c);
                    }
                    Some(_) => return Err(err(*pos, "unknown escape")),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => return Err(err(*pos, "raw control character in string")),
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so the
                // bytes are valid UTF-8).
                let rest = std::str::from_utf8(&bytes[*pos..]).expect("input is valid UTF-8");
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Option<u32> {
    let chunk = bytes.get(at..at + 4)?;
    let text = std::str::from_utf8(chunk).ok()?;
    u32::from_str_radix(text, 16).ok()
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    debug_assert_eq!(bytes[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']' in array")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    debug_assert_eq!(bytes[*pos], b'{');
    *pos += 1;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected a string key"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(err(*pos, "expected ':' after key"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(err(*pos, "expected ',' or '}' in object")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_the_protocol_shapes() {
        let doc = r#"{"dataset":"[{A},{B,C}]\n[{B},{A,C}]","seed":7,"budget_secs":1.5,"algo":"BestOf(KwikSort,20)","flag":true,"nothing":null,"arr":[1,-2,3.25]}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(
            v.get("dataset").and_then(Json::as_str),
            Some("[{A},{B,C}]\n[{B},{A,C}]")
        );
        assert_eq!(v.get("seed").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("budget_secs").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("flag").and_then(Json::as_bool), Some(true));
        assert!(v.get("nothing").unwrap().is_null());
        assert_eq!(v.get("arr").and_then(Json::as_array).unwrap().len(), 3);
        // Display form reparses to the same tree.
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn rejects_truncated_and_trailing_input() {
        for bad in [
            r#"{"dataset": "abc"#,
            r#"{"a":1"#,
            r#"[1,2"#,
            r#""unterminated"#,
            r#"{"a":1} extra"#,
            r#"{"a":}"#,
            r#"{a:1}"#,
            "",
            "nul",
            "1e999",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn unescapes_and_escapes() {
        let v = Json::parse(r#""a\nb\t\"c\" é 😀""#).unwrap();
        assert_eq!(v.as_str(), Some("a\nb\t\"c\" é 😀"));
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
