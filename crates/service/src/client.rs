//! A minimal blocking client for the aggregation service — what
//! `rawt aggregate --remote` and the service tests speak.
//!
//! One TCP connection per exchange (the server's `Connection: close`
//! contract): submit, then open a second connection to stream events,
//! then a third for the final status. The client never interprets
//! reports beyond parsing them as [`Json`]; rendering stays with the
//! caller so the CLI can reuse its local formatting.

use crate::http::{self, ClientResponse, HttpError, NdjsonLines};
use crate::json::Json;
use crate::proto::JobSubmission;
use std::fmt;
use std::net::TcpStream;
use std::time::Duration;

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Could not reach or speak to the server.
    Transport(HttpError),
    /// The server answered with a non-2xx status. `retry_after_secs` is
    /// filled from the `Retry-After` header when present (429 shedding).
    Status {
        /// The HTTP status code.
        status: u16,
        /// The response body (usually an [`error_json`] object).
        ///
        /// [`error_json`]: crate::proto::error_json
        body: String,
        /// Parsed `Retry-After` header, if the server sent one.
        retry_after_secs: Option<u64>,
    },
    /// A 2xx response that did not parse as the expected JSON.
    Malformed(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "{e}"),
            ClientError::Status {
                status,
                body,
                retry_after_secs,
            } => {
                let message = Json::parse(body)
                    .ok()
                    .and_then(|v| v.get("error").and_then(Json::as_str).map(str::to_owned))
                    .unwrap_or_else(|| body.clone());
                write!(f, "server returned {status}: {message}")?;
                if let Some(secs) = retry_after_secs {
                    write!(f, " (retry after {secs}s)")?;
                }
                Ok(())
            }
            ClientError::Malformed(m) => write!(f, "unexpected server response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<HttpError> for ClientError {
    fn from(e: HttpError) -> Self {
        ClientError::Transport(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Transport(HttpError::Io(e))
    }
}

/// A submitted job's identity, as returned by `POST /v1/jobs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Submitted {
    /// The job id; all other endpoints key on it.
    pub id: u64,
    /// The spec the server resolved (echoes the request's, or the
    /// guidance pick when none was given).
    pub spec: String,
    /// Elements after normalization.
    pub n: usize,
    /// Rankings after normalization.
    pub m: usize,
}

/// A blocking client bound to one server address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
}

impl Client {
    /// A client for `addr` — `host:port`, with or without an `http://`
    /// prefix (trailing slashes are ignored).
    pub fn new(addr: &str) -> Self {
        let addr = addr
            .trim()
            .trim_start_matches("http://")
            .trim_end_matches('/')
            .to_owned();
        Client { addr }
    }

    fn connect(&self) -> Result<TcpStream, ClientError> {
        let stream = TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(600)))?;
        Ok(stream)
    }

    fn exchange(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<ClientResponse, ClientError> {
        let mut stream = self.connect()?;
        http::write_request(
            &mut stream,
            method,
            path,
            &self.addr,
            body.map(|b| ("application/json", b.as_bytes())),
        )?;
        Ok(ClientResponse::read(stream)?)
    }

    /// One non-streaming exchange, JSON in / JSON out; non-2xx statuses
    /// become [`ClientError::Status`].
    fn json_exchange(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<Json, ClientError> {
        let response = self.exchange(method, path, body)?;
        let status = response.status;
        let retry_after_secs = response.header("retry-after").and_then(|v| v.parse().ok());
        let text = response.body_string()?;
        if !(200..300).contains(&status) {
            return Err(ClientError::Status {
                status,
                body: text,
                retry_after_secs,
            });
        }
        Json::parse(&text).map_err(|e| ClientError::Malformed(e.to_string()))
    }

    /// `POST /v1/jobs`.
    pub fn submit(&self, submission: &JobSubmission) -> Result<Submitted, ClientError> {
        let doc = self.json_exchange("POST", "/v1/jobs", Some(&submission.to_json()))?;
        let field = |key: &str| {
            doc.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| ClientError::Malformed(format!("missing {key:?} in {doc}")))
        };
        Ok(Submitted {
            id: field("id")?,
            spec: doc
                .get("spec")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_owned(),
            n: field("n")? as usize,
            m: field("m")? as usize,
        })
    }

    /// `GET /v1/jobs/{id}/events`: the streamed NDJSON lines, parsed,
    /// in emission order, live until the job finishes.
    pub fn events(&self, id: u64) -> Result<EventStream, ClientError> {
        let response = self.exchange("GET", &format!("/v1/jobs/{id}/events"), None)?;
        if response.status != 200 {
            let status = response.status;
            let body = response.body_string()?;
            return Err(ClientError::Status {
                status,
                body,
                retry_after_secs: None,
            });
        }
        Ok(EventStream {
            lines: response.lines(),
        })
    }

    /// `GET /v1/jobs/{id}`: the status document (state, best-so-far,
    /// trace, final report once done).
    pub fn status(&self, id: u64) -> Result<Json, ClientError> {
        self.json_exchange("GET", &format!("/v1/jobs/{id}"), None)
    }

    /// [`Client::status`], but the raw response body — for callers that
    /// must preserve the server's exact serialization (the CLI's remote
    /// `--json` splices the report out of it byte-for-byte, so local and
    /// remote output run through one serializer).
    pub fn status_raw(&self, id: u64) -> Result<String, ClientError> {
        let response = self.exchange("GET", &format!("/v1/jobs/{id}"), None)?;
        let status = response.status;
        let text = response.body_string()?;
        if !(200..300).contains(&status) {
            return Err(ClientError::Status {
                status,
                body: text,
                retry_after_secs: None,
            });
        }
        Ok(text)
    }

    /// `DELETE /v1/jobs/{id}`: request cooperative cancellation.
    pub fn cancel(&self, id: u64) -> Result<Json, ClientError> {
        self.json_exchange("DELETE", &format!("/v1/jobs/{id}"), None)
    }

    /// `GET /v1/algorithms`.
    pub fn algorithms(&self) -> Result<Json, ClientError> {
        self.json_exchange("GET", "/v1/algorithms", None)
    }

    /// `GET /healthz`.
    pub fn healthz(&self) -> Result<Json, ClientError> {
        self.json_exchange("GET", "/healthz", None)
    }

    /// Block until the job is done and return its status document (poll +
    /// event-follow free: this just streams events to completion, then
    /// fetches the final status).
    pub fn wait(&self, id: u64) -> Result<Json, ClientError> {
        for event in self.events(id)? {
            let _ = event?;
        }
        let status = self.status(id)?;
        if status.get("state").and_then(Json::as_str) == Some("done") {
            Ok(status)
        } else {
            Err(ClientError::Malformed(format!(
                "event stream ended but job {id} is not done: {status}"
            )))
        }
    }
}

/// Iterator over a job's streamed events, each parsed as [`Json`].
pub struct EventStream {
    lines: NdjsonLines,
}

impl Iterator for EventStream {
    type Item = Result<Json, ClientError>;

    fn next(&mut self) -> Option<Self::Item> {
        let line = match self.lines.next()? {
            Ok(line) => line,
            Err(e) => return Some(Err(e.into())),
        };
        Some(Json::parse(&line).map_err(|e| ClientError::Malformed(format!("{e} in {line:?}"))))
    }
}
