//! A minimal blocking client for the aggregation service — what
//! `rawt aggregate --remote` and the service tests speak.
//!
//! Sized exchanges (submit, status, PATCH, …) reuse one pooled
//! keep-alive connection: the first exchange dials, later ones ride the
//! same socket, and a stale pooled connection (server restarted, idle
//! timeout) is transparently redialed once. Streaming endpoints
//! (`…/events`) still open their own `Connection: close` socket — a
//! chunked stream is its connection's last response. The client never
//! interprets reports beyond parsing them as [`Json`]; rendering stays
//! with the caller so the CLI can reuse its local formatting.
//!
//! # Retries (DESIGN.md §12.4)
//!
//! Transient failures — a refused or dropped connection, a 429 from the
//! admission queue, a 503 from a draining server — are worth retrying;
//! anything else (400s, parse errors) is not. [`RetryPolicy`] encodes
//! when and how long to wait: the server's `Retry-After` hint when one
//! came, otherwise jittered exponential backoff (deterministic for a
//! fixed seed, like everything else in this codebase).
//! [`Client::submit_with_retry`] retries `POST /v1/jobs` under a policy;
//! pair it with a [`JobSubmission::idempotency_key`] so a retry that
//! races a crash can never duplicate the job — the server answers the
//! second attempt with the job the first one created, even across a
//! restart. [`Client::follow_events`] is the streaming analogue: an
//! event iterator that survives dropped connections by reconnecting and
//! skipping the lines it has already delivered (the server's replay log
//! re-serves every stream from the start, which is what makes the skip
//! count sufficient).

use crate::http::{self, ClientResponse, HttpError, NdjsonLines};
use crate::json::Json;
use crate::proto::{BatchSubmission, JobSubmission};
use std::fmt;
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Idle keep-alive connections a client retains. Small on purpose: a
/// blocking caller uses one socket at a time, so the pool only matters
/// when clones share the client across threads (the load harness, the
/// router's per-worker clients) — four sockets absorb that burstiness
/// without hoarding server-side connection threads.
const POOL_CAP: usize = 4;

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Could not reach or speak to the server.
    Transport(HttpError),
    /// The server answered with a non-2xx status. `retry_after_secs` is
    /// filled from the `Retry-After` header when present (429 shedding).
    Status {
        /// The HTTP status code.
        status: u16,
        /// The response body (usually an [`error_json`] object).
        ///
        /// [`error_json`]: crate::proto::error_json
        body: String,
        /// Parsed `Retry-After` header, if the server sent one.
        retry_after_secs: Option<u64>,
    },
    /// A 2xx response that did not parse as the expected JSON.
    Malformed(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "{e}"),
            ClientError::Status {
                status,
                body,
                retry_after_secs,
            } => {
                let message = Json::parse(body)
                    .ok()
                    .and_then(|v| v.get("error").and_then(Json::as_str).map(str::to_owned))
                    .unwrap_or_else(|| body.clone());
                write!(f, "server returned {status}: {message}")?;
                if let Some(secs) = retry_after_secs {
                    write!(f, " (retry after {secs}s)")?;
                }
                Ok(())
            }
            ClientError::Malformed(m) => write!(f, "unexpected server response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<HttpError> for ClientError {
    fn from(e: HttpError) -> Self {
        ClientError::Transport(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Transport(HttpError::Io(e))
    }
}

/// When and for how long to retry transient failures (connection loss,
/// 429 shedding, 503 draining). Delays follow the server's `Retry-After`
/// hint when one was sent, otherwise jittered exponential backoff —
/// deterministic for a fixed `seed`, so tests can assert exact schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, the first one included (`1` = never retry).
    pub max_attempts: u32,
    /// Backoff for the first retry; doubles per further attempt.
    pub base_delay: Duration,
    /// Ceiling for any single delay, hinted or computed.
    pub max_delay: Duration,
    /// Seed for the jitter (xorshift; no RNG dependency).
    pub seed: u64,
}

impl Default for RetryPolicy {
    /// Five attempts, 250 ms base, 10 s cap — a few seconds of patience
    /// against a restarting server without stalling interactive use.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(250),
            max_delay: Duration::from_secs(10),
            seed: 0x5eed,
        }
    }
}

impl RetryPolicy {
    /// The single-attempt policy: fail on the first transient error,
    /// exactly like the plain [`Client::submit`] path.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The delay before retry number `attempt` (1-based). A server hint
    /// wins (clamped to [`RetryPolicy::max_delay`]); otherwise
    /// exponential backoff with deterministic jitter in the upper half
    /// of the window, so concurrent clients spread out.
    pub fn delay(&self, attempt: u32, hint_secs: Option<u64>) -> Duration {
        if let Some(secs) = hint_secs {
            return Duration::from_secs(secs.max(1)).min(self.max_delay);
        }
        let window = self
            .base_delay
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16))
            .min(self.max_delay);
        let half = window / 2;
        // xorshift64 on (seed, attempt): stable across runs, different
        // across attempts and differently-seeded clients.
        let mut x = (self.seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let jitter_nanos = x % (u128::min(half.as_nanos(), u128::from(u64::MAX)) as u64 + 1);
        half + Duration::from_nanos(jitter_nanos)
    }
}

/// One retry about to happen — handed to the caller's notifier so a CLI
/// can print "server busy, retrying in 2s (attempt 2/5)" instead of
/// dying silently or invisibly stalling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryNotice {
    /// Which retry this is (1-based; attempt 1 already failed).
    pub attempt: u32,
    /// The policy's total attempt budget.
    pub max_attempts: u32,
    /// How long the client is about to sleep.
    pub delay: Duration,
    /// Why: `"server busy"` (429/503) or `"server unreachable"`.
    pub reason: &'static str,
}

/// Classify an error: `Some(reason)` if retrying can help, `None` if it
/// cannot (4xx validation errors, malformed responses).
fn retry_reason(error: &ClientError) -> Option<&'static str> {
    match error {
        ClientError::Transport(HttpError::Io(_)) => Some("server unreachable"),
        ClientError::Status { status, .. } if *status == 429 || *status == 503 => {
            Some("server busy")
        }
        _ => None,
    }
}

/// The server's `Retry-After` hint, when the error carried one.
fn retry_hint(error: &ClientError) -> Option<u64> {
    match error {
        ClientError::Status {
            retry_after_secs, ..
        } => *retry_after_secs,
        _ => None,
    }
}

/// A submitted job's identity, as returned by `POST /v1/jobs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Submitted {
    /// The job id; all other endpoints key on it.
    pub id: u64,
    /// The spec the server resolved (echoes the request's, or the
    /// guidance pick when none was given).
    pub spec: String,
    /// Elements after normalization.
    pub n: usize,
    /// Rankings after normalization.
    pub m: usize,
    /// `true` when the server matched this submission's idempotency key
    /// to an existing job and returned that instead of admitting a new
    /// one (HTTP 200 rather than 202).
    pub deduplicated: bool,
}

/// One sub-job of a submitted batch: which spec it runs and the job id
/// it is addressable under (`/v1/jobs/{id}` works on sub-jobs too).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchJob {
    /// The algorithm spec this sub-job runs.
    pub spec: String,
    /// The sub-job's id in the ordinary job table.
    pub id: u64,
}

/// A submitted batch's identity, as returned by `POST /v1/batches`.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmittedBatch {
    /// The batch id; batch status/events endpoints key on it.
    pub id: u64,
    /// Elements after normalization (shared by every sub-job).
    pub n: usize,
    /// Rankings after normalization.
    pub m: usize,
    /// One entry per requested spec, in request order.
    pub jobs: Vec<BatchJob>,
    /// `true` when the idempotency key matched an existing batch.
    pub deduplicated: bool,
}

/// A blocking client bound to one server address, holding a small
/// bounded pool of keep-alive connections for sized exchanges (clones
/// share the pool, so concurrent threads each check out their own
/// socket instead of serializing on one).
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    /// Bearer token sent as `Authorization: Bearer <token>` on every
    /// request when the server was started with `--token`.
    token: Option<Arc<str>>,
    /// Idle kept-alive connections, at most [`POOL_CAP`]. Checkout pops
    /// one (dialing fresh when empty); checkin pushes it back unless the
    /// pool is full, in which case the socket is simply dropped.
    pool: Arc<Mutex<Vec<BufReader<TcpStream>>>>,
}

impl Client {
    /// A client for `addr` — `host:port`, with or without an `http://`
    /// prefix (trailing slashes are ignored).
    pub fn new(addr: &str) -> Self {
        let addr = addr
            .trim()
            .trim_start_matches("http://")
            .trim_end_matches('/')
            .to_owned();
        Client {
            addr,
            token: None,
            pool: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// [`Client::new`], but every request carries
    /// `Authorization: Bearer <token>` — for servers and routers started
    /// with `--token`.
    pub fn with_token(addr: &str, token: &str) -> Self {
        let mut client = Client::new(addr);
        client.token = Some(Arc::from(token));
        client
    }

    /// Check an idle pooled connection out, if any.
    fn checkout(&self) -> Option<BufReader<TcpStream>> {
        self.pool.lock().expect("client pool poisoned").pop()
    }

    /// Return a still-alive connection to the pool; drop it silently when
    /// the pool is already at capacity.
    fn checkin(&self, reader: BufReader<TcpStream>) {
        let mut pool = self.pool.lock().expect("client pool poisoned");
        if pool.len() < POOL_CAP {
            pool.push(reader);
        }
    }

    /// The `Authorization` header to attach, when a token is configured.
    fn auth_headers(&self) -> Vec<(&'static str, String)> {
        match &self.token {
            Some(token) => vec![("Authorization", format!("Bearer {token}"))],
            None => Vec::new(),
        }
    }

    /// The normalized `host:port` this client talks to. Useful for
    /// constructing a second client (with its own connection pool) to
    /// the same server.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn connect(&self) -> Result<TcpStream, ClientError> {
        let stream = TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(600)))?;
        // Requests are small; on a reused keep-alive connection Nagle
        // would trade each one for a delayed-ACK round trip.
        stream.set_nodelay(true)?;
        Ok(stream)
    }

    /// One sized exchange over a pooled connection. A failure on a
    /// *reused* socket (the server restarted, closed an idle connection,
    /// or shed it) is retried once on a fresh dial before surfacing —
    /// a stale pooled connection must never look like a dead server.
    fn exchange_keep_alive(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<ClientResponse, ClientError> {
        let pooled = self.checkout();
        let had_pooled = pooled.is_some();
        let headers = self.auth_headers();
        let attempt =
            |reader: Option<BufReader<TcpStream>>| -> Result<ClientResponse, ClientError> {
                let mut reader = match reader {
                    Some(reader) => reader,
                    None => BufReader::new(self.connect()?),
                };
                http::write_request_with_headers(
                    reader.get_mut(),
                    method,
                    path,
                    &self.addr,
                    &headers,
                    body.map(|b| ("application/json", b.as_bytes())),
                    true,
                )?;
                Ok(ClientResponse::read_from(reader)?)
            };
        match attempt(pooled) {
            Ok(response) => Ok(response),
            Err(ClientError::Transport(_)) if had_pooled => attempt(None),
            Err(e) => Err(e),
        }
    }

    /// One streaming exchange on its own `Connection: close` socket (a
    /// chunked response consumes the connection, so pooling it is
    /// pointless).
    fn exchange_streaming(&self, path: &str) -> Result<ClientResponse, ClientError> {
        let mut stream = self.connect()?;
        http::write_request_with_headers(
            &mut stream,
            "GET",
            path,
            &self.addr,
            &self.auth_headers(),
            None,
            false,
        )?;
        Ok(ClientResponse::read(stream)?)
    }

    /// One non-streaming exchange, JSON in / JSON out; non-2xx statuses
    /// become [`ClientError::Status`]. The connection goes back to the
    /// pool when the server kept it alive.
    fn json_exchange(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<Json, ClientError> {
        let text = self.text_exchange(method, path, body)?;
        Json::parse(&text).map_err(|e| ClientError::Malformed(e.to_string()))
    }

    /// The raw-text core of [`Client::json_exchange`] (also used where
    /// the exact response bytes matter).
    fn text_exchange(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<String, ClientError> {
        let response = self.exchange_keep_alive(method, path, body)?;
        let status = response.status;
        let retry_after_secs = response.header("retry-after").and_then(|v| v.parse().ok());
        let (text, reusable) = response.into_body_and_reader()?;
        if let Some(reader) = reusable {
            self.checkin(reader);
        }
        if !(200..300).contains(&status) {
            return Err(ClientError::Status {
                status,
                body: text,
                retry_after_secs,
            });
        }
        Ok(text)
    }

    /// `POST /v1/jobs`.
    pub fn submit(&self, submission: &JobSubmission) -> Result<Submitted, ClientError> {
        let doc = self.json_exchange("POST", "/v1/jobs", Some(&submission.to_json()))?;
        let field = |key: &str| {
            doc.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| ClientError::Malformed(format!("missing {key:?} in {doc}")))
        };
        Ok(Submitted {
            id: field("id")?,
            spec: doc
                .get("spec")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_owned(),
            n: field("n")? as usize,
            m: field("m")? as usize,
            deduplicated: doc
                .get("deduplicated")
                .and_then(Json::as_bool)
                .unwrap_or(false),
        })
    }

    /// [`Client::submit`] under a [`RetryPolicy`]: transient failures
    /// (connection loss, 429, 503) are retried with backoff, anything
    /// else returns immediately. `notify` fires before each sleep so the
    /// caller can surface progress ("server busy, retrying in 2s…").
    ///
    /// A retried `POST` is only crash-safe when the submission carries an
    /// [`JobSubmission::idempotency_key`]: without one, a request the
    /// server accepted but never answered (connection cut mid-response)
    /// would be duplicated by the retry.
    pub fn submit_with_retry(
        &self,
        submission: &JobSubmission,
        policy: &RetryPolicy,
        mut notify: impl FnMut(&RetryNotice),
    ) -> Result<Submitted, ClientError> {
        let mut attempt = 0u32;
        loop {
            match self.submit(submission) {
                Ok(submitted) => return Ok(submitted),
                Err(error) => {
                    attempt += 1;
                    let Some(reason) = retry_reason(&error) else {
                        return Err(error);
                    };
                    if attempt >= policy.max_attempts {
                        return Err(error);
                    }
                    let delay = policy.delay(attempt, retry_hint(&error));
                    notify(&RetryNotice {
                        attempt,
                        max_attempts: policy.max_attempts,
                        delay,
                        reason,
                    });
                    std::thread::sleep(delay);
                }
            }
        }
    }

    /// `POST /v1/batches`: one dataset, a panel of specs, admitted
    /// all-or-nothing and sharing one cost-matrix build.
    pub fn submit_batch(
        &self,
        submission: &BatchSubmission,
    ) -> Result<SubmittedBatch, ClientError> {
        let doc = self.json_exchange("POST", "/v1/batches", Some(&submission.to_json()))?;
        let field = |key: &str| {
            doc.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| ClientError::Malformed(format!("missing {key:?} in {doc}")))
        };
        let jobs =
            doc.get("jobs")
                .and_then(Json::as_array)
                .ok_or_else(|| ClientError::Malformed(format!("missing \"jobs\" in {doc}")))?
                .iter()
                .map(|job| {
                    let spec = job
                        .get("spec")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_owned();
                    let id = job.get("id").and_then(Json::as_u64).ok_or_else(|| {
                        ClientError::Malformed(format!("missing job id in {doc}"))
                    })?;
                    Ok(BatchJob { spec, id })
                })
                .collect::<Result<Vec<_>, ClientError>>()?;
        Ok(SubmittedBatch {
            id: field("id")?,
            n: field("n")? as usize,
            m: field("m")? as usize,
            jobs,
            deduplicated: doc
                .get("deduplicated")
                .and_then(Json::as_bool)
                .unwrap_or(false),
        })
    }

    /// `GET /v1/batches/{id}`: the batch status document — per-spec
    /// state and reports, plus the aggregate `state`.
    pub fn batch_status(&self, id: u64) -> Result<Json, ClientError> {
        self.json_exchange("GET", &format!("/v1/batches/{id}"), None)
    }

    /// `GET /v1/batches/{id}/events`: the merged NDJSON stream over all
    /// sub-jobs, each line tagged with its `"spec"` and `"job"` id.
    pub fn batch_events(&self, id: u64) -> Result<EventStream, ClientError> {
        let response = self.exchange_streaming(&format!("/v1/batches/{id}/events"))?;
        if response.status != 200 {
            let status = response.status;
            let body = response.body_string()?;
            return Err(ClientError::Status {
                status,
                body,
                retry_after_secs: None,
            });
        }
        Ok(EventStream {
            lines: response.lines(),
        })
    }

    /// Block until every sub-job of the batch is done and return the
    /// batch status document (streams the merged events to completion,
    /// then fetches the final status).
    pub fn wait_batch(&self, id: u64) -> Result<Json, ClientError> {
        for event in self.batch_events(id)? {
            let _ = event?;
        }
        let status = self.batch_status(id)?;
        if status.get("state").and_then(Json::as_str) == Some("done") {
            Ok(status)
        } else {
            Err(ClientError::Malformed(format!(
                "batch event stream ended but batch {id} is not done: {status}"
            )))
        }
    }

    /// `GET /v1/jobs/{id}/events`: the streamed NDJSON lines, parsed,
    /// in emission order, live until the job finishes.
    pub fn events(&self, id: u64) -> Result<EventStream, ClientError> {
        let response = self.exchange_streaming(&format!("/v1/jobs/{id}/events"))?;
        if response.status != 200 {
            let status = response.status;
            let body = response.body_string()?;
            return Err(ClientError::Status {
                status,
                body,
                retry_after_secs: None,
            });
        }
        Ok(EventStream {
            lines: response.lines(),
        })
    }

    /// `GET /v1/jobs/{id}`: the status document (state, best-so-far,
    /// trace, final report once done).
    pub fn status(&self, id: u64) -> Result<Json, ClientError> {
        self.json_exchange("GET", &format!("/v1/jobs/{id}"), None)
    }

    /// [`Client::status`], but the raw response body — for callers that
    /// must preserve the server's exact serialization (the CLI's remote
    /// `--json` splices the report out of it byte-for-byte, so local and
    /// remote output run through one serializer).
    pub fn status_raw(&self, id: u64) -> Result<String, ClientError> {
        self.text_exchange("GET", &format!("/v1/jobs/{id}"), None)
    }

    /// `DELETE /v1/jobs/{id}`: request cooperative cancellation.
    pub fn cancel(&self, id: u64) -> Result<Json, ClientError> {
        self.json_exchange("DELETE", &format!("/v1/jobs/{id}"), None)
    }

    /// `PUT /v1/datasets/{id}`: create a live dataset from its text form
    /// (one `[{A},{B,C}]` ranking per line). Returns the server's
    /// `{"id", "version", "n", "m"}` document.
    pub fn create_dataset(&self, id: &str, dataset: &str) -> Result<Json, ClientError> {
        let body = format!("{{\"dataset\":\"{}\"}}", crate::json::escape(dataset));
        self.json_exchange("PUT", &format!("/v1/datasets/{id}"), Some(&body))
    }

    /// `PATCH /v1/datasets/{id}` with a pre-serialized `{"ops":[…]}`
    /// body. Each op is one of `{"op":"add","ranking":"[{A},{B}]"}`,
    /// `{"op":"remove","index":N}`, `{"op":"replace","index":N,
    /// "ranking":"…"}`; ops apply in order and each success bumps the
    /// dataset version.
    pub fn patch_dataset(&self, id: &str, ops_body: &str) -> Result<Json, ClientError> {
        self.json_exchange("PATCH", &format!("/v1/datasets/{id}"), Some(ops_body))
    }

    /// `GET /v1/datasets/{id}`: current version, shape, and text form.
    pub fn get_dataset(&self, id: &str) -> Result<Json, ClientError> {
        self.json_exchange("GET", &format!("/v1/datasets/{id}"), None)
    }

    /// `DELETE /v1/datasets/{id}`.
    pub fn delete_dataset(&self, id: &str) -> Result<Json, ClientError> {
        self.json_exchange("DELETE", &format!("/v1/datasets/{id}"), None)
    }

    /// `GET /v1/algorithms`.
    pub fn algorithms(&self) -> Result<Json, ClientError> {
        self.json_exchange("GET", "/v1/algorithms", None)
    }

    /// `GET /healthz`.
    pub fn healthz(&self) -> Result<Json, ClientError> {
        self.json_exchange("GET", "/healthz", None)
    }

    /// `GET /metrics`: the raw Prometheus text exposition (parse it with
    /// [`rank_core::telemetry::parse_exposition`]).
    pub fn metrics_text(&self) -> Result<String, ClientError> {
        self.text_exchange("GET", "/metrics", None)
    }

    /// [`Client::events`] that survives dropped connections: on transport
    /// loss — or a stream that ends before a terminal event, which is
    /// what a crashing server looks like — the iterator reconnects under
    /// `policy`, lets the server's replay log re-serve the stream, and
    /// skips the non-heartbeat lines it already delivered. Callers see
    /// each event exactly once, in order, across any number of
    /// reconnects; the retry budget resets whenever a fresh line arrives.
    pub fn follow_events<F: FnMut(&RetryNotice)>(
        &self,
        id: u64,
        policy: RetryPolicy,
        notify: F,
    ) -> FollowedEvents<F> {
        FollowedEvents {
            client: self.clone(),
            id,
            policy,
            notify,
            stream: None,
            delivered: 0,
            skip: 0,
            attempts: 0,
            finished: false,
        }
    }

    /// Block until the job is done and return its status document (poll +
    /// event-follow free: this just streams events to completion, then
    /// fetches the final status).
    pub fn wait(&self, id: u64) -> Result<Json, ClientError> {
        for event in self.events(id)? {
            let _ = event?;
        }
        let status = self.status(id)?;
        if status.get("state").and_then(Json::as_str) == Some("done") {
            Ok(status)
        } else {
            Err(ClientError::Malformed(format!(
                "event stream ended but job {id} is not done: {status}"
            )))
        }
    }
}

/// Iterator over a job's streamed events, each parsed as [`Json`].
pub struct EventStream {
    lines: NdjsonLines,
}

impl Iterator for EventStream {
    type Item = Result<Json, ClientError>;

    fn next(&mut self) -> Option<Self::Item> {
        let line = match self.lines.next()? {
            Ok(line) => line,
            Err(e) => return Some(Err(e.into())),
        };
        Some(Json::parse(&line).map_err(|e| ClientError::Malformed(format!("{e} in {line:?}"))))
    }
}

/// A reconnecting [`EventStream`] (see [`Client::follow_events`]).
///
/// Terminal events (`finished`, `failed`) end the iteration; a stream
/// that dies before one triggers a reconnect under the policy, with
/// already-delivered non-heartbeat lines skipped out of the server's
/// replay. Heartbeats are passed through live but never counted — they
/// are stream padding, not replayable history.
pub struct FollowedEvents<F> {
    client: Client,
    id: u64,
    policy: RetryPolicy,
    notify: F,
    stream: Option<EventStream>,
    /// Non-heartbeat lines handed to the caller so far.
    delivered: usize,
    /// Replayed lines still to swallow after a reconnect.
    skip: usize,
    /// Consecutive failed attempts (reset by any fresh line).
    attempts: u32,
    finished: bool,
}

impl<F: FnMut(&RetryNotice)> FollowedEvents<F> {
    /// Back off before the next reconnect, or give up by returning the
    /// error that exhausted the budget (non-retryable errors short out).
    fn backoff_or_fail(&mut self, error: ClientError) -> Option<Result<Json, ClientError>> {
        self.attempts += 1;
        let Some(reason) = retry_reason(&error) else {
            self.finished = true;
            return Some(Err(error));
        };
        if self.attempts >= self.policy.max_attempts {
            self.finished = true;
            return Some(Err(error));
        }
        let delay = self.policy.delay(self.attempts, retry_hint(&error));
        (self.notify)(&RetryNotice {
            attempt: self.attempts,
            max_attempts: self.policy.max_attempts,
            delay,
            reason,
        });
        std::thread::sleep(delay);
        None
    }
}

impl<F: FnMut(&RetryNotice)> Iterator for FollowedEvents<F> {
    type Item = Result<Json, ClientError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.finished {
                return None;
            }
            if self.stream.is_none() {
                match self.client.events(self.id) {
                    Ok(stream) => {
                        self.stream = Some(stream);
                        self.skip = self.delivered;
                    }
                    Err(error) => {
                        if let Some(item) = self.backoff_or_fail(error) {
                            return Some(item);
                        }
                        continue;
                    }
                }
            }
            match self.stream.as_mut().expect("stream just ensured").next() {
                Some(Ok(event)) => {
                    let kind = event.get("event").and_then(Json::as_str).unwrap_or("");
                    if kind == "heartbeat" {
                        // Live padding; replay does not re-serve it, so
                        // it neither counts nor skips. During a replay
                        // catch-up it would predate our position — drop.
                        if self.skip > 0 {
                            continue;
                        }
                        return Some(Ok(event));
                    }
                    if self.skip > 0 {
                        self.skip -= 1;
                        continue;
                    }
                    self.delivered += 1;
                    self.attempts = 0;
                    if kind == "finished" || kind == "failed" {
                        self.finished = true;
                    }
                    return Some(Ok(event));
                }
                Some(Err(error @ ClientError::Malformed(_))) => {
                    // A line that failed to parse is a protocol bug, not
                    // connection loss; reconnecting would replay it.
                    self.finished = true;
                    return Some(Err(error));
                }
                Some(Err(error)) => {
                    self.stream = None;
                    if let Some(item) = self.backoff_or_fail(error) {
                        return Some(item);
                    }
                }
                None => {
                    // Clean close without a terminal event: the server
                    // went away mid-job. Reconnect; after a restart the
                    // replay log (or the re-run) continues the story.
                    self.stream = None;
                    let error = ClientError::Transport(HttpError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "event stream ended before the job finished",
                    )));
                    if let Some(item) = self.backoff_or_fail(error) {
                        return Some(item);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_delay_is_deterministic_and_bounded() {
        let policy = RetryPolicy::default();
        for attempt in 1..=8 {
            let a = policy.delay(attempt, None);
            let b = policy.delay(attempt, None);
            assert_eq!(a, b, "jitter must be deterministic");
            let window = policy
                .base_delay
                .saturating_mul(1 << (attempt - 1).min(16))
                .min(policy.max_delay);
            assert!(a >= window / 2, "delay {a:?} below half-window {window:?}");
            assert!(a <= window, "delay {a:?} above window {window:?}");
        }
    }

    #[test]
    fn retry_delay_honors_server_hint() {
        let policy = RetryPolicy::default();
        assert_eq!(policy.delay(1, Some(3)), Duration::from_secs(3));
        // Hints are clamped to the cap; zero hints round up to a second.
        assert_eq!(policy.delay(1, Some(3600)), policy.max_delay);
        assert_eq!(policy.delay(1, Some(0)), Duration::from_secs(1));
    }

    #[test]
    fn retry_classification() {
        let io = ClientError::Transport(HttpError::Io(std::io::Error::new(
            std::io::ErrorKind::ConnectionRefused,
            "refused",
        )));
        assert_eq!(retry_reason(&io), Some("server unreachable"));
        for status in [429u16, 503] {
            let e = ClientError::Status {
                status,
                body: String::new(),
                retry_after_secs: Some(2),
            };
            assert_eq!(retry_reason(&e), Some("server busy"));
            assert_eq!(retry_hint(&e), Some(2));
        }
        let bad = ClientError::Status {
            status: 400,
            body: String::new(),
            retry_after_secs: None,
        };
        assert_eq!(retry_reason(&bad), None);
        assert_eq!(retry_reason(&ClientError::Malformed("x".into())), None);
    }
}
