//! Fingerprint-routing front tier: one address, many workers
//! (DESIGN.md §14.2).
//!
//! A [`Router`] listens like a [`Server`](crate::server::Server) but owns
//! no engine: every request is forwarded to one of a fixed set of worker
//! servers, chosen by **rendezvous (highest-random-weight) hashing** of
//! the request's dataset fingerprint — the dataset id for live sessions,
//! a content hash for inline text. Stickiness is the point: a dataset
//! session PATCHed through the router keeps landing on the worker whose
//! `MatrixCache` holds its delta-patched cost matrix, and every spec of
//! a batch rides one worker's single matrix build.
//!
//! The router stays transparent on the wire. Responses keep the worker's
//! exact bytes except for job/batch ids, which are spliced to
//! router-side ids so ids from different workers cannot collide (the
//! worker-side numbers, and the `/v1/jobs/{id}`-style URLs built from
//! them, are rewritten in place; report payloads pass through
//! byte-identically). Event streams are re-chunked line by line,
//! heartbeats included.
//!
//! Failure model: a worker that cannot be dialed is skipped — new
//! submissions fall through to the next worker in rendezvous order
//! (idempotency keys make a retried submission safe wherever it lands),
//! while requests about state the dead worker held (its in-flight jobs,
//! its dataset sessions) answer **503 + `Retry-After`**, because that
//! state is not portable. `GET /healthz` aggregates every worker's
//! health and reports `ok` / `degraded` / `down`.

use crate::http::{self, ChunkedWriter, ClientResponse, HttpError, Request};
use crate::json::{escape, Json};
use crate::proto;
use rank_core::telemetry::{
    add_label, merge_families, parse_exposition, render_families, MetricsRegistry,
};
use std::collections::HashMap;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How the router asks clients to wait when the worker holding their
/// state is unreachable: long enough for a supervisor restart, short
/// enough that an interactive retry loop stays snappy.
const UNREACHABLE_RETRY_AFTER_SECS: u64 = 2;

/// Configuration for [`Router::bind`].
#[derive(Debug, Clone, Default)]
pub struct RouterConfig {
    /// Worker addresses (`host:port`, `http://` prefix tolerated). Order
    /// matters only as a tie-break; routing is by rendezvous hash.
    pub workers: Vec<String>,
    /// Bearer token: required from clients (except `GET /healthz`) and
    /// forwarded to workers on every proxied request. Never journaled —
    /// the router keeps no journal at all.
    pub token: Option<String>,
}

/// Where one router-side job id points.
#[derive(Debug, Clone, Copy)]
struct RoutedJob {
    worker: usize,
    worker_id: u64,
}

/// Where one router-side batch id points, with its sub-job id pairs
/// (`(worker_id, router_id)`, in spec order).
#[derive(Debug, Clone)]
struct RoutedBatch {
    worker: usize,
    worker_id: u64,
    jobs: Vec<(u64, u64)>,
}

/// Job-id translation table. The reverse index keeps ids stable when an
/// idempotent resubmission deduplicates on the worker: the router hands
/// back the router id it already assigned instead of minting a fresh one.
#[derive(Default)]
struct JobRoutes {
    by_router: HashMap<u64, RoutedJob>,
    by_worker: HashMap<(usize, u64), u64>,
}

/// Batch-id translation table, same shape as [`JobRoutes`].
#[derive(Default)]
struct BatchRoutes {
    by_router: HashMap<u64, RoutedBatch>,
    by_worker: HashMap<(usize, u64), u64>,
}

struct RouterState {
    workers: Vec<String>,
    token: Option<String>,
    shutting_down: AtomicBool,
    /// Router-side ids; jobs and batches share the counter so a router
    /// id is unambiguous in logs.
    next_id: AtomicU64,
    jobs: Mutex<JobRoutes>,
    batches: Mutex<BatchRoutes>,
    /// Dataset id → the worker index holding that live session.
    datasets: Mutex<HashMap<String, usize>>,
    /// The router's own telemetry (the router owns no engine, so it owns
    /// its own registry): per-worker proxied-request latencies, failover
    /// fall-throughs, and unreachable-worker 503s.
    metrics: Arc<MetricsRegistry>,
}

impl RouterState {
    fn auth_headers(&self) -> Vec<(&'static str, String)> {
        match &self.token {
            Some(token) => vec![("Authorization", format!("Bearer {token}"))],
            None => Vec::new(),
        }
    }

    fn fresh_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::SeqCst)
    }

    /// One submission fell through a dead worker to the next rendezvous
    /// choice.
    fn count_failover(&self, worker: usize) {
        self.metrics
            .counter(
                "rawt_router_failovers_total",
                "Submissions that fell through an unreachable worker to the next.",
                &[("worker", &self.workers[worker])],
            )
            .inc();
    }

    /// One request answered 503 because the worker holding its state is
    /// down.
    fn count_unreachable(&self, worker: usize) {
        self.metrics
            .counter(
                "rawt_router_unreachable_total",
                "Requests answered 503 because their worker was unreachable.",
                &[("worker", &self.workers[worker])],
            )
            .inc();
    }
}

/// The front tier itself; [`Router::serve`] blocks accepting clients.
pub struct Router {
    listener: TcpListener,
    state: Arc<RouterState>,
}

/// Stops a running [`Router`] (clone-free analogue of
/// [`ShutdownHandle`](crate::server::ShutdownHandle); workers are not
/// touched — they are someone else's processes).
pub struct RouterShutdown {
    state: Arc<RouterState>,
    addr: std::net::SocketAddr,
}

impl RouterShutdown {
    /// Stop accepting and make [`Router::serve`] return.
    pub fn shutdown(&self) {
        self.state.shutting_down.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }
}

impl Router {
    /// Bind the router to `addr`. Fails fast on an empty worker list —
    /// a router with nowhere to route is a misconfiguration, not a
    /// degraded state.
    pub fn bind(addr: impl ToSocketAddrs, config: RouterConfig) -> std::io::Result<Router> {
        if config.workers.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "router needs at least one worker address",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let workers = config
            .workers
            .iter()
            .map(|w| {
                w.trim()
                    .trim_start_matches("http://")
                    .trim_end_matches('/')
                    .to_owned()
            })
            .collect();
        Ok(Router {
            listener,
            state: Arc::new(RouterState {
                workers,
                token: config.token,
                shutting_down: AtomicBool::new(false),
                next_id: AtomicU64::new(1),
                jobs: Mutex::new(JobRoutes::default()),
                batches: Mutex::new(BatchRoutes::default()),
                datasets: Mutex::new(HashMap::new()),
                metrics: Arc::new(MetricsRegistry::new()),
            }),
        })
    }

    /// The bound address (port resolved when binding to `:0`).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop this router from another thread.
    pub fn shutdown_handle(&self) -> std::io::Result<RouterShutdown> {
        Ok(RouterShutdown {
            state: Arc::clone(&self.state),
            addr: self.local_addr()?,
        })
    }

    /// Accept loop: thread per connection, keep-alive inside, exactly
    /// like the worker server's.
    pub fn serve(self) -> std::io::Result<()> {
        for connection in self.listener.incoming() {
            if self.state.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = connection else { continue };
            let state = Arc::clone(&self.state);
            let _ = std::thread::Builder::new()
                .name("rank-route".to_owned())
                .spawn(move || {
                    let _ = catch_unwind(AssertUnwindSafe(|| handle_connection(stream, &state)));
                });
        }
        Ok(())
    }
}

/// FNV-1a over `bytes` — the same dependency-free hash the engine uses
/// for dataset fingerprints, applied to routing keys.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Worker indices in rendezvous (highest-random-weight) order for `key`:
/// every worker's weight is `hash(worker ‖ key)` and the list is sorted
/// by descending weight. The property that makes this the right sticky
/// router: removing a worker never changes the relative order of the
/// others, so only the keys that mapped to the lost worker move.
pub fn rendezvous_order(workers: &[String], key: &str) -> Vec<usize> {
    let mut scored: Vec<(u64, usize)> = workers
        .iter()
        .enumerate()
        .map(|(index, worker)| {
            let mut bytes = Vec::with_capacity(worker.len() + key.len() + 1);
            bytes.extend_from_slice(worker.as_bytes());
            bytes.push(0);
            bytes.extend_from_slice(key.as_bytes());
            (fnv1a64(&bytes), index)
        })
        .collect();
    scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    scored.into_iter().map(|(_, index)| index).collect()
}

/// The routing key for a job/batch submission body: live sessions key on
/// their dataset id (stickiness to the patched matrix), inline datasets
/// on a content hash of their text (all specs over one dataset land on
/// one worker and share its matrix build).
fn routing_key(body: &[u8]) -> String {
    if let Ok(doc) = std::str::from_utf8(body)
        .map_err(|_| ())
        .and_then(|text| Json::parse(text).map_err(|_| ()))
    {
        if let Some(id) = doc.get("dataset_id").and_then(Json::as_str) {
            return format!("ds:{id}");
        }
        if let Some(text) = doc.get("dataset").and_then(Json::as_str) {
            return format!("tx:{:016x}", fnv1a64(text.as_bytes()));
        }
    }
    format!("tx:{:016x}", fnv1a64(body))
}

/// Dial a worker. Short-ish read timeout is deliberate: the router only
/// does sized exchanges and line-buffered streams, and a worker that
/// stops answering should surface as unreachable, not hang the client.
fn dial(addr: &str) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(600)))?;
    stream.set_nodelay(true)?;
    Ok(stream)
}

/// One sized exchange with a worker on a fresh `Connection: close`
/// socket. Returns `(status, retry_after, body)`.
fn forward_sized(
    state: &RouterState,
    worker: usize,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> Result<(u16, Option<String>, String), HttpError> {
    let addr = &state.workers[worker];
    let proxy_start = Instant::now();
    let mut stream = dial(addr)?;
    http::write_request_with_headers(
        &mut stream,
        method,
        path,
        addr,
        &state.auth_headers(),
        body.map(|b| ("application/json", b)),
        false,
    )?;
    let response = ClientResponse::read(stream)?;
    let status = response.status;
    let retry_after = response.header("retry-after").map(str::to_owned);
    let text = response.body_string()?;
    state
        .metrics
        .histogram(
            "rawt_router_proxy_seconds",
            "Full sized-exchange latency of one proxied worker request.",
            &[("worker", addr)],
        )
        .record(proxy_start.elapsed());
    Ok((status, retry_after, text))
}

/// Open a streaming exchange with a worker (the caller consumes lines).
fn forward_streaming(
    state: &RouterState,
    worker: usize,
    path: &str,
) -> Result<ClientResponse, HttpError> {
    let addr = &state.workers[worker];
    let mut stream = dial(addr)?;
    http::write_request_with_headers(
        &mut stream,
        "GET",
        path,
        addr,
        &state.auth_headers(),
        None,
        false,
    )?;
    ClientResponse::read(stream)
}

/// Splice worker-side ids to router-side ids in a response body. The
/// scanner rewrites digits directly after the tokens `"id":`, `"job":`,
/// `/v1/jobs/` and `/v1/batches/` — the only places numeric ids appear
/// in the protocol — and leaves every other byte untouched, so report
/// payloads stay byte-identical to the worker's serialization. `map`
/// returns the replacement for `(token, worker_value)`, or `None` to
/// keep the original.
fn splice_ids(body: &str, mut map: impl FnMut(&str, u64) -> Option<u64>) -> String {
    const TOKENS: [&str; 4] = ["\"id\":", "\"job\":", "/v1/jobs/", "/v1/batches/"];
    let bytes = body.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    'scan: while i < bytes.len() {
        for token in TOKENS {
            if bytes[i..].starts_with(token.as_bytes()) {
                let start = i + token.len();
                let mut end = start;
                while end < bytes.len() && bytes[end].is_ascii_digit() {
                    end += 1;
                }
                if end > start {
                    if let Some(new) = body[start..end]
                        .parse::<u64>()
                        .ok()
                        .and_then(|value| map(token, value))
                    {
                        out.extend_from_slice(token.as_bytes());
                        out.extend_from_slice(new.to_string().as_bytes());
                        i = end;
                        continue 'scan;
                    }
                }
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8(out).expect("splice only replaces ascii digits")
}

fn respond_error(
    stream: &mut TcpStream,
    status: u16,
    message: &str,
    retry_after: Option<u64>,
    keep: bool,
) {
    let body = proto::error_json(message, None);
    let headers: Vec<(&str, String)> = retry_after
        .map(|secs| vec![("Retry-After", secs.to_string())])
        .unwrap_or_default();
    let _ = http::write_response(
        stream,
        status,
        "application/json",
        &headers,
        body.as_bytes(),
        keep,
    );
}

/// Pass a worker's sized response through, preserving its status and
/// `Retry-After` hint.
fn respond_passthrough(
    stream: &mut TcpStream,
    status: u16,
    retry_after: Option<String>,
    body: &str,
    keep: bool,
) {
    let headers: Vec<(&str, String)> = retry_after
        .map(|secs| vec![("Retry-After", secs)])
        .unwrap_or_default();
    let _ = http::write_response(
        stream,
        status,
        "application/json",
        &headers,
        body.as_bytes(),
        keep,
    );
}

fn unreachable_worker(stream: &mut TcpStream, state: &RouterState, worker: usize, keep: bool) {
    state.count_unreachable(worker);
    respond_error(
        stream,
        503,
        &format!(
            "worker {} is unreachable; its state is not portable — retry shortly",
            state.workers[worker]
        ),
        Some(UNREACHABLE_RETRY_AFTER_SECS),
        keep,
    );
}

fn handle_connection(mut stream: TcpStream, state: &Arc<RouterState>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_nodelay(true);
    let mut reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(_) => return,
    };
    loop {
        let request = match http::read_request(&mut reader) {
            Ok(request) => request,
            Err(HttpError::BodyTooLarge(_)) => {
                respond_error(&mut stream, 413, "request body too large", None, false);
                return;
            }
            Err(HttpError::Malformed(message)) => {
                respond_error(&mut stream, 400, &message, None, false);
                return;
            }
            Err(HttpError::Io(_)) => return,
        };
        let keep = request.keep_alive();
        route(&mut stream, &request, state, keep);
        if !keep {
            return;
        }
    }
}

/// Same bearer rule as the worker: `GET /healthz` and `GET /metrics`
/// stay open for probes and scrapers, everything else needs the token
/// when one is configured.
fn authorized(request: &Request, state: &RouterState, path: &str) -> bool {
    let Some(token) = &state.token else {
        return true;
    };
    if path == "/healthz" || path == "/metrics" {
        return true;
    }
    request
        .header("authorization")
        .and_then(|v| v.strip_prefix("Bearer "))
        .is_some_and(|presented| presented.trim() == token)
}

fn route(stream: &mut TcpStream, request: &Request, state: &Arc<RouterState>, keep: bool) {
    let path = request.path.trim_end_matches('/');
    if !authorized(request, state, path) {
        respond_error(
            stream,
            401,
            "missing or invalid bearer token (send Authorization: Bearer <token>)",
            None,
            keep,
        );
        return;
    }
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => healthz(stream, state, keep),
        ("GET", "/metrics") => metrics_exposition(stream, state, keep),
        ("GET", "/v1/algorithms") => forward_any(stream, state, "GET", "/v1/algorithms", keep),
        ("POST", "/v1/jobs") => submit_job(stream, request, state, keep),
        ("POST", "/v1/batches") => submit_batch(stream, request, state, keep),
        (_, p) if p.starts_with("/v1/jobs/") => {
            job_route(stream, request, state, &p["/v1/jobs/".len()..], keep)
        }
        (_, p) if p.starts_with("/v1/batches/") => {
            batch_route(stream, request, state, &p["/v1/batches/".len()..], keep)
        }
        (_, p) if p.starts_with("/v1/datasets/") => {
            dataset_route(stream, request, state, &p["/v1/datasets/".len()..], keep)
        }
        _ => respond_error(stream, 404, &format!("no route for {path:?}"), None, keep),
    }
}

/// Aggregate `/healthz` across every worker. Always 200 — the router
/// itself is alive; the `status` field carries the fleet's condition.
fn healthz(stream: &mut TcpStream, state: &Arc<RouterState>, keep: bool) {
    let mut alive = 0usize;
    let entries: Vec<String> = state
        .workers
        .iter()
        .enumerate()
        .map(
            |(index, addr)| match forward_sized(state, index, "GET", "/healthz", None) {
                Ok((200, _, body)) => {
                    alive += 1;
                    format!(
                        "{{\"addr\":\"{}\",\"alive\":true,\"health\":{body}}}",
                        escape(addr)
                    )
                }
                _ => format!(
                    "{{\"addr\":\"{}\",\"alive\":false,\"health\":null}}",
                    escape(addr)
                ),
            },
        )
        .collect();
    let status = if alive == state.workers.len() {
        "ok"
    } else if alive > 0 {
        "degraded"
    } else {
        "down"
    };
    let body = format!(
        "{{\"status\":\"{status}\",\"role\":\"router\",\"alive\":{alive},\"total\":{},\"workers\":[{}]}}",
        state.workers.len(),
        entries.join(","),
    );
    let _ = http::write_response(stream, 200, "application/json", &[], body.as_bytes(), keep);
}

/// `GET /metrics`: one scrape sees the fleet. The router renders its own
/// registry, then scrapes every reachable worker's `/metrics`, tags each
/// worker's samples with a `worker="addr"` label, and merges everything
/// into a single exposition — families that exist on several workers
/// keep one `# TYPE` header and per-worker series. A dead worker is
/// simply absent from the scrape (its unreachability already shows in
/// `rawt_router_unreachable_total`).
fn metrics_exposition(stream: &mut TcpStream, state: &Arc<RouterState>, keep: bool) {
    let mut parts = vec![parse_exposition(&state.metrics.render_prometheus())];
    for (index, addr) in state.workers.iter().enumerate() {
        if let Ok((200, _, body)) = forward_sized(state, index, "GET", "/metrics", None) {
            let mut families = parse_exposition(&body);
            add_label(&mut families, "worker", addr);
            parts.push(families);
        }
    }
    let body = render_families(&merge_families(parts));
    let _ = http::write_response(
        stream,
        200,
        "text/plain; version=0.0.4",
        &[],
        body.as_bytes(),
        keep,
    );
}

/// Forward a read-only request to the first reachable worker (used for
/// `/v1/algorithms`, which is identical on every worker).
fn forward_any(
    stream: &mut TcpStream,
    state: &Arc<RouterState>,
    method: &str,
    path: &str,
    keep: bool,
) {
    for index in 0..state.workers.len() {
        if let Ok((status, retry_after, body)) = forward_sized(state, index, method, path, None) {
            respond_passthrough(stream, status, retry_after, &body, keep);
            return;
        }
        state.count_failover(index);
    }
    respond_error(
        stream,
        503,
        "no reachable worker",
        Some(UNREACHABLE_RETRY_AFTER_SECS),
        keep,
    );
}

/// The worker order a submission should try: sticky to the session
/// worker when the body names a live dataset the router has seen,
/// rendezvous order with dead-worker fall-through otherwise.
fn submission_targets(state: &RouterState, body: &[u8]) -> (Vec<usize>, bool) {
    let key = routing_key(body);
    if let Some(id) = key.strip_prefix("ds:") {
        if let Some(&worker) = state
            .datasets
            .lock()
            .expect("dataset routes poisoned")
            .get(id)
        {
            // Session state lives on exactly one worker; no fallback.
            return (vec![worker], true);
        }
    }
    (rendezvous_order(&state.workers, &key), false)
}

fn submit_job(stream: &mut TcpStream, request: &Request, state: &Arc<RouterState>, keep: bool) {
    let (targets, sticky) = submission_targets(state, &request.body);
    for &worker in &targets {
        let (status, retry_after, body) =
            match forward_sized(state, worker, "POST", "/v1/jobs", Some(&request.body)) {
                Ok(answer) => answer,
                Err(_) if !sticky => {
                    state.count_failover(worker);
                    continue;
                }
                Err(_) => {
                    unreachable_worker(stream, state, worker, keep);
                    return;
                }
            };
        if !(200..300).contains(&status) {
            respond_passthrough(stream, status, retry_after, &body, keep);
            return;
        }
        let Some(worker_id) = Json::parse(&body)
            .ok()
            .and_then(|doc| doc.get("id").and_then(Json::as_u64))
        else {
            respond_error(
                stream,
                502,
                "worker returned an unparseable job id",
                None,
                keep,
            );
            return;
        };
        let router_id = {
            let mut jobs = state.jobs.lock().expect("job routes poisoned");
            match jobs.by_worker.get(&(worker, worker_id)) {
                Some(&existing) => existing,
                None => {
                    let fresh = state.fresh_id();
                    jobs.by_worker.insert((worker, worker_id), fresh);
                    jobs.by_router
                        .insert(fresh, RoutedJob { worker, worker_id });
                    fresh
                }
            }
        };
        let rewritten = splice_ids(&body, |token, value| {
            (token != "/v1/batches/" && value == worker_id).then_some(router_id)
        });
        respond_passthrough(stream, status, retry_after, &rewritten, keep);
        return;
    }
    respond_error(
        stream,
        503,
        "no reachable worker for this submission",
        Some(UNREACHABLE_RETRY_AFTER_SECS),
        keep,
    );
}

fn submit_batch(stream: &mut TcpStream, request: &Request, state: &Arc<RouterState>, keep: bool) {
    let (targets, sticky) = submission_targets(state, &request.body);
    for &worker in &targets {
        let (status, retry_after, body) =
            match forward_sized(state, worker, "POST", "/v1/batches", Some(&request.body)) {
                Ok(answer) => answer,
                Err(_) if !sticky => {
                    state.count_failover(worker);
                    continue;
                }
                Err(_) => {
                    unreachable_worker(stream, state, worker, keep);
                    return;
                }
            };
        if !(200..300).contains(&status) {
            respond_passthrough(stream, status, retry_after, &body, keep);
            return;
        }
        let parsed = Json::parse(&body).ok();
        let batch_wid = parsed
            .as_ref()
            .and_then(|doc| doc.get("id").and_then(Json::as_u64));
        let sub_wids: Option<Vec<u64>> = parsed.as_ref().and_then(|doc| {
            doc.get("jobs").and_then(Json::as_array).map(|jobs| {
                jobs.iter()
                    .filter_map(|job| job.get("id").and_then(Json::as_u64))
                    .collect()
            })
        });
        let (Some(batch_wid), Some(sub_wids)) = (batch_wid, sub_wids) else {
            respond_error(
                stream,
                502,
                "worker returned an unparseable batch",
                None,
                keep,
            );
            return;
        };
        // Register (or re-find, for an idempotent dedup) the batch and
        // every sub-job; sub-jobs go in the job table too, so
        // `/v1/jobs/{id}` works on them through the router.
        let (batch_rid, job_pairs) = {
            let mut batches = state.batches.lock().expect("batch routes poisoned");
            match batches.by_worker.get(&(worker, batch_wid)) {
                Some(&existing) => {
                    let pairs = batches.by_router[&existing].jobs.clone();
                    (existing, pairs)
                }
                None => {
                    let mut jobs = state.jobs.lock().expect("job routes poisoned");
                    let pairs: Vec<(u64, u64)> = sub_wids
                        .iter()
                        .map(|&wid| {
                            let rid = state.fresh_id();
                            jobs.by_worker.insert((worker, wid), rid);
                            jobs.by_router.insert(
                                rid,
                                RoutedJob {
                                    worker,
                                    worker_id: wid,
                                },
                            );
                            (wid, rid)
                        })
                        .collect();
                    let rid = state.fresh_id();
                    batches.by_worker.insert((worker, batch_wid), rid);
                    batches.by_router.insert(
                        rid,
                        RoutedBatch {
                            worker,
                            worker_id: batch_wid,
                            jobs: pairs.clone(),
                        },
                    );
                    (rid, pairs)
                }
            }
        };
        let job_map: HashMap<u64, u64> = job_pairs.iter().copied().collect();
        let mut first_id = true;
        let rewritten = splice_ids(&body, |token, value| match token {
            "/v1/batches/" => (value == batch_wid).then_some(batch_rid),
            "\"id\":" if first_id => {
                first_id = false;
                (value == batch_wid).then_some(batch_rid)
            }
            _ => job_map.get(&value).copied(),
        });
        respond_passthrough(stream, status, retry_after, &rewritten, keep);
        return;
    }
    respond_error(
        stream,
        503,
        "no reachable worker for this submission",
        Some(UNREACHABLE_RETRY_AFTER_SECS),
        keep,
    );
}

/// `/v1/jobs/{id}` and `/v1/jobs/{id}/events` through the id map.
fn job_route(
    stream: &mut TcpStream,
    request: &Request,
    state: &Arc<RouterState>,
    rest: &str,
    keep: bool,
) {
    let (id_part, tail) = match rest.split_once('/') {
        Some((id, tail)) => (id, Some(tail)),
        None => (rest, None),
    };
    let Ok(router_id) = id_part.parse::<u64>() else {
        respond_error(stream, 400, "job id must be an integer", None, keep);
        return;
    };
    let Some(routed) = state
        .jobs
        .lock()
        .expect("job routes poisoned")
        .by_router
        .get(&router_id)
        .copied()
    else {
        respond_error(stream, 404, &format!("no job {router_id}"), None, keep);
        return;
    };
    let worker_path = match (request.method.as_str(), tail) {
        ("GET", None) | ("DELETE", None) => format!("/v1/jobs/{}", routed.worker_id),
        ("GET", Some("events")) => {
            proxy_stream(
                stream,
                state,
                routed.worker,
                &format!("/v1/jobs/{}/events", routed.worker_id),
                // Plain job event lines carry no ids; pass them raw.
                |line| line.to_owned(),
            );
            return;
        }
        _ => {
            respond_error(
                stream,
                405,
                "method not allowed on this job route",
                None,
                keep,
            );
            return;
        }
    };
    match forward_sized(state, routed.worker, &request.method, &worker_path, None) {
        Ok((status, retry_after, body)) => {
            let rewritten = splice_ids(&body, |token, value| {
                (token != "/v1/batches/" && value == routed.worker_id).then_some(router_id)
            });
            respond_passthrough(stream, status, retry_after, &rewritten, keep);
        }
        Err(_) => unreachable_worker(stream, state, routed.worker, keep),
    }
}

/// `/v1/batches/{id}` and `/v1/batches/{id}/events` through the id map.
fn batch_route(
    stream: &mut TcpStream,
    request: &Request,
    state: &Arc<RouterState>,
    rest: &str,
    keep: bool,
) {
    let (id_part, tail) = match rest.split_once('/') {
        Some((id, tail)) => (id, Some(tail)),
        None => (rest, None),
    };
    let Ok(router_id) = id_part.parse::<u64>() else {
        respond_error(stream, 400, "batch id must be an integer", None, keep);
        return;
    };
    let Some(routed) = state
        .batches
        .lock()
        .expect("batch routes poisoned")
        .by_router
        .get(&router_id)
        .cloned()
    else {
        respond_error(stream, 404, &format!("no batch {router_id}"), None, keep);
        return;
    };
    let job_map: HashMap<u64, u64> = routed.jobs.iter().copied().collect();
    match (request.method.as_str(), tail) {
        ("GET", None) => {
            match forward_sized(
                state,
                routed.worker,
                "GET",
                &format!("/v1/batches/{}", routed.worker_id),
                None,
            ) {
                Ok((status, retry_after, body)) => {
                    let mut first_id = true;
                    let rewritten = splice_ids(&body, |token, value| match token {
                        "/v1/batches/" => (value == routed.worker_id).then_some(router_id),
                        "\"id\":" if first_id => {
                            first_id = false;
                            (value == routed.worker_id).then_some(router_id)
                        }
                        _ => job_map.get(&value).copied(),
                    });
                    respond_passthrough(stream, status, retry_after, &rewritten, keep);
                }
                Err(_) => unreachable_worker(stream, state, routed.worker, keep),
            }
        }
        ("GET", Some("events")) => {
            proxy_stream(
                stream,
                state,
                routed.worker,
                &format!("/v1/batches/{}/events", routed.worker_id),
                // Merged batch lines are tagged `"job":<worker id>` —
                // splice those to router ids; everything else passes raw.
                move |line| {
                    splice_ids(line, |token, value| {
                        (token == "\"job\":")
                            .then(|| job_map.get(&value).copied())
                            .flatten()
                    })
                },
            );
        }
        _ => respond_error(
            stream,
            405,
            "method not allowed on this batch route",
            None,
            keep,
        ),
    }
}

/// Proxy a worker's NDJSON stream line by line through a fresh chunked
/// response, mapping each line through `rewrite` (heartbeats included —
/// they pass through, keeping the client's liveness view honest). A
/// stream is its connection's last response on both sides.
fn proxy_stream(
    stream: &mut TcpStream,
    state: &Arc<RouterState>,
    worker: usize,
    path: &str,
    rewrite: impl Fn(&str) -> String,
) {
    let response = match forward_streaming(state, worker, path) {
        Ok(response) => response,
        Err(_) => {
            unreachable_worker(stream, state, worker, false);
            return;
        }
    };
    if response.status != 200 {
        let status = response.status;
        let body = response.body_string().unwrap_or_default();
        respond_passthrough(stream, status, None, &body, false);
        return;
    }
    let Ok(mut writer) = ChunkedWriter::begin(stream, "application/x-ndjson") else {
        return;
    };
    for line in response.lines() {
        let Ok(line) = line else { break };
        if writer.write_line(&rewrite(&line)).is_err() {
            return;
        }
    }
    let _ = writer.finish();
}

/// `/v1/datasets/{id}`: transparent proxy with sticky placement. The
/// first request that creates the session pins its worker; every later
/// request follows the pin (the patched matrix is there and nowhere
/// else). A dead pinned worker means 503 until it returns.
fn dataset_route(
    stream: &mut TcpStream,
    request: &Request,
    state: &Arc<RouterState>,
    id: &str,
    keep: bool,
) {
    if !proto::valid_dataset_id(id) {
        respond_error(
            stream,
            400,
            "dataset id must be 1-64 chars of [A-Za-z0-9_-]",
            None,
            keep,
        );
        return;
    }
    let pinned = state
        .datasets
        .lock()
        .expect("dataset routes poisoned")
        .get(id)
        .copied();
    let targets = match pinned {
        Some(worker) => vec![worker],
        None => rendezvous_order(&state.workers, &format!("ds:{id}")),
    };
    let path = format!("/v1/datasets/{id}");
    let body = (!request.body.is_empty()).then_some(request.body.as_slice());
    for &worker in &targets {
        let (status, retry_after, text) =
            match forward_sized(state, worker, &request.method, &path, body) {
                Ok(answer) => answer,
                Err(_) if pinned.is_none() => {
                    state.count_failover(worker);
                    continue;
                }
                Err(_) => {
                    unreachable_worker(stream, state, worker, keep);
                    return;
                }
            };
        if (200..300).contains(&status) {
            let mut datasets = state.datasets.lock().expect("dataset routes poisoned");
            if request.method == "DELETE" {
                datasets.remove(id);
            } else {
                datasets.insert(id.to_owned(), worker);
            }
        }
        respond_passthrough(stream, status, retry_after, &text, keep);
        return;
    }
    respond_error(
        stream,
        503,
        "no reachable worker for this dataset",
        Some(UNREACHABLE_RETRY_AFTER_SECS),
        keep,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workers(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:8080")).collect()
    }

    #[test]
    fn rendezvous_is_deterministic_and_covers_all_workers() {
        let pool = workers(4);
        for key in ["ds:alpha", "tx:0011223344556677", "ds:beta"] {
            let a = rendezvous_order(&pool, key);
            let b = rendezvous_order(&pool, key);
            assert_eq!(a, b, "order must be deterministic for {key}");
            let mut sorted = a.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3], "order must be a permutation");
        }
        // Different keys should not all pile onto one worker.
        let firsts: std::collections::HashSet<usize> = (0..64)
            .map(|i| rendezvous_order(&pool, &format!("ds:set-{i}"))[0])
            .collect();
        assert!(firsts.len() > 1, "64 keys routed to a single worker");
    }

    #[test]
    fn rendezvous_is_stable_when_a_worker_leaves() {
        // The HRW property the sticky router depends on: dropping one
        // worker only moves the keys that mapped to it; every other
        // key's first choice is unchanged.
        let pool = workers(4);
        for dropped in 0..pool.len() {
            let remaining: Vec<String> = pool
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != dropped)
                .map(|(_, w)| w.clone())
                .collect();
            for i in 0..128 {
                let key = format!("ds:stability-{i}");
                let full_first = rendezvous_order(&pool, &key)[0];
                if full_first == dropped {
                    continue;
                }
                let reduced_first = &remaining[rendezvous_order(&remaining, &key)[0]];
                assert_eq!(
                    reduced_first, &pool[full_first],
                    "key {key} moved although its worker survived"
                );
            }
        }
    }

    #[test]
    fn splice_rewrites_ids_and_urls_only() {
        let body = concat!(
            "{\"id\":7,\"seed\":7,\"score\":7,",
            "\"events\":\"/v1/jobs/7/events\",\"status\":\"/v1/jobs/7\"}"
        );
        let out = splice_ids(body, |token, value| {
            (token != "/v1/batches/" && value == 7).then_some(41)
        });
        assert_eq!(
            out,
            concat!(
                "{\"id\":41,\"seed\":7,\"score\":7,",
                "\"events\":\"/v1/jobs/41/events\",\"status\":\"/v1/jobs/41\"}"
            ),
            "seed and score must survive; id and URLs must move"
        );
    }

    #[test]
    fn splice_distinguishes_batch_and_job_ids() {
        // Worker batch id 1 collides numerically with worker job id 1 —
        // the first-"id" rule plus URL tokens keeps them apart.
        let body = concat!(
            "{\"id\":1,\"jobs\":[{\"spec\":\"Borda\",\"id\":1,\"status\":\"/v1/jobs/1\"},",
            "{\"spec\":\"Exact\",\"id\":2,\"status\":\"/v1/jobs/2\"}],",
            "\"status\":\"/v1/batches/1\"}"
        );
        let job_map: HashMap<u64, u64> = [(1, 10), (2, 11)].into_iter().collect();
        let mut first_id = true;
        let out = splice_ids(body, |token, value| match token {
            "/v1/batches/" => (value == 1).then_some(50),
            "\"id\":" if first_id => {
                first_id = false;
                (value == 1).then_some(50)
            }
            _ => job_map.get(&value).copied(),
        });
        assert_eq!(
            out,
            concat!(
                "{\"id\":50,\"jobs\":[{\"spec\":\"Borda\",\"id\":10,\"status\":\"/v1/jobs/10\"},",
                "{\"spec\":\"Exact\",\"id\":11,\"status\":\"/v1/jobs/11\"}],",
                "\"status\":\"/v1/batches/50\"}"
            )
        );
    }

    #[test]
    fn routing_key_prefers_session_id_over_text() {
        let with_session = br#"{"dataset":"[{A},{B}]","dataset_id":"live1"}"#;
        assert_eq!(routing_key(with_session), "ds:live1");
        let inline = br#"{"dataset":"[{A},{B}]"}"#;
        let same_inline = br#"{"dataset":"[{A},{B}]","seed":99}"#;
        assert_eq!(
            routing_key(inline),
            routing_key(same_inline),
            "inline routing must key on dataset content, not the rest of the body"
        );
    }
}
