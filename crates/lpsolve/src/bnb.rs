//! Branch-and-bound for 0/1 integer programs on top of the simplex solver.

use crate::{simplex, LpError, Problem, Solution, Var};

/// Knobs for [`Problem::solve_binary`].
#[derive(Debug, Clone)]
pub struct BnbOptions {
    /// Maximum number of explored nodes before giving up.
    pub max_nodes: usize,
    /// Simplex pivot budget per node.
    pub max_pivots_per_node: usize,
    /// A variable counts as integral when within this distance of 0 or 1.
    pub int_tol: f64,
}

impl Default for BnbOptions {
    fn default() -> Self {
        BnbOptions {
            max_nodes: 200_000,
            max_pivots_per_node: 200_000,
            int_tol: 1e-6,
        }
    }
}

pub(crate) fn solve_binary(
    p: &Problem,
    binaries: &[Var],
    opts: &BnbOptions,
) -> Result<Solution, LpError> {
    let mut incumbent: Option<Solution> = None;
    let mut nodes = 0usize;
    let mut truncated = false;

    // DFS stack of bound vectors (the row set is shared, only bounds change).
    let mut stack: Vec<(Vec<f64>, Vec<f64>)> = vec![(p.lower.clone(), p.upper.clone())];

    while let Some((lower, upper)) = stack.pop() {
        if nodes >= opts.max_nodes {
            truncated = true;
            break;
        }
        nodes += 1;

        let relax = match simplex::solve_with_bounds(p, &lower, &upper, opts.max_pivots_per_node) {
            Ok(s) => s,
            Err(LpError::Infeasible) => continue,
            Err(LpError::Unbounded) => return Err(LpError::Unbounded),
            Err(LpError::IterationLimit) => {
                truncated = true;
                continue;
            }
        };

        if let Some(best) = &incumbent {
            if relax.objective >= best.objective - 1e-9 {
                continue; // bound prune
            }
        }

        // Most fractional binary variable.
        let mut branch_var: Option<Var> = None;
        let mut worst_frac = opts.int_tol;
        for &v in binaries {
            let x = relax.x[v.index()];
            let frac = (x - x.round()).abs();
            if frac > worst_frac {
                worst_frac = frac;
                branch_var = Some(v);
            }
        }

        match branch_var {
            None => {
                // Integral: round the binaries exactly and accept.
                let mut sol = relax;
                for &v in binaries {
                    sol.x[v.index()] = sol.x[v.index()].round();
                }
                if incumbent
                    .as_ref()
                    .is_none_or(|b| sol.objective < b.objective - 1e-9)
                {
                    incumbent = Some(sol);
                }
            }
            Some(v) => {
                let j = v.index();
                let x = relax.x[j];
                // Explore the nearer value first (pushed last → popped first).
                let mut zero = (lower.clone(), upper.clone());
                zero.1[j] = 0.0;
                zero.0[j] = 0.0;
                let mut one = (lower, upper);
                one.0[j] = 1.0;
                one.1[j] = 1.0;
                if x >= 0.5 {
                    stack.push(zero);
                    stack.push(one);
                } else {
                    stack.push(one);
                    stack.push(zero);
                }
            }
        }
    }

    match incumbent {
        Some(sol) => Ok(sol),
        None if truncated => Err(LpError::IterationLimit),
        None => Err(LpError::Infeasible),
    }
}

#[cfg(test)]
mod tests {
    use crate::{BnbOptions, Cmp, LpError, Problem};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn knapsack_small() {
        // max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6  -> a + c (17) vs b + c (20).
        let mut p = Problem::new();
        let a = p.add_var(-10.0, 0.0, 1.0);
        let b = p.add_var(-13.0, 0.0, 1.0);
        let c = p.add_var(-7.0, 0.0, 1.0);
        p.add_row(&[(a, 3.0), (b, 4.0), (c, 2.0)], Cmp::Le, 6.0);
        let s = p.solve_binary(&[a, b, c], &BnbOptions::default()).unwrap();
        assert_close(s.objective, -20.0);
        assert_close(s.x[a.index()], 0.0);
        assert_close(s.x[b.index()], 1.0);
        assert_close(s.x[c.index()], 1.0);
    }

    #[test]
    fn lp_relaxation_fractional_ilp_integral() {
        // Classic: max x + y s.t. 2x + 2y <= 3 → LP gives 1.5, ILP 1.
        let mut p = Problem::new();
        let x = p.add_var(-1.0, 0.0, 1.0);
        let y = p.add_var(-1.0, 0.0, 1.0);
        p.add_row(&[(x, 2.0), (y, 2.0)], Cmp::Le, 3.0);
        let lp = p.solve().unwrap();
        assert_close(lp.objective, -1.5);
        let ilp = p.solve_binary(&[x, y], &BnbOptions::default()).unwrap();
        assert_close(ilp.objective, -1.0);
    }

    #[test]
    fn assignment_problem_3x3() {
        // min cost perfect matching; cost matrix rows: [4,2,8],[4,3,7],[3,1,6]
        // optimum = 2 + 4 + 6 = 12 (x01, x10, x22) or similar.
        let costs = [[4.0, 2.0, 8.0], [4.0, 3.0, 7.0], [3.0, 1.0, 6.0]];
        let mut p = Problem::new();
        let mut vars = [[None; 3]; 3];
        for i in 0..3 {
            for j in 0..3 {
                vars[i][j] = Some(p.add_var(costs[i][j], 0.0, 1.0));
            }
        }
        for i in 0..3 {
            let row: Vec<_> = (0..3).map(|j| (vars[i][j].unwrap(), 1.0)).collect();
            p.add_row(&row, Cmp::Eq, 1.0);
            let col: Vec<_> = (0..3).map(|j| (vars[j][i].unwrap(), 1.0)).collect();
            p.add_row(&col, Cmp::Eq, 1.0);
        }
        let all: Vec<_> = vars.iter().flatten().map(|v| v.unwrap()).collect();
        let s = p.solve_binary(&all, &BnbOptions::default()).unwrap();
        assert_close(s.objective, 12.0);
    }

    #[test]
    fn infeasible_ilp() {
        // x + y = 1 with x = y forced: no binary solution to x + y = 1, x - y = 0.
        let mut p = Problem::new();
        let x = p.add_var(1.0, 0.0, 1.0);
        let y = p.add_var(1.0, 0.0, 1.0);
        p.add_row(&[(x, 1.0), (y, 1.0)], Cmp::Eq, 1.0);
        p.add_row(&[(x, 1.0), (y, -1.0)], Cmp::Eq, 0.0);
        assert_eq!(
            p.solve_binary(&[x, y], &BnbOptions::default()).unwrap_err(),
            LpError::Infeasible
        );
    }

    #[test]
    fn mixed_integer_continuous() {
        // min -y - 0.5 z, y binary, z continuous in [0,1], y + z <= 1.4.
        // Best: y = 1, z = 0.4 → -1.2.
        let mut p = Problem::new();
        let y = p.add_var(-1.0, 0.0, 1.0);
        let z = p.add_var(-0.5, 0.0, 1.0);
        p.add_row(&[(y, 1.0), (z, 1.0)], Cmp::Le, 1.4);
        let s = p.solve_binary(&[y], &BnbOptions::default()).unwrap();
        assert_close(s.objective, -1.2);
        assert_close(s.x[y.index()], 1.0);
        assert_close(s.x[z.index()], 0.4);
    }

    #[test]
    fn node_budget_respected() {
        // A problem that needs branching, with a 1-node budget: the root is
        // fractional, so no incumbent can exist yet.
        let mut p = Problem::new();
        let x = p.add_var(-1.0, 0.0, 1.0);
        let y = p.add_var(-1.0, 0.0, 1.0);
        p.add_row(&[(x, 2.0), (y, 2.0)], Cmp::Le, 3.0);
        let opts = BnbOptions {
            max_nodes: 1,
            ..BnbOptions::default()
        };
        assert_eq!(
            p.solve_binary(&[x, y], &opts).unwrap_err(),
            LpError::IterationLimit
        );
    }
}
