//! A small, dependency-free linear-programming toolkit.
//!
//! The paper solves its exact formulation with CPLEX 12.4 and the Ailon 3/2
//! relaxation with LPSolve 5.5; neither is available here, so this crate is
//! the substitute substrate (see DESIGN.md §5):
//!
//! * [`Problem`] — a minimization LP with per-variable bounds and
//!   `≤` / `=` / `≥` rows.
//! * [`Problem::solve`] — dense two-phase primal simplex (Dantzig pricing
//!   with a Bland anti-cycling fallback).
//! * [`Problem::solve_binary`] — depth-first branch-and-bound over 0/1
//!   variables on top of the LP relaxation.
//!
//! The solver is deliberately dense and simple: the rank-aggregation LPs it
//! serves have at most a few thousand rows/columns, where a dense tableau is
//! entirely adequate and much easier to make robust than a sparse revised
//! simplex.
//!
//! ```
//! use lpsolve::{Problem, Cmp};
//! // minimize -x - 2y  s.t.  x + y <= 4, x <= 3, y <= 2
//! let mut p = Problem::new();
//! let x = p.add_var(-1.0, 0.0, 3.0);
//! let y = p.add_var(-2.0, 0.0, 2.0);
//! p.add_row(&[(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
//! let sol = p.solve().unwrap();
//! assert!((sol.objective - (-6.0)).abs() < 1e-9); // x = 2, y = 2
//! ```

mod bnb;
mod simplex;

pub use bnb::BnbOptions;

/// Row comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ = b`
    Eq,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
}

/// Handle to a decision variable of a [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

impl Var {
    /// Index of the variable in [`Solution::x`].
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Row {
    pub terms: Vec<(usize, f64)>,
    pub cmp: Cmp,
    pub rhs: f64,
}

/// A linear minimization problem.
#[derive(Debug, Clone, Default)]
pub struct Problem {
    pub(crate) obj: Vec<f64>,
    pub(crate) lower: Vec<f64>,
    pub(crate) upper: Vec<f64>,
    pub(crate) rows: Vec<Row>,
    /// Constant added to the reported objective value (the rank-aggregation
    /// objectives carry a per-pair constant term).
    pub obj_constant: f64,
}

/// Why the solver could not return an optimum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpError {
    /// The constraint set is empty.
    Infeasible,
    /// The objective decreases without bound.
    Unbounded,
    /// Pivot or node budget exhausted before proving optimality.
    IterationLimit,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "infeasible"),
            LpError::Unbounded => write!(f, "unbounded"),
            LpError::IterationLimit => write!(f, "iteration limit reached"),
        }
    }
}

impl std::error::Error for LpError {}

/// An optimal (or incumbent, for interrupted branch-and-bound) solution.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Objective value `c·x + obj_constant`.
    pub objective: f64,
    /// One value per variable, in [`Var::index`] order.
    pub x: Vec<f64>,
}

impl Problem {
    /// An empty problem (no variables, no rows).
    pub fn new() -> Self {
        Problem::default()
    }

    /// Add a variable with objective coefficient `obj` and bounds
    /// `[lower, upper]` (`upper` may be `f64::INFINITY`).
    ///
    /// # Panics
    /// Panics if `lower > upper`, or `lower` is negative or not finite.
    pub fn add_var(&mut self, obj: f64, lower: f64, upper: f64) -> Var {
        assert!(
            lower.is_finite() && lower >= 0.0,
            "lower bound must be finite and >= 0"
        );
        assert!(lower <= upper, "empty variable domain");
        self.obj.push(obj);
        self.lower.push(lower);
        self.upper.push(upper);
        Var(self.obj.len() - 1)
    }

    /// Number of variables added so far.
    pub fn n_vars(&self) -> usize {
        self.obj.len()
    }

    /// Number of rows added so far.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Add the row `Σ coef·var  cmp  rhs`.
    ///
    /// Repeated variables in `terms` are summed by the tableau builder.
    pub fn add_row(&mut self, terms: &[(Var, f64)], cmp: Cmp, rhs: f64) {
        let terms = terms.iter().map(|&(v, c)| (v.0, c)).collect();
        self.rows.push(Row { terms, cmp, rhs });
    }

    /// Tighten the bounds of `var` (used by branch-and-bound).
    pub fn set_bounds(&mut self, var: Var, lower: f64, upper: f64) {
        assert!(lower <= upper, "empty variable domain");
        self.lower[var.0] = lower;
        self.upper[var.0] = upper;
    }

    /// Solve the LP relaxation with the default pivot budget.
    pub fn solve(&self) -> Result<Solution, LpError> {
        simplex::solve(self, simplex::DEFAULT_MAX_PIVOTS)
    }

    /// Solve the LP relaxation with an explicit pivot budget.
    pub fn solve_with_limit(&self, max_pivots: usize) -> Result<Solution, LpError> {
        simplex::solve(self, max_pivots)
    }

    /// Solve with a pivot budget *and* a wall-clock deadline (checked every
    /// few hundred pivots; returns [`LpError::IterationLimit`] on expiry).
    pub fn solve_with_deadline(
        &self,
        max_pivots: usize,
        deadline: Option<std::time::Instant>,
    ) -> Result<Solution, LpError> {
        simplex::solve_deadline(self, max_pivots, deadline)
    }

    /// Solve as a 0/1 integer program: every variable in `binaries` is
    /// required to take value 0 or 1 in the returned solution.
    pub fn solve_binary(&self, binaries: &[Var], opts: &BnbOptions) -> Result<Solution, LpError> {
        bnb::solve_binary(self, binaries, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} != {b}");
    }

    #[test]
    fn doc_example() {
        let mut p = Problem::new();
        let x = p.add_var(-1.0, 0.0, 3.0);
        let y = p.add_var(-2.0, 0.0, 2.0);
        p.add_row(&[(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
        let sol = p.solve().unwrap();
        assert_close(sol.objective, -6.0);
        assert_close(sol.x[x.index()], 2.0);
        assert_close(sol.x[y.index()], 2.0);
    }

    #[test]
    fn trivial_problem_no_rows() {
        let mut p = Problem::new();
        let x = p.add_var(5.0, 0.0, 10.0);
        let sol = p.solve().unwrap();
        assert_close(sol.objective, 0.0);
        assert_close(sol.x[x.index()], 0.0);
    }

    #[test]
    fn lower_bounds_respected() {
        let mut p = Problem::new();
        let x = p.add_var(3.0, 2.0, 10.0);
        let sol = p.solve().unwrap();
        assert_close(sol.objective, 6.0);
        assert_close(sol.x[x.index()], 2.0);
    }

    #[test]
    fn objective_constant_reported() {
        let mut p = Problem::new();
        let _x = p.add_var(1.0, 0.0, 1.0);
        p.obj_constant = 41.0;
        let sol = p.solve().unwrap();
        assert_close(sol.objective, 41.0);
    }
}
