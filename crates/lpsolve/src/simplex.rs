//! Dense two-phase primal simplex.
//!
//! Variables are internally shifted by their lower bound so that every
//! structural variable lives in `[0, ub-lb]`; finite upper bounds are
//! materialized as explicit `≤` rows. Rows that need them receive slack,
//! surplus and artificial columns; a Phase-1 run drives the artificials to
//! zero, Phase 2 optimizes the true objective.
//!
//! Pricing is Dantzig (most negative reduced cost); if the objective stalls
//! the solver falls back to Bland's rule, which guarantees termination.

use crate::{Cmp, LpError, Problem, Solution};
use std::time::Instant;

pub(crate) const DEFAULT_MAX_PIVOTS: usize = 500_000;
const TOL: f64 = 1e-9;

pub(crate) fn solve(p: &Problem, max_pivots: usize) -> Result<Solution, LpError> {
    solve_with_bounds_deadline(p, &p.lower, &p.upper, max_pivots, None)
}

pub(crate) fn solve_deadline(
    p: &Problem,
    max_pivots: usize,
    deadline: Option<Instant>,
) -> Result<Solution, LpError> {
    solve_with_bounds_deadline(p, &p.lower, &p.upper, max_pivots, deadline)
}

/// Solve `p` with bound vectors overriding the ones stored in the problem
/// (used by branch-and-bound to avoid cloning the row set per node).
pub(crate) fn solve_with_bounds(
    p: &Problem,
    lower: &[f64],
    upper: &[f64],
    max_pivots: usize,
) -> Result<Solution, LpError> {
    solve_with_bounds_deadline(p, lower, upper, max_pivots, None)
}

/// Like [`solve_with_bounds`] but aborts with `IterationLimit` once the
/// wall-clock `deadline` passes (checked every few hundred pivots — one
/// pivot on a large tableau costs milliseconds, so callers with time
/// budgets need the check *inside* the solve).
pub(crate) fn solve_with_bounds_deadline(
    p: &Problem,
    lower: &[f64],
    upper: &[f64],
    max_pivots: usize,
    deadline: Option<Instant>,
) -> Result<Solution, LpError> {
    let n = p.obj.len();
    debug_assert_eq!(lower.len(), n);
    debug_assert_eq!(upper.len(), n);

    // A variable is "fixed" when its domain is a point: it contributes a
    // constant and its (shifted) column must stay at zero.
    let fixed: Vec<bool> = (0..n).map(|j| upper[j] - lower[j] < TOL).collect();

    // --- Assemble normalized rows over shifted variables ------------------
    // Each entry: (dense coefficients, cmp, rhs >= 0).
    struct NormRow {
        coefs: Vec<f64>,
        cmp: Cmp,
        rhs: f64,
    }
    let mut norm_rows: Vec<NormRow> = Vec::with_capacity(p.rows.len() + n);
    for row in &p.rows {
        let mut coefs = vec![0.0; n];
        let mut rhs = row.rhs;
        for &(j, c) in &row.terms {
            coefs[j] += c;
        }
        for j in 0..n {
            rhs -= coefs[j] * lower[j]; // shift x = y + lb
            if fixed[j] {
                coefs[j] = 0.0;
            }
        }
        let mut cmp = row.cmp;
        if rhs < 0.0 {
            rhs = -rhs;
            for c in coefs.iter_mut() {
                *c = -*c;
            }
            cmp = match cmp {
                Cmp::Le => Cmp::Ge,
                Cmp::Ge => Cmp::Le,
                Cmp::Eq => Cmp::Eq,
            };
        }
        norm_rows.push(NormRow { coefs, cmp, rhs });
    }
    // Finite upper bounds become `y_j <= ub - lb` rows.
    for j in 0..n {
        if fixed[j] || !upper[j].is_finite() {
            continue;
        }
        let mut coefs = vec![0.0; n];
        coefs[j] = 1.0;
        norm_rows.push(NormRow {
            coefs,
            cmp: Cmp::Le,
            rhs: upper[j] - lower[j],
        });
    }

    let m = norm_rows.len();
    let n_slack = norm_rows
        .iter()
        .filter(|r| matches!(r.cmp, Cmp::Le | Cmp::Ge))
        .count();
    let n_art = norm_rows
        .iter()
        .filter(|r| matches!(r.cmp, Cmp::Ge | Cmp::Eq))
        .count();

    // Column layout: [0..n) structural, [n..n+n_slack) slack/surplus,
    // [n+n_slack..n+n_slack+n_art) artificial, last column = RHS.
    let w = n + n_slack + n_art + 1;
    let rhs_col = w - 1;
    let art_start = n + n_slack;
    let mut a = vec![0.0f64; m * w];
    let mut basis = vec![usize::MAX; m];
    {
        let mut next_slack = n;
        let mut next_art = art_start;
        for (i, row) in norm_rows.iter().enumerate() {
            let r = &mut a[i * w..(i + 1) * w];
            r[..n].copy_from_slice(&row.coefs);
            r[rhs_col] = row.rhs;
            match row.cmp {
                Cmp::Le => {
                    r[next_slack] = 1.0;
                    basis[i] = next_slack;
                    next_slack += 1;
                }
                Cmp::Ge => {
                    r[next_slack] = -1.0;
                    next_slack += 1;
                    r[next_art] = 1.0;
                    basis[i] = next_art;
                    next_art += 1;
                }
                Cmp::Eq => {
                    r[next_art] = 1.0;
                    basis[i] = next_art;
                    next_art += 1;
                }
            }
        }
    }

    let enterable = |j: usize| -> bool {
        if j >= art_start {
            return false; // artificials may never (re-)enter
        }
        if j < n && fixed[j] {
            return false; // fixed variables stay at their bound
        }
        true
    };

    let mut pivots_left = max_pivots;

    // --- Phase 1: minimize the sum of artificials --------------------------
    if n_art > 0 {
        let mut obj = vec![0.0f64; w];
        for j in art_start..art_start + n_art {
            obj[j] = 1.0;
        }
        // Price out the basic artificials.
        for i in 0..m {
            if basis[i] >= art_start {
                let row = a[i * w..(i + 1) * w].to_vec();
                for j in 0..w {
                    obj[j] -= row[j];
                }
            }
        }
        run(
            &mut a,
            &mut obj,
            &mut basis,
            m,
            w,
            &enterable,
            &mut pivots_left,
            deadline,
        )?;
        // obj[rhs_col] holds -z; feasible iff z ~ 0.
        if obj[rhs_col] < -1e-7 {
            return Err(LpError::Infeasible);
        }
        // Drive leftover artificials out of the basis. They sit at value 0,
        // so pivoting on ANY nonzero enterable coefficient of their row
        // preserves feasibility; without this step, Phase 2 pivots can push
        // an artificial positive again and return an infeasible "optimum".
        for i in 0..m {
            if basis[i] < art_start {
                continue;
            }
            debug_assert!(a[i * w + rhs_col].abs() <= 1e-7);
            let col = (0..art_start).find(|&j| enterable(j) && a[i * w + j].abs() > TOL);
            if let Some(col) = col {
                pivot(&mut a, &mut obj, m, w, i, col);
                basis[i] = col;
            }
            // else: the row is all-zero on enterable columns and can never
            // change again (every future pivot column has coefficient 0
            // here) — it is inert and safe to leave.
        }
    }

    // --- Phase 2: the true objective ---------------------------------------
    let mut obj = vec![0.0f64; w];
    for (j, &c) in p.obj.iter().enumerate() {
        if !fixed[j] {
            obj[j] = c;
        }
    }
    for i in 0..m {
        let b = basis[i];
        if b < w - 1 && obj[b].abs() > 0.0 {
            let c = obj[b];
            let row = a[i * w..(i + 1) * w].to_vec();
            for j in 0..w {
                obj[j] -= c * row[j];
            }
        }
    }
    run(
        &mut a,
        &mut obj,
        &mut basis,
        m,
        w,
        &enterable,
        &mut pivots_left,
        deadline,
    )?;

    // --- Extract ------------------------------------------------------------
    let mut x = vec![0.0f64; n];
    for i in 0..m {
        if basis[i] < n {
            x[basis[i]] = a[i * w + rhs_col];
        }
    }
    for j in 0..n {
        x[j] += lower[j];
    }
    let objective: f64 = p.obj.iter().zip(&x).map(|(c, v)| c * v).sum::<f64>() + p.obj_constant;
    Ok(Solution { objective, x })
}

/// Run the simplex loop until optimality, unboundedness, or pivot exhaustion.
#[allow(clippy::too_many_arguments)]
fn run(
    a: &mut [f64],
    obj: &mut [f64],
    basis: &mut [usize],
    m: usize,
    w: usize,
    enterable: &dyn Fn(usize) -> bool,
    pivots_left: &mut usize,
    deadline: Option<Instant>,
) -> Result<(), LpError> {
    let mut since_check = 0usize;
    let rhs_col = w - 1;
    let mut bland = false;
    let mut stall = 0usize;
    let stall_limit = 4 * (m + w) + 64;
    let mut last_z = f64::INFINITY;

    loop {
        // Entering column.
        let mut col = usize::MAX;
        if bland {
            for j in 0..rhs_col {
                if enterable(j) && obj[j] < -TOL {
                    col = j;
                    break;
                }
            }
        } else {
            let mut best = -TOL;
            for j in 0..rhs_col {
                if enterable(j) && obj[j] < best {
                    best = obj[j];
                    col = j;
                }
            }
        }
        if col == usize::MAX {
            return Ok(()); // optimal
        }

        // Ratio test.
        let mut row = usize::MAX;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            let aij = a[i * w + col];
            if aij > TOL {
                let ratio = a[i * w + rhs_col] / aij;
                let better = ratio < best_ratio - TOL
                    || (ratio < best_ratio + TOL && (row == usize::MAX || basis[i] < basis[row]));
                if better {
                    best_ratio = ratio;
                    row = i;
                }
            }
        }
        if row == usize::MAX {
            return Err(LpError::Unbounded);
        }

        if *pivots_left == 0 {
            return Err(LpError::IterationLimit);
        }
        *pivots_left -= 1;
        since_check += 1;
        if since_check >= 128 {
            since_check = 0;
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return Err(LpError::IterationLimit);
                }
            }
        }

        pivot(a, obj, m, w, row, col);
        basis[row] = col;

        // Anti-cycling: if the objective stops improving, switch to Bland.
        let z = -obj[rhs_col];
        if z < last_z - TOL {
            stall = 0;
            bland = false;
        } else {
            stall += 1;
            if stall > stall_limit {
                bland = true;
            }
        }
        last_z = z;
    }
}

#[inline]
fn pivot(a: &mut [f64], obj: &mut [f64], m: usize, w: usize, row: usize, col: usize) {
    let piv = a[row * w + col];
    debug_assert!(piv.abs() > TOL);
    let inv = 1.0 / piv;
    for j in 0..w {
        a[row * w + j] *= inv;
    }
    a[row * w + col] = 1.0; // exact

    // Split the slice around the pivot row so we can read it while
    // updating the others.
    let (before, rest) = a.split_at_mut(row * w);
    let (prow, after) = rest.split_at_mut(w);
    let eliminate = |target: &mut [f64]| {
        for r in target.chunks_exact_mut(w) {
            let f = r[col];
            if f != 0.0 {
                for j in 0..w {
                    r[j] -= f * prow[j];
                }
                r[col] = 0.0; // exact
            }
        }
    };
    eliminate(before);
    eliminate(after);
    let f = obj[col];
    if f != 0.0 {
        for j in 0..w {
            obj[j] -= f * prow[j];
        }
        obj[col] = 0.0;
    }
    let _ = m;
}

#[cfg(test)]
mod tests {
    use crate::{Cmp, LpError, Problem};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn classic_two_var_max() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (Hillier-Lieberman).
        // As minimization of -3x - 5y; optimum (2, 6), z = -36.
        let mut p = Problem::new();
        let x = p.add_var(-3.0, 0.0, 4.0);
        let y = p.add_var(-5.0, 0.0, 6.0);
        p.add_row(&[(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
        let s = p.solve().unwrap();
        assert_close(s.objective, -36.0);
        assert_close(s.x[x.index()], 2.0);
        assert_close(s.x[y.index()], 6.0);
    }

    #[test]
    fn equality_constraint() {
        // min x + 2y s.t. x + y = 10, x <= 4  => x = 4, y = 6, z = 16.
        let mut p = Problem::new();
        let x = p.add_var(1.0, 0.0, 4.0);
        let y = p.add_var(2.0, 0.0, f64::INFINITY);
        p.add_row(&[(x, 1.0), (y, 1.0)], Cmp::Eq, 10.0);
        let s = p.solve().unwrap();
        assert_close(s.objective, 16.0);
        assert_close(s.x[x.index()], 4.0);
        assert_close(s.x[y.index()], 6.0);
    }

    #[test]
    fn ge_constraints_need_phase1() {
        // min 2x + 3y s.t. x + y >= 10, x - y <= 2 => corner search: optimum
        // at x = 10, y = 0? check: x - y = 10 > 2 violated. Optimum x = 6,
        // y = 4: z = 24.
        let mut p = Problem::new();
        let x = p.add_var(2.0, 0.0, f64::INFINITY);
        let y = p.add_var(3.0, 0.0, f64::INFINITY);
        p.add_row(&[(x, 1.0), (y, 1.0)], Cmp::Ge, 10.0);
        p.add_row(&[(x, 1.0), (y, -1.0)], Cmp::Le, 2.0);
        let s = p.solve().unwrap();
        assert_close(s.objective, 24.0);
        assert_close(s.x[x.index()], 6.0);
        assert_close(s.x[y.index()], 4.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::new();
        let x = p.add_var(1.0, 0.0, 1.0);
        p.add_row(&[(x, 1.0)], Cmp::Ge, 2.0);
        assert_eq!(p.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::new();
        let x = p.add_var(-1.0, 0.0, f64::INFINITY);
        let y = p.add_var(0.0, 0.0, 1.0);
        p.add_row(&[(x, -1.0), (y, 1.0)], Cmp::Le, 5.0);
        assert_eq!(p.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // min x s.t. -x <= -3  (i.e. x >= 3)
        let mut p = Problem::new();
        let x = p.add_var(1.0, 0.0, f64::INFINITY);
        p.add_row(&[(x, -1.0)], Cmp::Le, -3.0);
        let s = p.solve().unwrap();
        assert_close(s.objective, 3.0);
    }

    #[test]
    fn duplicate_terms_are_summed() {
        // min -x s.t. x/2 + x/2 <= 7  => x = 7.
        let mut p = Problem::new();
        let x = p.add_var(-1.0, 0.0, f64::INFINITY);
        p.add_row(&[(x, 0.5), (x, 0.5)], Cmp::Le, 7.0);
        let s = p.solve().unwrap();
        assert_close(s.x[x.index()], 7.0);
    }

    #[test]
    fn fixed_variable_contributes_constant() {
        // y fixed at 2 by bounds; min x + y s.t. x + y >= 5 => x = 3, z = 5.
        let mut p = Problem::new();
        let x = p.add_var(1.0, 0.0, f64::INFINITY);
        let y = p.add_var(1.0, 2.0, 2.0);
        p.add_row(&[(x, 1.0), (y, 1.0)], Cmp::Ge, 5.0);
        let s = p.solve().unwrap();
        assert_close(s.objective, 5.0);
        assert_close(s.x[x.index()], 3.0);
        assert_close(s.x[y.index()], 2.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Beale's classic cycling example (needs anti-cycling to finish).
        let mut p = Problem::new();
        let x1 = p.add_var(-0.75, 0.0, f64::INFINITY);
        let x2 = p.add_var(150.0, 0.0, f64::INFINITY);
        let x3 = p.add_var(-0.02, 0.0, f64::INFINITY);
        let x4 = p.add_var(6.0, 0.0, f64::INFINITY);
        p.add_row(
            &[(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
            Cmp::Le,
            0.0,
        );
        p.add_row(
            &[(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
            Cmp::Le,
            0.0,
        );
        p.add_row(&[(x3, 1.0)], Cmp::Le, 1.0);
        let s = p.solve().unwrap();
        assert_close(s.objective, -0.05);
    }

    #[test]
    fn larger_random_feasibility_check() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        for trial in 0..20 {
            let n = 8;
            let mut p = Problem::new();
            let vars: Vec<_> = (0..n)
                .map(|_| p.add_var(rng.random_range(-5.0..5.0), 0.0, 1.0))
                .collect();
            for _ in 0..12 {
                let terms: Vec<_> = vars
                    .iter()
                    .map(|&v| (v, rng.random_range(-1.0..2.0)))
                    .collect();
                p.add_row(&terms, Cmp::Le, rng.random_range(0.5..4.0));
            }
            let s = p.solve().unwrap_or_else(|e| panic!("trial {trial}: {e}"));
            // Optimal point must satisfy every row and the box bounds.
            for (ri, row) in p.rows.iter().enumerate() {
                let lhs: f64 = row.terms.iter().map(|&(j, c)| c * s.x[j]).sum();
                assert!(
                    lhs <= row.rhs + 1e-6,
                    "trial {trial} row {ri}: {lhs} > {}",
                    row.rhs
                );
            }
            for &v in &s.x {
                assert!((-1e-9..=1.0 + 1e-9).contains(&v));
            }
            // And must be no worse than any random feasible box point.
            for _ in 0..200 {
                let pt: Vec<f64> = (0..n).map(|_| rng.random_range(0.0..1.0)).collect();
                let feasible = p.rows.iter().all(|row| {
                    row.terms.iter().map(|&(j, c)| c * pt[j]).sum::<f64>() <= row.rhs + 1e-9
                });
                if feasible {
                    let z: f64 = p.obj.iter().zip(&pt).map(|(c, v)| c * v).sum();
                    assert!(s.objective <= z + 1e-6);
                }
            }
        }
    }
}
