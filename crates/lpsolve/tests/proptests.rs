//! Property-based validation of the simplex and the 0/1 branch-and-bound
//! against brute-force enumeration.

use lpsolve::{BnbOptions, Cmp, LpError, Problem, Var};
use proptest::prelude::*;

/// A random small 0/1 program: `n` binary variables, `rows` ≤-constraints
/// with coefficients in [-3, 3] and a RHS wide enough to be sometimes
/// feasible.
#[derive(Debug, Clone)]
struct BinaryInstance {
    obj: Vec<f64>,
    rows: Vec<(Vec<f64>, f64)>,
}

fn instance_strategy() -> impl Strategy<Value = BinaryInstance> {
    (1usize..=6, 0usize..=4).prop_flat_map(|(n, m)| {
        let coef = || prop::collection::vec(-3.0..3.0f64, n);
        (coef(), prop::collection::vec((coef(), -2.0..6.0f64), m))
            .prop_map(|(obj, rows)| BinaryInstance { obj, rows })
    })
}

fn build(inst: &BinaryInstance) -> (Problem, Vec<Var>) {
    let mut p = Problem::new();
    let vars: Vec<Var> = inst.obj.iter().map(|&c| p.add_var(c, 0.0, 1.0)).collect();
    for (coefs, rhs) in &inst.rows {
        let terms: Vec<(Var, f64)> = vars.iter().copied().zip(coefs.iter().copied()).collect();
        p.add_row(&terms, Cmp::Le, *rhs);
    }
    (p, vars)
}

/// Exhaustive optimum over all 2^n assignments (with a small feasibility
/// slack matching the solver's tolerance).
fn brute_force(inst: &BinaryInstance) -> Option<f64> {
    let n = inst.obj.len();
    let mut best: Option<f64> = None;
    for mask in 0u32..(1 << n) {
        let x: Vec<f64> = (0..n).map(|i| ((mask >> i) & 1) as f64).collect();
        let feasible = inst.rows.iter().all(|(coefs, rhs)| {
            coefs.iter().zip(&x).map(|(c, v)| c * v).sum::<f64>() <= rhs + 1e-9
        });
        if feasible {
            let z: f64 = inst.obj.iter().zip(&x).map(|(c, v)| c * v).sum();
            best = Some(best.map_or(z, |b: f64| b.min(z)));
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bnb_matches_exhaustive_enumeration(inst in instance_strategy()) {
        let (p, vars) = build(&inst);
        let expected = brute_force(&inst);
        match p.solve_binary(&vars, &BnbOptions::default()) {
            Ok(sol) => {
                let expected = expected.expect("solver found a solution, brute force must too");
                prop_assert!((sol.objective - expected).abs() < 1e-6,
                             "solver {} vs brute force {expected}", sol.objective);
                // The reported point must itself be feasible and binary.
                for &v in &vars {
                    let x = sol.x[v.index()];
                    prop_assert!((x - x.round()).abs() < 1e-6);
                }
                for (coefs, rhs) in &inst.rows {
                    let lhs: f64 = coefs.iter().enumerate()
                        .map(|(i, c)| c * sol.x[i]).sum();
                    prop_assert!(lhs <= rhs + 1e-6);
                }
            }
            Err(LpError::Infeasible) => {
                prop_assert!(expected.is_none(),
                             "solver said infeasible but brute force found {expected:?}");
            }
            Err(e) => prop_assert!(false, "unexpected solver error: {e}"),
        }
    }

    #[test]
    fn lp_relaxation_lower_bounds_the_ilp(inst in instance_strategy()) {
        let (p, vars) = build(&inst);
        if let (Ok(lp), Ok(ilp)) = (p.solve(), p.solve_binary(&vars, &BnbOptions::default())) {
            prop_assert!(lp.objective <= ilp.objective + 1e-6,
                         "relaxation {} above ILP {}", lp.objective, ilp.objective);
        }
    }

    #[test]
    fn lp_solution_is_feasible(inst in instance_strategy()) {
        let (p, _) = build(&inst);
        if let Ok(sol) = p.solve() {
            for (coefs, rhs) in &inst.rows {
                let lhs: f64 = coefs.iter().enumerate().map(|(i, c)| c * sol.x[i]).sum();
                prop_assert!(lhs <= rhs + 1e-6);
            }
            for &x in &sol.x {
                prop_assert!((-1e-9..=1.0 + 1e-9).contains(&x));
            }
        }
    }
}

#[test]
fn equality_rows_respected_by_bnb() {
    // x + y + z = 2 with costs 3, 1, 2 → pick y and z (cost 3).
    let mut p = Problem::new();
    let x = p.add_var(3.0, 0.0, 1.0);
    let y = p.add_var(1.0, 0.0, 1.0);
    let z = p.add_var(2.0, 0.0, 1.0);
    p.add_row(&[(x, 1.0), (y, 1.0), (z, 1.0)], Cmp::Eq, 2.0);
    let sol = p.solve_binary(&[x, y, z], &BnbOptions::default()).unwrap();
    assert!((sol.objective - 3.0).abs() < 1e-6);
    assert!(sol.x[y.index()] > 0.5 && sol.x[z.index()] > 0.5);
}
