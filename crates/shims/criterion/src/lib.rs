//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the benchmark-harness surface its benches use: [`Criterion`],
//! [`BenchmarkGroup`] (with `sample_size` / `warm_up_time` /
//! `measurement_time` / `bench_function` / `bench_with_input` / `finish`),
//! [`BenchmarkId`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: warm up for the configured warm-up
//! window, then run timed batches until the measurement window elapses and
//! report the mean wall-clock time per iteration. There is no statistical
//! analysis, outlier rejection, or HTML report — one line per benchmark on
//! stdout:
//!
//! ```text
//! kernels/pair_table_build/100    42.1 µs/iter  (9873 iters)
//! ```

use std::fmt::Display;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

/// Measurement strategies (only wall clock is provided).
pub mod measurement {
    /// Wall-clock time measurement.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// Benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(function_id: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Runs one benchmark's closure and accumulates timing.
pub struct Bencher<'a> {
    warm_up: Duration,
    measurement: Duration,
    result: &'a mut Option<(Duration, u64)>,
}

impl Bencher<'_> {
    /// Time `routine`, reporting the mean wall-clock cost per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run untimed until the warm-up window elapses.
        let warm_start = Instant::now();
        loop {
            std::hint::black_box(routine());
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        // Measurement: timed batches until the window elapses.
        let mut iters = 0u64;
        let start = Instant::now();
        loop {
            std::hint::black_box(routine());
            iters += 1;
            if start.elapsed() >= self.measurement {
                break;
            }
        }
        *self.result = Some((start.elapsed(), iters));
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    name: String,
    warm_up: Duration,
    measurement: Duration,
    _criterion: &'a mut Criterion,
    _marker: PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Accepted for API compatibility; the harness is time-driven, so the
    /// sample count does not change what is measured.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Untimed warm-up window per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Timed measurement window per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let mut result = None;
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            result: &mut result,
        };
        f(&mut bencher);
        self.report(&id, result);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let id = id.into();
        let mut result = None;
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            result: &mut result,
        };
        f(&mut bencher, input);
        self.report(&id, result);
        self
    }

    /// End the group (output is emitted per benchmark; this is a no-op
    /// kept for API compatibility).
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, result: Option<(Duration, u64)>) {
        match result {
            Some((total, iters)) if iters > 0 => {
                let per_iter = total.as_secs_f64() / iters as f64;
                println!(
                    "{}/{:<40} {:>12}/iter  ({} iters)",
                    self.name,
                    id.id,
                    format_seconds(per_iter),
                    iters
                );
            }
            _ => println!("{}/{:<40} (no measurement)", self.name, id.id),
        }
    }
}

/// Format a seconds value with an adaptive unit.
fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.1} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.1} µs", s * 1e6)
    } else {
        format!("{:.0} ns", s * 1e9)
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a benchmark group named `name`.
    pub fn benchmark_group<S: Into<String>>(
        &mut self,
        name: S,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.into(),
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            _criterion: self,
            _marker: PhantomData,
        }
    }
}

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub use std::hint::black_box;

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_measures_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        g.bench_function("counting", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        g.bench_with_input(BenchmarkId::new("with_input", 3), &3u32, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
        assert!(ran > 0, "the routine must actually execute");
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).id, "f/10");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }
}
