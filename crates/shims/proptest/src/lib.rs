//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of proptest it uses: the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map`, range and tuple and [`Just`] strategies,
//! [`collection::vec`], the [`proptest!`] test macro with
//! `#![proptest_config(...)]`, and the `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports the panic message of the
//!   `prop_assert*` that fired (inputs are printed by the assertion text
//!   the tests already carry); it is not minimized.
//! * **Deterministic cases.** Case `i` of every test derives its RNG from
//!   a fixed per-case seed, so failures reproduce exactly across runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-case RNG handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// The RNG for case number `case` (deterministic).
    pub fn deterministic(case: u32) -> Self {
        // Decorrelate consecutive cases with a SplitMix-style mix.
        let mut s = 0x5EED_0000_0000_0000u64 ^ (case as u64);
        let seed = rand::split_mix_64(&mut s);
        TestRng(StdRng::seed_from_u64(seed))
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Generate a value, build a new strategy from it, and sample that.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.start..=<$t>::MAX)
            }
        }
    )*};
}

int_range_strategies!(i32, u8, u16, u32, u64, usize);

// u128 ranges appear in the bignum tests; route them through two u64 draws.
impl Strategy for core::ops::Range<u128> {
    type Value = u128;
    fn generate(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end);
        sample_u128_below(rng, self.end - self.start) + self.start
    }
}

impl Strategy for core::ops::RangeInclusive<u128> {
    type Value = u128;
    fn generate(&self, rng: &mut TestRng) -> u128 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end);
        match (end - start).checked_add(1) {
            Some(span) => start + sample_u128_below(rng, span),
            None => (rng.rng().random::<u64>() as u128) << 64 | rng.rng().random::<u64>() as u128,
        }
    }
}

impl Strategy for core::ops::RangeFrom<u128> {
    type Value = u128;
    fn generate(&self, rng: &mut TestRng) -> u128 {
        (self.start..=u128::MAX).generate(rng)
    }
}

fn sample_u128_below(rng: &mut TestRng, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    let bits = 128 - (span - 1).leading_zeros();
    loop {
        let raw = if bits <= 64 {
            rng.rng().random::<u64>() as u128
        } else {
            (rng.rng().random::<u64>() as u128) << 64 | rng.rng().random::<u64>() as u128
        };
        let candidate = raw & (((1u128 << (bits - 1)) - 1) << 1 | 1);
        if candidate < span {
            return candidate;
        }
    }
}

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.rng().random_range(self.clone())
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.rng().random_range(self.clone())
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// `len` values drawn independently from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec()`](fn@vec).
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Number of random cases per `proptest!` test.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Cases generated (and bodies executed) per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Everything tests usually import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };

    /// The `prop::` module path used by `prop::collection::vec`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut __proptest_rng = $crate::TestRng::deterministic(case);
                    $( let $pat = $crate::Strategy::generate(&($strat), &mut __proptest_rng); )+
                    $body
                }
            }
        )*
    };
}

/// Condition assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_compose() {
        let mut rng = crate::TestRng::deterministic(0);
        let s = (2usize..=5).prop_flat_map(|n| prop::collection::vec(0..n as u32, n));
        for _ in 0..50 {
            let v = crate::Strategy::generate(&s, &mut rng);
            assert!((2..=5).contains(&v.len()));
            let n = v.len() as u32;
            assert!(v.iter().all(|&x| x < n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_draws_in_range(x in 3u64..10, (a, b) in (0u32..4, Just(7u8))) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(a < 4);
            prop_assert_eq!(b, 7);
        }
    }
}
