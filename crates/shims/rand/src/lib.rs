//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of the `rand` 0.9 API it actually uses:
//!
//! * [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`]
//! * [`Rng::random_range`] over integer and float ranges
//! * [`Rng::random_bool`], [`Rng::random`]
//! * [`seq::SliceRandom::shuffle`]
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! well-distributed, and deterministic across platforms. It is **not** the
//! upstream `StdRng` (ChaCha12): seeded streams here are self-consistent
//! but do not reproduce upstream `rand` sequences. Nothing in this
//! repository depends on upstream sequences; determinism contracts are
//! stated relative to this implementation.

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step — used for seeding and for deriving sub-streams.
#[inline]
pub fn split_mix_64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{split_mix_64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for limb in &mut s {
                *limb = split_mix_64(&mut sm);
            }
            // All-zero state is the one degenerate case; SplitMix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible directly from a random bit stream (the stand-in for
/// `rand`'s `StandardUniform` distribution).
pub trait Random {
    /// Sample one value from `rng`.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    #[inline]
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    #[inline]
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Random for bool {
    #[inline]
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    #[inline]
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Sample uniformly from the range. Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "random_range: empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

int_sample_range!(i32, u32, u64, usize, i64, u8, u16);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "random_range: empty range");
        let u = f64::random_from(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "random_range: empty range");
        let u = f64::random_from(rng);
        start + u * (end - start)
    }
}

/// Uniform value in `[0, span)` (`span > 0`) via rejection on the masked
/// bit width — unbiased and at most one expected retry.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    let bits = 128 - (span - 1).leading_zeros();
    loop {
        let raw = if bits <= 64 {
            rng.next_u64() as u128
        } else {
            (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
        };
        let candidate = raw & ((1u128 << bits) - 1);
        if candidate < span {
            return candidate;
        }
    }
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        f64::random_from(self) < p
    }

    /// Sample a value of `T` from the full-width uniform distribution.
    #[inline]
    fn random<T: Random>(&mut self) -> T {
        T::random_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::Rng;

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Uniformly permute the slice in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(5u32..=5);
            assert_eq!(w, 5);
            let f = rng.random_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn range_samples_cover_support() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..400 {
            seen[rng.random_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 values should appear");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
