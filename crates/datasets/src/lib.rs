//! Real-world dataset facsimiles and normalization re-exports.
//!
//! The paper's real datasets (hosted at the now-defunct
//! `rank-aggregation-with-ties.lri.fr`) are unavailable; this crate builds
//! *facsimiles* — synthetic generators tuned to the statistics the paper
//! documents for each collection (sizes before/after projection and
//! unification in §7.3.1, similarity ranges in Figure 3, presence of ties,
//! dataset counts in Table 4). DESIGN.md §5 argues why this preserves the
//! experimental conclusions: the paper itself shows its findings are
//! driven by exactly these features.
//!
//! * [`realworld::websearch`] — top-1000 result lists of several engines
//!   per query; tiny full intersection (projection removes ≈98.4% of
//!   elements), union ≈2586±388 with ≈1586-element unification buckets.
//! * [`realworld::f1`] — Formula 1 seasons: each race ranks the
//!   participating pilots; projection removes ≈53.4%±25% of pilots
//!   (including champions), projected ≈15.8 elements vs unified ≈38.7.
//! * [`realworld::skicross`] — one small, positively-similar competition
//!   dataset.
//! * [`realworld::biomedical`] — many small datasets of gene rankings
//!   *with ties* over moderately overlapping gene sets (the paper's 319
//!   unified datasets from [Cohen-Boulakia et al. 2011]).
//!
//! Normalization (projection/unification/…) lives in
//! [`rank_core::normalize`] and is re-exported as [`normalize`].

pub mod realworld;

pub use rank_core::normalize;
