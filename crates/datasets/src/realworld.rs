//! Facsimile generators for the paper's four real-world collections.
//!
//! Every generator returns *raw* rankings (over different element subsets,
//! exactly like the real data) which the caller normalizes with
//! [`rank_core::normalize`]. All generators are deterministic given the
//! RNG, and each has a test pinning the §7.3.1 / Figure 3 statistics it
//! was tuned to.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rank_core::{Element, Ranking};

/// Gaussian sample via Box–Muller (keeps us inside the offline `rand`
/// feature set — no `rand_distr`).
fn normal(rng: &mut StdRng, mean: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.random_range(1e-12..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    mean + sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A skill-plus-noise permutation of `participants` (lower skill value =
/// better); used by the sport facsimiles.
fn noisy_result(participants: &[u32], skill_sigma: f64, rng: &mut StdRng) -> Ranking {
    let mut scored: Vec<(f64, u32)> = participants
        .iter()
        .map(|&p| (normal(rng, p as f64, skill_sigma), p))
        .collect();
    scored.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
    Ranking::permutation(&scored.iter().map(|&(_, p)| Element(p)).collect::<Vec<_>>())
        .expect("distinct participants")
}

/// WebSearch facsimile (original data: [Dwork et al. 2001], reused by
/// [Schalekamp & van Zuylen 2009] and [Ali & Meilă 2012]).
pub mod websearch {
    use super::*;

    /// Tunables; the defaults reproduce the paper's §7.3.1 statistics at
    /// `depth = 1000`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of search engines (rankings).
        pub engines: usize,
        /// Result-list length (paper: top-1000).
        pub depth: usize,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                engines: 4,
                depth: 1000,
            }
        }
    }

    /// Generate one query's result lists.
    ///
    /// Three relevance tiers drive inclusion: a small head almost every
    /// engine returns (→ the ≈40-element full intersection), a body of
    /// partially-agreed results, and a long engine-specific tail (→ the
    /// ≈2586-element union out of `engines × depth` slots). Each list is
    /// ordered by relevance plus rank-dependent noise, so heads agree and
    /// tails scramble.
    pub fn generate(cfg: &Config, rng: &mut StdRng) -> Vec<Ranking> {
        let scale = cfg.depth as f64 / 1000.0;
        let head = (60.0 * scale).round() as u32;
        let body = (1200.0 * scale).round() as u32;
        let tail = (6000.0 * scale).round() as u32;
        let pool = head + body + tail;
        (0..cfg.engines)
            .map(|_| {
                let mut picked: Vec<u32> = Vec::with_capacity(cfg.depth + 64);
                for u in 0..pool {
                    let p = if u < head {
                        0.85
                    } else if u < head + body {
                        0.35
                    } else {
                        0.088
                    };
                    if rng.random_bool(p) {
                        picked.push(u);
                    }
                }
                // Exactly `depth` results: trim the least relevant picks or
                // pad with the most relevant unpicked URLs.
                if picked.len() > cfg.depth {
                    picked.truncate(cfg.depth);
                } else {
                    let mut have: Vec<bool> = vec![false; pool as usize];
                    for &u in &picked {
                        have[u as usize] = true;
                    }
                    for u in 0..pool {
                        if picked.len() >= cfg.depth {
                            break;
                        }
                        if !have[u as usize] {
                            picked.push(u);
                        }
                    }
                }
                // Rank by relevance + noise growing with relevance rank:
                // engines agree about the head, diverge in the tail.
                let mut scored: Vec<(f64, u32)> = picked
                    .into_iter()
                    .map(|u| {
                        let sigma = 2.0 + u as f64 * 0.35;
                        (normal(rng, u as f64, sigma), u)
                    })
                    .collect();
                scored.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                Ranking::permutation(&scored.iter().map(|&(_, u)| Element(u)).collect::<Vec<_>>())
                    .expect("distinct URLs")
            })
            .collect()
    }
}

/// Formula 1 season facsimile ([Betzler et al. 2013] used seasons from
/// 1961 on; the paper's §7.3.1 quotes their projection statistics).
pub mod f1 {
    use super::*;

    /// Tunables; defaults reproduce §7.3.1 (projected ≈15.8±8.5 pilots,
    /// unified ≈38.7±11.4, ≈53% of pilots removed by projection).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Races in the season (rankings).
        pub races: usize,
        /// Pilots entering every race (the projection survivors).
        pub regulars: usize,
        /// Pilots entering only some races.
        pub occasionals: usize,
        /// Per-race participation probability of an occasional pilot.
        pub occasional_participation: f64,
        /// Result noise: higher = less similar races (Figure 3: F1
        /// projected similarity ≈ 0.25–0.5).
        pub skill_sigma: f64,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                races: 12,
                regulars: 16,
                occasionals: 24,
                occasional_participation: 0.35,
                skill_sigma: 9.0,
            }
        }
    }

    /// Generate one season. Pilot ids: `0..regulars` are the regulars.
    /// Skill is assigned *independently* of regular status — like the real
    /// seasons, where the 1970 champion did not finish every race and was
    /// removed by projection (§7.3.1); the same can happen here.
    pub fn generate(cfg: &Config, rng: &mut StdRng) -> Vec<Ranking> {
        let n_total = (cfg.regulars + cfg.occasionals) as u32;
        let mut skill: Vec<u32> = (0..n_total).collect();
        skill.shuffle(rng);
        (0..cfg.races)
            .map(|_| {
                let mut participants: Vec<u32> = (0..cfg.regulars as u32).collect();
                for p in cfg.regulars as u32..n_total {
                    if rng.random_bool(cfg.occasional_participation) {
                        participants.push(p);
                    }
                }
                // Rank by noisy skill; ids stay the pilot ids.
                let mut scored: Vec<(f64, u32)> = participants
                    .iter()
                    .map(|&p| (normal(rng, skill[p as usize] as f64, cfg.skill_sigma), p))
                    .collect();
                scored.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
                Ranking::permutation(&scored.iter().map(|&(_, p)| Element(p)).collect::<Vec<_>>())
                    .expect("distinct pilots")
            })
            .collect()
    }
}

/// SkiCross facsimile ([Betzler et al. 2013]: a single small competition
/// dataset; Figure 3 shows clearly positive projected similarity).
pub mod skicross {
    use super::*;

    /// Tunables.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of runs/events (rankings).
        pub runs: usize,
        /// Athlete pool.
        pub athletes: usize,
        /// Per-run participation probability.
        pub participation: f64,
        /// Result noise (lower than F1: runs of one event are similar).
        pub skill_sigma: f64,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                runs: 4,
                athletes: 32,
                participation: 0.85,
                skill_sigma: 5.0,
            }
        }
    }

    /// Generate the event's runs.
    pub fn generate(cfg: &Config, rng: &mut StdRng) -> Vec<Ranking> {
        (0..cfg.runs)
            .map(|_| {
                let mut participants: Vec<u32> = (0..cfg.athletes as u32)
                    .filter(|_| rng.random_bool(cfg.participation))
                    .collect();
                if participants.len() < 2 {
                    participants = vec![0, 1];
                }
                noisy_result(&participants, cfg.skill_sigma, rng)
            })
            .collect()
    }
}

/// BioMedical facsimile ([Cohen-Boulakia, Denise, Hamel 2011]: gene
/// rankings produced by reformulations of a biomedical query — small
/// datasets, rankings *with ties*, moderately overlapping gene sets,
/// positive similarity).
pub mod biomedical {
    use super::*;

    /// Tunables.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Minimum/maximum rankings per dataset.
        pub m_range: (usize, usize),
        /// Minimum/maximum genes in the underlying set.
        pub genes_range: (usize, usize),
        /// Fraction of genes each reformulation misses (uniform draw).
        pub dropout: (f64, f64),
        /// Markov steps per ranking relative to n (controls similarity;
        /// Figure 3 shows BioMedical unified similarity ≈ 0.1–0.4).
        pub steps_factor: usize,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                m_range: (3, 8),
                genes_range: (10, 70),
                dropout: (0.0, 0.3),
                steps_factor: 3,
            }
        }
    }

    /// Generate one dataset of gene rankings with ties.
    ///
    /// A seed bucket order (bucket sizes 1–4, modelling tied relevance
    /// scores) is perturbed by short Markov walks — reformulated queries
    /// return similar but not identical orders — and each reformulation
    /// then misses a random subset of the genes.
    pub fn generate(cfg: &Config, rng: &mut StdRng) -> Vec<Ranking> {
        let n = rng.random_range(cfg.genes_range.0..=cfg.genes_range.1);
        let m = rng.random_range(cfg.m_range.0..=cfg.m_range.1);

        // Seed: random bucket sizes in 1..=4 over a shuffled gene order.
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.shuffle(rng);
        let mut seed_buckets: Vec<Vec<Element>> = Vec::new();
        let mut i = 0;
        while i < n {
            let size = rng.random_range(1..=4.min(n - i));
            seed_buckets.push(order[i..i + size].iter().map(|&g| Element(g)).collect());
            i += size;
        }
        let seed = Ranking::from_buckets(seed_buckets).expect("partition");

        let t = cfg.steps_factor * n;
        (0..m)
            .map(|_| {
                let mut state = ragen::markov::WalkState::from_ranking(&seed);
                state.walk(t, rng);
                let full = state.to_ranking();
                // Random dropout of genes for this reformulation.
                let keep_frac = 1.0 - rng.random_range(cfg.dropout.0..=cfg.dropout.1);
                let mut kept: Vec<Element> = (0..n as u32).map(Element).collect();
                kept.shuffle(rng);
                kept.truncate(((n as f64 * keep_frac).round() as usize).max(2));
                kept.sort_unstable();
                let buckets: Vec<Vec<Element>> = full
                    .buckets()
                    .map(|b| {
                        b.iter()
                            .filter(|e| kept.binary_search(e).is_ok())
                            .copied()
                            .collect::<Vec<_>>()
                    })
                    .filter(|b: &Vec<Element>| !b.is_empty())
                    .collect();
                Ranking::from_buckets(buckets).expect("dropout keeps ≥2 genes")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rank_core::normalize::{projection, unification};
    use rank_core::similarity::dataset_similarity;

    #[test]
    fn websearch_statistics_match_paper() {
        // §7.3.1: projection removes ≈98.42%±0.89% of elements; projected
        // ≈40±20 elements; unified ≈2586±388.
        let mut rng = StdRng::seed_from_u64(20150831);
        let cfg = websearch::Config::default();
        let mut proj_sizes = Vec::new();
        let mut unif_sizes = Vec::new();
        for _ in 0..6 {
            let raw = websearch::generate(&cfg, &mut rng);
            assert!(raw.iter().all(|r| r.n_elements() == 1000));
            let p = projection(&raw).expect("head URLs shared by all engines");
            let u = unification(&raw).expect("non-empty");
            proj_sizes.push(p.dataset.n() as f64);
            unif_sizes.push(u.dataset.n() as f64);
        }
        let proj = proj_sizes.iter().sum::<f64>() / proj_sizes.len() as f64;
        let unif = unif_sizes.iter().sum::<f64>() / unif_sizes.len() as f64;
        assert!(
            (15.0..=110.0).contains(&proj),
            "projected size {proj} (paper 40±20)"
        );
        assert!(
            (2100.0..=3100.0).contains(&unif),
            "unified size {unif} (paper 2586±388)"
        );
        // Removal rate ≈ 98.4%.
        let removed = 1.0 - proj / unif;
        assert!(removed > 0.95, "projection removal {removed} (paper 0.984)");
    }

    #[test]
    fn f1_statistics_match_paper() {
        // §7.3.1: projected ≈15.81±8.53 pilots, unified ≈38.73±11.39,
        // ≈53.42%±25.03% of pilots removed by projection.
        let mut rng = StdRng::seed_from_u64(1970);
        let cfg = f1::Config::default();
        let mut proj = 0.0;
        let mut unif = 0.0;
        let runs = 10;
        for _ in 0..runs {
            let raw = f1::generate(&cfg, &mut rng);
            proj += projection(&raw).expect("regulars").dataset.n() as f64;
            unif += unification(&raw).expect("non-empty").dataset.n() as f64;
        }
        proj /= runs as f64;
        unif /= runs as f64;
        assert!(
            (10.0..=24.0).contains(&proj),
            "projected {proj} (paper 15.8±8.5)"
        );
        assert!(
            (27.0..=50.0).contains(&unif),
            "unified {unif} (paper 38.7±11.4)"
        );
        let removed = 1.0 - proj / unif;
        assert!(
            (0.28..=0.78).contains(&removed),
            "removal {removed} (paper 0.53±0.25)"
        );
    }

    #[test]
    fn f1_projection_is_positively_similar() {
        // Figure 3: F1 projected similarity is clearly positive.
        let mut rng = StdRng::seed_from_u64(3);
        let raw = f1::generate(&f1::Config::default(), &mut rng);
        let p = projection(&raw).unwrap();
        let s = dataset_similarity(&p.dataset);
        assert!(s > 0.1, "F1 projected similarity {s}");
    }

    #[test]
    fn skicross_is_small_and_similar() {
        let mut rng = StdRng::seed_from_u64(7);
        let raw = skicross::generate(&skicross::Config::default(), &mut rng);
        let p = projection(&raw).unwrap();
        assert!(p.dataset.n() >= 4, "projection kept {}", p.dataset.n());
        let s = dataset_similarity(&p.dataset);
        assert!(
            s > 0.3,
            "SkiCross projected similarity {s} (Figure 3: ≈0.5)"
        );
        let u = unification(&raw).unwrap();
        assert!(u.dataset.n() <= 32);
    }

    #[test]
    fn biomedical_has_ties_and_positive_similarity() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut with_ties = 0;
        for _ in 0..10 {
            let raw = biomedical::generate(&biomedical::Config::default(), &mut rng);
            assert!(raw.len() >= 3 && raw.len() <= 8);
            if raw.iter().any(|r| !r.is_permutation()) {
                with_ties += 1;
            }
            let u = unification(&raw).unwrap();
            assert!((8..=75).contains(&u.dataset.n()), "n = {}", u.dataset.n());
            let s = dataset_similarity(&u.dataset);
            assert!(
                s > -0.2,
                "biomedical similarity {s} should not be adversarial"
            );
        }
        assert!(
            with_ties >= 8,
            "gene rankings should typically contain ties"
        );
    }

    #[test]
    fn generators_are_deterministic_given_seed() {
        let a = f1::generate(&f1::Config::default(), &mut StdRng::seed_from_u64(5));
        let b = f1::generate(&f1::Config::default(), &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
        let c = f1::generate(&f1::Config::default(), &mut StdRng::seed_from_u64(6));
        assert_ne!(a, c);
    }
}
