//! Markov-chain generation of increasingly dissimilar datasets (§6.1.2).
//!
//! States are rankings with ties; one step picks an element and one of four
//! operators uniformly (proposal probability `1/(4n)` each):
//!
//! 1. move the element into the **previous** bucket;
//! 2. move it into the **following** bucket;
//! 3. move it into a **new bucket right before** its current one;
//! 4. move it into a **new bucket right after** its current one.
//!
//! Invalid proposals (no previous/next bucket; or creating a new bucket
//! from a singleton, which would be a no-op) are rejected — this is the
//! paper's "restrictions when buckets contain one or two elements". Every
//! valid move's reverse is another of the four operators with the same
//! proposal probability, so the chain is symmetric and converges to the
//! uniform distribution over all bucket orders; `t` small ⇒ rankings stay
//! similar to the seed, `t → ∞` ⇒ uniform (the paper checks `t = 50 000`
//! behaves uniformly; our integration tests do the same).

use rand::rngs::StdRng;
use rand::Rng;
use rank_core::{Dataset, Element, Ranking};

/// Mutable chain state: bucket index per element + bucket sizes.
///
/// Kept flat so a step is `O(1)` unless a bucket appears/disappears
/// (then `O(n)` renumbering).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkState {
    /// `pos[id]` = bucket index of element `id`.
    pos: Vec<u32>,
    /// Number of elements per bucket (all nonzero).
    sizes: Vec<u32>,
}

impl WalkState {
    /// Start from an arbitrary ranking.
    pub fn from_ranking(r: &Ranking) -> Self {
        let n = r.n_elements();
        let mut pos = vec![0u32; n];
        for id in 0..n as u32 {
            pos[id as usize] = r
                .bucket_of(Element(id))
                .expect("ranking must be dense over 0..n") as u32;
        }
        WalkState {
            pos,
            sizes: r.buckets().map(|b| b.len() as u32).collect(),
        }
    }

    /// The identity permutation seed `[{0},{1},…,{n−1}]` the generator
    /// starts from.
    pub fn identity(n: usize) -> Self {
        WalkState {
            pos: (0..n as u32).collect(),
            sizes: vec![1; n],
        }
    }

    /// Snapshot as an immutable [`Ranking`].
    pub fn to_ranking(&self) -> Ranking {
        Ranking::from_bucket_indices(&self.pos).expect("state invariants hold")
    }

    fn n(&self) -> usize {
        self.pos.len()
    }

    /// Remove bucket `b` (must be empty): renumber positions above it.
    fn remove_bucket(&mut self, b: u32) {
        debug_assert_eq!(self.sizes[b as usize], 0);
        self.sizes.remove(b as usize);
        for p in self.pos.iter_mut() {
            if *p > b {
                *p -= 1;
            }
        }
    }

    /// Insert an empty bucket at index `b`: renumber positions at/above it.
    fn insert_bucket(&mut self, b: u32) {
        self.sizes.insert(b as usize, 0);
        for p in self.pos.iter_mut() {
            if *p >= b {
                *p += 1;
            }
        }
    }

    /// Apply one proposal; returns `true` if the move was valid (applied).
    pub fn try_move(&mut self, e: usize, op: MoveOp) -> bool {
        let b = self.pos[e];
        let k = self.sizes.len() as u32;
        match op {
            MoveOp::ToPrevious => {
                if b == 0 {
                    return false;
                }
                self.pos[e] = b - 1;
                self.sizes[b as usize - 1] += 1;
                self.sizes[b as usize] -= 1;
                if self.sizes[b as usize] == 0 {
                    self.remove_bucket(b);
                }
                true
            }
            MoveOp::ToNext => {
                if b + 1 >= k {
                    return false;
                }
                self.pos[e] = b + 1;
                self.sizes[b as usize + 1] += 1;
                self.sizes[b as usize] -= 1;
                if self.sizes[b as usize] == 0 {
                    self.remove_bucket(b);
                }
                true
            }
            MoveOp::NewBefore => {
                if self.sizes[b as usize] < 2 {
                    return false; // would be a no-op for a singleton
                }
                self.insert_bucket(b); // now e's old bucket is b + 1
                self.sizes[b as usize + 1] -= 1;
                self.sizes[b as usize] += 1;
                self.pos[e] = b;
                true
            }
            MoveOp::NewAfter => {
                if self.sizes[b as usize] < 2 {
                    return false;
                }
                self.insert_bucket(b + 1);
                self.sizes[b as usize] -= 1;
                self.sizes[b as usize + 1] += 1;
                self.pos[e] = b + 1;
                true
            }
        }
    }

    /// One chain step: uniform (element, operator) proposal, rejected
    /// proposals are self-loops.
    pub fn step(&mut self, rng: &mut StdRng) {
        let e = rng.random_range(0..self.n());
        let op = MoveOp::ALL[rng.random_range(0..4usize)];
        let _ = self.try_move(e, op);
    }

    /// Walk `t` steps.
    pub fn walk(&mut self, t: usize, rng: &mut StdRng) {
        for _ in 0..t {
            self.step(rng);
        }
    }

    #[cfg(test)]
    fn check_invariants(&self) {
        let k = self.sizes.len();
        assert!(self.sizes.iter().all(|&s| s > 0));
        assert_eq!(self.sizes.iter().sum::<u32>() as usize, self.n());
        let mut counts = vec![0u32; k];
        for &p in &self.pos {
            counts[p as usize] += 1;
        }
        assert_eq!(counts, self.sizes);
    }
}

/// The four §6.1.2 operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveOp {
    /// Move the element into the previous bucket.
    ToPrevious,
    /// Move the element into the following bucket.
    ToNext,
    /// Put it in a new bucket right before its current position.
    NewBefore,
    /// Put it in a new bucket right after its current position.
    NewAfter,
}

impl MoveOp {
    /// All operators, in a fixed order (indexed by the proposal draw).
    pub const ALL: [MoveOp; 4] = [
        MoveOp::ToPrevious,
        MoveOp::ToNext,
        MoveOp::NewBefore,
        MoveOp::NewAfter,
    ];
}

/// Dataset generator: `m` independent `t`-step walks from a common seed
/// ranking (§6.1.2: "a dataset over m rankings consists in starting m
/// times from r_s … and adding the state currently visited after t
/// steps").
#[derive(Debug, Clone)]
pub struct MarkovGen {
    /// Seed ranking `r_s`.
    pub seed: Ranking,
    /// Steps to walk per ranking.
    pub t: usize,
}

impl MarkovGen {
    /// Generator seeded with the identity permutation of `n` elements.
    pub fn identity_seeded(n: usize, t: usize) -> Self {
        MarkovGen {
            seed: WalkState::identity(n).to_ranking(),
            t,
        }
    }

    /// Generate one dataset of `m` rankings.
    pub fn dataset(&self, m: usize, rng: &mut StdRng) -> Dataset {
        let rankings: Vec<Ranking> = (0..m)
            .map(|_| {
                let mut state = WalkState::from_ranking(&self.seed);
                state.walk(self.t, rng);
                state.to_ranking()
            })
            .collect();
        Dataset::new(rankings).expect("walks preserve the support")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rank_core::similarity::dataset_similarity;
    use std::collections::HashMap;

    #[test]
    fn identity_seed_roundtrip() {
        let s = WalkState::identity(4);
        assert_eq!(s.to_ranking().to_string(), "[{0},{1},{2},{3}]");
        let r = rank_core::parse::parse_ranking("[{2},{0,1},{3}]").unwrap();
        assert_eq!(WalkState::from_ranking(&r).to_ranking(), r);
    }

    #[test]
    fn moves_preserve_invariants() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut s = WalkState::identity(6);
        for _ in 0..5000 {
            s.step(&mut rng);
            s.check_invariants();
        }
    }

    #[test]
    fn operator_semantics() {
        // [{0,1},{2}] — move 2 to previous: [{0,1,2}].
        let r = rank_core::parse::parse_ranking("[{0,1},{2}]").unwrap();
        let mut s = WalkState::from_ranking(&r);
        assert!(s.try_move(2, MoveOp::ToPrevious));
        assert_eq!(s.to_ranking().to_string(), "[{0,1,2}]");
        // New-before on 1 (bucket of 3): [{1},{0,2}] order.
        assert!(s.try_move(1, MoveOp::NewBefore));
        assert_eq!(s.to_ranking().to_string(), "[{1},{0,2}]");
        // New-after on 0: [{1},{2},{0}].
        assert!(s.try_move(0, MoveOp::NewAfter));
        assert_eq!(s.to_ranking().to_string(), "[{1},{2},{0}]");
    }

    #[test]
    fn invalid_moves_rejected() {
        let r = rank_core::parse::parse_ranking("[{0},{1,2}]").unwrap();
        let mut s = WalkState::from_ranking(&r);
        assert!(!s.try_move(0, MoveOp::ToPrevious)); // first bucket
        assert!(!s.try_move(1, MoveOp::ToNext)); // last bucket
        assert!(!s.try_move(0, MoveOp::NewBefore)); // singleton no-op
        assert!(!s.try_move(0, MoveOp::NewAfter)); // singleton no-op
        assert_eq!(s.to_ranking(), r, "rejected moves must not change state");
    }

    #[test]
    fn every_valid_move_has_an_inverse_proposal() {
        // Symmetry (detailed balance with uniform proposals): applying any
        // valid move, some single proposal restores the previous state.
        let mut rng = StdRng::seed_from_u64(9);
        let mut s = WalkState::identity(5);
        s.walk(200, &mut rng); // reach a generic state
        for e in 0..5 {
            for op in MoveOp::ALL {
                let before = s.clone();
                if s.try_move(e, op) {
                    let mut restored = false;
                    for rev in MoveOp::ALL {
                        let mut probe = s.clone();
                        if probe.try_move(e, rev) && probe.pos == before.pos {
                            restored = true;
                            break;
                        }
                    }
                    assert!(restored, "move {op:?} on {e} has no inverse");
                    s = before; // reset for the next probe
                }
            }
        }
    }

    #[test]
    fn long_walks_approach_uniformity_n3() {
        // After many steps the chain must distribute over all 13 states
        // of n = 3 roughly uniformly (cf. the paper's 50 000-step check).
        let mut rng = StdRng::seed_from_u64(123);
        let mut counts: HashMap<String, u32> = HashMap::new();
        let walks = 6500;
        for _ in 0..walks {
            let mut s = WalkState::identity(3);
            s.walk(200, &mut rng);
            *counts.entry(s.to_ranking().to_string()).or_default() += 1;
        }
        assert_eq!(counts.len(), 13);
        for (r, c) in &counts {
            // expected 500, σ ≈ 21.5; accept ±6σ.
            assert!((370..=630).contains(c), "{r}: {c}");
        }
    }

    #[test]
    fn similarity_decreases_with_steps() {
        let mut rng = StdRng::seed_from_u64(77);
        let sim_at = |t: usize, rng: &mut StdRng| {
            let gen = MarkovGen::identity_seeded(35, t);
            let mut acc = 0.0;
            for _ in 0..5 {
                acc += dataset_similarity(&gen.dataset(7, rng));
            }
            acc / 5.0
        };
        let s50 = sim_at(50, &mut rng);
        let s1000 = sim_at(1000, &mut rng);
        let s50000 = sim_at(50_000, &mut rng);
        // Paper: s ≈ 0.88 at 50 steps, 0.55 at 1000, ≈ −0.04 at 50 000.
        assert!(s50 > 0.7, "t=50 similarity {s50}");
        assert!(s1000 < s50, "t=1000 {s1000} !< t=50 {s50}");
        assert!(s50000 < 0.15, "t=50000 similarity {s50000}");
    }

    #[test]
    fn dataset_has_right_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = MarkovGen::identity_seeded(20, 100).dataset(7, &mut rng);
        assert_eq!(d.n(), 20);
        assert_eq!(d.m(), 7);
    }
}
