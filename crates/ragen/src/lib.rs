//! Synthetic dataset generators (§6.1 of the paper).
//!
//! * [`uniform`] — exactly-uniform rankings with ties (§6.1.1): every one
//!   of the `Fubini(n)` bucket orders is equally likely. The paper used
//!   MuPAD-Combinat; we sample recursively with exact big-integer weights
//!   (see the `bignum` crate).
//! * [`markov`] — the §6.1.2 Markov chain over rankings with ties whose
//!   four move operators give a symmetric proposal, hence a uniform
//!   stationary distribution; the number of steps `t` controls how similar
//!   the generated rankings stay to the seed.
//! * [`unified`] — the §6.1.3 pipeline (Figure 1): generate with
//!   similarity, retain top-k, unify.

pub mod markov;
pub mod models;
pub mod unified;
pub mod uniform;

pub use markov::MarkovGen;
pub use models::{Mallows, PlackettLuce};
pub use unified::UnifiedGen;
pub use uniform::UniformSampler;
