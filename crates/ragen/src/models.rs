//! Classical permutation models (Table 2 of the paper).
//!
//! Earlier studies ([Ali & Meilă 2012], [Betzler et al. 2013]) evaluated
//! on datasets drawn from the **Mallows** and **Plackett-Luce** models;
//! both are provided here so their experiments can be replayed against the
//! tie-aware panel. Both produce permutations (no ties) — aggregating them
//! exercises the §4 result that the tie-aware problem strictly generalizes
//! the classical one.

use rand::rngs::StdRng;
use rand::Rng;
use rank_core::{Dataset, Element, Ranking};

/// The Mallows model: permutations concentrated around a center, with
/// `P(π) ∝ φ^{D(π, center)}` (Kendall-τ distance).
///
/// Sampling uses the repeated-insertion method (RIM), which is exact.
#[derive(Debug, Clone)]
pub struct Mallows {
    /// Number of elements; the center is the identity `0 < 1 < … < n−1`.
    pub n: usize,
    /// Dispersion `φ ∈ (0, 1]`: 1 = uniform over permutations, → 0 =
    /// concentrated on the center.
    pub phi: f64,
}

impl Mallows {
    /// Create a model.
    ///
    /// # Panics
    /// Panics unless `0 < phi <= 1` and `n >= 1`.
    pub fn new(n: usize, phi: f64) -> Self {
        assert!(n >= 1, "need at least one element");
        assert!(phi > 0.0 && phi <= 1.0, "phi must be in (0, 1]");
        Mallows { n, phi }
    }

    /// Draw one permutation.
    pub fn sample(&self, rng: &mut StdRng) -> Ranking {
        // RIM: insert element i (0-based) into the current prefix; placing
        // it j slots from the end costs j inversions, weight φ^j.
        let mut order: Vec<Element> = Vec::with_capacity(self.n);
        for i in 0..self.n {
            let slots = i + 1;
            // weights φ^0 … φ^i over insertion depth from the END.
            let mut total = 0.0;
            let mut w = 1.0;
            for _ in 0..slots {
                total += w;
                w *= self.phi;
            }
            let mut draw = rng.random_range(0.0..total);
            let mut depth = 0;
            let mut w = 1.0;
            while depth + 1 < slots {
                if draw < w {
                    break;
                }
                draw -= w;
                w *= self.phi;
                depth += 1;
            }
            order.insert(i - depth, Element(i as u32));
        }
        Ranking::permutation(&order).expect("insertion builds a permutation")
    }

    /// Draw a dataset of `m` independent permutations.
    pub fn dataset(&self, m: usize, rng: &mut StdRng) -> Dataset {
        Dataset::new((0..m).map(|_| self.sample(rng)).collect()).expect("same dense support")
    }
}

/// The Plackett-Luce model: sequential choice proportional to positive
/// element weights.
#[derive(Debug, Clone)]
pub struct PlackettLuce {
    weights: Vec<f64>,
}

impl PlackettLuce {
    /// Create a model from per-element weights.
    ///
    /// # Panics
    /// Panics if any weight is not strictly positive and finite.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "need at least one element");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w > 0.0),
            "weights must be positive"
        );
        PlackettLuce { weights }
    }

    /// Geometrically decaying weights `ratio^i` — element 0 strongest.
    pub fn geometric(n: usize, ratio: f64) -> Self {
        assert!(ratio > 0.0 && ratio < 1.0, "ratio must be in (0, 1)");
        PlackettLuce::new((0..n).map(|i| ratio.powi(i as i32)).collect())
    }

    /// Draw one permutation: repeatedly pick the next element with
    /// probability proportional to its weight among the remaining ones.
    pub fn sample(&self, rng: &mut StdRng) -> Ranking {
        let mut remaining: Vec<(Element, f64)> = self
            .weights
            .iter()
            .enumerate()
            .map(|(i, &w)| (Element(i as u32), w))
            .collect();
        let mut order = Vec::with_capacity(remaining.len());
        while !remaining.is_empty() {
            let total: f64 = remaining.iter().map(|&(_, w)| w).sum();
            let mut draw = rng.random_range(0.0..total);
            let mut pick = remaining.len() - 1;
            for (i, &(_, w)) in remaining.iter().enumerate() {
                if draw < w {
                    pick = i;
                    break;
                }
                draw -= w;
            }
            order.push(remaining.swap_remove(pick).0);
        }
        Ranking::permutation(&order).expect("choices build a permutation")
    }

    /// Draw a dataset of `m` independent permutations.
    pub fn dataset(&self, m: usize, rng: &mut StdRng) -> Dataset {
        Dataset::new((0..m).map(|_| self.sample(rng)).collect()).expect("same dense support")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rank_core::distance::kendall_tau;

    #[test]
    fn mallows_phi_one_is_uniform_over_permutations() {
        // Mean Kendall distance to the identity under uniformity is
        // n(n−1)/4.
        let model = Mallows::new(8, 1.0);
        let center = model.sample(&mut StdRng::seed_from_u64(0)); // any perm
        let identity = Ranking::permutation(&(0..8u32).map(Element).collect::<Vec<_>>()).unwrap();
        let _ = center;
        let mut rng = StdRng::seed_from_u64(1);
        let draws = 4000;
        let mean: f64 = (0..draws)
            .map(|_| kendall_tau(&model.sample(&mut rng), &identity) as f64)
            .sum::<f64>()
            / draws as f64;
        let expected = 8.0 * 7.0 / 4.0; // 14
        assert!(
            (mean - expected).abs() < 0.5,
            "mean {mean}, expected {expected}"
        );
    }

    #[test]
    fn mallows_small_phi_concentrates_on_center() {
        let model = Mallows::new(10, 0.1);
        let identity = Ranking::permutation(&(0..10u32).map(Element).collect::<Vec<_>>()).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mean: f64 = (0..500)
            .map(|_| kendall_tau(&model.sample(&mut rng), &identity) as f64)
            .sum::<f64>()
            / 500.0;
        // E[D] = Σ_i Σ_j j·φ^j / Σ φ^j ≈ n·φ/(1−φ) ≈ 1.1 for φ = 0.1.
        assert!(mean < 2.5, "mean distance {mean} too large for phi = 0.1");
    }

    #[test]
    fn mallows_outputs_are_permutations() {
        let model = Mallows::new(15, 0.7);
        let mut rng = StdRng::seed_from_u64(3);
        let d = model.dataset(6, &mut rng);
        assert!(d.all_permutations());
        assert_eq!(d.n(), 15);
        assert_eq!(d.m(), 6);
    }

    #[test]
    fn plackett_luce_orders_by_weight_on_average() {
        let model = PlackettLuce::geometric(6, 0.3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut first_counts = [0u32; 6];
        for _ in 0..2000 {
            let r = model.sample(&mut rng);
            first_counts[r.bucket(0)[0].index()] += 1;
        }
        // Element 0 has weight share 1/(Σ 0.3^i) ≈ 70.2%.
        assert!(
            first_counts[0] > 1250,
            "element 0 first only {} times",
            first_counts[0]
        );
        assert!(first_counts[0] > first_counts[1]);
        assert!(first_counts[1] > first_counts[2]);
    }

    #[test]
    fn plackett_luce_valid_datasets() {
        let model = PlackettLuce::new(vec![1.0, 2.0, 3.0, 4.0]);
        let mut rng = StdRng::seed_from_u64(5);
        let d = model.dataset(5, &mut rng);
        assert!(d.all_permutations());
        assert_eq!(d.n(), 4);
    }

    #[test]
    #[should_panic(expected = "phi")]
    fn mallows_rejects_bad_phi() {
        let _ = Mallows::new(5, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn plackett_luce_rejects_bad_weights() {
        let _ = PlackettLuce::new(vec![1.0, -1.0]);
    }
}
