//! Exactly-uniform generation of rankings with ties (§6.1.1).
//!
//! The paper carefully ensures "all rankings have the same probability to
//! be present" using MuPAD-Combinat's recursive-method machinery
//! [Flajolet, Zimmerman, Van Cutsem 1994]. We reproduce the guarantee
//! directly: the number of bucket orders of `n` elements whose first
//! bucket has size `i` is `C(n, i) · Fubini(n − i)`, so sampling the first
//! bucket size with those exact weights (big-integer arithmetic — the
//! numbers have thousands of bits at `n = 500`), the bucket's members
//! uniformly, and recursing yields every bucket order with probability
//! exactly `1 / Fubini(n)`.

use bignum::combinatorics::{binomial_row, FubiniTable};
use bignum::Nat;
use rand::rngs::StdRng;
use rand::Rng;
use rank_core::{Dataset, Element, Ranking};

/// Sampler of uniformly random rankings with ties.
///
/// Construction precomputes the Fubini numbers up to `max_n` (`O(max_n²)`
/// big-integer operations, a one-off cost); sampling is then
/// `O(n² · n/64)` big-integer work per ranking.
#[derive(Debug, Clone)]
pub struct UniformSampler {
    fubini: FubiniTable,
}

impl UniformSampler {
    /// Prepare a sampler for rankings of up to `max_n` elements.
    pub fn new(max_n: usize) -> Self {
        UniformSampler {
            fubini: FubiniTable::up_to(max_n),
        }
    }

    /// Number of rankings with ties over `n` elements (`Fubini(n)`).
    pub fn count(&self, n: usize) -> &Nat {
        self.fubini.get(n)
    }

    /// Sample one uniformly random ranking with ties over `0..n`.
    ///
    /// # Panics
    /// Panics if `n` is 0 or exceeds the sampler's `max_n`.
    pub fn sample(&self, n: usize, rng: &mut StdRng) -> Ranking {
        assert!(n >= 1, "cannot sample an empty ranking");
        assert!(
            n <= self.fubini.max_n(),
            "sampler prepared for n <= {}, got {n}",
            self.fubini.max_n()
        );
        let mut pool: Vec<Element> = (0..n as u32).map(Element).collect();
        let mut buckets: Vec<Vec<Element>> = Vec::new();
        let mut k = n;
        while k > 0 {
            // First-bucket size i with weight C(k, i) · Fubini(k − i).
            let row = binomial_row(k);
            let mut draw = self.fubini.get(k).random_below(rng);
            let mut size = k;
            for i in 1..=k {
                let weight = &row[i] * self.fubini.get(k - i);
                match draw.checked_sub(&weight) {
                    None => {
                        size = i;
                        break;
                    }
                    Some(rest) => draw = rest,
                }
            }
            // Uniform choice of the bucket members: partial Fisher-Yates on
            // the remaining pool.
            let len = pool.len();
            for j in 0..size {
                let pick = rng.random_range(j..len);
                pool.swap(j, pick);
            }
            let bucket: Vec<Element> = pool.drain(..size).collect();
            buckets.push(bucket);
            k -= size;
        }
        Ranking::from_buckets(buckets).expect("sampled buckets partition 0..n")
    }

    /// Sample a dataset of `m` independent uniform rankings over `0..n` —
    /// the paper's uniformly generated datasets (`m ∈ [3;10]`,
    /// `n ∈ [5;500]`).
    pub fn sample_dataset(&self, n: usize, m: usize, rng: &mut StdRng) -> Dataset {
        let rankings = (0..m).map(|_| self.sample(n, rng)).collect();
        Dataset::new(rankings).expect("same dense support by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn counts_match_fubini() {
        let s = UniformSampler::new(10);
        assert_eq!(s.count(3).to_u128(), Some(13));
        assert_eq!(s.count(4).to_u128(), Some(75));
        assert_eq!(s.count(10).to_u128(), Some(102_247_563));
    }

    #[test]
    fn samples_are_valid_and_dense() {
        let s = UniformSampler::new(50);
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1usize, 2, 5, 17, 50] {
            let r = s.sample(n, &mut rng);
            assert_eq!(r.n_elements(), n);
            for id in 0..n as u32 {
                assert!(r.contains(Element(id)), "n={n} missing {id}");
            }
        }
    }

    #[test]
    fn n3_distribution_is_uniform_over_13_rankings() {
        // χ²-style smoke test: 13 bucket orders for n = 3, 13_000 draws →
        // expected 1000 each, σ ≈ 30.4; accept ±5σ.
        let s = UniformSampler::new(3);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts: HashMap<String, u32> = HashMap::new();
        for _ in 0..13_000 {
            *counts.entry(s.sample(3, &mut rng).to_string()).or_default() += 1;
        }
        assert_eq!(counts.len(), 13, "must hit all 13 bucket orders");
        for (r, c) in &counts {
            assert!((848..=1152).contains(c), "{r}: {c} draws is too skewed");
        }
    }

    #[test]
    fn n4_hits_all_75_rankings() {
        let s = UniformSampler::new(4);
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..7_500 {
            seen.insert(s.sample(4, &mut rng).to_string());
        }
        assert_eq!(seen.len(), 75);
    }

    #[test]
    fn first_bucket_size_distribution_n3() {
        // P(|B1| = 1) = C(3,1)·a(2)/a(3) = 9/13, P(2) = 3/13, P(3) = 1/13.
        let s = UniformSampler::new(3);
        let mut rng = StdRng::seed_from_u64(11);
        let mut sizes = [0u32; 4];
        let draws = 13_000;
        for _ in 0..draws {
            sizes[s.sample(3, &mut rng).bucket(0).len()] += 1;
        }
        let expect = [0.0, 9.0 / 13.0, 3.0 / 13.0, 1.0 / 13.0];
        for i in 1..=3 {
            let freq = sizes[i] as f64 / draws as f64;
            assert!(
                (freq - expect[i]).abs() < 0.02,
                "P(|B1|={i}) = {freq}, expected {}",
                expect[i]
            );
        }
    }

    #[test]
    fn dataset_shape() {
        let s = UniformSampler::new(20);
        let mut rng = StdRng::seed_from_u64(0);
        let d = s.sample_dataset(20, 7, &mut rng);
        assert_eq!(d.n(), 20);
        assert_eq!(d.m(), 7);
    }

    #[test]
    #[should_panic(expected = "sampler prepared")]
    fn oversize_panics() {
        let s = UniformSampler::new(5);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = s.sample(6, &mut rng);
    }
}
