//! Unified synthetic datasets with similarities (§6.1.3, Figure 1).
//!
//! The pipeline mimics the WebSearch use case: generate a dataset with a
//! controlled similarity level over `n_full` elements (Markov chain,
//! §6.1.2), retain only each ranking's top-k elements, then apply the
//! unification process so all rankings range over the same elements again.
//! Dissimilar inputs share few top-k elements, so unification creates the
//! large ending buckets whose effect Figure 5 isolates.
//!
//! The paper keeps `k ∈ [1; 35]` "in order to have datasets of n = 35
//! elements": we pick, per dataset, the smallest `k` whose top-k union
//! reaches the target size (the union can slightly overshoot; the harness
//! records the actual sizes).

use crate::markov::MarkovGen;
use rand::rngs::StdRng;
use rank_core::normalize::{top_k, unification, Normalized};
use rank_core::{Dataset, Ranking};

/// Generator for unified top-k datasets.
#[derive(Debug, Clone)]
pub struct UnifiedGen {
    /// Elements of the underlying full rankings (paper: 100).
    pub n_full: usize,
    /// Markov steps controlling similarity (paper: 10³ … 10⁶).
    pub t: usize,
    /// Target unified dataset size (paper: 35).
    pub target_n: usize,
}

impl UnifiedGen {
    /// Generate one dataset of `m` rankings; also returns the `k` used and
    /// the normalization mapping (for size statistics).
    pub fn generate(&self, m: usize, rng: &mut StdRng) -> (Dataset, usize, Normalized) {
        let full = MarkovGen::identity_seeded(self.n_full, self.t).dataset(m, rng);

        // Smallest k whose top-k union reaches the target size.
        let mut k = 1;
        let truncated: Vec<Ranking> = loop {
            let cut: Vec<Ranking> = full.rankings().iter().map(|r| top_k(r, k)).collect();
            let mut union: Vec<_> = cut.iter().flat_map(|r| r.elements()).collect();
            union.sort_unstable();
            union.dedup();
            if union.len() >= self.target_n || k >= self.n_full {
                break cut;
            }
            k += 1;
        };

        let normalized = unification(&truncated).expect("non-empty top-k rankings");
        (normalized.dataset.clone(), k, normalized)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rank_core::similarity::dataset_similarity;

    #[test]
    fn generated_dataset_reaches_target_size() {
        let mut rng = StdRng::seed_from_u64(1);
        let gen = UnifiedGen {
            n_full: 100,
            t: 10_000,
            target_n: 35,
        };
        let (d, k, _) = gen.generate(7, &mut rng);
        assert_eq!(d.m(), 7);
        assert!(d.n() >= 35, "union must reach the target (got {})", d.n());
        assert!((1..=35).contains(&k), "k = {k} out of the paper's range");
    }

    #[test]
    fn similar_inputs_need_larger_k_and_yield_small_ending_buckets() {
        // With very similar rankings the top-k sets coincide, so k ≈
        // target and unification buckets are small; dissimilar rankings
        // (large t) overlap little, so k is small and ending buckets big —
        // the §7.3.2 mechanism (avg bucket size 1.52 at 10³ vs 6.52 at 10⁶).
        let mut rng = StdRng::seed_from_u64(2);
        let avg_last_bucket = |t: usize, rng: &mut StdRng| {
            let gen = UnifiedGen {
                n_full: 100,
                t,
                target_n: 35,
            };
            let mut acc = 0.0;
            for _ in 0..5 {
                let (d, _, _) = gen.generate(7, rng);
                let avg: f64 = d
                    .rankings()
                    .iter()
                    .map(|r| r.bucket(r.n_buckets() - 1).len() as f64)
                    .sum::<f64>()
                    / d.m() as f64;
                acc += avg;
            }
            acc / 5.0
        };
        let similar = avg_last_bucket(1_000, &mut rng);
        let dissimilar = avg_last_bucket(1_000_000, &mut rng);
        assert!(
            dissimilar > similar,
            "ending buckets: similar {similar} !< dissimilar {dissimilar}"
        );
    }

    #[test]
    fn unified_similarity_tracks_t() {
        let mut rng = StdRng::seed_from_u64(3);
        let sim = |t: usize, rng: &mut StdRng| {
            let gen = UnifiedGen {
                n_full: 100,
                t,
                target_n: 35,
            };
            let (d, _, _) = gen.generate(7, rng);
            dataset_similarity(&d)
        };
        let s_lo = sim(1_000, &mut rng);
        let s_hi = sim(1_000_000, &mut rng);
        assert!(
            s_lo > s_hi,
            "similarity must decay with t: {s_lo} vs {s_hi}"
        );
    }
}
