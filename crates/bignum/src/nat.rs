//! The [`Nat`] type: an arbitrary-precision unsigned integer.

use rand::Rng;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// Arbitrary-precision unsigned integer.
///
/// Stored as little-endian `u64` limbs with no trailing zero limbs
/// (the canonical representation of zero is an empty limb vector).
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Nat {
    limbs: Vec<u64>,
}

impl Nat {
    /// The value `0`.
    #[inline]
    pub fn zero() -> Self {
        Nat { limbs: Vec::new() }
    }

    /// The value `1`.
    #[inline]
    pub fn one() -> Self {
        Nat { limbs: vec![1] }
    }

    /// `true` iff the value is `0`.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of significant bits (`0` for the value zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => 64 * (self.limbs.len() - 1) + (64 - top.leading_zeros() as usize),
        }
    }

    /// Construct from raw little-endian limbs (normalizing trailing zeros).
    fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Nat { limbs }
    }

    /// Lossy conversion to `f64` (infinity if the value exceeds `f64::MAX`).
    pub fn to_f64(&self) -> f64 {
        let mut acc = 0.0f64;
        for &limb in self.limbs.iter().rev() {
            acc = acc * 1.8446744073709552e19 + limb as f64;
            if acc.is_infinite() {
                return f64::INFINITY;
            }
        }
        acc
    }

    /// Exact conversion to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | ((self.limbs[1] as u128) << 64)),
            _ => None,
        }
    }

    /// `self + other`.
    pub fn add_nat(&self, other: &Nat) -> Nat {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.len() {
            let s = short.get(i).copied().unwrap_or(0);
            let (x, c1) = long[i].overflowing_add(s);
            let (x, c2) = x.overflowing_add(carry);
            out.push(x);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        Nat::from_limbs(out)
    }

    /// `self - other`, or `None` if the result would be negative.
    pub fn checked_sub(&self, other: &Nat) -> Option<Nat> {
        if self < other {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let o = other.limbs.get(i).copied().unwrap_or(0);
            let (x, b1) = self.limbs[i].overflowing_sub(o);
            let (x, b2) = x.overflowing_sub(borrow);
            out.push(x);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        Some(Nat::from_limbs(out))
    }

    /// `self * other` (schoolbook; operand sizes here are ≤ ~70 limbs).
    pub fn mul_nat(&self, other: &Nat) -> Nat {
        if self.is_zero() || other.is_zero() {
            return Nat::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        Nat::from_limbs(out)
    }

    /// `self * m` for a small multiplier.
    pub fn mul_small(&self, m: u64) -> Nat {
        if m == 0 || self.is_zero() {
            return Nat::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &a in &self.limbs {
            let cur = (a as u128) * (m as u128) + carry;
            out.push(cur as u64);
            carry = cur >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        Nat::from_limbs(out)
    }

    /// Divide by a small divisor, returning `(quotient, remainder)`.
    ///
    /// # Panics
    /// Panics if `d == 0`.
    pub fn divmod_small(&self, d: u64) -> (Nat, u64) {
        assert!(d != 0, "division by zero");
        let mut out = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            out[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        (Nat::from_limbs(out), rem as u64)
    }

    /// Exact division by a small divisor.
    ///
    /// # Panics
    /// Panics if the division leaves a remainder (use only when exactness is
    /// guaranteed, e.g. the multiplicative binomial recurrence).
    pub fn divexact_small(&self, d: u64) -> Nat {
        let (q, r) = self.divmod_small(d);
        assert_eq!(r, 0, "divexact_small: non-zero remainder");
        q
    }

    /// A uniformly random value in `[0, self)`.
    ///
    /// Uses rejection sampling on the bit length, so the expected number of
    /// RNG draws is below 2.
    ///
    /// # Panics
    /// Panics if `self` is zero (the range would be empty).
    pub fn random_below<R: Rng + ?Sized>(&self, rng: &mut R) -> Nat {
        assert!(!self.is_zero(), "random_below: empty range");
        let bits = self.bit_len();
        let n_limbs = self.limbs.len();
        let top_mask = if bits.is_multiple_of(64) {
            u64::MAX
        } else {
            (1u64 << (bits % 64)) - 1
        };
        loop {
            let mut limbs: Vec<u64> = (0..n_limbs).map(|_| rng.random::<u64>()).collect();
            *limbs.last_mut().expect("n_limbs >= 1") &= top_mask;
            let candidate = Nat::from_limbs(limbs);
            if &candidate < self {
                return candidate;
            }
        }
    }
}

impl From<u64> for Nat {
    fn from(v: u64) -> Self {
        Nat::from_limbs(vec![v])
    }
}

impl From<u128> for Nat {
    fn from(v: u128) -> Self {
        Nat::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl Ord for Nat {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => self.limbs.iter().rev().cmp(other.limbs.iter().rev()),
            ord => ord,
        }
    }
}

impl PartialOrd for Nat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<&Nat> for &Nat {
    type Output = Nat;
    fn add(self, rhs: &Nat) -> Nat {
        self.add_nat(rhs)
    }
}

impl AddAssign<&Nat> for Nat {
    fn add_assign(&mut self, rhs: &Nat) {
        *self = self.add_nat(rhs);
    }
}

impl Sub<&Nat> for &Nat {
    type Output = Nat;
    /// # Panics
    /// Panics on underflow; use [`Nat::checked_sub`] to handle it.
    fn sub(self, rhs: &Nat) -> Nat {
        self.checked_sub(rhs).expect("Nat subtraction underflow")
    }
}

impl Mul<&Nat> for &Nat {
    type Output = Nat;
    fn mul(self, rhs: &Nat) -> Nat {
        self.mul_nat(rhs)
    }
}

impl fmt::Display for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Peel 19 decimal digits at a time (10^19 is the largest power of ten
        // that fits in a u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.divmod_small(CHUNK);
            chunks.push(r);
            cur = q;
        }
        let mut s = String::new();
        s.push_str(&chunks.pop().expect("non-zero value has chunks").to_string());
        while let Some(c) = chunks.pop() {
            s.push_str(&format!("{c:019}"));
        }
        f.write_str(&s)
    }
}

impl fmt::Debug for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Nat({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn nat(v: u128) -> Nat {
        Nat::from(v)
    }

    #[test]
    fn zero_properties() {
        assert!(Nat::zero().is_zero());
        assert_eq!(Nat::zero().bit_len(), 0);
        assert_eq!(Nat::zero().to_string(), "0");
        assert_eq!(Nat::from(0u64), Nat::zero());
        assert_eq!(Nat::zero().to_f64(), 0.0);
    }

    #[test]
    fn one_and_bit_len() {
        assert_eq!(Nat::one().bit_len(), 1);
        assert_eq!(nat(255).bit_len(), 8);
        assert_eq!(nat(256).bit_len(), 9);
        assert_eq!(nat(u128::MAX).bit_len(), 128);
    }

    #[test]
    fn add_with_carry_across_limbs() {
        let a = nat(u64::MAX as u128);
        let b = Nat::one();
        assert_eq!((&a + &b).to_u128(), Some(1u128 << 64));
    }

    #[test]
    fn sub_with_borrow() {
        let a = nat(1u128 << 64);
        let b = Nat::one();
        assert_eq!((&a - &b).to_u128(), Some(u64::MAX as u128));
        assert_eq!(b.checked_sub(&a), None);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = &Nat::one() - &nat(2);
    }

    #[test]
    fn mul_cross_limb() {
        let a = nat(u64::MAX as u128);
        let b = &a * &a;
        assert_eq!(b.to_u128(), Some((u64::MAX as u128) * (u64::MAX as u128)));
    }

    #[test]
    fn mul_small_and_divmod_small_roundtrip() {
        let a = nat(123_456_789_012_345_678_901_234_567u128);
        let b = a.mul_small(997);
        let (q, r) = b.divmod_small(997);
        assert_eq!(q, a);
        assert_eq!(r, 0);
        let (q2, r2) = b.divmod_small(1000);
        assert_eq!(&q2.mul_small(1000) + &Nat::from(r2), b);
    }

    #[test]
    fn display_large_factorial() {
        // 30! = 265252859812191058636308480000000
        let mut f = Nat::one();
        for i in 2..=30u64 {
            f = f.mul_small(i);
        }
        assert_eq!(f.to_string(), "265252859812191058636308480000000");
    }

    #[test]
    fn ordering_across_sizes() {
        assert!(nat(u128::MAX) > nat(5));
        assert!(nat(5) < nat(6));
        assert_eq!(nat(7).cmp(&nat(7)), std::cmp::Ordering::Equal);
        let big = nat(u128::MAX).mul_small(u64::MAX);
        assert!(big > nat(u128::MAX));
    }

    #[test]
    fn to_f64_approximation() {
        let v = nat(1u128 << 100);
        let rel = (v.to_f64() - 2f64.powi(100)).abs() / 2f64.powi(100);
        assert!(rel < 1e-12);
    }

    #[test]
    fn random_below_in_range_and_hits_small_values() {
        let mut rng = StdRng::seed_from_u64(42);
        let bound = nat(10);
        let mut seen = [0u32; 10];
        for _ in 0..2000 {
            let v = bound.random_below(&mut rng);
            let v = v.to_u128().expect("fits") as usize;
            assert!(v < 10);
            seen[v] += 1;
        }
        // Every value of a 10-way uniform must show up in 2000 draws.
        assert!(
            seen.iter().all(|&c| c > 100),
            "skewed draw counts: {seen:?}"
        );
    }

    #[test]
    fn random_below_large_bound() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut bound = Nat::one();
        for i in 2..=100u64 {
            bound = bound.mul_small(i); // 100!
        }
        for _ in 0..50 {
            let v = bound.random_below(&mut rng);
            assert!(v < bound);
        }
    }

    proptest! {
        #[test]
        fn add_matches_u128(a in 0u128..=u128::MAX / 2, b in 0u128..=u128::MAX / 2) {
            prop_assert_eq!((&nat(a) + &nat(b)).to_u128(), Some(a + b));
        }

        #[test]
        fn sub_matches_u128(a in 0u128.., b in 0u128..) {
            let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
            prop_assert_eq!((&nat(hi) - &nat(lo)).to_u128(), Some(hi - lo));
        }

        #[test]
        fn mul_matches_u128(a in 0u64.., b in 0u64..) {
            prop_assert_eq!((&nat(a as u128) * &nat(b as u128)).to_u128(),
                            Some(a as u128 * b as u128));
        }

        #[test]
        fn divmod_matches_u128(a in 0u128.., d in 1u64..) {
            let (q, r) = nat(a).divmod_small(d);
            prop_assert_eq!(q.to_u128(), Some(a / d as u128));
            prop_assert_eq!(r as u128, a % d as u128);
        }

        #[test]
        fn ordering_matches_u128(a in 0u128.., b in 0u128..) {
            prop_assert_eq!(nat(a).cmp(&nat(b)), a.cmp(&b));
        }

        #[test]
        fn display_matches_u128(a in 0u128..) {
            prop_assert_eq!(nat(a).to_string(), a.to_string());
        }
    }
}
