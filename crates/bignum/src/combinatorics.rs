//! Exact combinatorial sequences used by the uniform bucket-order sampler.
//!
//! * [`binomial_row`] — one row of Pascal's triangle, exact.
//! * [`FubiniTable`] — the Fubini (ordered-Bell) numbers `a(n)`, i.e. the
//!   number of rankings with ties (bucket orders) of `n` elements:
//!   `a(n) = Σ_{k=1..n} C(n,k) · a(n-k)`, `a(0) = 1`.

use crate::Nat;

/// Row `n` of Pascal's triangle: `[C(n,0), C(n,1), …, C(n,n)]`.
///
/// Computed with the multiplicative recurrence
/// `C(n,k+1) = C(n,k)·(n−k)/(k+1)` (the division is always exact).
pub fn binomial_row(n: usize) -> Vec<Nat> {
    let mut row = Vec::with_capacity(n + 1);
    row.push(Nat::one());
    for k in 0..n {
        let next = row[k]
            .mul_small((n - k) as u64)
            .divexact_small((k + 1) as u64);
        row.push(next);
    }
    row
}

/// Precomputed table of Fubini numbers `a(0) ..= a(max_n)`.
///
/// Building the table costs `O(max_n²)` big-integer multiply-adds; for
/// `max_n = 500` this is a few hundred milliseconds, after which sampling
/// reads are free.
#[derive(Debug, Clone)]
pub struct FubiniTable {
    values: Vec<Nat>,
}

impl FubiniTable {
    /// Compute `a(0) ..= a(max_n)`.
    pub fn up_to(max_n: usize) -> Self {
        let mut values: Vec<Nat> = Vec::with_capacity(max_n + 1);
        values.push(Nat::one()); // a(0) = 1: the empty ranking
        for n in 1..=max_n {
            let row = binomial_row(n);
            let mut acc = Nat::zero();
            for k in 1..=n {
                acc += &(&row[k] * &values[n - k]);
            }
            values.push(acc);
        }
        FubiniTable { values }
    }

    /// `a(n)`: the number of bucket orders of `n` elements.
    ///
    /// # Panics
    /// Panics if `n` exceeds the precomputed range.
    #[inline]
    pub fn get(&self, n: usize) -> &Nat {
        &self.values[n]
    }

    /// Largest `n` available in the table.
    #[inline]
    pub fn max_n(&self) -> usize {
        self.values.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_small_rows() {
        let row0: Vec<u128> = binomial_row(0)
            .iter()
            .map(|x| x.to_u128().unwrap())
            .collect();
        assert_eq!(row0, vec![1]);
        let row5: Vec<u128> = binomial_row(5)
            .iter()
            .map(|x| x.to_u128().unwrap())
            .collect();
        assert_eq!(row5, vec![1, 5, 10, 10, 5, 1]);
        let row10: Vec<u128> = binomial_row(10)
            .iter()
            .map(|x| x.to_u128().unwrap())
            .collect();
        assert_eq!(row10[5], 252);
    }

    #[test]
    fn binomial_row_is_symmetric() {
        let row = binomial_row(37);
        for k in 0..=37 {
            assert_eq!(row[k], row[37 - k], "C(37,{k}) != C(37,{})", 37 - k);
        }
    }

    #[test]
    fn binomial_row_sums_to_power_of_two() {
        let row = binomial_row(64);
        let mut sum = Nat::zero();
        for c in &row {
            sum += c;
        }
        assert_eq!(sum.to_u128(), Some(1u128 << 64));
    }

    #[test]
    fn fubini_known_values() {
        // OEIS A000670.
        let expected: [u128; 11] = [
            1, 1, 3, 13, 75, 541, 4683, 47293, 545835, 7087261, 102247563,
        ];
        let table = FubiniTable::up_to(10);
        for (n, &e) in expected.iter().enumerate() {
            assert_eq!(table.get(n).to_u128(), Some(e), "a({n})");
        }
    }

    #[test]
    fn fubini_large_has_expected_magnitude() {
        // a(n) ~ n! / (2 (ln 2)^{n+1}); check digit count for n = 100.
        let table = FubiniTable::up_to(100);
        let digits = table.get(100).to_string().len();
        // a(100) has 174 digits (known value starts 1.7289e173).
        assert_eq!(digits, 174);
        assert_eq!(table.max_n(), 100);
    }
}
