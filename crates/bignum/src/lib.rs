//! Minimal arbitrary-precision unsigned integer arithmetic.
//!
//! The exact-uniform generator of rankings with ties (see the `ragen` crate)
//! samples a bucket order of `[n]` with probability `1 / Fubini(n)`.
//! `Fubini(500)` has roughly 4 000 bits, so the sampling weights
//! `C(n, i) * Fubini(n - i)` cannot be represented by any primitive integer
//! type. The paper used the MuPAD-Combinat package for this; this crate is
//! the substitute substrate.
//!
//! Only the operations actually needed are implemented:
//! addition, subtraction, multiplication, small-divisor division,
//! comparison, bit twiddling, decimal formatting and uniform sampling below
//! a bound ([`Nat::random_below`]).
//!
//! ```
//! use bignum::Nat;
//! let a = Nat::from(u64::MAX);
//! let b = &a * &a;
//! assert_eq!(b.to_string(), "340282366920938463426481119284349108225");
//! ```

pub mod combinatorics;
mod nat;

pub use nat::Nat;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readme_example() {
        let a = Nat::from(u64::MAX);
        let b = &a * &a;
        assert_eq!(b.to_string(), "340282366920938463426481119284349108225");
    }
}
