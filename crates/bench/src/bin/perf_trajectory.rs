//! Perf-trajectory snapshot for the parallel consensus kernel.
//!
//! Measures, for `n ∈ {50, 100, 200}` (m = 20, exact-uniform datasets):
//!
//! * cost-matrix build time, serial vs parallel, and the matrix footprint;
//! * one BioConsert local-search sweep (single start, sequential);
//! * full multi-start BioConsert, sequential vs parallel workers, with a
//!   consensus-score equality check (the determinism contract);
//! * an engine batch: the paper panel (minus the LP-bound Ailon) as one
//!   `Engine::run_batch` request batch, concurrent vs one-worker, with a
//!   report-equality check and the shared-build counter;
//! * an **anytime** section: per algorithm, the time to the *first*
//!   incumbent and to the *final* (best) incumbent plus the trace length,
//!   read off each report's incumbent trace — responsiveness, not just
//!   throughput, so future PRs can see when a kernel goes quiet for too
//!   long before its first answer.
//!
//! Writes the numbers as JSON (hand-rolled; no serde offline) so future
//! PRs can track the trajectory:
//!
//! ```text
//! cargo run --release -p bench --bin perf_trajectory -- BENCH_3.json
//! ```

use ragen::UniformSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rank_core::algorithms::bioconsert::BioConsert;
use rank_core::algorithms::{AlgoContext, ConsensusAlgorithm};
use rank_core::engine::{paper_panel, AggregationRequest, AlgoSpec, Engine};
use rank_core::{CostMatrix, Dataset};
use std::fmt::Write as _;
use std::time::Instant;

const M: usize = 20;
const NS: [usize; 3] = [50, 100, 200];

/// Median-of-`reps` seconds for `f`.
fn time_median<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    samples[samples.len() / 2]
}

/// Per-algorithm anytime responsiveness, read off one report's trace.
struct AnytimeRow {
    name: String,
    first_incumbent_s: f64,
    final_incumbent_s: f64,
    incumbents: usize,
    score: u64,
}

struct SizeReport {
    n: usize,
    build_serial_s: f64,
    build_parallel_s: f64,
    matrix_bytes: usize,
    sweep_s: f64,
    multistart_seq_s: f64,
    multistart_par_s: f64,
    score: u64,
    scores_identical: bool,
    batch_seq_s: f64,
    batch_par_s: f64,
    batch_builds: usize,
    batch_identical: bool,
    anytime: Vec<AnytimeRow>,
}

fn measure(n: usize, data: &Dataset) -> SizeReport {
    let threads = rank_core::parallel::num_threads();
    let reps = if n >= 200 { 3 } else { 5 };

    let build_serial_s = time_median(reps, || {
        std::hint::black_box(CostMatrix::build_with_threads(data, 1));
    });
    let build_parallel_s = time_median(reps, || {
        std::hint::black_box(CostMatrix::build_with_threads(data, threads));
    });
    let matrix_bytes = CostMatrix::build_with_threads(data, 1).bytes();

    // One local-search sweep: a single-start sequential BioConsert run
    // (start = first input ranking). The context is primed so the matrix
    // cache hit isolates the sweep from the build measured above.
    let single_start = BioConsert {
        extra_starts: vec![data.ranking(0).clone()],
        only_extra_starts: true,
        force_sequential: true,
    };
    let mut ctx = AlgoContext::seeded(2);
    ctx.cost_matrix(data);
    let sweep_s = time_median(reps, || {
        std::hint::black_box(single_start.run(data, &mut ctx));
    });

    // Full multi-start (one start per input ranking): sequential seed path
    // vs parallel workers, both on the primed context (pure search time).
    let sequential = BioConsert {
        force_sequential: true,
        ..BioConsert::default()
    };
    let parallel = BioConsert::default();
    let multistart_seq_s = time_median(reps, || {
        std::hint::black_box(sequential.run(data, &mut ctx));
    });
    let multistart_par_s = time_median(reps, || {
        std::hint::black_box(parallel.run(data, &mut ctx));
    });

    let pairs = CostMatrix::build(data);
    let r_seq = sequential.run(data, &mut ctx);
    let r_par = parallel.run(data, &mut ctx);
    let score = pairs.score(&r_par);

    // Engine batch: the paper panel at this size (the spec capability
    // bound sits the LP-based Ailon out at n ≥ 50) as one request batch —
    // the multi-tenant serving path. A fresh engine per timing keeps the
    // first-build cost inside the measurement, and the builds counter
    // proves the batch shared it.
    let specs: Vec<AlgoSpec> = paper_panel(20)
        .into_iter()
        .filter(|s| s.max_n().is_none_or(|cap| n <= cap))
        .collect();
    let requests = AggregationRequest::batch(data.clone())
        .specs(specs)
        .seed(5)
        .build();
    let batch_reps = reps.min(3);
    let batch_par_s = time_median(batch_reps, || {
        std::hint::black_box(Engine::new().run_batch(&requests));
    });
    let batch_seq_s = time_median(batch_reps, || {
        std::hint::black_box(Engine::with_workers(1).run_batch(&requests));
    });
    let par_engine = Engine::new();
    let par_reports = par_engine.run_batch(&requests);
    let seq_reports = Engine::with_workers(1).run_batch(&requests);
    let batch_identical = par_reports
        .iter()
        .zip(&seq_reports)
        .all(|(a, b)| a.ranking == b.ranking && a.score == b.score && a.outcome == b.outcome);

    // Anytime responsiveness per algorithm: when did the first/last
    // incumbent land? Read from the *sequential* batch's traces so the
    // numbers are not skewed by batch-level scheduler contention.
    let anytime: Vec<AnytimeRow> = seq_reports
        .iter()
        .map(|r| AnytimeRow {
            name: r.algorithm(),
            first_incumbent_s: r
                .time_to_first_incumbent()
                .map_or(f64::NAN, |d| d.as_secs_f64()),
            final_incumbent_s: r
                .time_to_final_incumbent()
                .map_or(f64::NAN, |d| d.as_secs_f64()),
            incumbents: r.trace.len(),
            score: r.score,
        })
        .collect();

    SizeReport {
        n,
        build_serial_s,
        build_parallel_s,
        matrix_bytes,
        sweep_s,
        multistart_seq_s,
        multistart_par_s,
        score,
        scores_identical: r_seq == r_par && pairs.score(&r_seq) == score,
        batch_seq_s,
        batch_par_s,
        batch_builds: par_engine.cache().builds(),
        batch_identical,
        anytime,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_3.json".to_owned());
    let threads = rank_core::parallel::num_threads();
    let sampler = UniformSampler::new(*NS.iter().max().expect("non-empty"));

    let mut reports = Vec::new();
    for n in NS {
        let mut rng = StdRng::seed_from_u64(42 + n as u64);
        let data = sampler.sample_dataset(n, M, &mut rng);
        let r = measure(n, &data);
        let slowest_first = r
            .anytime
            .iter()
            .max_by(|a, b| {
                a.first_incumbent_s
                    .partial_cmp(&b.first_incumbent_s)
                    .expect("finite times")
            })
            .expect("non-empty panel");
        eprintln!(
            "n={:<4} slowest first incumbent: {} at {:.1}ms",
            r.n,
            slowest_first.name,
            slowest_first.first_incumbent_s * 1e3
        );
        eprintln!(
            "n={:<4} build {:.2}ms→{:.2}ms  sweep {:.2}ms  multistart {:.1}ms→{:.1}ms ({:.2}x, identical={})  batch {:.1}ms→{:.1}ms ({:.2}x, builds={}, identical={})",
            r.n,
            r.build_serial_s * 1e3,
            r.build_parallel_s * 1e3,
            r.sweep_s * 1e3,
            r.multistart_seq_s * 1e3,
            r.multistart_par_s * 1e3,
            r.multistart_seq_s / r.multistart_par_s,
            r.scores_identical,
            r.batch_seq_s * 1e3,
            r.batch_par_s * 1e3,
            r.batch_seq_s / r.batch_par_s,
            r.batch_builds,
            r.batch_identical,
        );
        reports.push(r);
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"bench\": \"parallel consensus kernel (PR 1) + engine batch front door (PR 2) + anytime incumbent traces (PR 3)\","
    );
    let _ = writeln!(json, "  \"m\": {M},");
    let _ = writeln!(json, "  \"worker_threads\": {threads},");
    json.push_str("  \"sizes\": [\n");
    for (i, r) in reports.iter().enumerate() {
        let speedup = r.multistart_seq_s / r.multistart_par_s;
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"n\": {},", r.n);
        let _ = writeln!(
            json,
            "      \"matrix_build_serial_secs\": {:.6},",
            r.build_serial_s
        );
        let _ = writeln!(
            json,
            "      \"matrix_build_parallel_secs\": {:.6},",
            r.build_parallel_s
        );
        let _ = writeln!(json, "      \"matrix_peak_bytes\": {},", r.matrix_bytes);
        let _ = writeln!(json, "      \"local_search_sweep_secs\": {:.6},", r.sweep_s);
        let _ = writeln!(
            json,
            "      \"multistart_sequential_secs\": {:.6},",
            r.multistart_seq_s
        );
        let _ = writeln!(
            json,
            "      \"multistart_parallel_secs\": {:.6},",
            r.multistart_par_s
        );
        let _ = writeln!(json, "      \"multistart_speedup\": {speedup:.2},");
        let _ = writeln!(json, "      \"consensus_score\": {},", r.score);
        let _ = writeln!(
            json,
            "      \"parallel_matches_sequential\": {},",
            r.scores_identical
        );
        let _ = writeln!(
            json,
            "      \"engine_batch_sequential_secs\": {:.6},",
            r.batch_seq_s
        );
        let _ = writeln!(
            json,
            "      \"engine_batch_parallel_secs\": {:.6},",
            r.batch_par_s
        );
        let _ = writeln!(
            json,
            "      \"engine_batch_speedup\": {:.2},",
            r.batch_seq_s / r.batch_par_s
        );
        let _ = writeln!(
            json,
            "      \"engine_batch_matrix_builds\": {},",
            r.batch_builds
        );
        let _ = writeln!(
            json,
            "      \"engine_batch_matches_sequential\": {},",
            r.batch_identical
        );
        json.push_str("      \"anytime\": [\n");
        for (j, a) in r.anytime.iter().enumerate() {
            let _ = writeln!(
                json,
                "        {{\"algorithm\": \"{}\", \"time_to_first_incumbent_secs\": {:.6}, \"time_to_final_incumbent_secs\": {:.6}, \"incumbents\": {}, \"score\": {}}}{}",
                a.name,
                a.first_incumbent_s,
                a.final_incumbent_s,
                a.incumbents,
                a.score,
                if j + 1 < r.anytime.len() { "," } else { "" }
            );
        }
        json.push_str("      ]\n");
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < reports.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write bench report");
    println!("wrote {out_path}");
}
