//! Perf-trajectory snapshot for the parallel consensus kernel.
//!
//! Measures, for `n ∈ {50, 100, 200}` (m = 20, exact-uniform datasets):
//!
//! * cost-matrix build time, serial vs parallel, and the matrix footprint;
//! * one BioConsert local-search sweep (single start, sequential);
//! * full multi-start BioConsert, sequential vs parallel workers, with a
//!   consensus-score equality check (the determinism contract).
//!
//! Writes the numbers as JSON (hand-rolled; no serde offline) so future
//! PRs can track the trajectory:
//!
//! ```text
//! cargo run --release -p bench --bin perf_trajectory -- BENCH_1.json
//! ```

use ragen::UniformSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rank_core::algorithms::bioconsert::BioConsert;
use rank_core::algorithms::{AlgoContext, ConsensusAlgorithm};
use rank_core::{CostMatrix, Dataset};
use std::fmt::Write as _;
use std::time::Instant;

const M: usize = 20;
const NS: [usize; 3] = [50, 100, 200];

/// Median-of-`reps` seconds for `f`.
fn time_median<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    samples[samples.len() / 2]
}

struct SizeReport {
    n: usize,
    build_serial_s: f64,
    build_parallel_s: f64,
    matrix_bytes: usize,
    sweep_s: f64,
    multistart_seq_s: f64,
    multistart_par_s: f64,
    score: u64,
    scores_identical: bool,
}

fn measure(n: usize, data: &Dataset) -> SizeReport {
    let threads = rank_core::parallel::num_threads();
    let reps = if n >= 200 { 3 } else { 5 };

    let build_serial_s = time_median(reps, || {
        std::hint::black_box(CostMatrix::build_with_threads(data, 1));
    });
    let build_parallel_s = time_median(reps, || {
        std::hint::black_box(CostMatrix::build_with_threads(data, threads));
    });
    let matrix_bytes = CostMatrix::build_with_threads(data, 1).bytes();

    // One local-search sweep: a single-start sequential BioConsert run
    // (start = first input ranking). The context is primed so the matrix
    // cache hit isolates the sweep from the build measured above.
    let single_start = BioConsert {
        extra_starts: vec![data.ranking(0).clone()],
        only_extra_starts: true,
        force_sequential: true,
    };
    let mut ctx = AlgoContext::seeded(2);
    ctx.cost_matrix(data);
    let sweep_s = time_median(reps, || {
        std::hint::black_box(single_start.run(data, &mut ctx));
    });

    // Full multi-start (one start per input ranking): sequential seed path
    // vs parallel workers, both on the primed context (pure search time).
    let sequential = BioConsert {
        force_sequential: true,
        ..BioConsert::default()
    };
    let parallel = BioConsert::default();
    let multistart_seq_s = time_median(reps, || {
        std::hint::black_box(sequential.run(data, &mut ctx));
    });
    let multistart_par_s = time_median(reps, || {
        std::hint::black_box(parallel.run(data, &mut ctx));
    });

    let pairs = CostMatrix::build(data);
    let r_seq = sequential.run(data, &mut ctx);
    let r_par = parallel.run(data, &mut ctx);
    let score = pairs.score(&r_par);
    SizeReport {
        n,
        build_serial_s,
        build_parallel_s,
        matrix_bytes,
        sweep_s,
        multistart_seq_s,
        multistart_par_s,
        score,
        scores_identical: r_seq == r_par && pairs.score(&r_seq) == score,
    }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_1.json".to_owned());
    let threads = rank_core::parallel::num_threads();
    let sampler = UniformSampler::new(*NS.iter().max().expect("non-empty"));

    let mut reports = Vec::new();
    for n in NS {
        let mut rng = StdRng::seed_from_u64(42 + n as u64);
        let data = sampler.sample_dataset(n, M, &mut rng);
        let r = measure(n, &data);
        eprintln!(
            "n={:<4} build {:.2}ms→{:.2}ms  sweep {:.2}ms  multistart {:.1}ms→{:.1}ms ({:.2}x, identical={})",
            r.n,
            r.build_serial_s * 1e3,
            r.build_parallel_s * 1e3,
            r.sweep_s * 1e3,
            r.multistart_seq_s * 1e3,
            r.multistart_par_s * 1e3,
            r.multistart_seq_s / r.multistart_par_s,
            r.scores_identical,
        );
        reports.push(r);
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"parallel consensus kernel (PR 1)\",");
    let _ = writeln!(json, "  \"m\": {M},");
    let _ = writeln!(json, "  \"worker_threads\": {threads},");
    json.push_str("  \"sizes\": [\n");
    for (i, r) in reports.iter().enumerate() {
        let speedup = r.multistart_seq_s / r.multistart_par_s;
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"n\": {},", r.n);
        let _ = writeln!(json, "      \"matrix_build_serial_secs\": {:.6},", r.build_serial_s);
        let _ = writeln!(json, "      \"matrix_build_parallel_secs\": {:.6},", r.build_parallel_s);
        let _ = writeln!(json, "      \"matrix_peak_bytes\": {},", r.matrix_bytes);
        let _ = writeln!(json, "      \"local_search_sweep_secs\": {:.6},", r.sweep_s);
        let _ = writeln!(json, "      \"multistart_sequential_secs\": {:.6},", r.multistart_seq_s);
        let _ = writeln!(json, "      \"multistart_parallel_secs\": {:.6},", r.multistart_par_s);
        let _ = writeln!(json, "      \"multistart_speedup\": {speedup:.2},");
        let _ = writeln!(json, "      \"consensus_score\": {},", r.score);
        let _ = writeln!(json, "      \"parallel_matches_sequential\": {}", r.scores_identical);
        let _ = writeln!(json, "    }}{}", if i + 1 < reports.len() { "," } else { "" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write bench report");
    println!("wrote {out_path}");
}
