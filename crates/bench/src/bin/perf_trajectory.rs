//! Perf-trajectory snapshot for the parallel consensus kernel.
//!
//! Measures, for `n ∈ {50, 100, 200}` (m = 20, exact-uniform datasets):
//!
//! * cost-matrix build time, serial vs parallel, and the matrix footprint;
//! * one BioConsert local-search sweep (single start, sequential);
//! * full multi-start BioConsert, sequential vs parallel workers, with a
//!   consensus-score equality check (the determinism contract);
//! * an engine batch: the paper panel (minus the LP-bound Ailon) as one
//!   `Engine::run_batch` request batch, concurrent vs one-worker, with a
//!   report-equality check and the shared-build counter;
//! * an **anytime** section: per algorithm, the time to the *first*
//!   incumbent and to the *final* (best) incumbent plus the trace length,
//!   read off each report's incumbent trace — responsiveness, not just
//!   throughput, so future PRs can see when a kernel goes quiet for too
//!   long before its first answer;
//! * a **service** section: an in-process `service::Server` under
//!   concurrent remote clients, measuring submit-to-first-incumbent
//!   latency (what a waiting *network* caller experiences: HTTP framing +
//!   admission queue + job startup + first streamed event) and
//!   submit-to-finished time;
//! * an **exact** section: the parallel proof search (DESIGN.md §11.1)
//!   sequential vs parallel over a family of uniform instances at the
//!   hardness knee (n = 21 explodes past ~n = 22), with a
//!   result-equality check (the bit-identical contract) and — through a
//!   submitted anytime job — the **time to certified optimal**: the
//!   elapsed moment the streamed `gap` hit 0 and a waiting caller could
//!   have stopped;
//! * a **recovery** section (DESIGN.md §12): a pre-populated journal
//!   directory of finished jobs, measuring raw replay throughput
//!   (framed-and-checksummed lines per second) and restart-to-ready time
//!   — the full `Server::bind` on that directory, i.e. how long a crashed
//!   server's jobs stay unavailable after the process is back;
//! * an **incremental** section (DESIGN.md §13): per size, one `O(n²)`
//!   delta patch vs the `O(m·n²)` cold matrix rebuild an edit would
//!   otherwise force (with the bit-identity check inline); per Chanas
//!   instance, a warm-started re-solve after one edit vs a cold solve of
//!   the same edited dataset (the hint descent converges sooner); and the
//!   wire-level win of HTTP keep-alive — the same status read hammered
//!   over one pooled connection vs a fresh TCP dial per request;
//! * a **load** section (DESIGN.md §14): an open-loop generator — jobs
//!   fire on a fixed arrival clock, never waiting for completions, the
//!   way real traffic does — swept over arrival rates against a
//!   router-fronted fleet of 1 vs [`LOAD_FLEET`] workers, recording
//!   p50/p99 submit-to-finished latency and the shed rate; plus the
//!   batching claim at the fleet level: one panel as a single
//!   `POST /v1/batches` (one cost-matrix build) vs the same panel as
//!   scattered individual submissions (one build per worker hit);
//! * a **telemetry** section (DESIGN.md §15): per-op microcosts of the
//!   registry primitives (counter inc, histogram record, mutex-guarded
//!   handle resolve), the overhead fraction of a fully instrumented
//!   panel run (op count read off the run's own registry × microcost ÷
//!   wall time; budgeted ≤ 2%), and the cross-check that the registry's
//!   time-to-first-incumbent buckets agree with the PR 3 trace data;
//! * a **large-n** section (DESIGN.md §16): the positional panel on the
//!   matrix-free kernel lane at `n ∈ {1000, 5000, 20000}` — wall time,
//!   peak RSS (`VmHWM`), and the matrix-build counter (pinned 0) — with
//!   the dense lane alongside at n = 1000 for a same-host comparison of
//!   both lanes' time and memory on identical data. Passing a section
//!   name after the output path (only `large_n`) runs that section
//!   alone — CI's wall-clock-capped smoke job uses it.
//!
//! The header records the host's available parallelism and a timestamp,
//! so committed BENCH files stay interpretable (PR 1's single-core
//! container numbers were only explained in a ROADMAP footnote).
//!
//! Writes the numbers as JSON (hand-rolled; no serde offline) so future
//! PRs can track the trajectory:
//!
//! ```text
//! cargo run --release -p bench --bin perf_trajectory -- BENCH_10.json
//! ```

use ragen::UniformSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rank_core::algorithms::bioconsert::BioConsert;
use rank_core::algorithms::exact::ExactAlgorithm;
use rank_core::algorithms::{AlgoContext, ConsensusAlgorithm};
use rank_core::engine::{
    paper_panel, AggregationRequest, AlgoSpec, Engine, Event, ExecPolicy, KernelLane, LanePolicy,
};
use rank_core::session::DatasetSession;
use rank_core::{CostMatrix, Dataset};
use service::client::Client;
use service::journal::{FsyncPolicy, Journal};
use service::json::Json;
use service::proto::{BatchSubmission, JobSubmission};
use service::router::{Router, RouterConfig};
use service::server::{Server, ServerConfig, ShutdownHandle};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

const M: usize = 20;
const NS: [usize; 3] = [50, 100, 200];

/// Concurrent remote clients in the service section.
const SERVICE_CLIENTS: usize = 8;

/// The exact section's instance family: n = 21 sits at the hardness knee
/// of uniform data (proof searches run milliseconds to ~1 s; n = 22+ can
/// explode), m = 8 voters keeps real disagreement in play.
const EXACT_N: usize = 21;
const EXACT_M: usize = 8;
const EXACT_SEEDS: [u64; 5] = [2, 3, 4, 5, 6];
/// Safety net so one pathological host/seed can never hang the bench;
/// a timed-out instance is recorded `proved: false`, not discarded.
const EXACT_BUDGET: Duration = Duration::from_secs(60);

/// Median-of-`reps` seconds for `f`.
fn time_median<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    samples[samples.len() / 2]
}

/// Per-algorithm anytime responsiveness, read off one report's trace.
struct AnytimeRow {
    name: String,
    first_incumbent_s: f64,
    final_incumbent_s: f64,
    incumbents: usize,
    score: u64,
}

struct SizeReport {
    n: usize,
    build_serial_s: f64,
    build_parallel_s: f64,
    matrix_bytes: usize,
    sweep_s: f64,
    multistart_seq_s: f64,
    multistart_par_s: f64,
    score: u64,
    scores_identical: bool,
    batch_seq_s: f64,
    batch_par_s: f64,
    batch_builds: usize,
    batch_identical: bool,
    anytime: Vec<AnytimeRow>,
}

fn measure(n: usize, data: &Dataset) -> SizeReport {
    let threads = rank_core::parallel::num_threads();
    let reps = if n >= 200 { 3 } else { 5 };

    let build_serial_s = time_median(reps, || {
        std::hint::black_box(CostMatrix::build_with_threads(data, 1));
    });
    let build_parallel_s = time_median(reps, || {
        std::hint::black_box(CostMatrix::build_with_threads(data, threads));
    });
    let matrix_bytes = CostMatrix::build_with_threads(data, 1).bytes();

    // One local-search sweep: a single-start sequential BioConsert run
    // (start = first input ranking). The context is primed so the matrix
    // cache hit isolates the sweep from the build measured above.
    let single_start = BioConsert {
        extra_starts: vec![data.ranking(0).clone()],
        only_extra_starts: true,
        force_sequential: true,
    };
    let mut ctx = AlgoContext::seeded(2);
    ctx.cost_matrix(data);
    let sweep_s = time_median(reps, || {
        std::hint::black_box(single_start.run(data, &mut ctx));
    });

    // Full multi-start (one start per input ranking): sequential seed path
    // vs parallel workers, both on the primed context (pure search time).
    let sequential = BioConsert {
        force_sequential: true,
        ..BioConsert::default()
    };
    let parallel = BioConsert::default();
    let multistart_seq_s = time_median(reps, || {
        std::hint::black_box(sequential.run(data, &mut ctx));
    });
    let multistart_par_s = time_median(reps, || {
        std::hint::black_box(parallel.run(data, &mut ctx));
    });

    let pairs = CostMatrix::build(data);
    let r_seq = sequential.run(data, &mut ctx);
    let r_par = parallel.run(data, &mut ctx);
    let score = pairs.score(&r_par);

    // Engine batch: the paper panel at this size (the spec capability
    // bound sits the LP-based Ailon out at n ≥ 50) as one request batch —
    // the multi-tenant serving path. A fresh engine per timing keeps the
    // first-build cost inside the measurement, and the builds counter
    // proves the batch shared it.
    let specs: Vec<AlgoSpec> = paper_panel(20)
        .into_iter()
        .filter(|s| s.max_n().is_none_or(|cap| n <= cap))
        .collect();
    let requests = AggregationRequest::batch(data.clone())
        .specs(specs)
        .seed(5)
        .build();
    let batch_reps = reps.min(3);
    let batch_par_s = time_median(batch_reps, || {
        std::hint::black_box(Engine::new().run_batch(&requests));
    });
    let batch_seq_s = time_median(batch_reps, || {
        std::hint::black_box(Engine::with_workers(1).run_batch(&requests));
    });
    let par_engine = Engine::new();
    let par_reports = par_engine.run_batch(&requests);
    let seq_reports = Engine::with_workers(1).run_batch(&requests);
    let batch_identical = par_reports
        .iter()
        .zip(&seq_reports)
        .all(|(a, b)| a.ranking == b.ranking && a.score == b.score && a.outcome == b.outcome);

    // Anytime responsiveness per algorithm: when did the first/last
    // incumbent land? Read from the *sequential* batch's traces so the
    // numbers are not skewed by batch-level scheduler contention.
    let anytime: Vec<AnytimeRow> = seq_reports
        .iter()
        .map(|r| AnytimeRow {
            name: r.algorithm(),
            first_incumbent_s: r
                .time_to_first_incumbent()
                .map_or(f64::NAN, |d| d.as_secs_f64()),
            final_incumbent_s: r
                .time_to_final_incumbent()
                .map_or(f64::NAN, |d| d.as_secs_f64()),
            incumbents: r.trace.len(),
            score: r.score,
        })
        .collect();

    SizeReport {
        n,
        build_serial_s,
        build_parallel_s,
        matrix_bytes,
        sweep_s,
        multistart_seq_s,
        multistart_par_s,
        score,
        scores_identical: r_seq == r_par && pairs.score(&r_seq) == score,
        batch_seq_s,
        batch_par_s,
        batch_builds: par_engine.cache().builds(),
        batch_identical,
        anytime,
    }
}

/// One exact instance's numbers: the proof search sequential vs parallel
/// plus the anytime view of the same job.
struct ExactInstance {
    seed: u64,
    score: u64,
    proved: bool,
    sequential_s: f64,
    parallel_s: f64,
    identical: bool,
    /// Submit-to-certified over the anytime API: the streamed `gap` hit 0
    /// at this elapsed moment (NaN if the job never certified).
    certified_optimal_s: f64,
}

struct ExactReport {
    workers: usize,
    instances: Vec<ExactInstance>,
}

/// The exact section: per instance, one sequential and one parallel
/// proof search (fresh contexts; the `O(m·n²)` matrix build is noise at
/// n = 21) with a result-equality check, then the same request as a
/// submitted job to read the time-to-certified-optimal off its events.
fn measure_exact() -> ExactReport {
    let workers = rank_core::parallel::num_threads();
    let sampler = UniformSampler::new(EXACT_N);
    let instances = EXACT_SEEDS
        .iter()
        .map(|&seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let data = sampler.sample_dataset(EXACT_N, EXACT_M, &mut rng);

            let solve = |algo: &ExactAlgorithm| {
                let mut ctx = AlgoContext::seeded(7);
                ctx.deadline = Some(Instant::now() + EXACT_BUDGET);
                let t = Instant::now();
                let (ranking, score, proved) = algo.solve(&data, &mut ctx);
                (t.elapsed().as_secs_f64(), ranking, score, proved)
            };
            let sequential = ExactAlgorithm {
                force_sequential: true,
                ..ExactAlgorithm::default()
            };
            let parallel = ExactAlgorithm {
                threads: Some(workers),
                ..ExactAlgorithm::default()
            };
            let (sequential_s, r_seq, score, proved) = solve(&sequential);
            let (parallel_s, r_par, score_par, proved_par) = solve(&parallel);

            // Anytime view: when did the streamed gap certify?
            let engine = Engine::new();
            let handle = engine.submit(
                AggregationRequest::new(data.clone(), AlgoSpec::Exact)
                    .with_seed(7)
                    .with_budget(EXACT_BUDGET),
            );
            let mut certified_optimal_s = f64::NAN;
            for event in handle.events() {
                let (gap, elapsed) = match event {
                    Event::Incumbent { gap, elapsed, .. } => (gap, elapsed),
                    Event::LowerBound { gap, elapsed, .. } => (gap, elapsed),
                    _ => continue,
                };
                if certified_optimal_s.is_nan() && gap == Some(0) {
                    certified_optimal_s = elapsed.as_secs_f64();
                }
            }
            let _ = handle.wait();

            ExactInstance {
                seed,
                score,
                proved: proved && proved_par,
                sequential_s,
                parallel_s,
                identical: r_seq == r_par && score == score_par,
                certified_optimal_s,
            }
        })
        .collect();
    ExactReport { workers, instances }
}

/// One remote client's latencies, in seconds.
struct ClientLatency {
    submit_to_first_incumbent_s: f64,
    submit_to_finished_s: f64,
}

/// The service section: an in-process server, [`SERVICE_CLIENTS`]
/// concurrent clients each submitting one BioConsert job (n = 50) and
/// timing its own submit → first-incumbent → finished path over the wire.
struct ServiceReport {
    clients: usize,
    max_jobs: usize,
    first_incumbent_median_s: f64,
    first_incumbent_max_s: f64,
    finished_median_s: f64,
    finished_max_s: f64,
}

fn measure_service(data: &Dataset) -> ServiceReport {
    let mut text = String::new();
    for r in data.rankings() {
        text.push_str(&r.to_string());
        text.push('\n');
    }
    let config = ServerConfig::default();
    let max_jobs = config.max_jobs;
    let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let shutdown = server.shutdown_handle().expect("shutdown handle");
    std::thread::spawn(move || server.serve());

    let latencies: Vec<ClientLatency> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SERVICE_CLIENTS)
            .map(|i| {
                let addr = addr.clone();
                let text = text.clone();
                scope.spawn(move || {
                    let client = Client::new(&addr);
                    let start = Instant::now();
                    let job = client
                        .submit(&JobSubmission {
                            algo: Some("BioConsert".to_owned()),
                            seed: 100 + i as u64,
                            ..JobSubmission::new(text)
                        })
                        .expect("submit");
                    let mut first_incumbent_s = f64::NAN;
                    for event in client.events(job.id).expect("stream") {
                        let event = event.expect("well-formed event");
                        if first_incumbent_s.is_nan()
                            && event.get("event").and_then(Json::as_str) == Some("incumbent")
                        {
                            first_incumbent_s = start.elapsed().as_secs_f64();
                        }
                    }
                    ClientLatency {
                        submit_to_first_incumbent_s: first_incumbent_s,
                        submit_to_finished_s: start.elapsed().as_secs_f64(),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    shutdown.shutdown();

    let stats = |values: &mut Vec<f64>| -> (f64, f64) {
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        (values[values.len() / 2], *values.last().expect("non-empty"))
    };
    let mut first: Vec<f64> = latencies
        .iter()
        .map(|l| l.submit_to_first_incumbent_s)
        .collect();
    let mut finished: Vec<f64> = latencies.iter().map(|l| l.submit_to_finished_s).collect();
    let (first_incumbent_median_s, first_incumbent_max_s) = stats(&mut first);
    let (finished_median_s, finished_max_s) = stats(&mut finished);
    ServiceReport {
        clients: SERVICE_CLIENTS,
        max_jobs,
        first_incumbent_median_s,
        first_incumbent_max_s,
        finished_median_s,
        finished_max_s,
    }
}

/// Jobs per load cell: enough completions that p99 means something,
/// few enough that the whole sweep stays in bench-runtime territory.
const LOAD_JOBS: usize = 40;
/// Open-loop arrival rates (jobs/second). The top rate is meant to push
/// a single worker past its service rate so queueing — and, when the
/// admission queue fills, shedding — shows up in the numbers.
const LOAD_RATES_PER_SEC: [f64; 2] = [25.0, 100.0];
/// The multi-worker arm's fleet size (the single-worker arm is 1).
const LOAD_FLEET: usize = 3;

/// One (fleet size, arrival rate) cell of the open-loop sweep.
struct LoadCell {
    workers: usize,
    rate_per_sec: f64,
    offered: usize,
    completed: usize,
    shed: usize,
    p50_s: f64,
    p99_s: f64,
}

struct LoadReport {
    cells: Vec<LoadCell>,
    /// Matrix builds for one panel as a single batch on a 1-worker fleet.
    batch_builds: u64,
    /// Matrix builds for the same panel as scattered individual jobs
    /// across a [`LOAD_FLEET`]-worker fleet.
    sequential_builds: u64,
}

fn start_fleet(n: usize) -> (Vec<String>, Vec<ShutdownHandle>) {
    (0..n)
        .map(|_| {
            let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind worker");
            let addr = server.local_addr().expect("worker addr").to_string();
            let shutdown = server.shutdown_handle().expect("worker shutdown");
            std::thread::spawn(move || server.serve());
            (addr, shutdown)
        })
        .unzip()
}

fn start_fronted_fleet(
    n: usize,
) -> (
    Client,
    service::router::RouterShutdown,
    Vec<String>,
    Vec<ShutdownHandle>,
) {
    let (addrs, downs) = start_fleet(n);
    let router = Router::bind(
        "127.0.0.1:0",
        RouterConfig {
            workers: addrs.clone(),
            token: None,
        },
    )
    .expect("bind router");
    let client = Client::new(&router.local_addr().expect("router addr").to_string());
    let shutdown = router.shutdown_handle().expect("router shutdown");
    std::thread::spawn(move || router.serve());
    (client, shutdown, addrs, downs)
}

fn fleet_builds(addrs: &[String]) -> u64 {
    addrs
        .iter()
        .map(|addr| {
            Client::new(addr)
                .healthz()
                .expect("worker healthz")
                .get("matrix_builds")
                .and_then(Json::as_u64)
                .expect("matrix_builds in healthz")
        })
        .sum()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// One open-loop cell: fire [`LOAD_JOBS`] submissions at a fixed arrival
/// clock against a router-fronted fleet of `workers`, each arrival a
/// fresh client thread (a new caller, not a recycled connection) whose
/// dataset carries a distinct comment line so fingerprints scatter over
/// the fleet. A 429/503 at submit is a shed arrival — the open loop
/// does not retry; it measures what the fleet dropped.
fn measure_load_cell(workers: usize, rate: f64, text: &str) -> LoadCell {
    let (router_client, down_router, _addrs, downs) = start_fronted_fleet(workers);
    let addr = router_client.addr().to_owned();
    let (tx, rx) = std::sync::mpsc::channel::<Option<f64>>();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for i in 0..LOAD_JOBS {
            let due = Duration::from_secs_f64(i as f64 / rate);
            let now = start.elapsed();
            if due > now {
                std::thread::sleep(due - now);
            }
            let tx = tx.clone();
            let addr = addr.clone();
            let text = format!("# arrival {i}\n{text}");
            scope.spawn(move || {
                let client = Client::new(&addr);
                let t = Instant::now();
                let submission = JobSubmission {
                    algo: Some("BioConsert".to_owned()),
                    seed: 1000 + i as u64,
                    ..JobSubmission::new(text)
                };
                let outcome = client
                    .submit(&submission)
                    .and_then(|job| client.wait(job.id))
                    .ok()
                    .map(|_| t.elapsed().as_secs_f64());
                let _ = tx.send(outcome);
            });
        }
    });
    drop(tx);
    let mut latencies = Vec::new();
    let mut shed = 0usize;
    for outcome in rx {
        match outcome {
            Some(s) => latencies.push(s),
            None => shed += 1,
        }
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let cell = LoadCell {
        workers,
        rate_per_sec: rate,
        offered: LOAD_JOBS,
        completed: latencies.len(),
        shed,
        p50_s: percentile(&latencies, 0.50),
        p99_s: percentile(&latencies, 0.99),
    };
    down_router.shutdown();
    for down in downs {
        down.shutdown();
    }
    cell
}

/// The load section: the arrival-rate sweep for 1 vs [`LOAD_FLEET`]
/// workers, then the fleet-level batching claim — the same heuristic
/// panel once as a single batch (one matrix build on its worker) and
/// once as scattered individual submissions (every worker that gets a
/// shard pays its own build; the healthz counters sum the difference).
fn measure_load(text: &str) -> LoadReport {
    let mut cells = Vec::new();
    for workers in [1, LOAD_FLEET] {
        for rate in LOAD_RATES_PER_SEC {
            cells.push(measure_load_cell(workers, rate, text));
        }
    }

    let panel: Vec<String> = ["BioConsert", "Borda", "KwikSort", "Chanas"]
        .iter()
        .map(|s| s.to_string())
        .collect();

    // Batched arm: one worker, one POST /v1/batches, one build.
    let (client, down_router, addrs, downs) = start_fronted_fleet(1);
    let before = fleet_builds(&addrs);
    let batch = client
        .submit_batch(&BatchSubmission {
            seed: 7,
            ..BatchSubmission::new(text, panel.clone())
        })
        .expect("submit batch");
    client.wait_batch(batch.id).expect("wait batch");
    let batch_builds = fleet_builds(&addrs) - before;
    down_router.shutdown();
    for down in downs {
        down.shutdown();
    }

    // Scattered arm: the same specs as independent submissions whose
    // comment lines scatter them over the fleet by fingerprint.
    let (client, down_router, addrs, downs) = start_fronted_fleet(LOAD_FLEET);
    let before = fleet_builds(&addrs);
    for (i, spec) in panel.iter().enumerate() {
        let job = client
            .submit(&JobSubmission {
                algo: Some(spec.clone()),
                seed: 7,
                ..JobSubmission::new(format!("# client {i}\n{text}"))
            })
            .expect("submit scattered job");
        client.wait(job.id).expect("wait scattered job");
    }
    let sequential_builds = fleet_builds(&addrs) - before;
    down_router.shutdown();
    for down in downs {
        down.shutdown();
    }

    LoadReport {
        cells,
        batch_builds,
        sequential_builds,
    }
}

/// The recovery section's journal shape: enough finished jobs with long
/// event replays that the replay scan dominates setup noise.
const RECOVERY_JOBS: u64 = 64;
const RECOVERY_EVENTS_PER_JOB: usize = 128;

struct RecoveryReport {
    jobs: u64,
    events_per_job: usize,
    journal_lines: usize,
    journal_bytes: u64,
    replay_median_s: f64,
    replay_lines_per_sec: f64,
    restart_to_ready_median_s: f64,
}

/// The recovery section: fabricate a journal directory of
/// [`RECOVERY_JOBS`] finished jobs (the exact bytes an interrupted
/// server leaves), then time the raw [`Journal::replay`] scan and the
/// full restart — `Server::bind` with that journal, which validates
/// every CRC, re-prepares every submission, and rebuilds the job table
/// before the listener answers its first request.
fn measure_recovery() -> RecoveryReport {
    let dir = std::env::temp_dir().join(format!("rawt-bench-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let journal = Journal::open(&dir, FsyncPolicy::Never).expect("open journal");
    let submission = JobSubmission {
        algo: Some("BioConsert".to_owned()),
        ..JobSubmission::new("[{A},{D},{B,C}]\n[{A},{B,C},{D}]\n[{D},{A,C},{B}]\n")
    };
    let report = r#"{"algorithm":"BioConsert","spec":"BioConsert","seed":42,"score":5,"gap":null,"outcome":"heuristic","elapsed_secs":0.010000,"ranking":[["A"],["D"],["B","C"]],"trace":[]}"#;
    for id in 0..RECOVERY_JOBS {
        let mut writer = journal
            .begin_job(id, 0, &submission.to_json())
            .expect("begin journal segment");
        writer.append_event(r#"{"event":"started","spec":"BioConsert","seed":42}"#);
        for e in 0..RECOVERY_EVENTS_PER_JOB {
            writer.append_event(&format!(
                r#"{{"event":"incumbent","score":{},"gap":null,"elapsed_secs":0.00{e}}}"#,
                RECOVERY_EVENTS_PER_JOB - e
            ));
        }
        writer.finish("heuristic", Some(report));
    }
    let journal_bytes: u64 = std::fs::read_dir(&dir)
        .expect("journal dir")
        .filter_map(Result::ok)
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum();

    let replay_median_s = time_median(5, || {
        std::hint::black_box(journal.replay().expect("replay"));
    });
    let replay = journal.replay().expect("replay");
    assert_eq!(replay.jobs.len(), RECOVERY_JOBS as usize, "all jobs replay");
    let journal_lines = replay.lines_read;

    let restart_to_ready_median_s = time_median(5, || {
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                journal_dir: Some(dir.clone()),
                ..ServerConfig::default()
            },
        )
        .expect("bind with journal");
        std::hint::black_box(&server);
    });

    let _ = std::fs::remove_dir_all(&dir);
    RecoveryReport {
        jobs: RECOVERY_JOBS,
        events_per_job: RECOVERY_EVENTS_PER_JOB,
        journal_lines,
        journal_bytes,
        replay_median_s,
        replay_lines_per_sec: journal_lines as f64 / replay_median_s,
        restart_to_ready_median_s,
    }
}

/// Status reads per arm of the keep-alive comparison — enough that the
/// per-request cost dominates loop overhead, few enough to stay instant.
const KEEPALIVE_REQUESTS: usize = 200;

/// The warm-vs-cold instance family. BnB is the solver where a warm
/// bound has the most to prune: its cold start is a greedy permutation
/// (not the near-optimal BioConsert primer the Exact solver always
/// runs), so the previous optimum arriving as the initial incumbent
/// The warm-vs-cold instance family. Chanas is the solver where the
/// hint pays most visibly in wall clock: cold it descends from a
/// random input ranking (many full adjacent-swap passes at `O(n²)`
/// score lookups each); warm it descends from the previous consensus,
/// which after a one-ranking edit is already at or next to a local
/// optimum, so the descent terminates almost immediately. n = 200
/// (the kernel section's largest size) makes each saved pass count.
const WARM_SEEDS: [u64; 3] = [2, 3, 4];
const WARM_N: usize = 200;
const WARM_M: usize = 20;

/// One size's patch-vs-rebuild numbers: the `O(n²)` in-place delta patch
/// a live session applies per edit vs the `O(m·n²)` cold rebuild.
struct PatchRow {
    n: usize,
    rebuild_s: f64,
    patch_s: f64,
    identical: bool,
}

/// One instance's warm-vs-cold numbers: after an edit, the warm-started
/// Chanas re-solve (descending from the previous consensus) vs a cold
/// Chanas solve of the identical edited dataset.
struct WarmRow {
    seed: u64,
    warm_score: u64,
    cold_score: u64,
    cold_s: f64,
    warm_s: f64,
}

struct KeepAliveReport {
    requests: usize,
    keep_alive_per_request_s: f64,
    fresh_per_request_s: f64,
}

struct IncrementalReport {
    patch: Vec<PatchRow>,
    warm: Vec<WarmRow>,
    keep_alive: KeepAliveReport,
}

/// The incremental section (DESIGN.md §13): what does a dataset edit cost
/// with delta patching vs without, what does the recorded consensus buy
/// the next exact solve, and what does connection reuse buy the wire.
fn measure_incremental() -> IncrementalReport {
    // Patch vs rebuild, on the same datasets the kernel section measures.
    // The patched arm times one add+remove pair in place (restoring the
    // matrix, so reps don't drift) and halves it: the steady-state cost
    // of one edit. The rebuild arm is what every edit would cost without
    // the session: a full `CostMatrix::build` of the edited dataset.
    let sampler = UniformSampler::new(*NS.iter().max().expect("non-empty"));
    let patch = NS
        .iter()
        .map(|&n| {
            let mut rng = StdRng::seed_from_u64(42 + n as u64);
            let data = sampler.sample_dataset(n, M, &mut rng);
            let extra = sampler.sample_dataset(n, 1, &mut rng).ranking(0).clone();
            let mut extended = data.rankings().to_vec();
            extended.push(extra.clone());
            let extended = Dataset::new(extended).expect("extended dataset");
            let reps = if n >= 200 { 3 } else { 5 };

            let rebuild_s = time_median(reps, || {
                std::hint::black_box(CostMatrix::build(&extended));
            });
            let mut live = CostMatrix::build(&data);
            let patch_s = time_median(reps, || {
                live.patch_add(&extra);
                live.patch_remove(&extra);
            }) / 2.0;
            live.patch_add(&extra);
            let identical = live == CostMatrix::build(&extended);
            PatchRow {
                n,
                rebuild_s,
                patch_s,
                identical,
            }
        })
        .collect();

    // Warm vs cold, end to end: what one edit → re-solve costs a live
    // session (delta-patched matrix handed to the engine + the previous
    // consensus as the descent start) vs what the same edited dataset
    // costs a cold caller (engine-side `O(m·n²)` matrix build + random
    // start). Each rep runs on a *fresh* engine so the cold arm pays the
    // build it would really pay — a shared cache would launder it away.
    // The warm arm's repeated resolves re-record the (stable) consensus,
    // so every rep measures the steady re-solve state a session sits in.
    let warm_sampler = UniformSampler::new(WARM_N);
    let spec = AlgoSpec::Chanas;
    let warm = WARM_SEEDS
        .iter()
        .map(|&seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let data = warm_sampler.sample_dataset(WARM_N, WARM_M, &mut rng);
            let extra = warm_sampler
                .sample_dataset(WARM_N, 1, &mut rng)
                .ranking(0)
                .clone();
            let mut session = DatasetSession::new(data);
            session.resolve(&Engine::new(), spec.clone(), 7, None);
            session
                .add_ranking(extra)
                .expect("adds are always accepted");

            let warm = session.resolve(&Engine::new(), spec.clone(), 7, None);
            let warm_s = time_median(5, || {
                std::hint::black_box(session.resolve(&Engine::new(), spec.clone(), 7, None));
            });

            let cold_request =
                AggregationRequest::new(session.dataset(), spec.clone()).with_seed(7);
            let cold = Engine::new().run(&cold_request);
            let cold_s = time_median(5, || {
                std::hint::black_box(Engine::new().run(&cold_request));
            });

            WarmRow {
                seed,
                warm_score: warm.score,
                cold_score: cold.score,
                cold_s,
                warm_s,
            }
        })
        .collect();

    // Keep-alive vs fresh dial: the same finished-job status read,
    // [`KEEPALIVE_REQUESTS`] times over one pooled connection, then the
    // same again with a new client (new TCP connection) per request.
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind ephemeral");
    let addr = server.local_addr().expect("local addr").to_string();
    let shutdown = server.shutdown_handle().expect("shutdown handle");
    std::thread::spawn(move || server.serve());
    let client = Client::new(&addr);
    let job = client
        .submit(&JobSubmission {
            algo: Some("BioConsert".to_owned()),
            ..JobSubmission::new("[{A},{D},{B,C}]\n[{A},{B,C},{D}]\n[{D},{A,C},{B}]\n")
        })
        .expect("submit");
    client.wait(job.id).expect("job finishes");

    let t = Instant::now();
    for _ in 0..KEEPALIVE_REQUESTS {
        std::hint::black_box(client.status(job.id).expect("pooled status read"));
    }
    let keep_alive_per_request_s = t.elapsed().as_secs_f64() / KEEPALIVE_REQUESTS as f64;

    let t = Instant::now();
    for _ in 0..KEEPALIVE_REQUESTS {
        let fresh = Client::new(&addr);
        std::hint::black_box(fresh.status(job.id).expect("fresh-dial status read"));
    }
    let fresh_per_request_s = t.elapsed().as_secs_f64() / KEEPALIVE_REQUESTS as f64;
    shutdown.shutdown();

    IncrementalReport {
        patch,
        warm,
        keep_alive: KeepAliveReport {
            requests: KEEPALIVE_REQUESTS,
            keep_alive_per_request_s,
            fresh_per_request_s,
        },
    }
}

/// One algorithm's cross-check between the registry's
/// time-to-first-incumbent histogram and the trace value the same run
/// reported (the PR 3 anytime data): the single observation must land
/// in the log₂ bucket whose bound covers it within the 2× spacing.
struct TtiRow {
    name: String,
    trace_s: f64,
    bucket_bound_s: f64,
    consistent: bool,
}

struct TelemetryReport {
    counter_inc_s: f64,
    histogram_record_s: f64,
    resolve_s: f64,
    panel_n: usize,
    panel_wall_s: f64,
    counter_ops: u64,
    histogram_ops: u64,
    overhead_fraction: f64,
    tti: Vec<TtiRow>,
}

/// Telemetry section (DESIGN.md §15): per-op microcosts of the registry
/// primitives, an instrumented panel run whose own registry counts how
/// many observations it made (microcost × op count ÷ wall time = the
/// overhead fraction, budgeted ≤ 2%), and the per-algorithm check that
/// the registry's time-to-first-incumbent buckets agree with the trace.
fn measure_telemetry(n: usize, data: &Dataset) -> TelemetryReport {
    use rank_core::telemetry::{parse_exposition, MetricKind, MetricsRegistry};

    // Per-op microcosts, measured on a private registry. Handle ops are
    // relaxed atomics; `resolve` is the mutex-guarded find-or-create
    // path label-dynamic call sites pay per call.
    let registry = MetricsRegistry::new();
    let counter = registry.counter("bench_ops_total", "bench", &[]);
    const OPS: u64 = 1_000_000;
    let counter_inc_s = time_median(5, || {
        for _ in 0..OPS {
            counter.inc();
        }
    }) / OPS as f64;
    let histogram = registry.histogram("bench_latency_seconds", "bench", &[]);
    let histogram_record_s = time_median(5, || {
        for i in 0..OPS {
            histogram.record_micros(i & 0xffff);
        }
    }) / OPS as f64;
    const RESOLVES: u64 = 100_000;
    let resolve_s = time_median(5, || {
        for _ in 0..RESOLVES {
            std::hint::black_box(registry.counter(
                "bench_resolved_total",
                "bench",
                &[("algo", "BioConsert")],
            ));
        }
    }) / RESOLVES as f64;

    // The instrumented panel run: the same engine batch the sizes
    // section times, on a fresh engine whose registry then tells us
    // exactly how many observations the run made.
    let specs: Vec<AlgoSpec> = paper_panel(20)
        .into_iter()
        .filter(|s| s.max_n().is_none_or(|cap| n <= cap))
        .collect();
    let requests = AggregationRequest::batch(data.clone())
        .specs(specs)
        .seed(5)
        .build();
    let engine = Engine::new();
    let wall_start = Instant::now();
    let reports = engine.run_batch(&requests);
    let panel_wall_s = wall_start.elapsed().as_secs_f64();

    let families = parse_exposition(&engine.metrics().render_prometheus());
    let mut counter_ops = 0u64;
    let mut histogram_ops = 0u64;
    for family in &families {
        match family.kind {
            MetricKind::Counter => {
                counter_ops += family.samples.iter().map(|s| s.value as u64).sum::<u64>()
            }
            MetricKind::Histogram => {
                histogram_ops += family
                    .samples
                    .iter()
                    .filter(|s| s.name.ends_with("_count"))
                    .map(|s| s.value as u64)
                    .sum::<u64>()
            }
            // Gauges are counted as moves below: the scheduler swings
            // queue-depth and running twice per job.
            MetricKind::Gauge | MetricKind::Untyped => {}
        }
    }
    let gauge_ops = 4 * reports.len() as u64;
    // Label-dynamic sites re-resolve handles; bound that by one resolve
    // per observation (the engine's worst case, not its average).
    let resolve_ops = counter_ops + histogram_ops;
    let overhead_s = (counter_ops + gauge_ops) as f64 * counter_inc_s
        + histogram_ops as f64 * histogram_record_s
        + resolve_ops as f64 * resolve_s;
    let overhead_fraction = overhead_s / panel_wall_s;

    // Cross-check: each algorithm's registry bucket vs its own trace.
    // `record` truncates to whole microseconds, hence the ±1 µs slack.
    let tti: Vec<TtiRow> = reports
        .iter()
        .filter_map(|r| {
            let trace_s = r.time_to_first_incumbent()?.as_secs_f64();
            let name = r.algorithm();
            let snap = engine
                .metrics()
                .histogram_snapshot("rawt_time_to_first_incumbent_seconds", &[("algo", &name)])?;
            let bucket_bound_s = snap.quantile_secs(0.5)?;
            let consistent = trace_s <= bucket_bound_s + 1e-6
                && bucket_bound_s <= 2.0 * trace_s.max(1e-6) + 1e-6;
            Some(TtiRow {
                name,
                trace_s,
                bucket_bound_s,
                consistent,
            })
        })
        .collect();

    TelemetryReport {
        counter_inc_s,
        histogram_record_s,
        resolve_s,
        panel_n: n,
        panel_wall_s,
        counter_ops,
        histogram_ops,
        overhead_fraction,
        tti,
    }
}

/// The large-n lane comparison (DESIGN.md §16): sizes where the dense
/// `8n²` cost matrix goes from comfortable (8 MB) through heavy (200 MB)
/// to out of the question (3.2 GB).
const LARGE_NS: [usize; 3] = [1000, 5000, 20_000];
/// Few voters: at these sizes the `O(m·n²)` dense build — not the
/// kernels — is the wall under measurement, and m only scales it.
const LARGE_M: usize = 8;

/// A deterministic large dataset: affine permutations of `0..n` (odd
/// steps, coprime with any even n) with adjacent images tied into
/// buckets of two. The exact-uniform sampler's bignum tables are
/// needlessly expensive at n = 20 000; lane timing only needs realistic
/// shape (full support, ties everywhere), not uniformity.
fn large_dataset(n: usize, m: usize) -> Dataset {
    let steps = [3u64, 7, 11, 13, 17, 19, 23, 29];
    let rankings: Vec<_> = (0..m)
        .map(|k| {
            let step = steps[k % steps.len()];
            let idx: Vec<u32> = (0..n as u64)
                .map(|e| (((e * step + k as u64) % n as u64) / 2) as u32)
                .collect();
            rank_core::Ranking::from_bucket_indices(&idx).expect("compact buckets")
        })
        .collect();
    Dataset::new(rankings).expect("dense dataset")
}

/// Peak resident set of this process so far (`VmHWM`), in bytes; 0 where
/// `/proc` is unavailable. Monotonic — callers must read the small-
/// footprint arm before the large one.
fn peak_rss_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|kb| kb.parse::<u64>().ok())
        })
        .map_or(0, |kb| kb * 1024)
}

/// One (size, lane, algorithm) cell of the large-n section.
struct LargeRow {
    n: usize,
    lane: &'static str,
    algorithm: String,
    wall_s: f64,
    score: u64,
    /// The engine's matrix-build counter after the run — must stay 0 on
    /// the matrix-free lane (the whole point of it).
    matrix_builds: usize,
    /// Analytic resident footprint of the lane's cost provider: 8n²
    /// dense, 0 matrix-free.
    provider_bytes: usize,
    /// Process-wide peak RSS when the row finished (see
    /// [`peak_rss_bytes`] for the monotonicity caveat).
    peak_rss_bytes: u64,
}

/// The large-n section: the matrix-free panel at every size, plus the
/// dense lane at n = 1000 for a same-host before/after (wall time and
/// peak memory of both lanes on identical data). Above 1000 the dense
/// lane is deliberately not run: 200 MB–3.2 GB of matrix is what the
/// lane exists to avoid. MC4 joins only at n = 1000 — its adjacency
/// graph is itself up-to-quadratic, so "matrix-free MC4" buys the build
/// skip, not a memory guarantee.
fn measure_large_n() -> Vec<LargeRow> {
    let mut rows = Vec::new();
    for &n in &LARGE_NS {
        let data = std::sync::Arc::new(large_dataset(n, LARGE_M));
        let mut specs = vec![AlgoSpec::Borda, AlgoSpec::Copeland, AlgoSpec::MedRank(0.5)];
        if n <= 1000 {
            specs.push(AlgoSpec::Mc4);
        }
        // Matrix-free first: VmHWM is a high-water mark, so this lane's
        // peak must be read before the dense build inflates it.
        let lanes: &[(LanePolicy, &str)] = if n <= 1000 {
            &[
                (LanePolicy::MatrixFree, "matrix_free"),
                (LanePolicy::Dense, "dense"),
            ]
        } else {
            &[(LanePolicy::MatrixFree, "matrix_free")]
        };
        for &(policy, lane_name) in lanes {
            let engine = Engine::new();
            for spec in &specs {
                let request = AggregationRequest::new(std::sync::Arc::clone(&data), spec.clone())
                    .with_seed(7)
                    .with_policy(ExecPolicy::default().with_lane(policy));
                let t = Instant::now();
                let report = engine.run(&request);
                let wall_s = t.elapsed().as_secs_f64();
                assert_eq!(report.lane.as_str(), lane_name, "lane resolution drifted");
                rows.push(LargeRow {
                    n,
                    lane: lane_name,
                    algorithm: report.algorithm(),
                    wall_s,
                    score: report.score,
                    matrix_builds: engine.cache().builds(),
                    provider_bytes: if report.lane == KernelLane::Dense {
                        8 * n * n
                    } else {
                        0
                    },
                    peak_rss_bytes: peak_rss_bytes(),
                });
            }
            if lane_name == "matrix_free" {
                assert_eq!(
                    engine.cache().builds(),
                    0,
                    "matrix-free panel at n={n} must never build a cost matrix"
                );
            }
        }
    }
    rows
}

/// The `"large_n"` JSON object, shared by the full run and the
/// section-only run (`perf_trajectory OUT.json large_n`).
fn large_n_json(rows: &[LargeRow]) -> String {
    let mut json = String::new();
    json.push_str("  \"large_n\": {\n");
    let _ = writeln!(json, "    \"m\": {LARGE_M},");
    let _ = writeln!(
        json,
        "    \"dense_budget_bytes\": {},",
        rank_core::engine::DENSE_LANE_BUDGET_BYTES
    );
    json.push_str("    \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"n\": {}, \"lane\": \"{}\", \"algorithm\": \"{}\", \"wall_secs\": {:.6}, \"score\": {}, \"matrix_builds\": {}, \"provider_bytes\": {}, \"peak_rss_bytes\": {}}}{}",
            r.n,
            r.lane,
            r.algorithm,
            r.wall_s,
            r.score,
            r.matrix_builds,
            r.provider_bytes,
            r.peak_rss_bytes,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("    ]\n");
    json.push_str("  }");
    json
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_10.json".to_owned());
    let section = std::env::args().nth(2);
    let threads = rank_core::parallel::num_threads();
    let host_parallelism = std::thread::available_parallelism().map_or(0, |n| n.get());
    let timestamp_unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());

    // Section-only mode (`perf_trajectory OUT.json large_n`): run just
    // the named section and emit a header + that section. CI's
    // large-n-smoke job uses it to fit a wall-clock cap.
    if let Some(section) = section {
        assert_eq!(
            section, "large_n",
            "unknown section {section:?} (only \"large_n\" can run alone)"
        );
        let large = measure_large_n();
        for r in &large {
            eprintln!(
                "large_n: n={:<6} {:<11} {:<16} {:.3}s (builds={}, peak {:.0} MB)",
                r.n,
                r.lane,
                r.algorithm,
                r.wall_s,
                r.matrix_builds,
                r.peak_rss_bytes as f64 / 1e6,
            );
        }
        let mut json = String::new();
        json.push_str("{\n");
        let _ = writeln!(
            json,
            "  \"bench\": \"matrix-free large-n kernel lane (PR 10), section-only run\","
        );
        let _ = writeln!(json, "  \"worker_threads\": {threads},");
        let _ = writeln!(json, "  \"host_parallelism\": {host_parallelism},");
        let _ = writeln!(json, "  \"timestamp_unix_secs\": {timestamp_unix_secs},");
        json.push_str(&large_n_json(&large));
        json.push_str("\n}\n");
        std::fs::write(&out_path, &json).expect("write bench report");
        println!("wrote {out_path}");
        return;
    }

    let sampler = UniformSampler::new(*NS.iter().max().expect("non-empty"));

    let mut reports = Vec::new();
    for n in NS {
        let mut rng = StdRng::seed_from_u64(42 + n as u64);
        let data = sampler.sample_dataset(n, M, &mut rng);
        let r = measure(n, &data);
        let slowest_first = r
            .anytime
            .iter()
            .max_by(|a, b| {
                a.first_incumbent_s
                    .partial_cmp(&b.first_incumbent_s)
                    .expect("finite times")
            })
            .expect("non-empty panel");
        eprintln!(
            "n={:<4} slowest first incumbent: {} at {:.1}ms",
            r.n,
            slowest_first.name,
            slowest_first.first_incumbent_s * 1e3
        );
        eprintln!(
            "n={:<4} build {:.2}ms→{:.2}ms  sweep {:.2}ms  multistart {:.1}ms→{:.1}ms ({:.2}x, identical={})  batch {:.1}ms→{:.1}ms ({:.2}x, builds={}, identical={})",
            r.n,
            r.build_serial_s * 1e3,
            r.build_parallel_s * 1e3,
            r.sweep_s * 1e3,
            r.multistart_seq_s * 1e3,
            r.multistart_par_s * 1e3,
            r.multistart_seq_s / r.multistart_par_s,
            r.scores_identical,
            r.batch_seq_s * 1e3,
            r.batch_par_s * 1e3,
            r.batch_seq_s / r.batch_par_s,
            r.batch_builds,
            r.batch_identical,
        );
        reports.push(r);
    }

    // Large-n section: both kernel lanes at n = 1000, matrix-free alone
    // where the dense matrix stops fitting the budget (DESIGN.md §16).
    let large = measure_large_n();
    for r in &large {
        eprintln!(
            "large_n: n={:<6} {:<11} {:<16} {:.3}s (builds={}, peak {:.0} MB)",
            r.n,
            r.lane,
            r.algorithm,
            r.wall_s,
            r.matrix_builds,
            r.peak_rss_bytes as f64 / 1e6,
        );
    }

    // Service section: submit-to-first-incumbent over the wire, under
    // concurrent clients, on the smallest size (latency, not throughput).
    let mut rng = StdRng::seed_from_u64(42 + NS[0] as u64);
    let service_data = sampler.sample_dataset(NS[0], M, &mut rng);
    let service = measure_service(&service_data);
    eprintln!(
        "service: {} clients (max-jobs {}): first incumbent {:.1}ms median / {:.1}ms max, finished {:.1}ms median / {:.1}ms max",
        service.clients,
        service.max_jobs,
        service.first_incumbent_median_s * 1e3,
        service.first_incumbent_max_s * 1e3,
        service.finished_median_s * 1e3,
        service.finished_max_s * 1e3,
    );

    // Load section: the open-loop sweep against 1 vs LOAD_FLEET workers
    // behind the router, plus the fleet-level batching claim.
    let mut service_text = String::new();
    for r in service_data.rankings() {
        service_text.push_str(&r.to_string());
        service_text.push('\n');
    }
    let load = measure_load(&service_text);
    for cell in &load.cells {
        eprintln!(
            "load: {} worker{} @ {:>5.0}/s: {}/{} completed ({} shed), finished p50 {:.1}ms p99 {:.1}ms",
            cell.workers,
            if cell.workers == 1 { " " } else { "s" },
            cell.rate_per_sec,
            cell.completed,
            cell.offered,
            cell.shed,
            cell.p50_s * 1e3,
            cell.p99_s * 1e3,
        );
    }
    eprintln!(
        "load: panel builds — batched {} vs scattered-sequential {} (fleet of {})",
        load.batch_builds, load.sequential_builds, LOAD_FLEET,
    );

    // Exact section: the parallel proof search and the certified-gap
    // channel (PR 5).
    let exact = measure_exact();
    let exact_seq_total: f64 = exact.instances.iter().map(|i| i.sequential_s).sum();
    let exact_par_total: f64 = exact.instances.iter().map(|i| i.parallel_s).sum();
    eprintln!(
        "exact: n={EXACT_N} m={EXACT_M} × {} instances ({} workers): dfs {:.1}ms→{:.1}ms ({:.2}x, identical={}, proved={})",
        exact.instances.len(),
        exact.workers,
        exact_seq_total * 1e3,
        exact_par_total * 1e3,
        exact_seq_total / exact_par_total,
        exact.instances.iter().all(|i| i.identical),
        exact.instances.iter().all(|i| i.proved),
    );

    // Recovery section: how fast does a crashed server's state come back?
    let recovery = measure_recovery();
    eprintln!(
        "recovery: {} jobs × {} events: replay {:.1}ms ({:.0}k lines/s), restart-to-ready {:.1}ms",
        recovery.jobs,
        recovery.events_per_job,
        recovery.replay_median_s * 1e3,
        recovery.replay_lines_per_sec / 1e3,
        recovery.restart_to_ready_median_s * 1e3,
    );

    // Telemetry section: registry per-op costs, the instrumented-panel
    // overhead fraction, and the registry-vs-trace TTI cross-check, on
    // the largest size (overhead is measured where solves are longest).
    let telemetry_n = *NS.iter().max().expect("non-empty");
    let mut rng = StdRng::seed_from_u64(42 + telemetry_n as u64);
    let telemetry_data = sampler.sample_dataset(telemetry_n, M, &mut rng);
    let telemetry = measure_telemetry(telemetry_n, &telemetry_data);
    eprintln!(
        "telemetry: counter {:.1}ns, histogram {:.1}ns, resolve {:.0}ns; panel n={} made {} counter + {} histogram obs in {:.1}ms — overhead {:.4}% (bound 2%), tti consistent={}",
        telemetry.counter_inc_s * 1e9,
        telemetry.histogram_record_s * 1e9,
        telemetry.resolve_s * 1e9,
        telemetry.panel_n,
        telemetry.counter_ops,
        telemetry.histogram_ops,
        telemetry.panel_wall_s * 1e3,
        telemetry.overhead_fraction * 1e2,
        telemetry.tti.iter().all(|t| t.consistent),
    );

    // Incremental section: delta patches, warm re-solves, keep-alive.
    let incremental = measure_incremental();
    for p in &incremental.patch {
        eprintln!(
            "incremental: n={:<4} patch {:.3}ms vs rebuild {:.3}ms ({:.1}x, identical={})",
            p.n,
            p.patch_s * 1e3,
            p.rebuild_s * 1e3,
            p.rebuild_s / p.patch_s,
            p.identical,
        );
    }
    let warm_total: f64 = incremental.warm.iter().map(|w| w.warm_s).sum();
    let cold_total: f64 = incremental.warm.iter().map(|w| w.cold_s).sum();
    eprintln!(
        "incremental: warm Chanas re-solve {:.2}ms vs cold {:.2}ms over {} edited instances ({:.2}x)",
        warm_total * 1e3,
        cold_total * 1e3,
        incremental.warm.len(),
        cold_total / warm_total,
    );
    eprintln!(
        "incremental: status read {:.0}µs keep-alive vs {:.0}µs fresh dial ({:.2}x over {} requests)",
        incremental.keep_alive.keep_alive_per_request_s * 1e6,
        incremental.keep_alive.fresh_per_request_s * 1e6,
        incremental.keep_alive.fresh_per_request_s / incremental.keep_alive.keep_alive_per_request_s,
        incremental.keep_alive.requests,
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"bench\": \"parallel consensus kernel (PR 1) + engine batch front door (PR 2) + anytime incumbent traces (PR 3) + network service latency (PR 4) + parallel exact proof search with certified gaps (PR 5) + durable journal recovery (PR 6) + incremental sessions: delta patches, warm re-solves, keep-alive (PR 7) + sharded fleet under open-loop load (PR 8) + telemetry registry overhead and phase tracing (PR 9) + matrix-free large-n kernel lane (PR 10)\","
    );
    let _ = writeln!(json, "  \"m\": {M},");
    let _ = writeln!(json, "  \"worker_threads\": {threads},");
    let _ = writeln!(json, "  \"host_parallelism\": {host_parallelism},");
    let _ = writeln!(json, "  \"timestamp_unix_secs\": {timestamp_unix_secs},");
    json.push_str(&large_n_json(&large));
    json.push_str(",\n");
    json.push_str("  \"service\": {\n");
    let _ = writeln!(json, "    \"n\": {},", NS[0]);
    let _ = writeln!(json, "    \"concurrent_clients\": {},", service.clients);
    let _ = writeln!(json, "    \"max_jobs\": {},", service.max_jobs);
    let _ = writeln!(
        json,
        "    \"submit_to_first_incumbent_median_secs\": {:.6},",
        service.first_incumbent_median_s
    );
    let _ = writeln!(
        json,
        "    \"submit_to_first_incumbent_max_secs\": {:.6},",
        service.first_incumbent_max_s
    );
    let _ = writeln!(
        json,
        "    \"submit_to_finished_median_secs\": {:.6},",
        service.finished_median_s
    );
    let _ = writeln!(
        json,
        "    \"submit_to_finished_max_secs\": {:.6}",
        service.finished_max_s
    );
    json.push_str("  },\n");
    json.push_str("  \"load\": {\n");
    let _ = writeln!(json, "    \"n\": {},", NS[0]);
    let _ = writeln!(json, "    \"jobs_per_cell\": {LOAD_JOBS},");
    json.push_str("    \"cells\": [\n");
    for (i, cell) in load.cells.iter().enumerate() {
        let p50 = if cell.p50_s.is_nan() {
            "null".to_owned()
        } else {
            format!("{:.6}", cell.p50_s)
        };
        let p99 = if cell.p99_s.is_nan() {
            "null".to_owned()
        } else {
            format!("{:.6}", cell.p99_s)
        };
        let _ = writeln!(
            json,
            "      {{\"workers\": {}, \"arrival_rate_per_sec\": {:.0}, \"offered\": {}, \"completed\": {}, \"shed\": {}, \"shed_rate\": {:.4}, \"finished_p50_secs\": {p50}, \"finished_p99_secs\": {p99}}}{}",
            cell.workers,
            cell.rate_per_sec,
            cell.offered,
            cell.completed,
            cell.shed,
            cell.shed as f64 / cell.offered as f64,
            if i + 1 < load.cells.len() { "," } else { "" }
        );
    }
    json.push_str("    ],\n");
    let _ = writeln!(
        json,
        "    \"panel_batch_matrix_builds\": {},",
        load.batch_builds
    );
    let _ = writeln!(
        json,
        "    \"panel_sequential_matrix_builds\": {},",
        load.sequential_builds
    );
    let _ = writeln!(json, "    \"sequential_fleet\": {LOAD_FLEET}");
    json.push_str("  },\n");
    json.push_str("  \"telemetry\": {\n");
    let _ = writeln!(
        json,
        "    \"counter_inc_nanos\": {:.2},",
        telemetry.counter_inc_s * 1e9
    );
    let _ = writeln!(
        json,
        "    \"histogram_record_nanos\": {:.2},",
        telemetry.histogram_record_s * 1e9
    );
    let _ = writeln!(
        json,
        "    \"registry_resolve_nanos\": {:.2},",
        telemetry.resolve_s * 1e9
    );
    let _ = writeln!(json, "    \"panel_n\": {},", telemetry.panel_n);
    let _ = writeln!(
        json,
        "    \"panel_wall_secs\": {:.6},",
        telemetry.panel_wall_s
    );
    let _ = writeln!(json, "    \"counter_ops\": {},", telemetry.counter_ops);
    let _ = writeln!(json, "    \"histogram_ops\": {},", telemetry.histogram_ops);
    let _ = writeln!(
        json,
        "    \"estimated_overhead_fraction\": {:.8},",
        telemetry.overhead_fraction
    );
    let _ = writeln!(
        json,
        "    \"within_2pct_budget\": {},",
        telemetry.overhead_fraction <= 0.02
    );
    json.push_str("    \"time_to_first_incumbent\": [\n");
    for (i, t) in telemetry.tti.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"algorithm\": \"{}\", \"trace_secs\": {:.6}, \"registry_bucket_bound_secs\": {:.6}, \"consistent\": {}}}{}",
            t.name,
            t.trace_s,
            t.bucket_bound_s,
            t.consistent,
            if i + 1 < telemetry.tti.len() { "," } else { "" }
        );
    }
    json.push_str("    ]\n");
    json.push_str("  },\n");
    json.push_str("  \"recovery\": {\n");
    let _ = writeln!(json, "    \"jobs\": {},", recovery.jobs);
    let _ = writeln!(json, "    \"events_per_job\": {},", recovery.events_per_job);
    let _ = writeln!(json, "    \"journal_lines\": {},", recovery.journal_lines);
    let _ = writeln!(json, "    \"journal_bytes\": {},", recovery.journal_bytes);
    let _ = writeln!(
        json,
        "    \"replay_median_secs\": {:.6},",
        recovery.replay_median_s
    );
    let _ = writeln!(
        json,
        "    \"replay_lines_per_sec\": {:.0},",
        recovery.replay_lines_per_sec
    );
    let _ = writeln!(
        json,
        "    \"restart_to_ready_median_secs\": {:.6}",
        recovery.restart_to_ready_median_s
    );
    json.push_str("  },\n");
    json.push_str("  \"incremental\": {\n");
    json.push_str("    \"patch_vs_rebuild\": [\n");
    for (i, p) in incremental.patch.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"n\": {}, \"m\": {M}, \"patch_secs\": {:.9}, \"rebuild_secs\": {:.9}, \"speedup\": {:.2}, \"bit_identical\": {}}}{}",
            p.n,
            p.patch_s,
            p.rebuild_s,
            p.rebuild_s / p.patch_s,
            p.identical,
            if i + 1 < incremental.patch.len() { "," } else { "" }
        );
    }
    json.push_str("    ],\n");
    json.push_str("    \"warm_vs_cold_chanas\": [\n");
    for (i, w) in incremental.warm.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"seed\": {}, \"n\": {WARM_N}, \"m\": {}, \"warm_score\": {}, \"cold_score\": {}, \"warm_secs\": {:.6}, \"cold_secs\": {:.6}, \"speedup\": {:.2}}}{}",
            w.seed,
            WARM_M + 1,
            w.warm_score,
            w.cold_score,
            w.warm_s,
            w.cold_s,
            w.cold_s / w.warm_s,
            if i + 1 < incremental.warm.len() { "," } else { "" }
        );
    }
    json.push_str("    ],\n");
    json.push_str("    \"keep_alive\": {\n");
    let _ = writeln!(
        json,
        "      \"requests\": {},",
        incremental.keep_alive.requests
    );
    let _ = writeln!(
        json,
        "      \"keep_alive_per_request_secs\": {:.9},",
        incremental.keep_alive.keep_alive_per_request_s
    );
    let _ = writeln!(
        json,
        "      \"fresh_dial_per_request_secs\": {:.9},",
        incremental.keep_alive.fresh_per_request_s
    );
    let _ = writeln!(
        json,
        "      \"speedup\": {:.2}",
        incremental.keep_alive.fresh_per_request_s
            / incremental.keep_alive.keep_alive_per_request_s
    );
    json.push_str("    }\n");
    json.push_str("  },\n");
    json.push_str("  \"exact\": {\n");
    let _ = writeln!(json, "    \"n\": {EXACT_N},");
    let _ = writeln!(json, "    \"m\": {EXACT_M},");
    let _ = writeln!(json, "    \"workers\": {},", exact.workers);
    let _ = writeln!(
        json,
        "    \"dfs_sequential_total_secs\": {exact_seq_total:.6},"
    );
    let _ = writeln!(
        json,
        "    \"dfs_parallel_total_secs\": {exact_par_total:.6},"
    );
    let _ = writeln!(
        json,
        "    \"dfs_speedup\": {:.2},",
        exact_seq_total / exact_par_total
    );
    let _ = writeln!(
        json,
        "    \"parallel_matches_sequential\": {},",
        exact.instances.iter().all(|i| i.identical)
    );
    let _ = writeln!(
        json,
        "    \"all_proved_optimal\": {},",
        exact.instances.iter().all(|i| i.proved)
    );
    json.push_str("    \"instances\": [\n");
    for (i, inst) in exact.instances.iter().enumerate() {
        // A job that hit the safety budget never certified: emit null,
        // not a bare NaN token that would corrupt the whole JSON file.
        let certified = if inst.certified_optimal_s.is_nan() {
            "null".to_owned()
        } else {
            format!("{:.6}", inst.certified_optimal_s)
        };
        let _ = writeln!(
            json,
            "      {{\"seed\": {}, \"score\": {}, \"proved\": {}, \"dfs_sequential_secs\": {:.6}, \"dfs_parallel_secs\": {:.6}, \"identical\": {}, \"time_to_certified_optimal_secs\": {certified}}}{}",
            inst.seed,
            inst.score,
            inst.proved,
            inst.sequential_s,
            inst.parallel_s,
            inst.identical,
            if i + 1 < exact.instances.len() { "," } else { "" }
        );
    }
    json.push_str("    ]\n");
    json.push_str("  },\n");
    json.push_str("  \"sizes\": [\n");
    for (i, r) in reports.iter().enumerate() {
        let speedup = r.multistart_seq_s / r.multistart_par_s;
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"n\": {},", r.n);
        let _ = writeln!(
            json,
            "      \"matrix_build_serial_secs\": {:.6},",
            r.build_serial_s
        );
        let _ = writeln!(
            json,
            "      \"matrix_build_parallel_secs\": {:.6},",
            r.build_parallel_s
        );
        let _ = writeln!(json, "      \"matrix_peak_bytes\": {},", r.matrix_bytes);
        let _ = writeln!(json, "      \"local_search_sweep_secs\": {:.6},", r.sweep_s);
        let _ = writeln!(
            json,
            "      \"multistart_sequential_secs\": {:.6},",
            r.multistart_seq_s
        );
        let _ = writeln!(
            json,
            "      \"multistart_parallel_secs\": {:.6},",
            r.multistart_par_s
        );
        let _ = writeln!(json, "      \"multistart_speedup\": {speedup:.2},");
        let _ = writeln!(json, "      \"consensus_score\": {},", r.score);
        let _ = writeln!(
            json,
            "      \"parallel_matches_sequential\": {},",
            r.scores_identical
        );
        let _ = writeln!(
            json,
            "      \"engine_batch_sequential_secs\": {:.6},",
            r.batch_seq_s
        );
        let _ = writeln!(
            json,
            "      \"engine_batch_parallel_secs\": {:.6},",
            r.batch_par_s
        );
        let _ = writeln!(
            json,
            "      \"engine_batch_speedup\": {:.2},",
            r.batch_seq_s / r.batch_par_s
        );
        let _ = writeln!(
            json,
            "      \"engine_batch_matrix_builds\": {},",
            r.batch_builds
        );
        let _ = writeln!(
            json,
            "      \"engine_batch_matches_sequential\": {},",
            r.batch_identical
        );
        json.push_str("      \"anytime\": [\n");
        for (j, a) in r.anytime.iter().enumerate() {
            let _ = writeln!(
                json,
                "        {{\"algorithm\": \"{}\", \"time_to_first_incumbent_secs\": {:.6}, \"time_to_final_incumbent_secs\": {:.6}, \"incumbents\": {}, \"score\": {}}}{}",
                a.name,
                a.first_incumbent_s,
                a.final_incumbent_s,
                a.incumbents,
                a.score,
                if j + 1 < r.anytime.len() { "," } else { "" }
            );
        }
        json.push_str("      ]\n");
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < reports.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write bench report");
    println!("wrote {out_path}");
}
