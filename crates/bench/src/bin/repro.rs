//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p bench --bin repro -- <subcommand> [--quick|--full]
//!                                              [--cells N] [--out DIR]
//!
//! subcommands:
//!   table5      Table 5  — gap/%opt/%first on uniform datasets
//!   table4      Table 4  — gap/m-gap + rank on real-world facsimiles
//!   fig2        Figure 2 — computing time vs number of elements
//!   fig3        Figure 3 — similarity distribution per dataset group
//!   fig4        Figure 4 — gap vs Markov steps (similarity sweep)
//!   fig5        Figure 5 — gap vs steps on unified top-k datasets
//!   fig6        Figure 6 — time/gap scatter at m = 7, n = 35
//!   sim-time    §7.2     — speed-up of similarity-sensitive algorithms
//!   norm-stats  §7.3.1   — projection/unification size statistics
//!   extra       extensions: non-bold Table 1 rows, MEDRank threshold
//!               sweep, threshold-k normalization
//!   all         everything above
//! ```
//!
//! Every experiment prints the same rows/series the paper reports and
//! writes a CSV under `--out` (default `results/`).

use bench::table::{pct, secs, Table};
use bench::{evaluate_dataset, par_map, time_algorithm, GapAccumulator, Scale};
use datasets::realworld;
use ragen::{MarkovGen, UnifiedGen, UniformSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rank_core::algorithms::ConsensusAlgorithm;
use rank_core::engine::{
    extended_panel, paper_panel, AggregationRequest, AlgoSpec, Engine, ExecPolicy,
};
use rank_core::normalize::{projection, threshold_k, unification, Normalized};
use rank_core::similarity::dataset_similarity;
use rank_core::{Dataset, Ranking};
use std::path::PathBuf;
use std::time::Instant;

struct Opts {
    scale: Scale,
    out: PathBuf,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut sub: Vec<String> = Vec::new();
    let mut scale = Scale::standard();
    let mut out = PathBuf::from("results");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => scale = Scale::quick(),
            "--full" => scale = Scale::full(),
            "--cells" => {
                i += 1;
                scale.datasets_per_cell = args[i].parse().expect("--cells N");
            }
            "--out" => {
                i += 1;
                out = PathBuf::from(&args[i]);
            }
            s if !s.starts_with("--") => sub.push(s.to_owned()),
            s => {
                eprintln!("unknown flag {s}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if sub.is_empty() {
        eprintln!("usage: repro <table4|table5|fig2|fig3|fig4|fig5|fig6|sim-time|norm-stats|extra|all> [--quick|--full] [--cells N] [--out DIR]");
        std::process::exit(2);
    }
    let opts = Opts { scale, out };
    for s in &sub {
        let t0 = Instant::now();
        match s.as_str() {
            "table5" => table5(&opts),
            "table4" => table4(&opts),
            "fig2" => fig2(&opts),
            "fig3" => fig3(&opts),
            "fig4" => fig4(&opts),
            "fig5" => fig5(&opts),
            "fig6" => fig6(&opts),
            "sim-time" => sim_time(&opts),
            "norm-stats" => norm_stats(&opts),
            "extra" => extra(&opts),
            "all" => {
                for s in [
                    "table5",
                    "table4",
                    "fig2",
                    "fig3",
                    "fig4",
                    "fig5",
                    "fig6",
                    "sim-time",
                    "norm-stats",
                    "extra",
                ] {
                    let t = Instant::now();
                    run_one(s, &opts);
                    eprintln!("[{s} done in {}]", secs(t.elapsed().as_secs_f64()));
                }
            }
            other => {
                eprintln!("unknown subcommand {other}");
                std::process::exit(2);
            }
        }
        eprintln!("[{s} finished in {}]", secs(t0.elapsed().as_secs_f64()));
    }
}

fn run_one(s: &str, opts: &Opts) {
    match s {
        "table5" => table5(opts),
        "table4" => table4(opts),
        "fig2" => fig2(opts),
        "fig3" => fig3(opts),
        "fig4" => fig4(opts),
        "fig5" => fig5(opts),
        "fig6" => fig6(opts),
        "sim-time" => sim_time(opts),
        "norm-stats" => norm_stats(opts),
        "extra" => extra(opts),
        _ => unreachable!(),
    }
}

fn banner(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

/// The paper panel built for single-threaded timing (§6.2.4 seconds stay
/// comparable across hosts).
fn sequential_panel(min_runs: usize) -> Vec<Box<dyn ConsensusAlgorithm>> {
    paper_panel(min_runs)
        .iter()
        .map(|s| s.build(ExecPolicy::sequential()))
        .collect()
}

/// Evaluate many datasets in parallel into one accumulator.
fn accumulate(
    datasets: Vec<Dataset>,
    with_exact: bool,
    scale: &Scale,
    seed0: u64,
) -> GapAccumulator {
    let evals = par_map(
        datasets.into_iter().enumerate().collect::<Vec<_>>(),
        scale.threads,
        |(i, d)| {
            evaluate_dataset(
                &d,
                &paper_panel(scale.min_runs),
                with_exact,
                scale,
                seed0 + i as u64,
            )
        },
    );
    let mut acc = GapAccumulator::new();
    for e in &evals {
        acc.add(e);
    }
    acc
}

fn gap_table(title: &str, acc: &GapAccumulator, opts: &Opts, csv: &str) {
    banner(title);
    println!(
        "datasets: {}   reference = proven optimum on {} ({} m-gap)",
        acc.total,
        acc.proved,
        acc.total - acc.proved
    );
    let ranks = acc.ranks();
    let mut t = Table::new(&[
        "Algorithm",
        "avg gap",
        "rank",
        "%gap=0",
        "%first",
        "no result",
    ]);
    for (name, s) in acc.stats() {
        t.row(vec![
            name.clone(),
            pct(s.mean_gap()),
            format!("#{}", ranks[name]),
            format!("{:.1}%", s.pct_zero()),
            format!("{:.1}%", s.pct_first()),
            format!("{}", s.no_result),
        ]);
    }
    print!("{}", t.render());
    t.write_csv(&opts.out.join(csv)).expect("write csv");
}

// ---------------------------------------------------------------- Table 5

/// Table 5: uniformly generated datasets, m ∈ \[3;10\], n ≤ 60 — average
/// gap, %optimal, %first per algorithm.
fn table5(opts: &Opts) {
    let scale = &opts.scale;
    let n_max = scale.n_exact_cap.min(60);
    let sampler = UniformSampler::new(n_max);
    let mut rng = StdRng::seed_from_u64(5);
    let mut datasets = Vec::new();
    let mut n = 5;
    while n <= n_max {
        for c in 0..scale.datasets_per_cell {
            let m = 3 + (c + n) % 8; // cycle m through [3;10] like the grid
            datasets.push(sampler.sample_dataset(n, m, &mut rng));
        }
        n += 5;
    }
    let acc = accumulate(datasets, true, scale, 500);
    gap_table(
        &format!("Table 5 — uniform datasets, n ∈ [5;{n_max}], m ∈ [3;10]"),
        &acc,
        opts,
        "table5.csv",
    );
}

// ---------------------------------------------------------------- Table 4

/// Table 4: real-world facsimiles — average gap (m-gap where the optimum
/// is unreachable) and rank per dataset group, %1st across all datasets.
fn table4(opts: &Opts) {
    let scale = &opts.scale;
    let cells = scale.datasets_per_cell;
    let mut rng = StdRng::seed_from_u64(4);

    // Build (group name, datasets, with_exact) — for the large unified
    // WebSearch datasets the optimum is out of reach, exactly as in the
    // paper, so the m-gap is reported.
    let mut groups: Vec<(&str, Vec<Dataset>, bool)> = Vec::new();

    let mut ws_proj = Vec::new();
    let mut ws_unif = Vec::new();
    for _ in 0..cells.max(2) {
        let raw =
            realworld::websearch::generate(&realworld::websearch::Config::default(), &mut rng);
        if let Some(p) = projection(&raw) {
            ws_proj.push(p.dataset);
        }
        ws_unif.push(unification(&raw).expect("non-empty").dataset);
    }
    groups.push(("WebSearch Proj (gap)", ws_proj, true));
    groups.push(("WebSearch Unif (m-gap)", ws_unif, false));

    let mut f1_proj = Vec::new();
    let mut f1_unif = Vec::new();
    for _ in 0..(2 * cells).max(3) {
        let raw = realworld::f1::generate(&realworld::f1::Config::default(), &mut rng);
        if let Some(p) = projection(&raw) {
            f1_proj.push(p.dataset);
        }
        f1_unif.push(unification(&raw).expect("non-empty").dataset);
    }
    groups.push(("F1 Proj", f1_proj, true));
    groups.push(("F1 Unif", f1_unif, true));

    let raw = realworld::skicross::generate(&realworld::skicross::Config::default(), &mut rng);
    let ski_proj = projection(&raw).into_iter().map(|p| p.dataset).collect();
    let ski_unif = vec![unification(&raw).expect("non-empty").dataset];
    groups.push(("SkiCross Proj", ski_proj, true));
    groups.push(("SkiCross Unif", ski_unif, true));

    let mut bio = Vec::new();
    for _ in 0..(4 * cells).max(6) {
        let raw =
            realworld::biomedical::generate(&realworld::biomedical::Config::default(), &mut rng);
        bio.push(unification(&raw).expect("non-empty").dataset);
    }
    groups.push(("BioMedical Unif", bio, true));

    banner("Table 4 — real-world dataset facsimiles");
    let mut global_first: std::collections::BTreeMap<String, (usize, usize)> = Default::default();
    let mut t = Table::new(&["Group", "Algorithm", "avg gap", "rank", "no result"]);
    for (gi, (name, datasets, with_exact)) in groups.into_iter().enumerate() {
        let n_datasets = datasets.len();
        let acc = accumulate(datasets, with_exact, scale, 4_000 + 97 * gi as u64);
        println!(
            "{name}: {} datasets, optimum proved on {}",
            n_datasets, acc.proved
        );
        let ranks = acc.ranks();
        for (algo, s) in acc.stats() {
            let e = global_first.entry(algo.clone()).or_insert((0, 0));
            e.0 += s.first;
            e.1 += s.total;
            t.row(vec![
                name.to_owned(),
                algo.clone(),
                pct(s.mean_gap()),
                format!("#{}", ranks[algo]),
                format!("{}", s.no_result),
            ]);
        }
    }
    print!("{}", t.render());
    t.write_csv(&opts.out.join("table4.csv")).expect("csv");

    println!("\n%1st over all real datasets (Table 4's last column):");
    let mut tf = Table::new(&["Algorithm", "%1st"]);
    for (algo, (first, total)) in &global_first {
        tf.row(vec![
            algo.clone(),
            format!("{:.1}%", 100.0 * *first as f64 / (*total).max(1) as f64),
        ]);
    }
    print!("{}", tf.render());
    tf.write_csv(&opts.out.join("table4_first.csv"))
        .expect("csv");
}

// ---------------------------------------------------------------- Figure 2

/// Figure 2: computing time vs n (m = 7), log-scale in the paper.
fn fig2(opts: &Opts) {
    let scale = &opts.scale;
    banner("Figure 2 — computing time vs number of elements (m = 7)");
    let grid: Vec<usize> = [5, 10, 15, 20, 25, 30, 40, 50, 75, 100, 150, 200, 300, 400]
        .into_iter()
        .filter(|&n| n <= scale.fig2_max_n)
        .collect();
    let sampler = UniformSampler::new(*grid.last().expect("non-empty grid"));
    let mut rng = StdRng::seed_from_u64(2);

    // The panel of Figure 2 (KwikSortMin/RepeatChoiceMin excluded there).
    // Timing experiments stay single-threaded (§6.2.4 comparability), so
    // every spec is built under the sequential execution policy.
    let algos: Vec<Box<dyn ConsensusAlgorithm>> = [
        AlgoSpec::Ailon,
        AlgoSpec::BioConsert,
        AlgoSpec::Borda,
        AlgoSpec::Copeland,
        AlgoSpec::FaginSmall,
        AlgoSpec::FaginLarge,
        AlgoSpec::KwikSort,
        AlgoSpec::MedRank(0.5),
        AlgoSpec::PickAPerm,
        AlgoSpec::RepeatChoice,
    ]
    .iter()
    .map(|s| s.build(ExecPolicy::sequential()))
    .collect();
    let exact_timing_cap = scale.n_exact_cap.min(20);
    let ailon_timing_cap = 25;

    let mut header: Vec<&str> = vec!["n"];
    let names: Vec<String> = std::iter::once("ExactSolution".to_owned())
        .chain(algos.iter().map(|a| a.name()))
        .collect();
    header.extend(names.iter().map(|s| s.as_str()));
    let mut t = Table::new(&header);

    for &n in &grid {
        let data = sampler.sample_dataset(n, 7, &mut rng);
        let mut cells = vec![n.to_string()];
        // ExactSolution first (as the paper's legend lists it).
        if n <= exact_timing_cap {
            let exact = AlgoSpec::Exact.build(ExecPolicy::sequential());
            let r = time_algorithm(
                exact.as_ref(),
                &data,
                77,
                scale.timing_floor,
                scale.exact_budget,
            );
            cells.push(if r.timed_out {
                "—".into()
            } else {
                secs(r.seconds)
            });
        } else {
            cells.push("—".into());
        }
        for algo in &algos {
            let is_ailon = algo.name() == "Ailon3/2";
            if is_ailon && n > ailon_timing_cap {
                // The paper: "for n > 45 no result is provided"; our simplex
                // substrate caps earlier (DESIGN.md §5).
                cells.push("—".into());
                continue;
            }
            let r = time_algorithm(
                algo.as_ref(),
                &data,
                77,
                scale.timing_floor,
                scale.algo_budget,
            );
            cells.push(if r.timed_out {
                "—".into()
            } else {
                secs(r.seconds)
            });
        }
        t.row(cells);
        eprintln!("  fig2: n = {n} done");
    }
    print!("{}", t.render());
    t.write_csv(&opts.out.join("fig2.csv")).expect("csv");
}

// ---------------------------------------------------------------- Figure 3

/// Figure 3: similarity distribution of every dataset group.
fn fig3(opts: &Opts) {
    let scale = &opts.scale;
    banner("Figure 3 — dataset similarity s(R) by group");
    let cells = scale.datasets_per_cell.max(3);
    let mut rng = StdRng::seed_from_u64(3);
    let mut groups: Vec<(String, Vec<f64>)> = Vec::new();

    let mut ws_p = Vec::new();
    let mut ws_u = Vec::new();
    for _ in 0..cells {
        let raw =
            realworld::websearch::generate(&realworld::websearch::Config::default(), &mut rng);
        if let Some(p) = projection(&raw) {
            ws_p.push(dataset_similarity(&p.dataset));
        }
        ws_u.push(dataset_similarity(&unification(&raw).expect("ok").dataset));
    }
    groups.push(("WebSearch Proj".into(), ws_p));
    groups.push(("WebSearch Unif".into(), ws_u));

    let mut f1_p = Vec::new();
    let mut f1_u = Vec::new();
    for _ in 0..cells {
        let raw = realworld::f1::generate(&realworld::f1::Config::default(), &mut rng);
        if let Some(p) = projection(&raw) {
            f1_p.push(dataset_similarity(&p.dataset));
        }
        f1_u.push(dataset_similarity(&unification(&raw).expect("ok").dataset));
    }
    groups.push(("F1 Proj".into(), f1_p));
    groups.push(("F1 Unif".into(), f1_u));

    let mut sk_p = Vec::new();
    let mut sk_u = Vec::new();
    for _ in 0..cells {
        let raw = realworld::skicross::generate(&realworld::skicross::Config::default(), &mut rng);
        if let Some(p) = projection(&raw) {
            sk_p.push(dataset_similarity(&p.dataset));
        }
        sk_u.push(dataset_similarity(&unification(&raw).expect("ok").dataset));
    }
    groups.push(("SkiCross Proj".into(), sk_p));
    groups.push(("SkiCross Unif".into(), sk_u));

    let mut bio = Vec::new();
    for _ in 0..cells * 2 {
        let raw =
            realworld::biomedical::generate(&realworld::biomedical::Config::default(), &mut rng);
        bio.push(dataset_similarity(&unification(&raw).expect("ok").dataset));
    }
    groups.push(("BioMedical Unif".into(), bio));

    for t_steps in [1_000usize, 5_000, 50_000] {
        let gen = MarkovGen::identity_seeded(35, t_steps);
        let sims: Vec<f64> = (0..cells)
            .map(|_| dataset_similarity(&gen.dataset(7, &mut rng)))
            .collect();
        groups.push((format!("Syn w/ similarity ({t_steps} steps)"), sims));
    }

    let sampler = UniformSampler::new(35);
    let sims: Vec<f64> = (0..cells)
        .map(|_| dataset_similarity(&sampler.sample_dataset(35, 7, &mut rng)))
        .collect();
    groups.push(("Syn uniform".into(), sims));

    let mut t = Table::new(&["Group", "mean s(R)", "min", "max", "#"]);
    for (name, sims) in &groups {
        let mean = sims.iter().sum::<f64>() / sims.len().max(1) as f64;
        let min = sims.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = sims.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        t.row(vec![
            name.clone(),
            format!("{mean:.3}"),
            format!("{min:.3}"),
            format!("{max:.3}"),
            sims.len().to_string(),
        ]);
    }
    print!("{}", t.render());
    t.write_csv(&opts.out.join("fig3.csv")).expect("csv");
}

// ---------------------------------------------------------------- Figure 4

/// Figure 4: gap vs number of Markov steps (m = 7, n = 35).
fn fig4(opts: &Opts) {
    let scale = &opts.scale;
    banner("Figure 4 — gap vs generation steps (m = 7, n = 35)");
    series_over_steps(
        opts,
        &[
            50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
        ],
        |t_steps, rng| MarkovGen::identity_seeded(35, t_steps).dataset(7, rng),
        "fig4.csv",
        scale,
    );
}

// ---------------------------------------------------------------- Figure 5

/// Figure 5: gap vs steps on *unified top-k* datasets (m = 7, n = 100 →
/// 35).
fn fig5(opts: &Opts) {
    let scale = &opts.scale;
    banner("Figure 5 — gap vs steps, unified top-k datasets (m = 7, 100 → 35)");
    series_over_steps(
        opts,
        &[
            1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000, 1_000_000,
        ],
        |t_steps, rng| {
            let gen = UnifiedGen {
                n_full: 100,
                t: t_steps,
                target_n: 35,
            };
            gen.generate(7, rng).0
        },
        "fig5.csv",
        scale,
    );
}

/// Shared engine of Figures 4/5: per step count, average gap per
/// algorithm.
fn series_over_steps(
    opts: &Opts,
    steps: &[usize],
    make: impl Fn(usize, &mut StdRng) -> Dataset,
    csv: &str,
    scale: &Scale,
) {
    let mut all_names: Vec<String> = Vec::new();
    let mut rows: Vec<(usize, GapAccumulator)> = Vec::new();
    for (si, &t_steps) in steps.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(45_000 + si as u64);
        let datasets: Vec<Dataset> = (0..scale.datasets_per_cell)
            .map(|_| make(t_steps, &mut rng))
            .collect();
        let acc = accumulate(datasets, true, scale, 46_000 + 1_000 * si as u64);
        if all_names.is_empty() {
            all_names = acc.stats().keys().cloned().collect();
        }
        eprintln!(
            "  steps = {t_steps}: optimum proved on {}/{}",
            acc.proved, acc.total
        );
        rows.push((t_steps, acc));
    }
    let mut header: Vec<&str> = vec!["steps"];
    header.extend(all_names.iter().map(|s| s.as_str()));
    let mut t = Table::new(&header);
    for (t_steps, acc) in &rows {
        let mut cells = vec![t_steps.to_string()];
        for name in &all_names {
            cells.push(match acc.stats().get(name) {
                Some(s) => pct(s.mean_gap()),
                None => "—".into(),
            });
        }
        t.row(cells);
    }
    print!("{}", t.render());
    t.write_csv(&opts.out.join(csv)).expect("csv");
}

// ---------------------------------------------------------------- Figure 6

/// Figure 6: time vs gap scatter for uniform datasets (m = 7, n = 35).
fn fig6(opts: &Opts) {
    let scale = &opts.scale;
    banner("Figure 6 — time and gap, uniform datasets (m = 7, n = 35)");
    let sampler = UniformSampler::new(35);
    let mut rng = StdRng::seed_from_u64(6);
    let count = (scale.datasets_per_cell * 6).max(6);
    let datasets: Vec<Dataset> = (0..count)
        .map(|_| sampler.sample_dataset(35, 7, &mut rng))
        .collect();

    // Gap (parallel over datasets, exact as reference).
    let timing_sets: Vec<Dataset> = datasets.iter().take(3).cloned().collect();
    let acc = accumulate(datasets, true, scale, 60_000);
    println!("optimum proved on {}/{}", acc.proved, acc.total);

    // Time: §6.2.4 repeated-run measurements on a few datasets,
    // single-threaded. The "Min" variants are included here as in the
    // paper's Figure 6.
    let mut algos = sequential_panel(scale.min_runs);
    algos.push(AlgoSpec::Exact.build(ExecPolicy::sequential()));
    let mut times: std::collections::BTreeMap<String, Vec<f64>> = Default::default();
    for (i, data) in timing_sets.iter().enumerate() {
        for algo in &algos {
            let budget = if algo.name() == "ExactAlgorithm" {
                scale.exact_budget
            } else {
                scale.algo_budget
            };
            let r = time_algorithm(
                algo.as_ref(),
                data,
                600 + i as u64,
                scale.timing_floor,
                budget,
            );
            if !r.timed_out {
                times.entry(r.name).or_default().push(r.seconds);
            }
        }
    }

    let ranks = acc.ranks();
    let mut t = Table::new(&["Algorithm", "avg time", "avg gap", "rank"]);
    for (name, s) in acc.stats() {
        let avg_time = times
            .get(name)
            .map(|v| v.iter().sum::<f64>() / v.len() as f64);
        t.row(vec![
            name.clone(),
            avg_time.map_or("—".into(), secs),
            pct(s.mean_gap()),
            format!("#{}", ranks[name]),
        ]);
    }
    print!("{}", t.render());
    t.write_csv(&opts.out.join("fig6.csv")).expect("csv");
}

// ---------------------------------------------------------------- §7.2

/// §7.2: which algorithms get faster on similar datasets.
fn sim_time(opts: &Opts) {
    let scale = &opts.scale;
    banner("§7.2 — computing time on similar (t=50) vs dissimilar (t=50 000) data");
    let mut rng = StdRng::seed_from_u64(72);
    let reps = scale.datasets_per_cell.clamp(1, 3);
    let mut algos = sequential_panel(scale.min_runs);
    algos.push(AlgoSpec::Exact.build(ExecPolicy::sequential()));

    let measure = |t_steps: usize, rng: &mut StdRng| -> std::collections::BTreeMap<String, f64> {
        let mut acc: std::collections::BTreeMap<String, Vec<f64>> = Default::default();
        for i in 0..reps {
            let data = MarkovGen::identity_seeded(35, t_steps).dataset(7, rng);
            for algo in &algos {
                let budget = if algo.name() == "ExactAlgorithm" {
                    scale.exact_budget
                } else {
                    scale.algo_budget
                };
                let r = time_algorithm(
                    algo.as_ref(),
                    &data,
                    700 + i as u64,
                    scale.timing_floor,
                    budget,
                );
                if !r.timed_out {
                    acc.entry(r.name).or_default().push(r.seconds);
                }
            }
        }
        acc.into_iter()
            .map(|(k, v)| (k, v.iter().sum::<f64>() / v.len() as f64))
            .collect()
    };

    let similar = measure(50, &mut rng);
    let dissimilar = measure(50_000, &mut rng);
    let mut t = Table::new(&[
        "Algorithm",
        "t=50 (similar)",
        "t=50000",
        "speed-up on similar",
    ]);
    for (name, &slow) in &dissimilar {
        if let Some(&fast) = similar.get(name) {
            t.row(vec![
                name.clone(),
                secs(fast),
                secs(slow),
                format!("{:+.0}%", 100.0 * (1.0 - fast / slow)),
            ]);
        }
    }
    print!("{}", t.render());
    t.write_csv(&opts.out.join("sim_time.csv")).expect("csv");
    println!("(paper: BioConsert up to 57% faster, ExactAlgorithm 85%, Ailon3/2 11%;\n positional algorithms and KwikSort unaffected)");
}

// ---------------------------------------------------------------- §7.3.1

/// §7.3.1: what projection and unification do to real dataset sizes.
fn norm_stats(opts: &Opts) {
    let scale = &opts.scale;
    banner("§7.3.1 — normalization statistics on the facsimiles");
    let mut rng = StdRng::seed_from_u64(731);
    let reps = (scale.datasets_per_cell * 3).max(5);

    let mut t = Table::new(&[
        "Collection",
        "raw elements",
        "projected n",
        "unified n",
        "% removed by projection",
        "avg unif. bucket",
    ]);
    let mut champion_removed = 0usize;

    let mut summarize = |name: &str,
                         gen: &mut dyn FnMut(&mut StdRng) -> Vec<Ranking>,
                         rng: &mut StdRng,
                         champion: Option<&mut usize>| {
        let (mut raw_n, mut proj_n, mut unif_n, mut removed, mut ubucket) =
            (0.0, 0.0, 0.0, 0.0, 0.0);
        let mut champ = 0usize;
        for _ in 0..reps {
            let raw = gen(rng);
            let u = unification(&raw).expect("non-empty");
            let p = projection(&raw);
            let pn = p.as_ref().map_or(0, |p| p.dataset.n());
            raw_n += u.dataset.n() as f64; // union = raw element count
            proj_n += pn as f64;
            unif_n += u.dataset.n() as f64;
            removed += 1.0 - pn as f64 / u.dataset.n() as f64;
            // Average unification-bucket size = elements missing per ranking.
            let miss: f64 = raw
                .iter()
                .map(|r| (u.dataset.n() - r.n_elements()) as f64)
                .sum::<f64>()
                / raw.len() as f64;
            ubucket += miss;
            // Champion check: is the best-ranked element of the unified
            // consensus-by-borda dropped by projection? Proxy: element
            // winning the most races.
            if let Some(p) = &p {
                let winner = raw
                    .iter()
                    .map(|r| r.bucket(0)[0])
                    .fold(std::collections::HashMap::<_, usize>::new(), |mut m, e| {
                        *m.entry(e).or_default() += 1;
                        m
                    })
                    .into_iter()
                    .max_by_key(|&(_, c)| c)
                    .map(|(e, _)| e);
                if let Some(w) = winner {
                    if !p.mapping.contains(&w) {
                        champ += 1;
                    }
                }
            }
        }
        let r = reps as f64;
        t.row(vec![
            name.to_owned(),
            format!("{:.1}", raw_n / r),
            format!("{:.1}", proj_n / r),
            format!("{:.1}", unif_n / r),
            format!("{:.1}%", 100.0 * removed / r),
            format!("{:.1}", ubucket / r),
        ]);
        if let Some(c) = champion {
            *c += champ;
        }
    };

    summarize(
        "F1 (paper: 15.8 proj / 38.7 unif / 53.4% removed)",
        &mut |rng| realworld::f1::generate(&realworld::f1::Config::default(), rng),
        &mut rng,
        Some(&mut champion_removed),
    );
    summarize(
        "WebSearch (paper: 40 proj / 2586 unif / 98.4% removed / bucket 1586)",
        &mut |rng| realworld::websearch::generate(&realworld::websearch::Config::default(), rng),
        &mut rng,
        None,
    );
    print!("{}", t.render());
    t.write_csv(&opts.out.join("norm_stats.csv")).expect("csv");
    println!(
        "F1 seasons where projection removed a race-winningest pilot: {champion_removed}/{reps} \
         (the paper's 1970-champion anecdote)"
    );
}

// ---------------------------------------------------------------- extras

/// Extensions: non-bold Table 1 algorithms, MEDRank threshold sweep
/// (§7.1.1), and the §8 threshold-k normalization.
fn extra(opts: &Opts) {
    let scale = &opts.scale;
    banner("Extensions — non-bold Table 1 rows (uniform datasets, n = 15)");
    let sampler = UniformSampler::new(35);
    let mut rng = StdRng::seed_from_u64(88);
    let datasets: Vec<Dataset> = (0..scale.datasets_per_cell.max(3))
        .map(|_| sampler.sample_dataset(15, 7, &mut rng))
        .collect();
    let evals = par_map(
        datasets.into_iter().enumerate().collect::<Vec<_>>(),
        scale.threads,
        |(i, d)| {
            let mut specs = extended_panel();
            specs.push(AlgoSpec::BioConsert);
            evaluate_dataset(&d, &specs, true, scale, 800 + i as u64)
        },
    );
    let mut acc = GapAccumulator::new();
    for e in &evals {
        acc.add(e);
    }
    gap_table("extended algorithms", &acc, opts, "extra_extended.csv");

    banner("MEDRank threshold sweep (§7.1.1: h = 0.5 is the value to prefer)");
    let datasets: Vec<Dataset> = (0..scale.datasets_per_cell.max(3))
        .map(|_| sampler.sample_dataset(35, 7, &mut rng))
        .collect();
    let evals = par_map(
        datasets.into_iter().enumerate().collect::<Vec<_>>(),
        scale.threads,
        |(i, d)| {
            let specs = vec![
                AlgoSpec::MedRank(0.3),
                AlgoSpec::MedRank(0.5),
                AlgoSpec::MedRank(0.7),
                AlgoSpec::MedRank(0.9),
            ];
            evaluate_dataset(&d, &specs, true, scale, 900 + i as u64)
        },
    );
    let mut acc = GapAccumulator::new();
    for e in &evals {
        acc.add(e);
    }
    gap_table("MEDRank thresholds", &acc, opts, "extra_medrank.csv");

    banner("§8 future work — threshold-k normalization on an F1 season");
    let raw = realworld::f1::generate(&realworld::f1::Config::default(), &mut rng);
    let m = raw.len();
    let mut t = Table::new(&["k (min rankings)", "elements kept", "consensus scored over"]);
    for k in [1, m / 2, m] {
        if let Some(Normalized { dataset, .. }) = threshold_k(&raw, k.max(1)) {
            let engine = Engine::new();
            let n = dataset.n();
            let report =
                engine.run(&AggregationRequest::new(dataset, AlgoSpec::BioConsert).with_seed(1));
            t.row(vec![
                k.max(1).to_string(),
                n.to_string(),
                format!("score {}", report.score),
            ]);
        }
    }
    print!("{}", t.render());
    t.write_csv(&opts.out.join("extra_threshold_k.csv"))
        .expect("csv");
}
