//! Minimal fixed-width table rendering for the `repro` binary, plus a CSV
//! writer so series can be re-plotted.

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// A text table with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header length).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let emit = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                let pad = width[i] - c.chars().count();
                if i > 0 {
                    out.push_str("  ");
                }
                // Right-align numeric-looking cells, left-align the rest.
                if c.chars()
                    .next()
                    .is_some_and(|ch| ch.is_ascii_digit() || ch == '-')
                    && i != 0
                {
                    let _ = write!(out, "{}{}", " ".repeat(pad), c);
                } else {
                    let _ = write!(out, "{}{}", c, " ".repeat(pad));
                }
            }
            out.push('\n');
        };
        emit(&self.header, &mut out);
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }

    /// Write as CSV to `path` (creating parent directories).
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut f = fs::File::create(path)?;
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        writeln!(
            f,
            "{}",
            self.header
                .iter()
                .map(|s| esc(s))
                .collect::<Vec<_>>()
                .join(",")
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{}",
                row.iter().map(|s| esc(s)).collect::<Vec<_>>().join(",")
            )?;
        }
        Ok(())
    }
}

/// Format a fraction as a percentage with one decimal, like the paper's
/// tables ("0,17" style commas are not reproduced).
pub fn pct(x: f64) -> String {
    if x.is_nan() {
        "—".to_owned()
    } else {
        format!("{:.2}%", 100.0 * x)
    }
}

/// Format seconds with an adaptive unit (the paper's Figure 2 axis spans
/// µs to minutes).
pub fn secs(s: f64) -> String {
    if s.is_nan() {
        "—".to_owned()
    } else if s < 1e-3 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else if s < 120.0 {
        format!("{:.2}s", s)
    } else {
        format!("{:.1}min", s / 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["algo", "gap"]);
        t.row(vec!["BioConsert".into(), "0.03%".into()]);
        t.row(vec!["Borda".into(), "5.60%".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("algo"));
        assert!(lines[2].contains("BioConsert"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn csv_roundtrip_chars() {
        let dir = std::env::temp_dir().join("rawt-table-test");
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["has,comma".into(), "1".into()]);
        let path = dir.join("t.csv");
        t.write_csv(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"has,comma\""));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.0503), "5.03%");
        assert_eq!(pct(f64::NAN), "—");
        assert_eq!(secs(5e-7), "0.5µs");
        assert_eq!(secs(0.005), "5.00ms");
        assert_eq!(secs(2.5), "2.50s");
        assert_eq!(secs(300.0), "5.0min");
    }
}
