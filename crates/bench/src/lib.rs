//! Experimental harness reproducing the paper's evaluation (§6–7).
//!
//! The library half implements the methodology:
//!
//! * [`Scale`] — experiment sizing (the paper's 19 000-dataset corpus is
//!   scaled down by default so `repro all` finishes on a laptop; `--full`
//!   approaches paper scale).
//! * [`evaluate_dataset`] — run a panel of algorithms on one dataset,
//!   compute the reference score (exact optimum when proved, otherwise the
//!   best known score — the paper's *m-gap* denominator, §6.2.3).
//! * [`time_algorithm`] — the §6.2.4 timing rule: repeat runs until the
//!   cumulative wall-clock exceeds a floor, then divide.
//! * [`GapAccumulator`] — per-algorithm average gap, `%gap = 0`, `%first`
//!   (Tables 4 and 5).
//! * [`table`] — fixed-width table rendering shared by the `repro` binary.
//!
//! The `repro` binary (see `src/bin/repro.rs`) maps one subcommand to each
//! table/figure of the paper.

use rank_core::algorithms::{AlgoContext, ConsensusAlgorithm};
use rank_core::engine::{AggregationRequest, AlgoSpec, Engine, Outcome};
use rank_core::Dataset;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

pub mod table;

/// Experiment sizing knobs.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Datasets generated per parameter cell (paper: 100–1000).
    pub datasets_per_cell: usize,
    /// Wall-clock budget for one exact solve (paper: 2 h).
    pub exact_budget: Duration,
    /// Wall-clock budget for one heuristic run (paper: 2 h).
    pub algo_budget: Duration,
    /// Largest `n` for which the exact solver is attempted (paper: 60).
    pub n_exact_cap: usize,
    /// Largest `n` in the Figure 2 timing sweep (paper: 400).
    pub fig2_max_n: usize,
    /// Minimum cumulative time per timing measurement (paper: 2 s).
    pub timing_floor: Duration,
    /// Repeats for the "Min" algorithm variants (paper: "a large number").
    pub min_runs: usize,
    /// Worker threads for dataset-parallel quality experiments (timing
    /// experiments always run single-threaded, as the paper's did).
    pub threads: usize,
}

impl Scale {
    /// Tiny sizing for smoke runs / CI.
    pub fn quick() -> Self {
        Scale {
            datasets_per_cell: 2,
            exact_budget: Duration::from_secs(3),
            algo_budget: Duration::from_secs(2),
            n_exact_cap: 15,
            fig2_max_n: 100,
            timing_floor: Duration::from_millis(50),
            min_runs: 5,
            threads: num_threads(),
        }
    }

    /// Default sizing: every experiment's *shape* reproduces in minutes.
    pub fn standard() -> Self {
        Scale {
            datasets_per_cell: 5,
            exact_budget: Duration::from_secs(20),
            algo_budget: Duration::from_secs(10),
            n_exact_cap: 40,
            fig2_max_n: 400,
            timing_floor: Duration::from_millis(200),
            min_runs: 20,
            threads: num_threads(),
        }
    }

    /// Paper-approaching sizing (hours).
    pub fn full() -> Self {
        Scale {
            datasets_per_cell: 50,
            exact_budget: Duration::from_secs(300),
            algo_budget: Duration::from_secs(120),
            n_exact_cap: 60,
            fig2_max_n: 400,
            timing_floor: Duration::from_secs(2),
            min_runs: 20,
            threads: num_threads(),
        }
    }
}

fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

/// One algorithm's outcome on one dataset.
#[derive(Debug, Clone)]
pub struct AlgoResult {
    /// Registry name.
    pub name: String,
    /// Generalized Kemeny score of the returned consensus.
    pub score: u64,
    /// Wall-clock seconds (one evaluation run, or the §6.2.4 average for
    /// timing experiments). [`evaluate_dataset`] measures these under
    /// concurrent batch execution — indicative only; publishable timings
    /// come from [`time_algorithm`], which runs alone and sequential.
    pub seconds: f64,
    /// The algorithm hit its budget (reported "no result" in the paper).
    pub timed_out: bool,
}

/// Outcome of evaluating a whole panel on one dataset.
#[derive(Debug, Clone)]
pub struct DatasetEval {
    /// Per-algorithm outcomes, exact solver first when requested.
    pub results: Vec<AlgoResult>,
    /// Gap denominator: the optimal score when `proved`, otherwise the
    /// best score any algorithm achieved (m-gap).
    pub reference: u64,
    /// Whether `reference` is a proven optimum.
    pub proved: bool,
}

/// Run a panel of `specs` (and optionally the exact solver) on `data` as
/// one engine batch.
///
/// Each spec becomes one [`AggregationRequest`] with its own budget and
/// outcome flags, so a timeout in one algorithm can never be
/// mis-attributed to its neighbours (the engine's per-request [`Outcome`]
/// replaces the shared-flag + `reset_flags` discipline earlier revisions
/// needed). The exact solver's proven optimum becomes the gap reference;
/// if it cannot prove within budget (or `n` exceeds the cap) the best
/// score seen becomes the m-gap reference, mirroring §6.2.3.
///
/// The batch runs concurrently (degrading to sequential inside nested
/// harness parallelism), so per-result `seconds` include scheduler
/// contention and the wall-clock budgets assume comfortable headroom —
/// quality experiments only. Timing experiments use [`time_algorithm`].
pub fn evaluate_dataset(
    data: &Dataset,
    specs: &[AlgoSpec],
    with_exact: bool,
    scale: &Scale,
    seed: u64,
) -> DatasetEval {
    let mut batch = AggregationRequest::batch(data.clone()).seed(seed);
    if with_exact && data.n() <= scale.n_exact_cap {
        batch = batch.spec(AlgoSpec::Exact);
    }
    let mut requests = batch.specs(specs.iter().cloned()).build();
    for req in &mut requests {
        req.budget = Some(if req.spec == AlgoSpec::Exact {
            scale.exact_budget
        } else {
            scale.algo_budget
        });
    }
    let engine = Engine::with_workers(scale.threads);
    let reports = engine.run_batch(&requests);

    let proved = reports.iter().any(|r| r.outcome == Outcome::Optimal);
    let reference = reports
        .iter()
        .filter(|r| !proved || r.outcome == Outcome::Optimal)
        .map(|r| r.score)
        .min()
        .unwrap_or(u64::MAX);
    let results: Vec<AlgoResult> = reports
        .iter()
        .map(|r| AlgoResult {
            name: r.algorithm(),
            score: r.score,
            seconds: r.elapsed.as_secs_f64(),
            timed_out: r.outcome == Outcome::TimedOut,
        })
        .collect();
    debug_assert!(results.iter().all(|r| r.score >= reference));
    DatasetEval {
        results,
        reference,
        proved,
    }
}

/// §6.2.4 timing: run `algo` repeatedly until the cumulative time exceeds
/// `floor`, return the average seconds per run (after one warm-up run that
/// also yields the score).
pub fn time_algorithm(
    algo: &dyn ConsensusAlgorithm,
    data: &Dataset,
    seed: u64,
    floor: Duration,
    budget: Duration,
) -> AlgoResult {
    let mut ctx = AlgoContext::seeded_with_budget(seed, budget);
    let warm = algo.run(data, &mut ctx);
    let score = rank_core::score::kemeny_score(&warm, data);
    let timed_out = ctx.timed_out();
    let mut runs = 0u32;
    let start = Instant::now();
    loop {
        let mut ctx = AlgoContext::seeded_with_budget(seed + runs as u64, budget);
        let _ = algo.run(data, &mut ctx);
        runs += 1;
        if start.elapsed() >= floor || timed_out || runs >= 1000 {
            break;
        }
    }
    AlgoResult {
        name: algo.name(),
        seconds: start.elapsed().as_secs_f64() / runs as f64,
        score,
        timed_out,
    }
}

/// Per-algorithm gap statistics (Tables 4 and 5).
#[derive(Debug, Clone, Default)]
pub struct GapStats {
    /// Σ gap over datasets with a result.
    pub gap_sum: f64,
    /// Datasets where the algorithm matched the reference exactly.
    pub zero: usize,
    /// Datasets where the algorithm's score was the best of the panel.
    pub first: usize,
    /// Datasets where the algorithm produced no result in budget.
    pub no_result: usize,
    /// Total datasets seen.
    pub total: usize,
}

impl GapStats {
    /// Average gap over datasets with a result.
    pub fn mean_gap(&self) -> f64 {
        let counted = self.total - self.no_result;
        if counted == 0 {
            f64::NAN
        } else {
            self.gap_sum / counted as f64
        }
    }

    /// Percentage of datasets with gap 0.
    pub fn pct_zero(&self) -> f64 {
        100.0 * self.zero as f64 / self.total.max(1) as f64
    }

    /// Percentage of datasets where the algorithm was (tied-)first.
    pub fn pct_first(&self) -> f64 {
        100.0 * self.first as f64 / self.total.max(1) as f64
    }
}

/// Accumulates [`DatasetEval`]s into per-algorithm [`GapStats`].
#[derive(Debug, Clone, Default)]
pub struct GapAccumulator {
    stats: BTreeMap<String, GapStats>,
    /// Datasets where the reference was a proven optimum.
    pub proved: usize,
    /// Total datasets.
    pub total: usize,
}

impl GapAccumulator {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in one dataset's evaluation.
    pub fn add(&mut self, eval: &DatasetEval) {
        self.total += 1;
        if eval.proved {
            self.proved += 1;
        }
        let best = eval
            .results
            .iter()
            .filter(|r| !r.timed_out)
            .map(|r| r.score)
            .min()
            .unwrap_or(eval.reference);
        for r in &eval.results {
            let s = self.stats.entry(r.name.clone()).or_default();
            s.total += 1;
            if r.timed_out {
                s.no_result += 1;
                continue;
            }
            s.gap_sum += rank_core::score::gap(r.score, eval.reference);
            if r.score == eval.reference {
                s.zero += 1;
            }
            if r.score == best {
                s.first += 1;
            }
        }
    }

    /// Per-algorithm statistics, keyed by name.
    pub fn stats(&self) -> &BTreeMap<String, GapStats> {
        &self.stats
    }

    /// Algorithm names ranked by mean gap (rank 1 = smallest), as shown in
    /// the paper's tables.
    pub fn ranks(&self) -> BTreeMap<String, usize> {
        let mut by_gap: Vec<(&String, f64)> =
            self.stats.iter().map(|(n, s)| (n, s.mean_gap())).collect();
        by_gap.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        by_gap
            .into_iter()
            .enumerate()
            .map(|(i, (n, _))| (n.clone(), i + 1))
            .collect()
    }
}

/// Dataset-parallel map (quality experiments only; timing stays
/// single-threaded). Preserves input order. Thin wrapper over the core
/// crate's std-thread substrate ([`rank_core::parallel`]).
pub fn par_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    rank_core::parallel::par_map_vec(items, threads, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rank_core::engine::paper_panel;
    use rank_core::parse::parse_ranking;

    fn paper_dataset() -> Dataset {
        Dataset::new(vec![
            parse_ranking("[{0},{3},{1,2}]").unwrap(),
            parse_ranking("[{0},{1,2},{3}]").unwrap(),
            parse_ranking("[{3},{0,2},{1}]").unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn evaluate_dataset_with_exact_reference() {
        let data = paper_dataset();
        let eval = evaluate_dataset(&data, &paper_panel(3), true, &Scale::quick(), 1);
        assert!(eval.proved);
        assert_eq!(eval.reference, 5);
        assert_eq!(eval.results.len(), 14); // exact + 13 panel algorithms
        assert!(eval
            .results
            .iter()
            .any(|r| r.name == "BioConsert" && r.score == 5));
    }

    #[test]
    fn gap_accumulator_counts() {
        let data = paper_dataset();
        let mut acc = GapAccumulator::new();
        for seed in 0..3 {
            acc.add(&evaluate_dataset(
                &data,
                &paper_panel(3),
                true,
                &Scale::quick(),
                seed,
            ));
        }
        assert_eq!(acc.total, 3);
        assert_eq!(acc.proved, 3);
        let bio = &acc.stats()["BioConsert"];
        assert_eq!(bio.total, 3);
        assert_eq!(bio.zero, 3, "BioConsert finds the optimum here");
        assert_eq!(bio.mean_gap(), 0.0);
        let ranks = acc.ranks();
        assert!(ranks["BioConsert"] < ranks["RepeatChoice"]);
    }

    #[test]
    fn timing_returns_positive_seconds() {
        let data = paper_dataset();
        let algo = rank_core::algorithms::borda::BordaCount;
        let r = time_algorithm(
            &algo,
            &data,
            0,
            Duration::from_millis(10),
            Duration::from_secs(1),
        );
        assert!(r.seconds > 0.0);
        assert!(!r.timed_out);
    }

    #[test]
    fn par_map_preserves_order() {
        let out = par_map((0..100).collect::<Vec<u64>>(), 8, |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<u64>>());
    }
}
