//! Micro-benchmarks of the library's hot kernels: the O(n log n) vs O(n²)
//! generalized Kendall-τ, pair-table construction, scoring, similarity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ragen::UniformSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rank_core::algorithms::bioconsert::BioConsert;
use rank_core::algorithms::{AlgoContext, ConsensusAlgorithm};
use rank_core::distance::{pair_counts, pair_counts_naive};
use rank_core::similarity::dataset_similarity;
use rank_core::{Dataset, PairTable};
use std::hint::black_box;
use std::time::Duration;

fn config(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("kernels");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));
    g
}

fn datasets(ns: &[usize]) -> Vec<Dataset> {
    let sampler = UniformSampler::new(*ns.iter().max().unwrap());
    let mut rng = StdRng::seed_from_u64(1);
    ns.iter()
        .map(|&n| sampler.sample_dataset(n, 7, &mut rng))
        .collect()
}

fn bench_kernels(c: &mut Criterion) {
    let sets = datasets(&[100, 500]);
    let mut g = config(c);
    for data in &sets {
        let n = data.n();
        let (a, b) = (data.ranking(0), data.ranking(1));
        g.bench_with_input(BenchmarkId::new("generalized_fast", n), &n, |bch, _| {
            bch.iter(|| black_box(pair_counts(a, b).generalized()))
        });
        g.bench_with_input(BenchmarkId::new("generalized_naive", n), &n, |bch, _| {
            bch.iter(|| black_box(pair_counts_naive(a, b).generalized()))
        });
        g.bench_with_input(
            BenchmarkId::new("cost_matrix_build_serial", n),
            &n,
            |bch, _| bch.iter(|| black_box(PairTable::build_with_threads(data, 1).m())),
        );
        let threads = rank_core::parallel::num_threads();
        g.bench_with_input(
            BenchmarkId::new("cost_matrix_build_parallel", n),
            &n,
            |bch, _| bch.iter(|| black_box(PairTable::build_with_threads(data, threads).m())),
        );
        let pairs = PairTable::build(data);
        g.bench_with_input(
            BenchmarkId::new("score_via_cost_matrix", n),
            &n,
            |bch, _| bch.iter(|| black_box(pairs.score(a))),
        );
        g.bench_with_input(BenchmarkId::new("lower_bound", n), &n, |bch, _| {
            bch.iter(|| black_box(pairs.lower_bound()))
        });
        let sweep = BioConsert {
            extra_starts: vec![a.clone()],
            only_extra_starts: true,
            force_sequential: true,
        };
        // One context reused across iterations: the matrix-cache hit makes
        // this measure the local search itself, not a rebuild per iter
        // (builds are measured separately above).
        let mut sweep_ctx = AlgoContext::seeded(3);
        sweep_ctx.cost_matrix(data);
        g.bench_with_input(BenchmarkId::new("bioconsert_sweep", n), &n, |bch, _| {
            bch.iter(|| black_box(sweep.run(data, &mut sweep_ctx)))
        });
        g.bench_with_input(BenchmarkId::new("dataset_similarity", n), &n, |bch, _| {
            bch.iter(|| black_box(dataset_similarity(data)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
