//! Generator throughput: exact-uniform sampling (bignum-weighted),
//! Markov-chain walks, unified top-k pipeline, facsimiles.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::realworld;
use ragen::{MarkovGen, UnifiedGen, UniformSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn bench_generators(c: &mut Criterion) {
    let mut g = c.benchmark_group("generators");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));

    let sampler = UniformSampler::new(500);
    for n in [35usize, 100, 500] {
        g.bench_with_input(BenchmarkId::new("uniform_sample", n), &n, |bch, &n| {
            let mut rng = StdRng::seed_from_u64(1);
            bch.iter(|| black_box(sampler.sample(n, &mut rng).n_buckets()))
        });
    }

    for t in [1_000usize, 50_000] {
        g.bench_with_input(BenchmarkId::new("markov_walk_n35", t), &t, |bch, &t| {
            let mut rng = StdRng::seed_from_u64(2);
            let gen = MarkovGen::identity_seeded(35, t);
            bch.iter(|| black_box(gen.dataset(7, &mut rng).m()))
        });
    }

    g.bench_function("unified_gen_t10k", |bch| {
        let mut rng = StdRng::seed_from_u64(3);
        let gen = UnifiedGen {
            n_full: 100,
            t: 10_000,
            target_n: 35,
        };
        bch.iter(|| black_box(gen.generate(7, &mut rng).0.n()))
    });

    g.bench_function("facsimile_websearch", |bch| {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = realworld::websearch::Config::default();
        bch.iter(|| black_box(realworld::websearch::generate(&cfg, &mut rng).len()))
    });
    g.bench_function("facsimile_f1_season", |bch| {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = realworld::f1::Config::default();
        bch.iter(|| black_box(realworld::f1::generate(&cfg, &mut rng).len()))
    });
    g.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
