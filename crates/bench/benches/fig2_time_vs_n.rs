//! Criterion version of Figure 2: per-algorithm consensus time as the
//! number of elements grows (m = 7, uniform data).
//!
//! The full sweep with the paper's repeat-until-2s methodology lives in
//! `repro fig2`; this bench covers the panel at a few sizes with
//! statistically sound criterion sampling. Exact/Ailon are restricted to
//! the sizes they can finish at (the paper's own finding, §7.1.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ragen::UniformSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rank_core::algorithms::AlgoContext;
use rank_core::engine::{paper_panel, AlgoSpec, ExecPolicy};
use std::hint::black_box;
use std::time::Duration;

fn bench_fig2(c: &mut Criterion) {
    let sizes = [20usize, 50, 100, 200];
    let sampler = UniformSampler::new(*sizes.iter().max().unwrap());
    let mut rng = StdRng::seed_from_u64(2);
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));

    for &n in &sizes {
        let data = sampler.sample_dataset(n, 7, &mut rng);
        for spec in paper_panel(5) {
            if spec == AlgoSpec::Ailon && n > 20 {
                continue; // LP does not scale (§7.1.1)
            }
            let algo = spec.build(ExecPolicy::default());
            g.bench_with_input(BenchmarkId::new(algo.name(), n), &n, |bch, _| {
                let mut seed = 0u64;
                bch.iter(|| {
                    seed += 1;
                    let mut ctx = AlgoContext::seeded(seed);
                    black_box(algo.run(&data, &mut ctx).n_buckets())
                })
            });
        }
        if n <= 20 {
            let exact = AlgoSpec::Exact.build(ExecPolicy::default());
            g.bench_with_input(BenchmarkId::new("ExactAlgorithm", n), &n, |bch, _| {
                let mut seed = 0u64;
                bch.iter(|| {
                    seed += 1;
                    let mut ctx = AlgoContext::seeded(seed);
                    black_box(exact.run(&data, &mut ctx).n_buckets())
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
