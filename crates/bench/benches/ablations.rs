//! Ablation benches for the design choices DESIGN.md §7 calls out.
//!
//! Measured on the same uniform m = 7, n = 35 workload as Figure 6:
//!
//! * **BioConsert starting points** — inputs (the paper's choice) vs a
//!   single BordaCount seed vs the all-tied ranking. Reported as runtime;
//!   the quality side is printed to stderr once per variant.
//! * **KwikSort tie branch** — the §4.1.2 three-way pivot vs the original
//!   two-way one.

use criterion::{criterion_group, criterion_main, Criterion};
use ragen::UniformSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rank_core::algorithms::bioconsert::BioConsert;
use rank_core::algorithms::borda::BordaCount;
use rank_core::algorithms::kwiksort::{KwikSort, KwikSortNoTies};
use rank_core::algorithms::{AlgoContext, ConsensusAlgorithm};
use rank_core::score::kemeny_score;
use rank_core::{Element, Ranking};
use std::hint::black_box;
use std::time::Duration;

fn bench_ablations(c: &mut Criterion) {
    let sampler = UniformSampler::new(35);
    let mut rng = StdRng::seed_from_u64(7);
    let data = sampler.sample_dataset(35, 7, &mut rng);

    let borda_seed = BordaCount.run(&data, &mut AlgoContext::seeded(0));
    let all_tied = Ranking::single_bucket((0..35u32).map(Element).collect()).expect("non-empty");

    let variants: Vec<(&str, BioConsert)> = vec![
        ("bioconsert_input_starts", BioConsert::default()),
        (
            "bioconsert_borda_start",
            BioConsert {
                extra_starts: vec![borda_seed],
                only_extra_starts: true,
                ..BioConsert::default()
            },
        ),
        (
            "bioconsert_all_tied_start",
            BioConsert {
                extra_starts: vec![all_tied],
                only_extra_starts: true,
                ..BioConsert::default()
            },
        ),
    ];

    let mut g = c.benchmark_group("ablations");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));

    for (name, algo) in &variants {
        let score = kemeny_score(&algo.run(&data, &mut AlgoContext::seeded(1)), &data);
        eprintln!("[ablation] {name}: kemeny score {score}");
        g.bench_function(*name, |bch| {
            bch.iter(|| {
                let mut ctx = AlgoContext::seeded(1);
                black_box(algo.run(&data, &mut ctx).n_buckets())
            })
        });
    }

    for (name, algo) in [
        ("kwiksort_3way", &KwikSort as &dyn ConsensusAlgorithm),
        ("kwiksort_2way", &KwikSortNoTies as &dyn ConsensusAlgorithm),
    ] {
        let score = kemeny_score(&algo.run(&data, &mut AlgoContext::seeded(1)), &data);
        eprintln!("[ablation] {name}: kemeny score {score}");
        g.bench_function(name, |bch| {
            let mut seed = 0u64;
            bch.iter(|| {
                seed += 1;
                let mut ctx = AlgoContext::seeded(seed);
                black_box(algo.run(&data, &mut ctx).n_buckets())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
