//! The three exact solvers head-to-head at toy sizes: brute-force
//! enumeration of all bucket orders, the native branch-and-bound, and the
//! §4.2 LPB on the simplex substrate (why the native solver is the
//! harness default, DESIGN.md §4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ragen::UniformSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rank_core::algorithms::exact::{brute_force, ExactAlgorithm, ExactLpb};
use rank_core::algorithms::AlgoContext;
use std::hint::black_box;
use std::time::Duration;

fn bench_exact(c: &mut Criterion) {
    let sampler = UniformSampler::new(20);
    let mut rng = StdRng::seed_from_u64(11);
    let mut g = c.benchmark_group("exact_solvers");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(500));

    for n in [5usize, 6] {
        let data = sampler.sample_dataset(n, 5, &mut rng);
        g.bench_with_input(BenchmarkId::new("brute_force", n), &n, |bch, _| {
            bch.iter(|| black_box(brute_force(&data).0))
        });
        g.bench_with_input(BenchmarkId::new("native_bnb", n), &n, |bch, _| {
            bch.iter(|| {
                let mut ctx = AlgoContext::seeded(1);
                black_box(ExactAlgorithm::default().solve(&data, &mut ctx).1)
            })
        });
        g.bench_with_input(BenchmarkId::new("lpb_simplex", n), &n, |bch, _| {
            bch.iter(|| black_box(ExactLpb::default().solve(&data).1))
        });
    }
    // The native solver alone at the sizes the harness actually uses.
    for n in [12usize, 16] {
        let data = sampler.sample_dataset(n, 7, &mut rng);
        g.bench_with_input(BenchmarkId::new("native_bnb", n), &n, |bch, _| {
            bch.iter(|| {
                let mut ctx = AlgoContext::seeded(1);
                black_box(ExactAlgorithm::default().solve(&data, &mut ctx).1)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_exact);
criterion_main!(benches);
