//! Kemeny scores and the gap quality measure (§2, §6.2.3).

use crate::dataset::Dataset;
use crate::distance::{generalized_kendall_tau, kendall_tau};
use crate::ranking::Ranking;

/// The generalized Kemeny score `K(r, R) = Σ_s G(r, s)` (§2.2).
pub fn kemeny_score(r: &Ranking, data: &Dataset) -> u64 {
    data.rankings()
        .iter()
        .map(|s| generalized_kendall_tau(r, s))
        .sum()
}

/// The classical Kemeny score `S(π, P) = Σ_σ D(π, σ)` (§2.1) — strict
/// inversions only.
pub fn classical_kemeny_score(r: &Ranking, data: &Dataset) -> u64 {
    data.rankings().iter().map(|s| kendall_tau(r, s)).sum()
}

/// The *gap* of a consensus (§6.2.3, eq. 6): the fraction of additional
/// disagreement relative to an optimal consensus. Optimal consensuses have
/// gap 0.
///
/// When the optimum is unknown the same formula applied against the best
/// score produced by any available algorithm is the paper's *m-gap*.
///
/// # Panics
/// Panics if `reference_score` is 0 but `score` is not (a zero-cost
/// consensus exists only when all inputs are identical, and then every
/// other score ≥ 1 would make the gap infinite).
pub fn gap(score: u64, reference_score: u64) -> f64 {
    if reference_score == 0 {
        assert_eq!(
            score, 0,
            "gap undefined: reference score 0 but candidate score {score}"
        );
        return 0.0;
    }
    score as f64 / reference_score as f64 - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_ranking;

    fn paper_dataset() -> Dataset {
        Dataset::new(vec![
            parse_ranking("[{0},{3},{1,2}]").unwrap(),
            parse_ranking("[{0},{1,2},{3}]").unwrap(),
            parse_ranking("[{3},{0,2},{1}]").unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn paper_optimal_consensus_scores_five() {
        let data = paper_dataset();
        let opt = parse_ranking("[{0},{3},{1,2}]").unwrap();
        assert_eq!(kemeny_score(&opt, &data), 5);
    }

    #[test]
    fn all_tied_ranking_gets_free_classical_score() {
        // The degenerate solution §2.2 warns about: under the classical
        // distance, tying everything costs nothing.
        let data = paper_dataset();
        let degenerate = parse_ranking("[{0,1,2,3}]").unwrap();
        assert_eq!(classical_kemeny_score(&degenerate, &data), 0);
        // The generalized score correctly penalizes it.
        assert!(kemeny_score(&degenerate, &data) > 5);
    }

    #[test]
    fn gap_basics() {
        assert_eq!(gap(5, 5), 0.0);
        assert!((gap(6, 5) - 0.2).abs() < 1e-12);
        assert_eq!(gap(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "gap undefined")]
    fn gap_zero_reference_nonzero_score_panics() {
        let _ = gap(3, 0);
    }
}
