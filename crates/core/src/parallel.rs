//! Minimal data-parallel substrate over `std::thread::scope`.
//!
//! The build environment has no crates.io access, so rayon is unavailable;
//! this module provides the rayon-shaped primitive the kernels need — an
//! order-preserving parallel map with work stealing via a shared atomic
//! cursor. Callers pass an explicit thread count (usually
//! [`num_threads`]); `threads <= 1` degrades to a plain sequential map, so
//! every parallel code path has a trivially equivalent sequential twin —
//! the property the determinism tests rely on.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// `true` on threads spawned by [`par_map_slice`] workers — nested
    /// parallel maps on such threads degrade to sequential, so one logical
    /// run never holds more than ~[`num_threads`] OS threads at once
    /// (e.g. `BestOf(BioConsert)` parallelizes repeats, and each repeat's
    /// own multi-start and matrix build then stay on its worker).
    static IN_PARALLEL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Worker threads to use by default: the machine's available parallelism,
/// capped to keep oversubscription in check on very wide hosts.
pub fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

/// Parallel indexed map over a slice, preserving input order.
///
/// `f(i, &items[i])` runs on one of `threads` workers; indices are handed
/// out through an atomic cursor, so imbalanced items don't stall the other
/// workers. Panics in `f` propagate (the scope joins all workers first).
pub fn par_map_slice<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 || IN_PARALLEL_WORKER.get() {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| {
                IN_PARALLEL_WORKER.set(true);
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = f(i, &items[i]);
                    *out[i].lock().expect("result slot poisoned") = Some(r);
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index visited exactly once")
        })
        .collect()
}

/// Parallel map consuming a `Vec`, preserving input order.
///
/// Like [`par_map_slice`] but moves each item into its worker — the shape
/// the bench harness needs for dataset-parallel evaluation.
pub fn par_map_vec<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results = par_map_slice(&work, threads, |_, slot| {
        let item = slot
            .lock()
            .expect("work slot poisoned")
            .take()
            .expect("each index taken exactly once");
        f(item)
    });
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_visits_everything() {
        let items: Vec<u64> = (0..257).collect();
        for threads in [1, 2, 8] {
            let out = par_map_slice(&items, threads, |i, &x| {
                assert_eq!(i as u64, x);
                x * 3
            });
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn vec_variant_moves_items() {
        let items: Vec<String> = (0..40).map(|i| i.to_string()).collect();
        let out = par_map_vec(items.clone(), 4, |s| s.len());
        assert_eq!(out, items.iter().map(|s| s.len()).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u8> = vec![];
        assert!(par_map_slice(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(par_map_slice(&[9u8], 8, |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn nested_parallel_maps_degrade_to_sequential() {
        let outer: Vec<u32> = (0..8).collect();
        let results = par_map_slice(&outer, 4, |_, &x| {
            // Inside a worker the nested map must not spawn further
            // threads; it still computes the right answer.
            let inner: Vec<u32> = (0..16).collect();
            let inner_out = par_map_slice(&inner, 4, |_, &y| y + x);
            inner_out.iter().sum::<u32>()
        });
        let expected: Vec<u32> = (0..8).map(|x| (0..16).map(|y| y + x).sum()).collect();
        assert_eq!(results, expected);
    }

    #[test]
    fn imbalanced_work_still_completes() {
        let items: Vec<u64> = (0..64).collect();
        let out = par_map_slice(&items, 8, |_, &x| {
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x
        });
        assert_eq!(out, items);
    }
}
