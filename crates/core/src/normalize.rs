//! Normalization processes (§5.1, Table 3).
//!
//! Real datasets rarely rank the same elements everywhere; aggregation
//! algorithms require them to. The literature uses two conversions, both
//! implemented here together with the top-k retention of §6.1.3 and the
//! intermediate `k`-of-`m` process the paper proposes as future work (§8):
//!
//! * **Projection** removes every element absent from at least one ranking
//!   — it can silently drop highly relevant elements (the paper's example:
//!   the 1970 F1 champion).
//! * **Unification** appends to each ranking a final bucket holding the
//!   elements it is missing; **unification-broken** then splits that bucket
//!   into singletons (arbitrary order) for permutation-only algorithms.
//!
//! All functions return a dense [`Dataset`] plus the mapping from dense ids
//! back to the original elements.

use crate::dataset::Dataset;
use crate::element::Element;
use crate::ranking::Ranking;

/// A normalized dataset plus the id mapping: `mapping[dense_id]` is the
/// original element.
#[derive(Debug, Clone)]
pub struct Normalized {
    /// The dense dataset ready for aggregation.
    pub dataset: Dataset,
    /// Dense id → original element.
    pub mapping: Vec<Element>,
}

impl Normalized {
    /// Translate a consensus over the dense ids back to original ids.
    pub fn denormalize(&self, r: &Ranking) -> Ranking {
        r.map_elements(|e| self.mapping[e.index()])
            .expect("mapping is injective")
    }
}

/// Sorted union of the supports.
fn union(raw: &[Ranking]) -> Vec<Element> {
    let mut all: Vec<Element> = raw.iter().flat_map(|r| r.elements()).collect();
    all.sort_unstable();
    all.dedup();
    all
}

/// Elements present in every ranking, sorted.
fn intersection(raw: &[Ranking]) -> Vec<Element> {
    union(raw)
        .into_iter()
        .filter(|&e| raw.iter().all(|r| r.contains(e)))
        .collect()
}

fn dense_index(kept: &[Element]) -> impl Fn(Element) -> Element + '_ {
    move |e| {
        let i = kept.binary_search(&e).expect("element retained");
        Element(i as u32)
    }
}

/// Keep only `kept` elements of `r` (dropping emptied buckets), remapped to
/// dense ids. Returns `None` if nothing remains.
fn restrict(r: &Ranking, kept: &[Element]) -> Option<Vec<Vec<Element>>> {
    let to_dense = dense_index(kept);
    let buckets: Vec<Vec<Element>> = r
        .buckets()
        .map(|b| {
            b.iter()
                .filter(|e| kept.binary_search(e).is_ok())
                .map(|&e| to_dense(e))
                .collect::<Vec<_>>()
        })
        .filter(|b: &Vec<Element>| !b.is_empty())
        .collect();
    if buckets.is_empty() {
        None
    } else {
        Some(buckets)
    }
}

/// **Projection** (§5.1): drop every element absent from at least one
/// ranking. Returns `None` when the intersection is empty.
pub fn projection(raw: &[Ranking]) -> Option<Normalized> {
    let kept = intersection(raw);
    if kept.is_empty() || raw.is_empty() {
        return None;
    }
    let rankings: Vec<Ranking> = raw
        .iter()
        .map(|r| {
            Ranking::from_buckets(restrict(r, &kept).expect("kept ⊆ every support"))
                .expect("projection preserves validity")
        })
        .collect();
    Some(Normalized {
        dataset: Dataset::new(rankings).expect("projected rankings share the support"),
        mapping: kept,
    })
}

/// Core of unification: append each ranking's missing elements as one final
/// bucket, or as singletons when `broken`.
fn unify_impl(raw: &[Ranking], broken: bool) -> Option<Normalized> {
    let kept = union(raw);
    if kept.is_empty() {
        return None;
    }
    let rankings: Vec<Ranking> = raw
        .iter()
        .map(|r| {
            let to_dense = dense_index(&kept);
            let mut buckets: Vec<Vec<Element>> = r
                .buckets()
                .map(|b| b.iter().map(|&e| to_dense(e)).collect())
                .collect();
            let missing: Vec<Element> = kept
                .iter()
                .filter(|&&e| !r.contains(e))
                .map(|&e| to_dense(e))
                .collect();
            if !missing.is_empty() {
                buckets.push(missing);
            }
            if broken {
                // Table 3's d_b is made of permutations only: *every*
                // bucket (pre-existing ties included) is broken,
                // "arbitrarily" = ascending id.
                buckets = buckets
                    .into_iter()
                    .flat_map(|mut b| {
                        b.sort_unstable();
                        b.into_iter().map(|e| vec![e]).collect::<Vec<_>>()
                    })
                    .collect();
            }
            Ranking::from_buckets(buckets).expect("unification preserves validity")
        })
        .collect();
    Some(Normalized {
        dataset: Dataset::new(rankings).expect("unified rankings share the support"),
        mapping: kept,
    })
}

/// **Unification** (§5.1): each ranking gets a final *unification bucket*
/// with the elements it is missing. Returns `None` for an empty input.
pub fn unification(raw: &[Ranking]) -> Option<Normalized> {
    unify_impl(raw, false)
}

/// **Unification broken** (§5.1): like [`unification`] but the unification
/// bucket is broken into singletons, so permutation inputs stay
/// permutations (used by [Ali & Meilă 2012]).
pub fn unification_broken(raw: &[Ranking]) -> Option<Normalized> {
    unify_impl(raw, true)
}

/// Top-k retention (§6.1.3, Figure 1): keep whole buckets until at least
/// `k` elements are retained.
pub fn top_k(r: &Ranking, k: usize) -> Ranking {
    let mut buckets = Vec::new();
    let mut count = 0usize;
    for b in r.buckets() {
        if count >= k {
            break;
        }
        buckets.push(b.to_vec());
        count += b.len();
    }
    Ranking::from_buckets(buckets).expect("prefix of a valid ranking")
}

/// The §8 future-work intermediate process: drop elements appearing in
/// fewer than `min_rankings` inputs, then unify the rest. `min_rankings =
/// m` degenerates to projection's element set; `min_rankings = 1` to
/// unification.
pub fn threshold_k(raw: &[Ranking], min_rankings: usize) -> Option<Normalized> {
    let kept: Vec<Element> = union(raw)
        .into_iter()
        .filter(|&e| raw.iter().filter(|r| r.contains(e)).count() >= min_rankings)
        .collect();
    if kept.is_empty() {
        return None;
    }
    let rankings: Vec<Ranking> = raw
        .iter()
        .map(|r| {
            let to_dense = dense_index(&kept);
            let mut buckets = restrict(r, &kept).unwrap_or_default();
            let missing: Vec<Element> = kept
                .iter()
                .filter(|&&e| !r.contains(e))
                .map(|&e| to_dense(e))
                .collect();
            if !missing.is_empty() {
                buckets.push(missing);
            }
            Ranking::from_buckets(buckets).expect("threshold-k preserves validity")
        })
        .collect();
    Some(Normalized {
        dataset: Dataset::new(rankings).expect("same support by construction"),
        mapping: kept,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_ranking_labeled;
    use crate::Universe;

    /// The paper's Table 3 raw dataset d_r.
    fn table3() -> (Vec<Ranking>, Universe) {
        let mut u = Universe::new();
        let raw = ["[{A},{D},{B}]", "[{B},{E,A}]", "[{D},{A,B},{C}]"]
            .iter()
            .map(|l| parse_ranking_labeled(l, &mut u).unwrap())
            .collect();
        (raw, u)
    }

    fn show(norm: &Normalized, u: &Universe, i: usize) -> String {
        norm.denormalize(norm.dataset.ranking(i)).display_with(u)
    }

    #[test]
    fn table3_projection() {
        let (raw, u) = table3();
        let p = projection(&raw).unwrap();
        assert_eq!(show(&p, &u, 0), "[{A},{B}]");
        assert_eq!(show(&p, &u, 1), "[{B},{A}]");
        assert_eq!(show(&p, &u, 2), "[{A,B}]");
        assert_eq!(p.dataset.n(), 2);
    }

    #[test]
    fn table3_unification() {
        // Paper (up to the arbitrary order inside the unification bucket):
        // du = [{A},{D},{B},{C,E}], [{B},{E,A},{C,D}], [{D},{A,B},{C},{E}].
        // Interning order is A=0, D=1, B=2, E=3, C=4, so tied elements
        // render in id order (e.g. {E,C} instead of {C,E}).
        let (raw, u) = table3();
        let n = unification(&raw).unwrap();
        assert_eq!(show(&n, &u, 0), "[{A},{D},{B},{E,C}]");
        assert_eq!(show(&n, &u, 1), "[{B},{A,E},{D,C}]");
        assert_eq!(show(&n, &u, 2), "[{D},{A,B},{C},{E}]");
        assert_eq!(n.dataset.n(), 5);
    }

    #[test]
    fn table3_unification_broken() {
        // Paper's d_b: all rankings become permutations; the break order is
        // arbitrary (we use ascending id).
        let (raw, u) = table3();
        let n = unification_broken(&raw).unwrap();
        assert_eq!(show(&n, &u, 0), "[{A},{D},{B},{E},{C}]");
        assert_eq!(show(&n, &u, 1), "[{B},{A},{E},{D},{C}]");
        assert_eq!(show(&n, &u, 2), "[{D},{A},{B},{C},{E}]");
        assert!(n.dataset.all_permutations());
    }

    #[test]
    fn projection_empty_intersection_is_none() {
        let mut u = Universe::new();
        let raw: Vec<Ranking> = ["[{A}]", "[{B}]"]
            .iter()
            .map(|l| parse_ranking_labeled(l, &mut u).unwrap())
            .collect();
        assert!(projection(&raw).is_none());
        // Unification still works.
        assert_eq!(unification(&raw).unwrap().dataset.n(), 2);
    }

    #[test]
    fn top_k_keeps_whole_buckets() {
        // Figure 1: [{A},{B,C},{F},{D},{E}] with k=2 → [{A},{B,C}].
        let mut u = Universe::new();
        let r = parse_ranking_labeled("[{A},{B,C},{F},{D},{E}]", &mut u).unwrap();
        let t = top_k(&r, 2);
        assert_eq!(t.display_with(&u), "[{A},{B,C}]");
        assert_eq!(top_k(&r, 1).display_with(&u), "[{A}]");
        assert_eq!(top_k(&r, 100), r);
    }

    #[test]
    fn threshold_k_interpolates() {
        let (raw, _) = table3();
        // m = 3; k = 3 keeps elements in all rankings = projection's set,
        // k = 1 keeps everything = unification's set.
        let t3 = threshold_k(&raw, 3).unwrap();
        assert_eq!(t3.dataset.n(), projection(&raw).unwrap().dataset.n());
        let t1 = threshold_k(&raw, 1).unwrap();
        assert_eq!(t1.dataset.n(), unification(&raw).unwrap().dataset.n());
        // k = 2: A, B, D appear ≥ 2 times; C, E once each.
        let t2 = threshold_k(&raw, 2).unwrap();
        assert_eq!(t2.dataset.n(), 3);
    }

    #[test]
    fn denormalize_roundtrip() {
        let (raw, _) = table3();
        let n = unification(&raw).unwrap();
        let consensus = n.dataset.ranking(0).clone();
        let denorm = n.denormalize(&consensus);
        assert_eq!(denorm.n_elements(), consensus.n_elements());
        // Re-normalizing the denormalized ranking gives back the original.
        let back = denorm.map_elements(|e| Element(n.mapping.binary_search(&e).unwrap() as u32));
        assert_eq!(back.unwrap(), consensus);
    }
}
