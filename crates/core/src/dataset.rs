//! Datasets: sets of rankings over the same elements.
//!
//! The paper (§2.2) calls a set of input rankings a *dataset*. All the
//! aggregation algorithms require the rankings to range over exactly the
//! same elements — real data is brought into this form by the normalization
//! processes of §5.1 (projection / unification, implemented in the
//! `datasets` crate).
//!
//! For algorithmic efficiency the elements of a [`Dataset`] must be the
//! dense ids `0..n`; the `datasets` crate remaps arbitrary ids/labels.

use crate::element::Element;
use crate::ranking::Ranking;
use std::fmt;

/// A validated set of `m ≥ 1` rankings over the dense elements `0..n`.
#[derive(Clone, PartialEq, Eq)]
pub struct Dataset {
    rankings: Vec<Ranking>,
    n: usize,
}

/// Validation failure when assembling a [`Dataset`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// At least one ranking is required.
    Empty,
    /// Ranking `index` does not cover exactly the elements `0..n`.
    NotOverSameElements {
        /// Index of the offending ranking within the input.
        index: usize,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Empty => write!(f, "a dataset needs at least one ranking"),
            DatasetError::NotOverSameElements { index } => write!(
                f,
                "ranking {index} is not over the same dense element set 0..n \
                 (normalize the raw data first)"
            ),
        }
    }
}

impl std::error::Error for DatasetError {}

impl Dataset {
    /// Validate and build a dataset.
    ///
    /// Every ranking must cover exactly the elements `0..n`, where `n` is
    /// the element count of the first ranking.
    pub fn new(rankings: Vec<Ranking>) -> Result<Self, DatasetError> {
        let n = match rankings.first() {
            None => return Err(DatasetError::Empty),
            Some(r) => r.n_elements(),
        };
        for (i, r) in rankings.iter().enumerate() {
            let dense = r.n_elements() == n
                && r.positions().len() == n
                && (0..n as u32).all(|id| r.contains(Element(id)));
            if !dense {
                return Err(DatasetError::NotOverSameElements { index: i });
            }
        }
        Ok(Dataset { rankings, n })
    }

    /// Number of elements (`n`).
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of rankings (`m`).
    #[inline]
    pub fn m(&self) -> usize {
        self.rankings.len()
    }

    /// The `i`-th input ranking.
    #[inline]
    pub fn ranking(&self, i: usize) -> &Ranking {
        &self.rankings[i]
    }

    /// All input rankings.
    #[inline]
    pub fn rankings(&self) -> &[Ranking] {
        &self.rankings
    }

    /// `true` iff every input ranking is a permutation.
    pub fn all_permutations(&self) -> bool {
        self.rankings.iter().all(|r| r.is_permutation())
    }

    /// Check that `r` ranks exactly this dataset's elements — every
    /// algorithm's output must satisfy this.
    pub fn is_complete_ranking(&self, r: &Ranking) -> bool {
        r.n_elements() == self.n && (0..self.n as u32).all(|id| r.contains(Element(id)))
    }
}

impl fmt::Debug for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Dataset(n={}, m={})", self.n, self.m())?;
        for r in &self.rankings {
            writeln!(f, "  {r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_dataset() {
        // §2.2: R = {r1, r2, r3} over {A=0, B=1, C=2, D=3}.
        let data = Dataset::new(vec![
            Ranking::from_slices(&[&[0], &[3], &[1, 2]]).unwrap(),
            Ranking::from_slices(&[&[0], &[1, 2], &[3]]).unwrap(),
            Ranking::from_slices(&[&[3], &[0, 2], &[1]]).unwrap(),
        ])
        .unwrap();
        assert_eq!(data.n(), 4);
        assert_eq!(data.m(), 3);
        assert!(!data.all_permutations());
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(Dataset::new(vec![]).unwrap_err(), DatasetError::Empty);
    }

    #[test]
    fn mismatched_support_rejected() {
        let err = Dataset::new(vec![
            Ranking::from_slices(&[&[0], &[1]]).unwrap(),
            Ranking::from_slices(&[&[0], &[2]]).unwrap(),
        ])
        .unwrap_err();
        assert_eq!(err, DatasetError::NotOverSameElements { index: 1 });
    }

    #[test]
    fn sparse_ids_rejected() {
        // {0, 2} is not dense.
        let err = Dataset::new(vec![Ranking::from_slices(&[&[0], &[2]]).unwrap()]).unwrap_err();
        assert_eq!(err, DatasetError::NotOverSameElements { index: 0 });
    }

    #[test]
    fn size_mismatch_rejected() {
        let err = Dataset::new(vec![
            Ranking::from_slices(&[&[0], &[1]]).unwrap(),
            Ranking::from_slices(&[&[0], &[1], &[2]]).unwrap(),
        ])
        .unwrap_err();
        assert_eq!(err, DatasetError::NotOverSameElements { index: 1 });
    }

    #[test]
    fn completeness_check() {
        let data = Dataset::new(vec![Ranking::from_slices(&[&[0, 1, 2]]).unwrap()]).unwrap();
        assert!(data.is_complete_ranking(&Ranking::from_slices(&[&[2], &[0, 1]]).unwrap()));
        assert!(!data.is_complete_ranking(&Ranking::from_slices(&[&[0], &[1]]).unwrap()));
    }
}
