//! Distances between rankings (§2.1–2.2 of the paper).
//!
//! For a pair of elements `{x, y}` and a ranking `r`, the pair is in one of
//! three *states*: `x` before `y`, `y` before `x`, or tied. With unit costs
//! (the paper's choice) the generalized Kendall-τ distance `G(r, s)` is the
//! number of pairs whose state differs between `r` and `s` — a sum of
//! per-pair discrete metrics, hence itself a metric.
//!
//! [`pair_counts`] classifies all `C(n,2)` pairs in `O(n log n)` with a
//! Fenwick tree; every distance here is derived from those counts.

use crate::ranking::Ranking;

/// Classification of all element pairs of two rankings over the same
/// support.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PairCounts {
    /// Pairs strictly ordered the same way in both rankings.
    pub concordant: u64,
    /// Pairs strictly ordered in both rankings, in opposite directions.
    pub discordant: u64,
    /// Pairs tied in `r` only.
    pub r_tied_only: u64,
    /// Pairs tied in `s` only.
    pub s_tied_only: u64,
    /// Pairs tied in both rankings.
    pub both_tied: u64,
}

impl PairCounts {
    /// Total number of pairs classified (`C(n,2)`).
    pub fn total(&self) -> u64 {
        self.concordant + self.discordant + self.r_tied_only + self.s_tied_only + self.both_tied
    }

    /// The generalized Kendall-τ distance `G` with unit costs (§2.2):
    /// inversions plus pairs tied in exactly one ranking.
    pub fn generalized(&self) -> u64 {
        self.discordant + self.r_tied_only + self.s_tied_only
    }

    /// The classical Kendall-τ count: strict inversions only (ties ignored,
    /// as the paper notes happens when `D` is applied to rankings with
    /// ties).
    pub fn strict_inversions(&self) -> u64 {
        self.discordant
    }

    /// The paper's §2.2 extension point: some works ([10, 12, 21]) charge a
    /// different cost for inversions than for (un)tying. The paper fixes
    /// both to 1; this method exposes the parameterized distance.
    pub fn weighted(&self, inversion_cost: f64, tie_cost: f64) -> f64 {
        self.discordant as f64 * inversion_cost
            + (self.r_tied_only + self.s_tied_only) as f64 * tie_cost
    }
}

/// Minimal Fenwick (binary indexed) tree for prefix counts.
struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    fn new(size: usize) -> Self {
        Fenwick {
            tree: vec![0; size + 1],
        }
    }

    /// Add 1 at index `i` (0-based).
    fn add(&mut self, i: usize) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] += 1;
            i += i & i.wrapping_neg();
        }
    }

    /// Count of inserted values with index `<= i` (0-based); 0 if `i`
    /// underflows.
    fn prefix(&self, i: usize) -> u64 {
        let mut i = i + 1;
        let mut acc = 0u64;
        while i > 0 {
            acc += self.tree[i] as u64;
            i -= i & i.wrapping_neg();
        }
        acc
    }
}

fn check_same_support(r: &Ranking, s: &Ranking) {
    assert_eq!(
        r.n_elements(),
        s.n_elements(),
        "rankings must be over the same elements"
    );
    debug_assert!(
        r.elements().all(|e| s.contains(e)),
        "rankings must be over the same elements"
    );
}

/// Classify all pairs of two rankings over the same support in
/// `O(n log n)`.
///
/// # Panics
/// Panics if the rankings have different supports (full check only in debug
/// builds).
pub fn pair_counts(r: &Ranking, s: &Ranking) -> PairCounts {
    check_same_support(r, s);
    let n = r.n_elements();
    let mut items: Vec<(u32, u32)> = Vec::with_capacity(n);
    for e in r.elements() {
        let pr = r.bucket_of(e).expect("element of r") as u32;
        let ps = s.bucket_of(e).expect("same support") as u32;
        items.push((pr, ps));
    }
    items.sort_unstable();

    let mut c = PairCounts::default();
    let mut bit = Fenwick::new(s.n_buckets());
    let mut inserted = 0u64;
    let mut i = 0;
    while i < items.len() {
        // One run of equal r-positions.
        let mut j = i;
        while j < items.len() && items[j].0 == items[i].0 {
            j += 1;
        }
        // Cross pairs against all previously inserted (strictly smaller pr).
        for &(_, ps) in &items[i..j] {
            let le = bit.prefix(ps as usize);
            let lt = if ps == 0 {
                0
            } else {
                bit.prefix(ps as usize - 1)
            };
            let eq = le - lt;
            c.concordant += lt;
            c.s_tied_only += eq;
            c.discordant += inserted - le;
        }
        // Within-run pairs are tied in r; split them by s-position
        // (items[i..j] is sorted by ps).
        let g = (j - i) as u64;
        let mut run_same = 0u64;
        let mut k = i;
        while k < j {
            let mut l = k;
            while l < j && items[l].1 == items[k].1 {
                l += 1;
            }
            let cnt = (l - k) as u64;
            run_same += cnt * (cnt - 1) / 2;
            k = l;
        }
        c.both_tied += run_same;
        c.r_tied_only += g * (g - 1) / 2 - run_same;
        for &(_, ps) in &items[i..j] {
            bit.add(ps as usize);
        }
        inserted += g;
        i = j;
    }
    debug_assert_eq!(c.total(), (n as u64) * (n as u64 - 1) / 2);
    c
}

/// Reference `O(n²)` classification — used by tests and property checks.
pub fn pair_counts_naive(r: &Ranking, s: &Ranking) -> PairCounts {
    check_same_support(r, s);
    let elems: Vec<_> = r.support();
    let mut c = PairCounts::default();
    for i in 0..elems.len() {
        for j in i + 1..elems.len() {
            let (a, b) = (elems[i], elems[j]);
            let ra = r.bucket_of(a).unwrap();
            let rb = r.bucket_of(b).unwrap();
            let sa = s.bucket_of(a).unwrap();
            let sb = s.bucket_of(b).unwrap();
            match (ra == rb, sa == sb) {
                (true, true) => c.both_tied += 1,
                (true, false) => c.r_tied_only += 1,
                (false, true) => c.s_tied_only += 1,
                (false, false) => {
                    if (ra < rb) == (sa < sb) {
                        c.concordant += 1;
                    } else {
                        c.discordant += 1;
                    }
                }
            }
        }
    }
    c
}

/// Largest `n` routed to [`generalized_kendall_tau_chunked`] by
/// [`generalized_kendall_tau`]: below this the branchless `O(n²)` scan
/// beats the Fenwick tree's `O(n log n)` constant factor; above it the
/// tree wins and stays the default.
pub const CHUNKED_KENDALL_MAX_N: usize = 256;

/// The generalized Kendall-τ distance `G(r, s)` with unit costs (§2.2).
///
/// Dispatches to the chunked `O(n²)` pair scan for small complete
/// rankings (`n ≤` [`CHUNKED_KENDALL_MAX_N`]) and to the `O(n log n)`
/// Fenwick classification otherwise; both paths count the same pairs and
/// return identical values (pinned by `tests/kernel_lane_conformance.rs`).
pub fn generalized_kendall_tau(r: &Ranking, s: &Ranking) -> u64 {
    let pr = r.positions();
    if r.n_elements() <= CHUNKED_KENDALL_MAX_N
        && pr.iter().all(|&p| p != u32::MAX)
        && s.positions().iter().all(|&p| p != u32::MAX)
    {
        return generalized_kendall_tau_chunked(r, s);
    }
    pair_counts(r, s).generalized()
}

/// Chunked (8-wide unrolled, auto-vectorizable) `O(n²)` evaluation of the
/// generalized Kendall-τ distance for **complete** rankings: a pair
/// contributes 1 iff its (before/after/tied) state differs between `r`
/// and `s` — `(lt_r ⊕ lt_s) ∨ (eq_r ⊕ eq_s)` over the dense position
/// vectors, branchless, with independent lane accumulators.
///
/// # Panics
/// Panics if the rankings have different supports; both must be complete
/// (no absent elements — debug-asserted).
pub fn generalized_kendall_tau_chunked(r: &Ranking, s: &Ranking) -> u64 {
    check_same_support(r, s);
    let pr = r.positions();
    let ps = s.positions();
    debug_assert!(
        pr.iter().chain(ps).all(|&p| p != u32::MAX),
        "chunked Kendall requires complete rankings"
    );
    let n = pr.len();
    const LANES: usize = crate::pairs::LANES;
    let mut lanes = [0u64; LANES];
    let mut tail = 0u64;
    for a in 0..n {
        let (pra, psa) = (pr[a], ps[a]);
        let lo = a + 1;
        let mut rc = pr[lo..].chunks_exact(LANES);
        let mut sc = ps[lo..].chunks_exact(LANES);
        for (cr, cs) in (&mut rc).zip(&mut sc) {
            for l in 0..LANES {
                let lt_r = u32::from(pra < cr[l]);
                let eq_r = u32::from(pra == cr[l]);
                let lt_s = u32::from(psa < cs[l]);
                let eq_s = u32::from(psa == cs[l]);
                lanes[l] += ((lt_r ^ lt_s) | (eq_r ^ eq_s)) as u64;
            }
        }
        for (&prb, &psb) in rc.remainder().iter().zip(sc.remainder()) {
            let lt_r = u32::from(pra < prb);
            let eq_r = u32::from(pra == prb);
            let lt_s = u32::from(psa < psb);
            let eq_s = u32::from(psa == psb);
            tail += ((lt_r ^ lt_s) | (eq_r ^ eq_s)) as u64;
        }
    }
    lanes.iter().sum::<u64>() + tail
}

/// The classical Kendall-τ distance `D` (§2.1): number of strictly inverted
/// pairs. On rankings with ties this ignores all tie-related disagreement,
/// exactly as the paper describes for `[K]` algorithms.
pub fn kendall_tau(r: &Ranking, s: &Ranking) -> u64 {
    pair_counts(r, s).strict_inversions()
}

/// Parameterized generalized distance (extension; the paper fixes both
/// costs to 1).
pub fn weighted_generalized(r: &Ranking, s: &Ranking, inversion_cost: f64, tie_cost: f64) -> f64 {
    pair_counts(r, s).weighted(inversion_cost, tie_cost)
}

/// Spearman's footrule (§2.1 mentions it as the other classical metric),
/// extended to ties with Fagin-style bucket positions: the position of a
/// bucket is the average of the positions its elements would occupy, i.e.
/// `(#elements before) + (|B| + 1) / 2`.
pub fn spearman_footrule(r: &Ranking, s: &Ranking) -> f64 {
    check_same_support(r, s);
    let bucket_positions = |x: &Ranking| -> Vec<f64> {
        let mut out = Vec::with_capacity(x.n_buckets());
        let mut seen = 0usize;
        for b in x.buckets() {
            out.push(seen as f64 + (b.len() as f64 + 1.0) / 2.0);
            seen += b.len();
        }
        out
    };
    let pr = bucket_positions(r);
    let ps = bucket_positions(s);
    r.elements()
        .map(|e| {
            let a = pr[r.bucket_of(e).unwrap()];
            let b = ps[s.bucket_of(e).unwrap()];
            (a - b).abs()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_ranking;

    fn r(text: &str) -> Ranking {
        parse_ranking(text).unwrap()
    }

    #[test]
    fn paper_section_21_example() {
        // π1 = [A,D,B,C], π2 = [A,C,B,D], π3 = [D,A,C,B]; optimal consensus
        // π* = [A,D,C,B] with S(π*, P) = 4. (A=0, B=1, C=2, D=3.)
        let p1 = r("[{0},{3},{1},{2}]");
        let p2 = r("[{0},{2},{1},{3}]");
        let p3 = r("[{3},{0},{2},{1}]");
        let opt = r("[{0},{3},{2},{1}]");
        let total = kendall_tau(&opt, &p1) + kendall_tau(&opt, &p2) + kendall_tau(&opt, &p3);
        assert_eq!(total, 4);
    }

    #[test]
    fn paper_section_22_example() {
        // r1 = [{A},{D},{B,C}], r2 = [{A},{B,C},{D}], r3 = [{D},{A,C},{B}];
        // optimal consensus r* = [{A},{D},{B,C}] has K(r*, R) = 5.
        let r1 = r("[{0},{3},{1,2}]");
        let r2 = r("[{0},{1,2},{3}]");
        let r3 = r("[{3},{0,2},{1}]");
        let opt = r("[{0},{3},{1,2}]");
        let total = generalized_kendall_tau(&opt, &r1)
            + generalized_kendall_tau(&opt, &r2)
            + generalized_kendall_tau(&opt, &r3);
        assert_eq!(total, 5);
    }

    #[test]
    fn identical_rankings_have_distance_zero() {
        let a = r("[{0},{1,2},{3}]");
        assert_eq!(generalized_kendall_tau(&a, &a), 0);
        assert_eq!(kendall_tau(&a, &a), 0);
        assert_eq!(spearman_footrule(&a, &a), 0.0);
    }

    #[test]
    fn reversal_maximizes_kendall() {
        let a = r("[{0},{1},{2},{3}]");
        let b = a.reversed();
        assert_eq!(kendall_tau(&a, &b), 6); // C(4,2)
        assert_eq!(generalized_kendall_tau(&a, &b), 6);
    }

    #[test]
    fn single_bucket_vs_permutation() {
        // All pairs are tied in one ranking, strict in the other: G = C(4,2).
        let a = r("[{0,1,2,3}]");
        let b = r("[{0},{1},{2},{3}]");
        assert_eq!(generalized_kendall_tau(&a, &b), 6);
        // ...but the classical distance sees no inversion at all — the
        // degenerate behaviour §2.2 warns about.
        assert_eq!(kendall_tau(&a, &b), 0);
    }

    #[test]
    fn counts_decompose() {
        let a = r("[{0,1},{2},{3,4}]");
        let b = r("[{2},{0},{1},{3,4}]");
        let c = pair_counts(&a, &b);
        assert_eq!(c, pair_counts_naive(&a, &b));
        assert_eq!(c.total(), 10);
        assert_eq!(c.both_tied, 1); // {3,4}
        assert_eq!(c.r_tied_only, 1); // {0,1}
                                      // {0,2} and {1,2} are inverted.
        assert_eq!(c.discordant, 2);
        assert_eq!(c.s_tied_only, 0);
        assert_eq!(c.concordant, 6);
        assert_eq!(c.generalized(), (2 + 1));
    }

    #[test]
    fn weighted_reduces_to_unit() {
        let a = r("[{0,1},{2}]");
        let b = r("[{2},{0},{1}]");
        let g = generalized_kendall_tau(&a, &b);
        assert_eq!(weighted_generalized(&a, &b, 1.0, 1.0), g as f64);
        // Zero tie cost = classical distance.
        assert_eq!(
            weighted_generalized(&a, &b, 1.0, 0.0),
            kendall_tau(&a, &b) as f64
        );
    }

    #[test]
    fn footrule_permutations() {
        let a = r("[{0},{1},{2}]");
        let b = r("[{2},{1},{0}]");
        // positions 1,2,3 vs 3,2,1 → |1-3| + |2-2| + |3-1| = 4.
        assert_eq!(spearman_footrule(&a, &b), 4.0);
    }

    #[test]
    fn footrule_bucket_positions() {
        let a = r("[{0,1}]"); // both at position 1.5
        let b = r("[{0},{1}]"); // positions 1 and 2
        assert_eq!(spearman_footrule(&a, &b), 1.0);
    }

    #[test]
    fn diaconis_graham_inequality() {
        // K ≤ F ≤ 2K for permutations (Diaconis–Graham).
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let mut ids: Vec<crate::Element> = (0..12).map(crate::Element).collect();
            ids.shuffle(&mut rng);
            let a = Ranking::permutation(&ids).unwrap();
            ids.shuffle(&mut rng);
            let b = Ranking::permutation(&ids).unwrap();
            let k = kendall_tau(&a, &b) as f64;
            let f = spearman_footrule(&a, &b);
            assert!(k <= f + 1e-9 && f <= 2.0 * k + 1e-9, "K={k} F={f}");
        }
    }

    #[test]
    #[should_panic(expected = "same elements")]
    fn different_sizes_panic() {
        let a = r("[{0},{1}]");
        let b = r("[{0},{1},{2}]");
        let _ = pair_counts(&a, &b);
    }
}
