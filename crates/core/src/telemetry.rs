//! Fleet-wide telemetry: counters, gauges, log₂ histograms and span
//! timers behind a [`MetricsRegistry`], plus the Prometheus text
//! exposition renderer/parser shared by `GET /metrics`, the router's
//! fleet scrape and `rawt top` (DESIGN.md §15).
//!
//! The subsystem is dependency-free by the workspace's offline rule and
//! lock-cheap by construction: every *observation* (a counter bump, a
//! histogram record, a span drop) is a handful of relaxed atomic adds on
//! a pre-resolved handle — the registry mutex is taken only to *resolve*
//! a handle (once per job or per endpoint, never per checkpoint) and to
//! render a scrape.
//!
//! Histograms are fixed-shape log₂ histograms over microseconds: bucket
//! `i` counts observations `v ≤ 2^i µs`, the last bucket is `+Inf`.
//! A fixed shape makes snapshots mergeable by plain element-wise
//! addition (merge is associative and commutative, see
//! `tests/telemetry_api.rs`), which is what lets the router add worker
//! histograms together and lets quantiles be estimated after the fact.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Number of histogram buckets: finite upper bounds `2^0 .. 2^38` µs
/// (≈ 76 hours) plus a `+Inf` overflow bucket.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A monotonically increasing counter (relaxed atomic).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh zero counter (outside a registry; mostly for tests).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous value that can move both ways (relaxed atomic).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A fresh zero gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtract one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// The bucket index for an observation of `v` microseconds: the smallest
/// `i` with `v ≤ 2^i`, clamped to the overflow bucket.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        ((64 - (v - 1).leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// The finite upper bound of bucket `i` in seconds (`2^i` µs); the last
/// bucket has no finite bound.
pub fn bucket_bound_secs(i: usize) -> Option<f64> {
    (i < HISTOGRAM_BUCKETS - 1).then(|| (1u64 << i) as f64 / 1e6)
}

/// A fixed-shape log₂ histogram over microsecond observations.
///
/// Recording is three relaxed atomic adds; there is no lock anywhere on
/// the observation path.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum_micros: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_micros: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation of `micros` microseconds.
    #[inline]
    pub fn record_micros(&self, micros: u64) {
        self.buckets[bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one observation of a [`Duration`].
    #[inline]
    pub fn record(&self, d: Duration) {
        self.record_micros(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A consistent-enough copy for rendering and merging (relaxed reads;
    /// a scrape racing a record may be off by the in-flight observation,
    /// which Prometheus semantics permit).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum_micros: self.sum_micros.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }

    /// Time a region: the returned guard records the elapsed time into
    /// this histogram when dropped.
    pub fn span(self: &Arc<Self>) -> Span {
        Span {
            start: Instant::now(),
            histogram: Arc::clone(self),
        }
    }
}

/// A point-in-time copy of a [`Histogram`]: plain numbers, mergeable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) observation counts.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Sum of all observations, microseconds.
    pub sum_micros: u64,
    /// Total observation count.
    pub count: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; HISTOGRAM_BUCKETS],
            sum_micros: 0,
            count: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Element-wise merge (associative and commutative: fixed shape means
    /// merging is plain addition).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.sum_micros += other.sum_micros;
        self.count += other.count;
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) in seconds, estimated as the upper
    /// bound of the bucket holding the target rank — a ≤ 2× relative
    /// overestimate by the log₂ spacing. `None` when empty.
    pub fn quantile_secs(&self, q: f64) -> Option<f64> {
        quantile_from_buckets(
            (0..HISTOGRAM_BUCKETS).map(|i| {
                (
                    bucket_bound_secs(i).unwrap_or(f64::INFINITY),
                    self.buckets[..=i].iter().sum::<u64>() as f64,
                )
            }),
            q,
        )
    }
}

/// The `q`-quantile from `(upper_bound, cumulative_count)` pairs in
/// ascending bound order — the shape `_bucket{le=…}` samples arrive in,
/// so `rawt top` can reuse this on parsed scrapes. `None` when empty.
pub fn quantile_from_buckets(
    cumulative: impl IntoIterator<Item = (f64, f64)>,
    q: f64,
) -> Option<f64> {
    let pairs: Vec<(f64, f64)> = cumulative.into_iter().collect();
    let total = pairs.last().map_or(0.0, |&(_, c)| c);
    if total <= 0.0 {
        return None;
    }
    let target = (q.clamp(0.0, 1.0) * total).ceil().max(1.0);
    let mut answer = f64::INFINITY;
    for &(bound, cum) in &pairs {
        if cum >= target {
            answer = bound;
            break;
        }
    }
    // An observation in the +Inf bucket has no finite bound; report the
    // largest finite one so dashboards stay plottable.
    if answer.is_infinite() {
        answer = pairs
            .iter()
            .rev()
            .find(|(b, _)| b.is_finite())
            .map_or(0.0, |&(b, _)| b);
    }
    Some(answer)
}

/// A drop-timed region: created by [`Histogram::span`], records the
/// elapsed wall time into the histogram on drop.
#[derive(Debug)]
pub struct Span {
    start: Instant,
    histogram: Arc<Histogram>,
}

impl Span {
    /// Elapsed time so far (the drop records this same clock).
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.histogram.record(self.start.elapsed());
    }
}

/// What a registered metric family is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing.
    Counter,
    /// Instantaneous, both ways.
    Gauge,
    /// Log₂ histogram.
    Histogram,
    /// Parsed from an exposition with no `# TYPE` line.
    Untyped,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
            MetricKind::Untyped => "untyped",
        }
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct FamilySlot {
    help: String,
    kind: MetricKind,
    // Keyed by the sorted label set, so `{algo="a",outcome="b"}` and
    // `{outcome="b",algo="a"}` resolve to the same series.
    series: BTreeMap<Vec<(String, String)>, Metric>,
}

/// The process- or engine-scoped home of every metric family.
///
/// Handle resolution (`counter` / `gauge` / `histogram`) takes the
/// registry mutex; the returned `Arc` handles are then observation-path
/// objects that never lock. Resolve once per job or per endpoint, not
/// per event.
#[derive(Default)]
pub struct MetricsRegistry {
    families: Mutex<BTreeMap<String, FamilySlot>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry").finish_non_exhaustive()
    }
}

fn label_key(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut key: Vec<(String, String)> = labels
        .iter()
        .map(|&(k, v)| (k.to_owned(), v.to_owned()))
        .collect();
    key.sort();
    key
}

impl MetricsRegistry {
    /// A fresh empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn resolve<T, F: FnOnce() -> Metric, G: Fn(&Metric) -> Option<T>>(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        make: F,
        cast: G,
    ) -> T {
        let mut families = self.families.lock().expect("metrics registry poisoned");
        let slot = families
            .entry(name.to_owned())
            .or_insert_with(|| FamilySlot {
                help: help.to_owned(),
                kind,
                series: BTreeMap::new(),
            });
        assert!(
            slot.kind == kind,
            "metric {name} registered as {} and as {}",
            slot.kind.as_str(),
            kind.as_str()
        );
        let metric = slot.series.entry(label_key(labels)).or_insert_with(make);
        cast(metric).expect("kind checked above")
    }

    /// The counter `name{labels}`, created (with `help`) on first use.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.resolve(
            name,
            help,
            MetricKind::Counter,
            labels,
            || Metric::Counter(Arc::new(Counter::new())),
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// The gauge `name{labels}`, created (with `help`) on first use.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.resolve(
            name,
            help,
            MetricKind::Gauge,
            labels,
            || Metric::Gauge(Arc::new(Gauge::new())),
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// The histogram `name{labels}`, created (with `help`) on first use.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.resolve(
            name,
            help,
            MetricKind::Histogram,
            labels,
            || Metric::Histogram(Arc::new(Histogram::new())),
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// The current value of counter `name{labels}`, or `None` if that
    /// series was never touched (reads do not create series).
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let families = self.families.lock().expect("metrics registry poisoned");
        match families.get(name)?.series.get(&label_key(labels))? {
            Metric::Counter(c) => Some(c.get()),
            _ => None,
        }
    }

    /// The sum of every series of counter family `name` (all label sets).
    pub fn counter_total(&self, name: &str) -> u64 {
        let families = self.families.lock().expect("metrics registry poisoned");
        families.get(name).map_or(0, |slot| {
            slot.series
                .values()
                .map(|m| match m {
                    Metric::Counter(c) => c.get(),
                    _ => 0,
                })
                .sum()
        })
    }

    /// The current value of gauge `name{labels}`, if it exists.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        let families = self.families.lock().expect("metrics registry poisoned");
        match families.get(name)?.series.get(&label_key(labels))? {
            Metric::Gauge(g) => Some(g.get()),
            _ => None,
        }
    }

    /// Snapshot of histogram `name{labels}`, if it exists.
    pub fn histogram_snapshot(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<HistogramSnapshot> {
        let families = self.families.lock().expect("metrics registry poisoned");
        match families.get(name)?.series.get(&label_key(labels))? {
            Metric::Histogram(h) => Some(h.snapshot()),
            _ => None,
        }
    }

    /// Render every family in Prometheus text exposition format
    /// (`# HELP` / `# TYPE` headers, `_bucket`/`_sum`/`_count` expansion
    /// for histograms, families in sorted-name order).
    pub fn render_prometheus(&self) -> String {
        let families = self.families.lock().expect("metrics registry poisoned");
        let mut parsed: Vec<Family> = Vec::new();
        for (name, slot) in families.iter() {
            let mut family = Family {
                name: name.clone(),
                help: slot.help.clone(),
                kind: slot.kind,
                samples: Vec::new(),
            };
            for (labels, metric) in &slot.series {
                let labels: Vec<(String, String)> = labels.clone();
                match metric {
                    Metric::Counter(c) => family.samples.push(Sample {
                        name: name.clone(),
                        labels,
                        value: c.get() as f64,
                    }),
                    Metric::Gauge(g) => family.samples.push(Sample {
                        name: name.clone(),
                        labels,
                        value: g.get() as f64,
                    }),
                    Metric::Histogram(h) => {
                        push_histogram_samples(&mut family.samples, name, &labels, &h.snapshot())
                    }
                }
            }
            parsed.push(family);
        }
        render_families(&parsed)
    }
}

/// Expand a histogram snapshot into its `_bucket`/`_sum`/`_count`
/// exposition samples (cumulative buckets, bounds in seconds).
fn push_histogram_samples(
    out: &mut Vec<Sample>,
    name: &str,
    labels: &[(String, String)],
    snap: &HistogramSnapshot,
) {
    let mut cumulative = 0u64;
    for (i, &n) in snap.buckets.iter().enumerate() {
        cumulative += n;
        let le = bucket_bound_secs(i).map_or("+Inf".to_owned(), format_f64);
        let mut bucket_labels = labels.to_vec();
        bucket_labels.push(("le".to_owned(), le));
        out.push(Sample {
            name: format!("{name}_bucket"),
            labels: bucket_labels,
            value: cumulative as f64,
        });
    }
    out.push(Sample {
        name: format!("{name}_sum"),
        labels: labels.to_vec(),
        value: snap.sum_micros as f64 / 1e6,
    });
    out.push(Sample {
        name: format!("{name}_count"),
        labels: labels.to_vec(),
        value: snap.count as f64,
    });
}

/// Render a float the exposition way: integral values without a point,
/// everything else via the shortest roundtrip `{}` form.
fn format_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

// ------------------------------------------------------- text exposition

/// One metric family of an exposition: metadata plus its samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Family {
    /// Family (base) name, without `_bucket`/`_sum`/`_count` suffixes.
    pub name: String,
    /// `# HELP` text (may be empty when parsed from a bare exposition).
    pub help: String,
    /// `# TYPE` of the family.
    pub kind: MetricKind,
    /// The samples, in exposition order.
    pub samples: Vec<Sample>,
}

/// One exposition sample line: `name{labels} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Full sample name (histogram samples keep their suffix).
    pub name: String,
    /// Label pairs in line order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('\n', "\\n")
        .replace('"', "\\\"")
}

fn unescape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Render families back to exposition text — the inverse of
/// [`parse_exposition`], also used by the router to emit one merged
/// fleet scrape with a single `# TYPE` header per family.
pub fn render_families(families: &[Family]) -> String {
    let mut out = String::new();
    for family in families {
        if !family.help.is_empty() {
            let _ = writeln!(out, "# HELP {} {}", family.name, family.help);
        }
        if family.kind != MetricKind::Untyped {
            let _ = writeln!(out, "# TYPE {} {}", family.name, family.kind.as_str());
        }
        for sample in &family.samples {
            out.push_str(&sample.name);
            if !sample.labels.is_empty() {
                out.push('{');
                for (i, (k, v)) in sample.labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
                }
                out.push('}');
            }
            let _ = writeln!(out, " {}", format_f64(sample.value));
        }
    }
    out
}

/// The family a sample line belongs to: its own name, unless it is a
/// histogram expansion suffix of a declared histogram family.
fn family_of<'a>(name: &'a str, histograms: &BTreeMap<String, usize>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if histograms.contains_key(base) {
                return base;
            }
        }
    }
    name
}

/// Parse Prometheus text exposition into families. Tolerant by design
/// (it is pointed at our own output and at worker scrapes): unknown
/// comment lines are skipped, malformed sample lines are dropped.
pub fn parse_exposition(text: &str) -> Vec<Family> {
    let mut families: Vec<Family> = Vec::new();
    let mut index: BTreeMap<String, usize> = BTreeMap::new();
    let mut histograms: BTreeMap<String, usize> = BTreeMap::new();
    let slot =
        |families: &mut Vec<Family>, index: &mut BTreeMap<String, usize>, name: &str| -> usize {
            *index.entry(name.to_owned()).or_insert_with(|| {
                families.push(Family {
                    name: name.to_owned(),
                    help: String::new(),
                    kind: MetricKind::Untyped,
                    samples: Vec::new(),
                });
                families.len() - 1
            })
        };
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            if let Some((name, help)) = rest.split_once(' ') {
                let i = slot(&mut families, &mut index, name);
                families[i].help = help.to_owned();
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            if let Some((name, kind)) = rest.split_once(' ') {
                let i = slot(&mut families, &mut index, name);
                families[i].kind = match kind.trim() {
                    "counter" => MetricKind::Counter,
                    "gauge" => MetricKind::Gauge,
                    "histogram" => {
                        histograms.insert(name.to_owned(), i);
                        MetricKind::Histogram
                    }
                    _ => MetricKind::Untyped,
                };
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let Some(sample) = parse_sample_line(line) else {
            continue;
        };
        let base = family_of(&sample.name, &histograms).to_owned();
        let i = slot(&mut families, &mut index, &base);
        families[i].samples.push(sample);
    }
    families
}

/// Parse one `name{k="v",…} value` line.
fn parse_sample_line(line: &str) -> Option<Sample> {
    if let Some(brace) = line.find('{') {
        let close = line.rfind('}')?;
        Some(Sample {
            name: line[..brace].trim().to_owned(),
            labels: parse_labels(&line[brace + 1..close])?,
            value: line[close + 1..].split_whitespace().next()?.parse().ok()?,
        })
    } else {
        let mut parts = line.split_whitespace();
        Some(Sample {
            name: parts.next()?.to_owned(),
            labels: Vec::new(),
            value: parts.next()?.parse().ok()?,
        })
    }
}

fn parse_labels(text: &str) -> Option<Vec<(String, String)>> {
    let mut labels = Vec::new();
    let mut rest = text.trim();
    while !rest.is_empty() {
        let eq = rest.find('=')?;
        let key = rest[..eq].trim().to_owned();
        let after = rest[eq + 1..].trim_start();
        let after = after.strip_prefix('"')?;
        // Find the closing quote, skipping escaped ones.
        let mut end = None;
        let mut escaped = false;
        for (i, c) in after.char_indices() {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            }
        }
        let end = end?;
        labels.push((key, unescape_label_value(&after[..end])));
        rest = after[end + 1..]
            .trim_start()
            .trim_start_matches(',')
            .trim_start();
    }
    Some(labels)
}

/// Merge expositions into one family list: same-name families pool their
/// samples under the first part's metadata. The router uses this to fold
/// worker scrapes (already re-labelled with `worker="addr"`) in with its
/// own registry so one scrape sees the fleet.
pub fn merge_families(parts: Vec<Vec<Family>>) -> Vec<Family> {
    let mut merged: Vec<Family> = Vec::new();
    let mut index: BTreeMap<String, usize> = BTreeMap::new();
    for part in parts {
        for family in part {
            match index.get(&family.name) {
                Some(&i) => {
                    merged[i].samples.extend(family.samples);
                    if merged[i].kind == MetricKind::Untyped {
                        merged[i].kind = family.kind;
                    }
                    if merged[i].help.is_empty() {
                        merged[i].help = family.help;
                    }
                }
                None => {
                    index.insert(family.name.clone(), merged.len());
                    merged.push(family);
                }
            }
        }
    }
    merged
}

/// Add a label to every sample of every family — the router's
/// re-namespacing step, tagging each worker's scrape with
/// `worker="addr"` before the fleet merge.
pub fn add_label(families: &mut [Family], key: &str, value: &str) {
    for family in families {
        for sample in &mut family.samples {
            sample.labels.push((key.to_owned(), value.to_owned()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_smallest_covering_power_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 20), 20);
        assert_eq!(bucket_index((1 << 20) + 1), 21);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = Histogram::new();
        h.record_micros(1);
        h.record_micros(3);
        h.record_micros(1000);
        let snap = h.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.sum_micros, 1004);
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[2], 1);
        assert_eq!(snap.buckets[10], 1);
    }

    #[test]
    fn span_records_on_drop() {
        let h = Arc::new(Histogram::new());
        {
            let _span = h.span();
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn quantiles_come_from_bucket_bounds() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record_micros(100); // bucket le = 128 µs
        }
        h.record_micros(1_000_000); // bucket le = 2^20 µs
        let snap = h.snapshot();
        assert_eq!(snap.quantile_secs(0.5), Some(128.0 / 1e6));
        assert_eq!(snap.quantile_secs(1.0), Some((1u64 << 20) as f64 / 1e6));
        assert_eq!(HistogramSnapshot::default().quantile_secs(0.5), None);
    }

    #[test]
    fn registry_resolves_series_by_sorted_labels() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x_total", "help", &[("a", "1"), ("b", "2")]);
        let b = reg.counter("x_total", "help", &[("b", "2"), ("a", "1")]);
        a.inc();
        b.add(2);
        assert_eq!(
            reg.counter_value("x_total", &[("a", "1"), ("b", "2")]),
            Some(3)
        );
        assert_eq!(reg.counter_total("x_total"), 3);
    }

    #[test]
    fn exposition_roundtrips_through_the_parser() {
        let reg = MetricsRegistry::new();
        reg.counter(
            "rawt_jobs_finished_total",
            "Finished jobs.",
            &[("algo", "BioConsert")],
        )
        .add(7);
        reg.gauge("rawt_queue_depth", "Queue depth.", &[]).set(3);
        let h = reg.histogram(
            "rawt_solve_seconds",
            "Solve latency.",
            &[("algo", "KwikSort")],
        );
        h.record(Duration::from_millis(5));
        h.record(Duration::from_millis(80));
        let text = reg.render_prometheus();
        let families = parse_exposition(&text);
        assert_eq!(
            render_families(&families),
            text,
            "parse→render is the identity"
        );
        let jobs = families
            .iter()
            .find(|f| f.name == "rawt_jobs_finished_total")
            .expect("family present");
        assert_eq!(jobs.kind, MetricKind::Counter);
        assert_eq!(jobs.samples[0].value, 7.0);
        assert_eq!(jobs.samples[0].label("algo"), Some("BioConsert"));
        let solve = families
            .iter()
            .find(|f| f.name == "rawt_solve_seconds")
            .expect("histogram family");
        assert_eq!(solve.kind, MetricKind::Histogram);
        let count = solve
            .samples
            .iter()
            .find(|s| s.name == "rawt_solve_seconds_count")
            .expect("_count sample");
        assert_eq!(count.value, 2.0);
        let inf = solve
            .samples
            .iter()
            .find(|s| s.name == "rawt_solve_seconds_bucket" && s.label("le") == Some("+Inf"))
            .expect("+Inf bucket");
        assert_eq!(inf.value, 2.0);
    }

    #[test]
    fn label_values_escape_and_unescape() {
        let reg = MetricsRegistry::new();
        reg.counter("x_total", "h", &[("path", "a\"b\\c\nd")]).inc();
        let families = parse_exposition(&reg.render_prometheus());
        assert_eq!(families[0].samples[0].label("path"), Some("a\"b\\c\nd"));
    }

    #[test]
    fn merge_pools_samples_and_add_label_renames() {
        let reg_a = MetricsRegistry::new();
        reg_a.counter("jobs_total", "Jobs.", &[]).add(2);
        let reg_b = MetricsRegistry::new();
        reg_b.counter("jobs_total", "Jobs.", &[]).add(3);
        let mut a = parse_exposition(&reg_a.render_prometheus());
        let mut b = parse_exposition(&reg_b.render_prometheus());
        add_label(&mut a, "worker", "w0");
        add_label(&mut b, "worker", "w1");
        let merged = merge_families(vec![a, b]);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].samples.len(), 2);
        let text = render_families(&merged);
        assert_eq!(text.matches("# TYPE jobs_total counter").count(), 1);
        let parsed = parse_exposition(&text);
        let by_worker: Vec<_> = parsed[0]
            .samples
            .iter()
            .map(|s| (s.label("worker").unwrap().to_owned(), s.value))
            .collect();
        assert_eq!(
            by_worker,
            vec![("w0".to_owned(), 2.0), ("w1".to_owned(), 3.0)]
        );
    }
}
