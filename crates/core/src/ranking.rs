//! Rankings with ties (bucket orders).
//!
//! Following §2.2 of the paper, a *ranking with ties* over a set of elements
//! is an ordered sequence of non-empty, disjoint buckets `B₁, …, B_k`;
//! elements inside a bucket are tied, and `x ≺ y` iff `x`'s bucket comes
//! before `y`'s. A permutation is the special case where every bucket has
//! size one.

use crate::element::Element;
use crate::Universe;
use std::fmt;

/// Sentinel in the position table for "element not in this ranking".
const ABSENT: u32 = u32::MAX;

/// A ranking with ties over an arbitrary subset of a universe.
///
/// Internal invariants (enforced by all constructors):
/// * no bucket is empty;
/// * buckets are pairwise disjoint;
/// * elements inside a bucket are stored sorted (canonical form, so `Eq` and
///   `Hash` compare rankings structurally).
#[derive(Clone)]
pub struct Ranking {
    buckets: Vec<Vec<Element>>,
    /// `pos[id]` = bucket index of element `id`, or `ABSENT`.
    pos: Vec<u32>,
    n_elements: usize,
}

/// Constructor-time validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RankingError {
    /// A bucket with no elements was supplied.
    EmptyBucket {
        /// Index of the empty bucket.
        bucket: usize,
    },
    /// The same element appeared twice (in one bucket or across buckets).
    DuplicateElement {
        /// The repeated element.
        element: Element,
    },
}

impl fmt::Display for RankingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RankingError::EmptyBucket { bucket } => write!(f, "bucket {bucket} is empty"),
            RankingError::DuplicateElement { element } => {
                write!(f, "element {element} appears more than once")
            }
        }
    }
}

impl std::error::Error for RankingError {}

impl Ranking {
    /// Build a ranking from buckets of elements.
    pub fn from_buckets(buckets: Vec<Vec<Element>>) -> Result<Self, RankingError> {
        let mut max_id = 0u32;
        let mut n_elements = 0usize;
        for (bi, b) in buckets.iter().enumerate() {
            if b.is_empty() {
                return Err(RankingError::EmptyBucket { bucket: bi });
            }
            n_elements += b.len();
            for &e in b {
                max_id = max_id.max(e.0);
            }
        }
        let mut pos = vec![
            ABSENT;
            if n_elements == 0 {
                0
            } else {
                max_id as usize + 1
            }
        ];
        let mut buckets = buckets;
        for (bi, b) in buckets.iter_mut().enumerate() {
            b.sort_unstable();
            for &e in b.iter() {
                if pos[e.index()] != ABSENT {
                    return Err(RankingError::DuplicateElement { element: e });
                }
                pos[e.index()] = bi as u32;
            }
        }
        Ok(Ranking {
            buckets,
            pos,
            n_elements,
        })
    }

    /// Convenience constructor from id slices:
    /// `Ranking::from_slices(&[&[0], &[1, 2]])` = `[{0}, {1, 2}]`.
    pub fn from_slices(buckets: &[&[u32]]) -> Result<Self, RankingError> {
        Ranking::from_buckets(
            buckets
                .iter()
                .map(|b| b.iter().map(|&id| Element(id)).collect())
                .collect(),
        )
    }

    /// A permutation (all singleton buckets) in the given order.
    pub fn permutation(order: &[Element]) -> Result<Self, RankingError> {
        Ranking::from_buckets(order.iter().map(|&e| vec![e]).collect())
    }

    /// All elements tied in one bucket (the degenerate "everything equal"
    /// ranking that motivates the generalized distance, §2.2).
    pub fn single_bucket(elements: Vec<Element>) -> Result<Self, RankingError> {
        Ranking::from_buckets(vec![elements])
    }

    /// Build from a per-element bucket index table: `indices[id]` is the
    /// bucket of element `id`. Bucket indices must cover `0..k` with every
    /// index used at least once.
    pub fn from_bucket_indices(indices: &[u32]) -> Result<Self, RankingError> {
        let k = indices.iter().map(|&b| b + 1).max().unwrap_or(0) as usize;
        let mut buckets: Vec<Vec<Element>> = vec![Vec::new(); k];
        for (id, &b) in indices.iter().enumerate() {
            buckets[b as usize].push(Element(id as u32));
        }
        Ranking::from_buckets(buckets)
    }

    /// Number of elements ranked.
    #[inline]
    pub fn n_elements(&self) -> usize {
        self.n_elements
    }

    /// Number of buckets.
    #[inline]
    pub fn n_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// The `i`-th bucket (elements sorted by id).
    #[inline]
    pub fn bucket(&self, i: usize) -> &[Element] {
        &self.buckets[i]
    }

    /// Iterate buckets in rank order.
    pub fn buckets(&self) -> impl Iterator<Item = &[Element]> {
        self.buckets.iter().map(|b| b.as_slice())
    }

    /// The bucket index of `e`, or `None` if `e` is not ranked.
    #[inline]
    pub fn bucket_of(&self, e: Element) -> Option<usize> {
        match self.pos.get(e.index()) {
            Some(&p) if p != ABSENT => Some(p as usize),
            _ => None,
        }
    }

    /// `true` iff `e` is ranked.
    #[inline]
    pub fn contains(&self, e: Element) -> bool {
        self.bucket_of(e).is_some()
    }

    /// Raw position table: `positions()[id]` is the bucket index of element
    /// `id`, or `u32::MAX` when the element is absent. The table's length is
    /// only `max_id + 1` — index with care.
    #[inline]
    pub fn positions(&self) -> &[u32] {
        &self.pos
    }

    /// Iterate all ranked elements, best bucket first (id order inside
    /// buckets).
    pub fn elements(&self) -> impl Iterator<Item = Element> + '_ {
        self.buckets.iter().flatten().copied()
    }

    /// Sorted list of ranked elements.
    pub fn support(&self) -> Vec<Element> {
        let mut v: Vec<Element> = self.elements().collect();
        v.sort_unstable();
        v
    }

    /// `true` iff every bucket has exactly one element.
    pub fn is_permutation(&self) -> bool {
        self.buckets.iter().all(|b| b.len() == 1)
    }

    /// Largest bucket size (1 for a permutation).
    pub fn max_bucket_size(&self) -> usize {
        self.buckets.iter().map(|b| b.len()).max().unwrap_or(0)
    }

    /// The ranking with bucket order reversed.
    pub fn reversed(&self) -> Ranking {
        let buckets: Vec<Vec<Element>> = self.buckets.iter().rev().cloned().collect();
        Ranking::from_buckets(buckets).expect("reversal preserves validity")
    }

    /// Apply `f` to every element id (e.g. to remap into a dense universe).
    ///
    /// # Panics
    /// Panics (returns the constructor error) if `f` maps two elements to
    /// the same id.
    pub fn map_elements(
        &self,
        mut f: impl FnMut(Element) -> Element,
    ) -> Result<Ranking, RankingError> {
        Ranking::from_buckets(
            self.buckets
                .iter()
                .map(|b| b.iter().map(|&e| f(e)).collect())
                .collect(),
        )
    }

    /// Render with labels from `universe`, e.g. `[{A},{B,C}]`.
    pub fn display_with(&self, universe: &Universe) -> String {
        let mut s = String::from("[");
        for (i, b) in self.buckets.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('{');
            for (j, &e) in b.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(universe.name(e));
            }
            s.push('}');
        }
        s.push(']');
        s
    }
}

impl PartialEq for Ranking {
    fn eq(&self, other: &Self) -> bool {
        self.buckets == other.buckets
    }
}

impl Eq for Ranking {}

impl std::hash::Hash for Ranking {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.buckets.hash(state);
    }
}

impl fmt::Debug for Ranking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Ranking {
    /// Numeric-id rendering, e.g. `[{0},{1,2}]`. Parse back with
    /// [`crate::parse::parse_ranking`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, b) in self.buckets.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{{")?;
            for (j, e) in b.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{e}")?;
            }
            write!(f, "}}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_slices_and_accessors() {
        let r = Ranking::from_slices(&[&[0], &[2, 1], &[3]]).unwrap();
        assert_eq!(r.n_elements(), 4);
        assert_eq!(r.n_buckets(), 3);
        assert_eq!(r.bucket(1), &[Element(1), Element(2)]); // canonical order
        assert_eq!(r.bucket_of(Element(3)), Some(2));
        assert_eq!(r.bucket_of(Element(9)), None);
        assert!(r.contains(Element(0)));
        assert!(!r.is_permutation());
        assert_eq!(r.max_bucket_size(), 2);
    }

    #[test]
    fn empty_bucket_rejected() {
        let err = Ranking::from_slices(&[&[0], &[]]).unwrap_err();
        assert_eq!(err, RankingError::EmptyBucket { bucket: 1 });
    }

    #[test]
    fn duplicate_rejected_within_and_across_buckets() {
        assert_eq!(
            Ranking::from_slices(&[&[0, 0]]).unwrap_err(),
            RankingError::DuplicateElement {
                element: Element(0)
            }
        );
        assert_eq!(
            Ranking::from_slices(&[&[0], &[1, 0]]).unwrap_err(),
            RankingError::DuplicateElement {
                element: Element(0)
            }
        );
    }

    #[test]
    fn equality_is_canonical() {
        let a = Ranking::from_slices(&[&[2, 1], &[0]]).unwrap();
        let b = Ranking::from_slices(&[&[1, 2], &[0]]).unwrap();
        let c = Ranking::from_slices(&[&[1], &[2], &[0]]).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn permutation_and_single_bucket() {
        let p = Ranking::permutation(&[Element(2), Element(0), Element(1)]).unwrap();
        assert!(p.is_permutation());
        assert_eq!(p.bucket_of(Element(2)), Some(0));
        let s = Ranking::single_bucket(vec![Element(0), Element(1)]).unwrap();
        assert_eq!(s.n_buckets(), 1);
    }

    #[test]
    fn from_bucket_indices_roundtrip() {
        let r = Ranking::from_slices(&[&[1], &[0, 3], &[2]]).unwrap();
        let indices: Vec<u32> = (0..4)
            .map(|id| r.bucket_of(Element(id)).unwrap() as u32)
            .collect();
        let r2 = Ranking::from_bucket_indices(&indices).unwrap();
        assert_eq!(r, r2);
    }

    #[test]
    fn reversed() {
        let r = Ranking::from_slices(&[&[0], &[1, 2], &[3]]).unwrap();
        let rev = r.reversed();
        assert_eq!(rev, Ranking::from_slices(&[&[3], &[1, 2], &[0]]).unwrap());
        assert_eq!(rev.reversed(), r);
    }

    #[test]
    fn display_numeric() {
        let r = Ranking::from_slices(&[&[0], &[2, 1]]).unwrap();
        assert_eq!(r.to_string(), "[{0},{1,2}]");
    }

    #[test]
    fn display_with_universe() {
        let mut u = Universe::new();
        let a = u.intern("A");
        let b = u.intern("B");
        let r = Ranking::from_buckets(vec![vec![b], vec![a]]).unwrap();
        assert_eq!(r.display_with(&u), "[{B},{A}]");
    }

    #[test]
    fn map_elements_remaps() {
        let r = Ranking::from_slices(&[&[10], &[20, 30]]).unwrap();
        let dense = r.map_elements(|e| Element(e.0 / 10 - 1)).unwrap();
        assert_eq!(dense, Ranking::from_slices(&[&[0], &[1, 2]]).unwrap());
        // Collision detection:
        assert!(r.map_elements(|_| Element(0)).is_err());
    }

    #[test]
    fn elements_iterates_rank_order() {
        let r = Ranking::from_slices(&[&[3], &[0, 2], &[1]]).unwrap();
        let order: Vec<u32> = r.elements().map(|e| e.0).collect();
        assert_eq!(order, vec![3, 0, 2, 1]);
        assert_eq!(
            r.support(),
            vec![Element(0), Element(1), Element(2), Element(3)]
        );
    }

    #[test]
    fn sparse_ids_supported() {
        let r = Ranking::from_slices(&[&[100], &[5]]).unwrap();
        assert_eq!(r.bucket_of(Element(100)), Some(0));
        assert_eq!(r.bucket_of(Element(50)), None);
        assert_eq!(r.n_elements(), 2);
    }
}
