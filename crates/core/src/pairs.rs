//! The pairwise cost matrix shared by most algorithms — the hot kernel of
//! the whole library.
//!
//! # Cost matrix layout
//!
//! For every ordered pair `(a, b)` a consensus must either put `a` strictly
//! before `b`, put `b` strictly before `a`, or tie them; the disagreement
//! cost of each decision follows from how the `m` input rankings voted
//! (the `w` coefficients of the paper's §4.2):
//!
//! * putting `a` strictly before `b` costs one per input ranking that
//!   doesn't, i.e. `m − before(a, b)`;
//! * tying them costs `m − tied(a, b)`.
//!
//! [`CostMatrix`] stores those two **precomputed costs interleaved** in one
//! dense row-major `n × n × 2` array of `u32`:
//!
//! ```text
//! cells[2·(a·n + b)]     = cost_before(a, b)   // consensus puts a < b
//! cells[2·(a·n + b) + 1] = cost_tied(a, b)     // consensus ties a and b
//! ```
//!
//! One pair lookup therefore touches two adjacent words (a single cache
//! line), and a scan of row `a` — the inner loop of BioConsert's move
//! evaluation, the exact solver's bound updates, and `score` — is a purely
//! sequential walk. The third decision's cost is derived without touching
//! another row: `before(a,b) + before(b,a) + tied(a,b) = m` gives
//!
//! ```text
//! cost_before(b, a) = 2m − cost_before(a, b) − cost_tied(a, b)
//! ```
//!
//! (see [`CostMatrix::row`] and [`row_cost_after`]). The resident matrix
//! is `8·n²` bytes — the same `O(n²)` bound the paper attributes to
//! BioConsert (§3.1, §7.4), with both decisions packed where the seed
//! implementation kept two separate count arrays. A parallel build
//! transiently holds one private accumulator per worker (`8·n²` bytes
//! each) until the reduce; size worker counts accordingly on huge `n`.
//!
//! # Parallel build
//!
//! [`CostMatrix::build`] splits the input rankings across worker threads,
//! each accumulating pair *counts* into a private matrix, and reduces the
//! per-thread accumulators at the end (`O(m·n²/p + p·n²)` work, no shared
//! mutable state). Small instances stay on one thread — see
//! [`CostMatrix::build_with_threads`].
//!
//! # Context-sharing rules
//!
//! Building is `O(m·n²)` — far more expensive than most consumers. Within
//! one [`AlgoContext`](crate::algorithms::AlgoContext) the matrix for a
//! dataset is built **once** and shared by every algorithm invocation
//! (including wrapper algorithms such as `BestOf` and multi-start
//! BioConsert) through
//! [`AlgoContext::cost_matrix`](crate::algorithms::AlgoContext::cost_matrix),
//! which caches matrices keyed by a 128-bit content fingerprint of the
//! dataset. Algorithms must not call [`CostMatrix::build`] directly on the
//! hot path; take the context's shared `Arc<CostMatrix>` instead.
//!
//! `PairTable` remains as an alias of [`CostMatrix`] — the seed's name for
//! the same information, kept so existing call sites and downstream code
//! continue to compile.

use crate::dataset::Dataset;
use crate::element::Element;
use crate::parallel;
use crate::ranking::Ranking;

/// Dense interleaved pairwise cost matrix for a dataset (see the module
/// docs for the layout).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostMatrix {
    n: usize,
    m: u32,
    /// `cells[2·(a·n + b)]` = `cost_before(a, b)`;
    /// `cells[2·(a·n + b) + 1]` = `cost_tied(a, b)`.
    cells: Vec<u32>,
}

/// The seed's name for the pairwise information; same type, same API.
pub type PairTable = CostMatrix;

/// Unroll width of the chunked row scans ([`CostMatrix::score`],
/// [`CostMatrix::lower_bound`]): 8 independent u64 accumulators fed by
/// branchless integer selects — the shape LLVM auto-vectorizes to SIMD
/// lanes. Integer arithmetic is order-independent, so any width produces
/// the same bits as the scalar loop.
pub const LANES: usize = 8;

/// Cost of putting the row element strictly **after** pair-partner `b`,
/// derived from row-local entries (`2m − cost_before − cost_tied`).
///
/// `row` is a [`CostMatrix::row`] slice and `b` the partner's index.
#[inline]
pub fn row_cost_after(row: &[u32], m2: u32, b: usize) -> u32 {
    m2 - row[2 * b] - row[2 * b + 1]
}

impl CostMatrix {
    /// Build the matrix in `O(m·n²)`, in parallel for large instances.
    pub fn build(data: &Dataset) -> Self {
        // Parallelism pays once the count work dwarfs thread startup; the
        // threshold is deliberately conservative (~4M pair updates).
        let work = data.m() * data.n() * data.n();
        let threads = if work >= 1 << 22 {
            parallel::num_threads()
        } else {
            1
        };
        Self::build_with_threads(data, threads)
    }

    /// Build with an explicit worker-thread count (1 = fully serial; used
    /// by the benches to measure the parallel speedup).
    pub fn build_with_threads(data: &Dataset, threads: usize) -> Self {
        let n = data.n();
        let m = data.m() as u32;
        let rankings = data.rankings();

        // Accumulate pair counts (before / tied, interleaved like the final
        // cells) per thread, then reduce.
        let mut counts = if threads <= 1 || rankings.len() < 2 {
            let mut acc = vec![0u32; 2 * n * n];
            for r in rankings {
                accumulate_counts(&mut acc, r, n);
            }
            acc
        } else {
            let threads = threads.min(rankings.len());
            let chunk = rankings.len().div_ceil(threads);
            let partials: Vec<Vec<u32>> = parallel::par_map_slice(
                &rankings.chunks(chunk).collect::<Vec<_>>(),
                threads,
                |_, slice| {
                    let mut acc = vec![0u32; 2 * n * n];
                    for r in *slice {
                        accumulate_counts(&mut acc, r, n);
                    }
                    acc
                },
            );
            let mut partials = partials.into_iter();
            let mut acc = partials.next().expect("at least one chunk");
            for p in partials {
                for (dst, src) in acc.iter_mut().zip(&p) {
                    *dst += src;
                }
            }
            acc
        };

        // Convert counts to costs in place: cost = m − count. The diagonal
        // stays zero (an element is never compared with itself).
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let i = 2 * (a * n + b);
                counts[i] = m - counts[i];
                counts[i + 1] = m - counts[i + 1];
            }
        }
        CostMatrix {
            n,
            m,
            cells: counts,
        }
    }

    /// Number of elements.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of input rankings.
    #[inline]
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Heap footprint of the matrix in bytes (the `O(n²)` term).
    #[inline]
    pub fn bytes(&self) -> usize {
        self.cells.len() * std::mem::size_of::<u32>()
    }

    /// Row `a` as an interleaved `[cost_before(a,0), cost_tied(a,0), …]`
    /// slice of length `2n` — the unit of sequential access for kernels.
    #[inline]
    pub fn row(&self, a: Element) -> &[u32] {
        let start = 2 * a.index() * self.n;
        &self.cells[start..start + 2 * self.n]
    }

    /// Rankings placing `a` strictly before `b`.
    #[inline]
    pub fn before(&self, a: Element, b: Element) -> u32 {
        self.m - self.cost_before(a, b)
    }

    /// Rankings tying `a` and `b`.
    #[inline]
    pub fn tied(&self, a: Element, b: Element) -> u32 {
        self.m - self.cost_tied(a, b)
    }

    /// Disagreements incurred by a consensus that puts `a` strictly before
    /// `b`.
    #[inline]
    pub fn cost_before(&self, a: Element, b: Element) -> u32 {
        self.cells[2 * (a.index() * self.n + b.index())]
    }

    /// Disagreements incurred by a consensus that ties `a` and `b`.
    #[inline]
    pub fn cost_tied(&self, a: Element, b: Element) -> u32 {
        self.cells[2 * (a.index() * self.n + b.index()) + 1]
    }

    /// The cheapest decision for the pair — the per-pair term of the global
    /// lower bound used by the exact solver.
    #[inline]
    pub fn min_pair_cost(&self, a: Element, b: Element) -> u32 {
        self.cost_before(a, b)
            .min(self.cost_before(b, a))
            .min(self.cost_tied(a, b))
    }

    /// Sum of [`Self::min_pair_cost`] over all pairs: a lower bound on the
    /// generalized Kemeny score of *any* consensus.
    ///
    /// The upper-triangle row scan is chunked [`LANES`] wide (branchless
    /// min-select, independent accumulators) so the compiler can
    /// vectorize it; [`Self::lower_bound_scalar`] is the scalar twin it is
    /// pinned bit-identical to.
    pub fn lower_bound(&self) -> u64 {
        let m2 = 2 * self.m;
        let mut lanes = [0u64; LANES];
        let mut tail = 0u64;
        for a in 0..self.n {
            let row = self.row(Element(a as u32));
            let lo = a + 1;
            let mut chunks = row[2 * lo..2 * self.n].chunks_exact(2 * LANES);
            for chunk in &mut chunks {
                for (l, pair) in chunk.chunks_exact(2).enumerate() {
                    let (cb, ct) = (pair[0], pair[1]);
                    let ca = m2 - cb - ct;
                    lanes[l] += cb.min(ct).min(ca) as u64;
                }
            }
            for pair in chunks.remainder().chunks_exact(2) {
                let (cb, ct) = (pair[0], pair[1]);
                let ca = m2 - cb - ct;
                tail += cb.min(ct).min(ca) as u64;
            }
        }
        lanes.iter().sum::<u64>() + tail
    }

    /// Reference scalar implementation of [`Self::lower_bound`] — the
    /// conformance suite asserts the chunked scan equals this exactly.
    pub fn lower_bound_scalar(&self) -> u64 {
        let m2 = 2 * self.m;
        let mut acc = 0u64;
        for a in 0..self.n {
            let row = self.row(Element(a as u32));
            for b in (a + 1)..self.n {
                let cb = row[2 * b];
                let ct = row[2 * b + 1];
                let ca = m2 - cb - ct;
                acc += cb.min(ct).min(ca) as u64;
            }
        }
        acc
    }

    /// Fold one additional input ranking into the matrix **in place**, in
    /// `O(n²)` — the delta patch a live
    /// [`session`](crate::session) applies instead of the `O(m·n²)`
    /// rebuild.
    ///
    /// `r` must be a complete ranking over this matrix's elements `0..n`
    /// (unify it first; see [`crate::session::DatasetSession`]). Every
    /// off-diagonal cost cell holds `m − count`, so adding a ranking is a
    /// uniform `+1` minus that ranking's own pair indicator:
    ///
    /// ```text
    /// cost_before'(a, b) = cost_before(a, b) + 1 − [r puts a before b]
    /// cost_tied'(a, b)   = cost_tied(a, b)   + 1 − [r ties a and b]
    /// ```
    ///
    /// The result is bit-identical to rebuilding from the extended dataset
    /// (property-tested in `tests/session_properties.rs`).
    pub fn patch_add(&mut self, r: &Ranking) {
        let n = self.n;
        let pos = r.positions();
        assert_eq!(pos.len(), n, "patched ranking must be complete over 0..n");
        debug_assert!(pos.iter().all(|&p| p != u32::MAX));
        self.m += 1;
        for a in 0..n {
            let pa = pos[a];
            let row = &mut self.cells[2 * a * n..2 * (a + 1) * n];
            for (b, &pb) in pos.iter().enumerate() {
                if b == a {
                    continue;
                }
                row[2 * b] += u32::from(pa >= pb);
                row[2 * b + 1] += u32::from(pa != pb);
            }
        }
    }

    /// Remove one input ranking from the matrix **in place**, in `O(n²)` —
    /// the exact inverse of [`Self::patch_add`].
    ///
    /// `r` must be (structurally equal to) a ranking the matrix currently
    /// accounts for; subtracting a ranking that was never added produces a
    /// matrix that corresponds to no dataset. With the uniform `−1` applied
    /// first, no cell can underflow for a genuinely present ranking.
    pub fn patch_remove(&mut self, r: &Ranking) {
        let n = self.n;
        let pos = r.positions();
        assert_eq!(pos.len(), n, "patched ranking must be complete over 0..n");
        assert!(self.m >= 1, "matrix has no rankings left to remove");
        debug_assert!(pos.iter().all(|&p| p != u32::MAX));
        self.m -= 1;
        for a in 0..n {
            let pa = pos[a];
            let row = &mut self.cells[2 * a * n..2 * (a + 1) * n];
            for (b, &pb) in pos.iter().enumerate() {
                if b == a {
                    continue;
                }
                row[2 * b] -= u32::from(pa >= pb);
                row[2 * b + 1] -= u32::from(pa != pb);
            }
        }
    }

    /// Extend the element universe from `n` to `n_new` **in place** under
    /// unification semantics (§5.1): every existing input ranking is
    /// treated as if the new elements `n..n_new` were appended to it as one
    /// final tied bucket.
    ///
    /// The old `n × n` block is preserved verbatim (appending a trailing
    /// bucket never reorders existing pairs) and re-laid out for the new
    /// row stride; the new cells follow analytically from the appended
    /// bucket, with `m` the current ranking count:
    ///
    /// * old `a`, new `b`: every input puts `a` before `b` —
    ///   `cost_before(a,b) = 0`, `cost_tied(a,b) = m`,
    ///   `cost_before(b,a) = m`;
    /// * new `a`, new `b`: every input ties them — `cost_tied = 0`,
    ///   `cost_before = m` in both directions.
    ///
    /// `O(n_new²)` total; a no-op when `n_new == n`.
    pub fn grow(&mut self, n_new: usize) {
        assert!(n_new >= self.n, "the element universe can only grow");
        if n_new == self.n {
            return;
        }
        let n_old = self.n;
        let m = self.m;
        let mut cells = vec![0u32; 2 * n_new * n_new];
        for a in 0..n_old {
            let old = &self.cells[2 * a * n_old..2 * (a + 1) * n_old];
            let row = &mut cells[2 * a * n_new..2 * (a + 1) * n_new];
            row[..2 * n_old].copy_from_slice(old);
            for b in n_old..n_new {
                row[2 * b] = 0;
                row[2 * b + 1] = m;
            }
        }
        for a in n_old..n_new {
            let row = &mut cells[2 * a * n_new..2 * (a + 1) * n_new];
            for b in 0..n_old {
                row[2 * b] = m;
                row[2 * b + 1] = m;
            }
            for b in n_old..n_new {
                if b == a {
                    continue;
                }
                row[2 * b] = m;
                row[2 * b + 1] = 0;
            }
        }
        self.n = n_new;
        self.cells = cells;
    }

    /// Generalized Kemeny score of `r` against the dataset this matrix was
    /// built from, in `O(n²)` independent of `m`.
    ///
    /// The inner row scan is chunked [`LANES`] wide with a branchless
    /// three-way cost select (`lt·cb + eq·ct + gt·ca`) and independent
    /// accumulators so the compiler can vectorize it. Pure integer
    /// arithmetic in any order — bit-identical to the branchy
    /// [`Self::score_scalar`] twin, which the conformance suite pins.
    pub fn score(&self, r: &Ranking) -> u64 {
        debug_assert_eq!(r.n_elements(), self.n);
        let pos = r.positions();
        let m2 = 2 * self.m;
        let mut lanes = [0u64; LANES];
        let mut tail = 0u64;
        for a in 0..self.n {
            let pa = pos[a];
            let row = self.row(Element(a as u32));
            let lo = a + 1;
            let b_pos = &pos[lo..self.n];
            let mut chunks = b_pos.chunks_exact(LANES);
            for (ci, chunk) in (&mut chunks).enumerate() {
                let base = lo + ci * LANES;
                for (l, &pb) in chunk.iter().enumerate() {
                    let b = base + l;
                    let cb = row[2 * b];
                    let ct = row[2 * b + 1];
                    let ca = m2 - cb - ct;
                    let lt = u32::from(pa < pb);
                    let eq = u32::from(pa == pb);
                    let gt = 1 - lt - eq;
                    lanes[l] += (lt * cb + eq * ct + gt * ca) as u64;
                }
            }
            let base = lo + (b_pos.len() / LANES) * LANES;
            for (off, &pb) in chunks.remainder().iter().enumerate() {
                let b = base + off;
                let cb = row[2 * b];
                let ct = row[2 * b + 1];
                let ca = m2 - cb - ct;
                let lt = u32::from(pa < pb);
                let eq = u32::from(pa == pb);
                let gt = 1 - lt - eq;
                tail += (lt * cb + eq * ct + gt * ca) as u64;
            }
        }
        lanes.iter().sum::<u64>() + tail
    }

    /// Reference scalar implementation of [`Self::score`] (the pre-PR-10
    /// branchy loop) — the conformance suite asserts the chunked scan
    /// equals this exactly on every input.
    pub fn score_scalar(&self, r: &Ranking) -> u64 {
        debug_assert_eq!(r.n_elements(), self.n);
        let pos = r.positions();
        let m2 = 2 * self.m;
        let mut acc = 0u64;
        for a in 0..self.n {
            let pa = pos[a];
            let row = self.row(Element(a as u32));
            for b in (a + 1)..self.n {
                let pb = pos[b];
                acc += if pa == pb {
                    row[2 * b + 1]
                } else if pa < pb {
                    row[2 * b]
                } else {
                    row_cost_after(row, m2, b)
                } as u64;
            }
        }
        acc
    }
}

/// Fold one ranking's pair counts into an interleaved accumulator.
fn accumulate_counts(acc: &mut [u32], r: &Ranking, n: usize) {
    let pos = r.positions();
    for a in 0..n {
        let pa = pos[a];
        let row = &mut acc[2 * a * n..2 * (a + 1) * n];
        for (b, &pb) in pos.iter().enumerate() {
            if b == a {
                continue;
            }
            if pa < pb {
                row[2 * b] += 1; // a strictly before b
            } else if pa == pb {
                row[2 * b + 1] += 1; // tied
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_ranking;
    use crate::score::kemeny_score;

    fn paper_dataset() -> Dataset {
        Dataset::new(vec![
            parse_ranking("[{0},{3},{1,2}]").unwrap(),
            parse_ranking("[{0},{1,2},{3}]").unwrap(),
            parse_ranking("[{3},{0,2},{1}]").unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn counts_on_paper_example() {
        let t = PairTable::build(&paper_dataset());
        let (a, b, c, d) = (Element(0), Element(1), Element(2), Element(3));
        // A before B in r1, r2; A tied C in r3; D before A in r3 only.
        assert_eq!(t.before(a, b), 3);
        assert_eq!(t.before(b, a), 0);
        assert_eq!(t.tied(a, c), 1);
        assert_eq!(t.before(d, a), 1);
        assert_eq!(t.before(a, d), 2);
        // B and C tied in r1 and r2, C before B in r3.
        assert_eq!(t.tied(b, c), 2);
        assert_eq!(t.before(c, b), 1);
    }

    #[test]
    fn costs_complement() {
        let t = PairTable::build(&paper_dataset());
        let (a, d) = (Element(0), Element(3));
        // cost(a<d) = rankings not putting a before d = 1 (r3).
        assert_eq!(t.cost_before(a, d), 1);
        assert_eq!(t.cost_before(d, a), 2);
        assert_eq!(t.cost_tied(a, d), 3);
        assert_eq!(t.min_pair_cost(a, d), 1);
    }

    #[test]
    fn row_is_interleaved_and_derives_the_third_cost() {
        let t = CostMatrix::build(&paper_dataset());
        let m2 = 2 * t.m();
        for a in 0..t.n() {
            let ea = Element(a as u32);
            let row = t.row(ea);
            assert_eq!(row.len(), 2 * t.n());
            for b in 0..t.n() {
                let eb = Element(b as u32);
                if a == b {
                    continue;
                }
                assert_eq!(row[2 * b], t.cost_before(ea, eb));
                assert_eq!(row[2 * b + 1], t.cost_tied(ea, eb));
                assert_eq!(row_cost_after(row, m2, b), t.cost_before(eb, ea));
            }
        }
    }

    #[test]
    fn parallel_build_matches_serial() {
        // A dataset big enough to split across several workers.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        let n = 40;
        let rankings: Vec<Ranking> = (0..12)
            .map(|_| {
                let idx: Vec<u32> = (0..n).map(|_| rng.random_range(0..n as u32 / 2)).collect();
                let mut used = idx.clone();
                used.sort_unstable();
                used.dedup();
                let remap: Vec<u32> = idx
                    .iter()
                    .map(|v| used.iter().position(|u| u == v).unwrap() as u32)
                    .collect();
                Ranking::from_bucket_indices(&remap).unwrap()
            })
            .collect();
        let d = Dataset::new(rankings).unwrap();
        let serial = CostMatrix::build_with_threads(&d, 1);
        for threads in [2, 3, 8] {
            assert_eq!(CostMatrix::build_with_threads(&d, threads), serial);
        }
    }

    #[test]
    fn score_matches_direct_kemeny() {
        let data = paper_dataset();
        let t = PairTable::build(&data);
        for cand in [
            "[{0},{3},{1,2}]",
            "[{0},{1},{2},{3}]",
            "[{0,1,2,3}]",
            "[{3},{2},{1},{0}]",
            "[{1,2},{0,3}]",
        ] {
            let r = parse_ranking(cand).unwrap();
            assert_eq!(t.score(&r), kemeny_score(&r, &data), "candidate {cand}");
        }
    }

    #[test]
    fn optimal_example_score_and_lower_bound() {
        let data = paper_dataset();
        let t = PairTable::build(&data);
        let opt = parse_ranking("[{0},{3},{1,2}]").unwrap();
        assert_eq!(t.score(&opt), 5);
        assert!(t.lower_bound() <= 5);
    }

    #[test]
    fn bytes_reports_the_packed_footprint() {
        let t = CostMatrix::build(&paper_dataset());
        assert_eq!(t.bytes(), 2 * 4 * 4 * 4); // 2 u32 per cell, n = 4
    }

    #[test]
    fn patch_add_matches_rebuild() {
        let data = paper_dataset();
        let mut t = CostMatrix::build(&data);
        let extra = parse_ranking("[{1},{0,3},{2}]").unwrap();
        t.patch_add(&extra);
        let mut rankings = data.rankings().to_vec();
        rankings.push(extra);
        let rebuilt = CostMatrix::build(&Dataset::new(rankings).unwrap());
        assert_eq!(t, rebuilt);
    }

    #[test]
    fn patch_remove_inverts_patch_add() {
        let data = paper_dataset();
        let cold = CostMatrix::build(&data);
        let mut t = cold.clone();
        let extra = parse_ranking("[{3,2},{1},{0}]").unwrap();
        t.patch_add(&extra);
        assert_ne!(t, cold);
        t.patch_remove(&extra);
        assert_eq!(t, cold);
    }

    #[test]
    fn patch_remove_existing_input_matches_rebuild() {
        let data = paper_dataset();
        let mut t = CostMatrix::build(&data);
        t.patch_remove(data.ranking(1));
        let rankings = vec![data.ranking(0).clone(), data.ranking(2).clone()];
        let rebuilt = CostMatrix::build(&Dataset::new(rankings).unwrap());
        assert_eq!(t, rebuilt);
    }

    #[test]
    fn grow_matches_unified_rebuild() {
        let data = paper_dataset();
        let mut t = CostMatrix::build(&data);
        t.grow(6);
        assert_eq!(t.n(), 6);
        // Cold equivalent: append {4,5} as a tied last bucket to every
        // input and rebuild.
        let rankings: Vec<Ranking> = data
            .rankings()
            .iter()
            .map(|r| {
                let mut buckets: Vec<Vec<Element>> = r.buckets().map(|b| b.to_vec()).collect();
                buckets.push(vec![Element(4), Element(5)]);
                Ranking::from_buckets(buckets).unwrap()
            })
            .collect();
        let rebuilt = CostMatrix::build(&Dataset::new(rankings).unwrap());
        assert_eq!(t, rebuilt);
        // Growing to the current size is a no-op.
        let before = t.clone();
        t.grow(6);
        assert_eq!(t, before);
    }
}
