//! The pairwise disagreement table shared by most algorithms.
//!
//! For every ordered pair `(a, b)` the table stores how many input rankings
//! place `a` strictly before `b` (`before`) and how many tie them (`tied`).
//! From those two numbers the cost of *any* consensus decision about the
//! pair follows (the `w` coefficients of the paper's §4.2):
//!
//! * putting `a` strictly before `b` costs one per input ranking that
//!   doesn't, i.e. `m − before(a, b)`;
//! * tying them costs `m − tied(a, b)`.

use crate::dataset::Dataset;
use crate::element::Element;
use crate::ranking::Ranking;

/// Dense `n × n` pairwise counts for a dataset (`O(n²)` memory — the paper
/// notes the same bound for BioConsert).
#[derive(Debug, Clone)]
pub struct PairTable {
    n: usize,
    m: u32,
    /// `before[a * n + b]` = number of rankings with `a` strictly before `b`.
    before: Vec<u32>,
    /// `tied[a * n + b]` = number of rankings with `a` and `b` tied
    /// (symmetric).
    tied: Vec<u32>,
}

impl PairTable {
    /// Build the table in `O(m · n²)`.
    pub fn build(data: &Dataset) -> Self {
        let n = data.n();
        let mut before = vec![0u32; n * n];
        let mut tied = vec![0u32; n * n];
        for r in data.rankings() {
            let pos = r.positions();
            for a in 0..n {
                let pa = pos[a];
                for b in (a + 1)..n {
                    let pb = pos[b];
                    if pa < pb {
                        before[a * n + b] += 1;
                    } else if pb < pa {
                        before[b * n + a] += 1;
                    } else {
                        tied[a * n + b] += 1;
                        tied[b * n + a] += 1;
                    }
                }
            }
        }
        PairTable {
            n,
            m: data.m() as u32,
            before,
            tied,
        }
    }

    /// Number of elements.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of input rankings.
    #[inline]
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Rankings placing `a` strictly before `b`.
    #[inline]
    pub fn before(&self, a: Element, b: Element) -> u32 {
        self.before[a.index() * self.n + b.index()]
    }

    /// Rankings tying `a` and `b`.
    #[inline]
    pub fn tied(&self, a: Element, b: Element) -> u32 {
        self.tied[a.index() * self.n + b.index()]
    }

    /// Disagreements incurred by a consensus that puts `a` strictly before
    /// `b`.
    #[inline]
    pub fn cost_before(&self, a: Element, b: Element) -> u32 {
        self.m - self.before(a, b)
    }

    /// Disagreements incurred by a consensus that ties `a` and `b`.
    #[inline]
    pub fn cost_tied(&self, a: Element, b: Element) -> u32 {
        self.m - self.tied(a, b)
    }

    /// The cheapest decision for the pair — the per-pair term of the global
    /// lower bound used by the exact solver.
    #[inline]
    pub fn min_pair_cost(&self, a: Element, b: Element) -> u32 {
        self.cost_before(a, b)
            .min(self.cost_before(b, a))
            .min(self.cost_tied(a, b))
    }

    /// Sum of [`Self::min_pair_cost`] over all pairs: a lower bound on the
    /// generalized Kemeny score of *any* consensus.
    pub fn lower_bound(&self) -> u64 {
        let mut acc = 0u64;
        for a in 0..self.n {
            for b in (a + 1)..self.n {
                acc += self.min_pair_cost(Element(a as u32), Element(b as u32)) as u64;
            }
        }
        acc
    }

    /// Generalized Kemeny score of `r` against the dataset this table was
    /// built from, in `O(n²)` independent of `m`.
    pub fn score(&self, r: &Ranking) -> u64 {
        debug_assert_eq!(r.n_elements(), self.n);
        let pos = r.positions();
        let mut acc = 0u64;
        for a in 0..self.n {
            let pa = pos[a];
            for b in (a + 1)..self.n {
                let pb = pos[b];
                let (ea, eb) = (Element(a as u32), Element(b as u32));
                acc += if pa == pb {
                    self.cost_tied(ea, eb)
                } else if pa < pb {
                    self.cost_before(ea, eb)
                } else {
                    self.cost_before(eb, ea)
                } as u64;
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_ranking;
    use crate::score::kemeny_score;

    fn paper_dataset() -> Dataset {
        Dataset::new(vec![
            parse_ranking("[{0},{3},{1,2}]").unwrap(),
            parse_ranking("[{0},{1,2},{3}]").unwrap(),
            parse_ranking("[{3},{0,2},{1}]").unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn counts_on_paper_example() {
        let t = PairTable::build(&paper_dataset());
        let (a, b, c, d) = (Element(0), Element(1), Element(2), Element(3));
        // A before B in r1, r2; A tied C in r3; D before A in r3 only.
        assert_eq!(t.before(a, b), 3);
        assert_eq!(t.before(b, a), 0);
        assert_eq!(t.tied(a, c), 1);
        assert_eq!(t.before(d, a), 1);
        assert_eq!(t.before(a, d), 2);
        // B and C tied in r1 and r2, C before B in r3.
        assert_eq!(t.tied(b, c), 2);
        assert_eq!(t.before(c, b), 1);
    }

    #[test]
    fn costs_complement() {
        let t = PairTable::build(&paper_dataset());
        let (a, d) = (Element(0), Element(3));
        // cost(a<d) = rankings not putting a before d = 1 (r3).
        assert_eq!(t.cost_before(a, d), 1);
        assert_eq!(t.cost_before(d, a), 2);
        assert_eq!(t.cost_tied(a, d), 3);
        assert_eq!(t.min_pair_cost(a, d), 1);
    }

    #[test]
    fn score_matches_direct_kemeny() {
        let data = paper_dataset();
        let t = PairTable::build(&data);
        for cand in [
            "[{0},{3},{1,2}]",
            "[{0},{1},{2},{3}]",
            "[{0,1,2,3}]",
            "[{3},{2},{1},{0}]",
            "[{1,2},{0,3}]",
        ] {
            let r = parse_ranking(cand).unwrap();
            assert_eq!(t.score(&r), kemeny_score(&r, &data), "candidate {cand}");
        }
    }

    #[test]
    fn optimal_example_score_and_lower_bound() {
        let data = paper_dataset();
        let t = PairTable::build(&data);
        let opt = parse_ranking("[{0},{3},{1,2}]").unwrap();
        assert_eq!(t.score(&opt), 5);
        assert!(t.lower_bound() <= 5);
    }
}
