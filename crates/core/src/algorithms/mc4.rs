//! MC4 (§3.3, [Dwork, Kumar, Naor, Sivakumar 2001]) — the "hybrid"
//! Markov-chain approach.
//!
//! States are the elements. From state `e₁`, the chain moves to `e₂` with
//! probability `1/n` when a strict majority of the input rankings prefers
//! `e₂` to `e₁` (mass flows toward preferred elements), and stays otherwise.
//! An element's score is its stationary probability; elements are ranked by
//! descending stationary mass, equal masses tied.
//!
//! The raw MC4 chain need not be ergodic, so (standard practice) we mix in
//! a small uniform teleport `ε`; the stationary distribution is found by
//! power iteration, which dominates the cost — the paper's reason for
//! calling MC4 "much more time consuming" than CopelandMethod.

use super::{AlgoContext, ConsensusAlgorithm};
use crate::dataset::Dataset;
use crate::element::Element;
use crate::engine::KernelLane;
use crate::positional::{CostProvider, PositionalCosts};
use crate::ranking::Ranking;

/// Majority adjacency from provider cost rows: `better_than[a]` lists the
/// elements a strict majority of inputs prefers over `a`.
///
/// From row `a`, `before(b, a) = cost_before(a,b) + cost_tied(a,b) − m`
/// (the complement identity `before + after + tied = m` rearranged), so
/// one row suffices per element — the same integers the dense
/// `2·before(b,a) > m` test reads, on either lane.
fn majority_adjacency(provider: &dyn CostProvider) -> Vec<Vec<u32>> {
    let n = provider.n();
    let m = provider.m();
    let mut better_than: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut buf = vec![0u32; 2 * n];
    for a in 0..n {
        let row = provider.row_into(Element(a as u32), &mut buf);
        for b in 0..n {
            if b == a {
                continue;
            }
            let before_b_over_a = row[2 * b] + row[2 * b + 1] - m;
            if 2 * before_b_over_a > m {
                better_than[a].push(b as u32);
            }
        }
    }
    better_than
}

/// MC4 with configurable teleport and convergence parameters.
#[derive(Debug, Clone, Copy)]
pub struct Mc4 {
    /// Uniform teleport probability (ergodicity fix).
    pub epsilon: f64,
    /// Power-iteration convergence threshold on the L1 step change.
    pub tolerance: f64,
    /// Power-iteration cap.
    pub max_iterations: usize,
    /// Stationary probabilities closer than this are considered tied.
    pub tie_tolerance: f64,
}

impl Default for Mc4 {
    fn default() -> Self {
        Mc4 {
            epsilon: 0.05,
            tolerance: 1e-12,
            max_iterations: 20_000,
            tie_tolerance: 1e-9,
        }
    }
}

impl ConsensusAlgorithm for Mc4 {
    fn name(&self) -> String {
        "MC4".to_owned()
    }

    fn produces_ties(&self) -> bool {
        true
    }

    fn run(&self, data: &Dataset, ctx: &mut AlgoContext) -> Ranking {
        let n = data.n();
        if n == 1 {
            return data.ranking(0).clone();
        }
        // One adjacency construction for both lanes: the dense lane reads
        // resident matrix rows, the matrix-free lane recomputes each row
        // in O(m·n) and never materializes the matrix.
        let better_than = match ctx.lane() {
            KernelLane::Dense => {
                let pairs = ctx.cost_matrix(data);
                majority_adjacency(&*pairs)
            }
            KernelLane::MatrixFree => majority_adjacency(&PositionalCosts::new(data)),
        };

        let uniform = 1.0 / n as f64;
        let mut pi = vec![uniform; n];
        let mut next = vec![0.0f64; n];
        for _ in 0..self.max_iterations {
            // next = pi * P, with P[a][b] = 1/n per majority-preferred b and
            // the self-loop absorbing the rest.
            next.fill(0.0);
            for a in 0..n {
                let share = pi[a] / n as f64;
                for &b in &better_than[a] {
                    next[b as usize] += share;
                }
                next[a] += pi[a] - share * better_than[a].len() as f64;
            }
            // Teleport mix keeps the chain ergodic.
            let mut delta = 0.0;
            for a in 0..n {
                let v = (1.0 - self.epsilon) * next[a] + self.epsilon * uniform;
                delta += (v - pi[a]).abs();
                pi[a] = v;
            }
            if delta < self.tolerance || ctx.checkpoint().is_stop() {
                break;
            }
        }

        // Descending stationary mass, near-equal masses tied.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| pi[b].partial_cmp(&pi[a]).expect("finite probabilities"));
        let mut buckets: Vec<Vec<Element>> = Vec::new();
        for &id in &order {
            let new_bucket = match buckets.last() {
                None => true,
                Some(last) => {
                    let prev = last[last.len() - 1].index();
                    (pi[prev] - pi[id]).abs() > self.tie_tolerance
                }
            };
            if new_bucket {
                buckets.push(Vec::new());
            }
            buckets
                .last_mut()
                .expect("just pushed")
                .push(Element(id as u32));
        }
        Ranking::from_buckets(buckets).expect("grouping is a valid ranking")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_ranking;

    fn data(lines: &[&str]) -> Dataset {
        Dataset::new(lines.iter().map(|l| parse_ranking(l).unwrap()).collect()).unwrap()
    }

    #[test]
    fn unanimous_order_recovered() {
        let d = data(&["[{0},{1},{2}]", "[{0},{1},{2}]", "[{0},{1},{2}]"]);
        let r = Mc4::default().run(&d, &mut AlgoContext::seeded(0));
        assert_eq!(r, parse_ranking("[{0},{1},{2}]").unwrap());
    }

    #[test]
    fn condorcet_winner_ranked_first() {
        let d = data(&["[{2},{0},{1}]", "[{2},{1},{0}]", "[{0},{2},{1}]"]);
        let r = Mc4::default().run(&d, &mut AlgoContext::seeded(0));
        assert_eq!(r.bucket_of(Element(2)), Some(0));
    }

    #[test]
    fn symmetric_inputs_tie_everything() {
        // Two reversed permutations: no strict majority anywhere, the chain
        // is the teleport-uniform chain → all stationary masses equal.
        let d = data(&["[{0},{1},{2}]", "[{2},{1},{0}]"]);
        let r = Mc4::default().run(&d, &mut AlgoContext::seeded(0));
        assert_eq!(r, parse_ranking("[{0,1,2}]").unwrap());
    }

    #[test]
    fn handles_tied_inputs_and_is_complete() {
        let d = data(&["[{0,1},{2,3}]", "[{1},{0},{2},{3}]", "[{0},{1},{3},{2}]"]);
        let r = Mc4::default().run(&d, &mut AlgoContext::seeded(0));
        assert!(d.is_complete_ranking(&r));
        // {0,1} majority-beat {2,3}: 2 and 3 must not precede 0.
        assert!(r.bucket_of(Element(0)) < r.bucket_of(Element(2)));
    }

    #[test]
    fn single_element() {
        let d = data(&["[{0}]"]);
        let r = Mc4::default().run(&d, &mut AlgoContext::seeded(0));
        assert_eq!(r.n_elements(), 1);
    }
}
