//! Ailon 3/2 (§3.2, [Ailon 2010]): LP relaxation + rounding.
//!
//! The paper's §4.1.2 notes the approach "relaxes the problem in
//! floating-point optimization and can be used as it is" for ties: we relax
//! the §4.2 LPB — every `x ∈ {0,1}` becomes `x ∈ [0,1]` — solve the LP,
//! and reconstruct a ranking by rounding.
//!
//! Two engineering choices (documented in DESIGN.md §5):
//!
//! * **Variable elimination.** Constraint (1) lets us substitute
//!   `x_{b<a} = 1 − x_{a<b} − x_{a=b}`, leaving two variables per
//!   unordered pair and turning every constraint into `≤` rows with
//!   non-negative right-hand sides — no Phase-1 simplex needed.
//! * **Cutting planes.** The `O(n³)` transitivity constraints are added
//!   lazily: solve, scan for violated triples, add the worst offenders,
//!   re-solve. The active set stays small.
//!
//! Rounding follows the KwikSort-style pivot scheme of Ailon's paper:
//! recursively pick a pivot and send every element to the side (before /
//! tied / after) with the largest LP value.
//!
//! Like the paper's LPSolve-based implementation — which produced no result
//! past `n = 45` (§7.1.1) — this algorithm is the slow, high-quality end of
//! the spectrum; past [`AilonThreeHalves::max_n`] it falls back to the
//! best input ranking and reports a timeout.

use super::{AlgoContext, ConsensusAlgorithm};
use crate::dataset::Dataset;
use crate::element::Element;
use crate::pairs::PairTable;
use crate::ranking::Ranking;
use lpsolve::{Cmp, Problem, Var};
use rand::Rng;

/// The Ailon 3/2 LP-relaxation algorithm.
#[derive(Debug, Clone)]
pub struct AilonThreeHalves {
    /// Past this many elements, report "no result" (timeout + fallback).
    pub max_n: usize,
    /// Cutting-plane rounds before giving up on full transitivity.
    pub max_rounds: usize,
    /// Most-violated cuts added per round.
    pub cuts_per_round: usize,
    /// Simplex pivot budget per LP solve.
    pub pivot_budget: usize,
}

impl Default for AilonThreeHalves {
    fn default() -> Self {
        AilonThreeHalves {
            max_n: 45,
            max_rounds: 60,
            cuts_per_round: 2000,
            pivot_budget: 25_000,
        }
    }
}

/// Fractional pair relation extracted from the LP solution.
struct Relaxation {
    n: usize,
    /// `p[pair(a,b)]` = x_{a<b} for a < b (id order).
    p: Vec<f64>,
    /// `q[pair(a,b)]` = x_{a=b}.
    q: Vec<f64>,
}

#[inline]
fn pair_index(n: usize, a: usize, b: usize) -> usize {
    debug_assert!(a < b);
    a * n + b
}

impl Relaxation {
    /// x_{i<j} for arbitrary ids.
    fn lt(&self, i: usize, j: usize) -> f64 {
        if i < j {
            self.p[pair_index(self.n, i, j)]
        } else {
            1.0 - self.p[pair_index(self.n, j, i)] - self.q[pair_index(self.n, j, i)]
        }
    }

    /// x_{i=j}.
    fn eq(&self, i: usize, j: usize) -> f64 {
        self.q[pair_index(self.n, i.min(j), i.max(j))]
    }
}

/// A lazily-added transitivity cut, in substituted (P, Q) variables.
enum Cut {
    /// Order transitivity (2) for the ordered triple (i, j, k).
    Order(u32, u32, u32),
    /// Bucket transitivity (3) with middle `y`: 2·x_{x=y} + 2·x_{y=z} −
    /// x_{x=z} ≤ 3.
    Bucket(u32, u32, u32), // (x, y=middle, z)
}

impl AilonThreeHalves {
    fn solve_lp(&self, pairs: &PairTable, ctx: &mut AlgoContext) -> Option<Relaxation> {
        let n = pairs.n();
        let mut problem = Problem::new();
        let mut pv = vec![None::<Var>; n * n];
        let mut qv = vec![None::<Var>; n * n];
        let mut constant = 0.0;
        for a in 0..n {
            for b in (a + 1)..n {
                let (ea, eb) = (Element(a as u32), Element(b as u32));
                let u = pairs.before(ea, eb) as f64;
                let v = pairs.before(eb, ea) as f64;
                let t = pairs.tied(ea, eb) as f64;
                // Objective after substituting x_{b<a} = 1 − P − Q:
                // (u+t) + (v−u)·P + (v−t)·Q per pair.
                let p_var = problem.add_var(v - u, 0.0, f64::INFINITY);
                let q_var = problem.add_var(v - t, 0.0, f64::INFINITY);
                constant += u + t;
                problem.add_row(&[(p_var, 1.0), (q_var, 1.0)], Cmp::Le, 1.0);
                pv[pair_index(n, a, b)] = Some(p_var);
                qv[pair_index(n, a, b)] = Some(q_var);
            }
        }
        problem.obj_constant = constant;
        let pvar = |a: usize, b: usize| pv[pair_index(n, a, b)].expect("pair var");
        let qvar = |a: usize, b: usize| qv[pair_index(n, a, b)].expect("pair var");

        // lt(i,j) as LP terms plus a constant.
        let lt_terms = |i: usize, j: usize, sign: f64, terms: &mut Vec<(Var, f64)>| -> f64 {
            if i < j {
                terms.push((pvar(i, j), sign));
                0.0
            } else {
                terms.push((pvar(j, i), -sign));
                terms.push((qvar(j, i), -sign));
                sign
            }
        };

        let mut relax = None;
        for _round in 0..self.max_rounds {
            // Cap pivots per solve relative to problem size so one LP solve
            // cannot blow far past the wall-clock deadline (checked only
            // between rounds).
            let cap = self
                .pivot_budget
                .min(6 * (problem.n_rows() + problem.n_vars()) + 2_000);
            let sol = match problem.solve_with_deadline(cap, ctx.deadline) {
                Ok(s) => s,
                Err(_) => return relax, // best fractional solution so far, if any
            };
            // A solved relaxation is a certified lower bound on the
            // optimal (integral) Kemeny score: dropping integrality and
            // any still-missing transitivity cuts only enlarges the
            // feasible region, so the true optimum — an integer — is
            // ≥ ⌈objective⌉. The epsilon absorbs simplex round-off; the
            // sink's clamp-to-incumbent catches anything worse.
            let certified = (sol.objective - 1e-6 * sol.objective.abs().max(1.0)).ceil();
            if certified >= 0.0 && certified.is_finite() {
                ctx.offer_lower_bound(certified as u64);
            }
            let r = Relaxation {
                n,
                p: (0..n * n)
                    .map(|i| pv[i].map_or(0.0, |v| sol.x[v.index()]))
                    .collect(),
                q: (0..n * n)
                    .map(|i| qv[i].map_or(0.0, |v| sol.x[v.index()]))
                    .collect(),
            };

            // Scan all triples for violated transitivity constraints.
            const TOL: f64 = 1e-6;
            let mut violated: Vec<(f64, Cut)> = Vec::new();
            for a in 0..n {
                for b in (a + 1)..n {
                    for c in (b + 1)..n {
                        let triple = [a, b, c];
                        // (2): all 6 orderings.
                        for (i, j, k) in [
                            (a, b, c),
                            (a, c, b),
                            (b, a, c),
                            (b, c, a),
                            (c, a, b),
                            (c, b, a),
                        ] {
                            let lhs = r.lt(i, k) - r.lt(i, j) - r.lt(j, k);
                            if lhs < -1.0 - TOL {
                                violated
                                    .push((-1.0 - lhs, Cut::Order(i as u32, j as u32, k as u32)));
                            }
                        }
                        // (3): each middle choice, in tie variables only.
                        for mid in 0..3 {
                            let y = triple[mid];
                            let (x, z) = match mid {
                                0 => (b, c),
                                1 => (a, c),
                                _ => (a, b),
                            };
                            let lhs = 2.0 * r.eq(x, y) + 2.0 * r.eq(y, z) - r.eq(x, z);
                            if lhs > 3.0 + TOL {
                                violated
                                    .push((lhs - 3.0, Cut::Bucket(x as u32, y as u32, z as u32)));
                            }
                        }
                    }
                }
            }
            relax = Some(r);
            if violated.is_empty() {
                return relax;
            }
            violated.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite violations"));
            violated.truncate(self.cuts_per_round);
            for (_, cut) in violated {
                match cut {
                    Cut::Order(i, j, k) => {
                        let (i, j, k) = (i as usize, j as usize, k as usize);
                        let mut terms = Vec::with_capacity(6);
                        let mut cst = 0.0;
                        cst += lt_terms(i, k, 1.0, &mut terms);
                        cst += lt_terms(i, j, -1.0, &mut terms);
                        cst += lt_terms(j, k, -1.0, &mut terms);
                        // terms + cst ≥ -1  ⇔  terms ≥ -1 - cst
                        problem.add_row(&terms, Cmp::Ge, -1.0 - cst);
                    }
                    Cut::Bucket(x, y, z) => {
                        let (x, y, z) = (x as usize, y as usize, z as usize);
                        problem.add_row(
                            &[
                                (qvar(x.min(y), x.max(y)), 2.0),
                                (qvar(y.min(z), y.max(z)), 2.0),
                                (qvar(x.min(z), x.max(z)), -1.0),
                            ],
                            Cmp::Le,
                            3.0,
                        );
                    }
                }
            }
            if ctx.checkpoint().is_stop() {
                return relax;
            }
        }
        relax
    }

    /// KwikSort-style pivot rounding of the fractional relation.
    fn round(
        relax: &Relaxation,
        mut elems: Vec<u32>,
        rng: &mut rand::rngs::StdRng,
        out: &mut Vec<Vec<Element>>,
    ) {
        match elems.len() {
            0 => return,
            1 => {
                out.push(vec![Element(elems[0])]);
                return;
            }
            _ => {}
        }
        let pivot = elems.swap_remove(rng.random_range(0..elems.len())) as usize;
        let mut before = Vec::new();
        let mut tied = vec![Element(pivot as u32)];
        let mut after = Vec::new();
        for id in elems {
            let e = id as usize;
            let b = relax.lt(e, pivot);
            let t = relax.eq(e, pivot);
            let a = relax.lt(pivot, e);
            if b >= t && b >= a {
                before.push(id);
            } else if t >= a {
                tied.push(Element(id));
            } else {
                after.push(id);
            }
        }
        Self::round(relax, before, rng, out);
        out.push(tied);
        Self::round(relax, after, rng, out);
    }
}

impl ConsensusAlgorithm for AilonThreeHalves {
    fn name(&self) -> String {
        "Ailon3/2".to_owned()
    }

    fn produces_ties(&self) -> bool {
        true
    }

    fn run(&self, data: &Dataset, ctx: &mut AlgoContext) -> Ranking {
        let n = data.n();
        let pairs = ctx.cost_matrix(data);
        let fallback = |ctx: &mut AlgoContext| {
            // "No result" in the paper's tables; we still need to return a
            // ranking, so fall back to the best input and flag the timeout.
            ctx.set_timed_out();
            data.rankings()
                .iter()
                .min_by_key(|r| pairs.score(r))
                .expect("non-empty dataset")
                .clone()
        };
        if n > self.max_n {
            return fallback(ctx);
        }
        if n == 1 {
            return data.ranking(0).clone();
        }
        // The best input ranking is the run's immediate incumbent (what
        // Pick-a-Perm would return), so a job cancelled inside the LP —
        // whose rounds are checkpointed but not preemptible — still has a
        // harvestable consensus from the first milliseconds. Subscriber-
        // gated: a blocking `Engine::run` must not pay the O(m·n²) input
        // scan just for an extra trace point nobody streams.
        if ctx.has_subscriber() {
            if let Some(best_input) = data.rankings().iter().min_by_key(|r| pairs.score(r)) {
                ctx.offer_incumbent(best_input, pairs.score(best_input));
            }
        }
        match self.solve_lp(&pairs, ctx) {
            None => fallback(ctx),
            Some(relax) => {
                let mut out = Vec::new();
                let ids: Vec<u32> = (0..n as u32).collect();
                Self::round(&relax, ids, &mut ctx.rng, &mut out);
                Ranking::from_buckets(out).expect("rounding partitions the elements")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::exact::brute_force;
    use crate::parse::parse_ranking;
    use crate::score::kemeny_score;

    fn data(lines: &[&str]) -> Dataset {
        Dataset::new(lines.iter().map(|l| parse_ranking(l).unwrap()).collect()).unwrap()
    }

    #[test]
    fn optimal_on_paper_example() {
        // The LP is integral here; Ailon should match the optimum (5).
        let d = data(&["[{0},{3},{1,2}]", "[{0},{1,2},{3}]", "[{3},{0,2},{1}]"]);
        let r = AilonThreeHalves::default().run(&d, &mut AlgoContext::seeded(7));
        assert_eq!(kemeny_score(&r, &d), 5);
    }

    #[test]
    fn unanimous_inputs_reproduced() {
        let d = data(&["[{1},{0,2},{3}]", "[{1},{0,2},{3}]"]);
        let mut ctx = AlgoContext::seeded(0);
        let r = AilonThreeHalves::default().run(&d, &mut ctx);
        assert_eq!(r, parse_ranking("[{1},{0,2},{3}]").unwrap());
        assert!(!ctx.timed_out());
    }

    #[test]
    fn within_factor_two_of_optimum_small() {
        let d = data(&[
            "[{0},{1,2},{3},{4}]",
            "[{4},{1},{0,2,3}]",
            "[{2},{0},{1},{3,4}]",
        ]);
        let (opt, _) = brute_force(&d);
        let r = AilonThreeHalves::default().run(&d, &mut AlgoContext::seeded(1));
        let s = kemeny_score(&r, &d);
        // 3/2-approximation in expectation; 2× is a safe deterministic check.
        assert!(s <= 2 * opt, "score {s} vs optimum {opt}");
    }

    #[test]
    fn oversize_reports_timeout_with_fallback() {
        let lines: Vec<String> = (0..3)
            .map(|k| {
                let ids: Vec<String> = (0..6).map(|i| format!("{{{}}}", (i + k) % 6)).collect();
                format!("[{}]", ids.join(","))
            })
            .collect();
        let refs: Vec<&str> = lines.iter().map(|s| s.as_str()).collect();
        let d = data(&refs);
        let algo = AilonThreeHalves {
            max_n: 4,
            ..AilonThreeHalves::default()
        };
        let mut ctx = AlgoContext::seeded(0);
        let r = algo.run(&d, &mut ctx);
        assert!(ctx.timed_out());
        assert!(d.rankings().contains(&r)); // fallback = best input
    }

    #[test]
    fn output_complete_on_adversarial_ties() {
        let d = data(&[
            "[{0,1,2,3,4}]",
            "[{4},{3},{2},{1},{0}]",
            "[{0},{1,2,3},{4}]",
        ]);
        let r = AilonThreeHalves::default().run(&d, &mut AlgoContext::seeded(3));
        assert!(d.is_complete_ranking(&r));
    }
}
