//! Chanas and ChanasBoth (§3.2, [Chanas & Kobylański 1996],
//! [Coleman & Wirth 2009]) — extensions, not part of the paper's
//! evaluated panel (they cannot handle ties at all, §4.1.2).
//!
//! Both are greedy local searches over *permutations* whose edit operation
//! permutes two consecutive elements. `Chanas` follows the original
//! SORT / REVERSE / SORT scheme: run adjacent-swap passes to a local
//! optimum, reverse the permutation, re-sort, and keep going while the
//! cost improves. `ChanasBoth` (our reading of \[13\]) additionally sweeps
//! in both directions inside the sort procedure before considering a
//! reversal.
//!
//! Note on costs: for permutation outputs the tie count `t` of a pair
//! cancels out of every swap delta, so decisions based on the generalized
//! costs coincide with the classical Kendall-τ ones — these algorithms
//! simply never pay or save (un)tying cost.

use super::{AlgoContext, ConsensusAlgorithm};
use crate::dataset::Dataset;
use crate::element::Element;
use crate::pairs::PairTable;
use crate::ranking::Ranking;
use rand::seq::SliceRandom;
use rand::Rng;

/// The original Chanas heuristic.
#[derive(Debug, Clone, Copy, Default)]
pub struct Chanas;

/// The bidirectional variant.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChanasBoth;

/// One forward adjacent-swap pass; returns whether anything improved.
fn forward_pass(perm: &mut [Element], pairs: &PairTable) -> bool {
    let mut improved = false;
    for i in 0..perm.len().saturating_sub(1) {
        let (a, b) = (perm[i], perm[i + 1]);
        // Swapping is strictly better iff more rankings prefer b before a.
        if pairs.before(b, a) > pairs.before(a, b) {
            perm.swap(i, i + 1);
            improved = true;
        }
    }
    improved
}

/// One backward pass (used by ChanasBoth).
fn backward_pass(perm: &mut [Element], pairs: &PairTable) -> bool {
    let mut improved = false;
    for i in (0..perm.len().saturating_sub(1)).rev() {
        let (a, b) = (perm[i], perm[i + 1]);
        if pairs.before(b, a) > pairs.before(a, b) {
            perm.swap(i, i + 1);
            improved = true;
        }
    }
    improved
}

/// Run passes to an adjacent-swap local optimum.
fn sort_to_local_opt(perm: &mut [Element], pairs: &PairTable, both_directions: bool) {
    loop {
        let mut improved = forward_pass(perm, pairs);
        if both_directions {
            improved |= backward_pass(perm, pairs);
        }
        if !improved {
            return;
        }
    }
}

/// Kemeny score of a permutation given as an element sequence.
fn perm_score(perm: &[Element], pairs: &PairTable) -> u64 {
    let mut acc = 0u64;
    for i in 0..perm.len() {
        for j in (i + 1)..perm.len() {
            acc += pairs.cost_before(perm[i], perm[j]) as u64;
        }
    }
    acc
}

/// Starting permutation: a random input ranking with ties broken at random
/// (Chanas handles permutations only).
fn random_start(data: &Dataset, rng: &mut rand::rngs::StdRng) -> Vec<Element> {
    let r = data.ranking(rng.random_range(0..data.m()));
    let mut perm = Vec::with_capacity(r.n_elements());
    for bucket in r.buckets() {
        let mut b = bucket.to_vec();
        b.shuffle(rng);
        perm.extend(b);
    }
    perm
}

fn chanas_core(data: &Dataset, ctx: &mut AlgoContext, both: bool) -> Ranking {
    let pairs = ctx.cost_matrix(data);
    // Warm-started re-solves descend from the previous consensus
    // (flattened to a permutation in rank order, ids ascending within a
    // bucket) instead of a random input — the descent is monotone, so the
    // result never scores worse than the flattened hint. Hints over a
    // different universe are ignored.
    let warm: Option<Vec<Element>> = ctx
        .warm_start()
        .filter(|w| data.is_complete_ranking(&w.ranking))
        .map(|w| w.ranking.elements().collect());
    let mut cur = match warm {
        Some(p) => p,
        None => random_start(data, &mut ctx.rng),
    };
    sort_to_local_opt(&mut cur, &pairs, both);
    let mut best_score = perm_score(&cur, &pairs);
    if ctx.has_sink() {
        ctx.offer_incumbent(
            &Ranking::permutation(&cur).expect("permutation of the elements"),
            best_score,
        );
    }
    loop {
        let mut cand: Vec<Element> = cur.iter().rev().copied().collect();
        sort_to_local_opt(&mut cand, &pairs, both);
        let s = perm_score(&cand, &pairs);
        if s < best_score && ctx.checkpoint().is_continue() {
            cur = cand;
            best_score = s;
            if ctx.has_sink() {
                ctx.offer_incumbent(
                    &Ranking::permutation(&cur).expect("permutation of the elements"),
                    best_score,
                );
            }
        } else {
            break;
        }
    }
    Ranking::permutation(&cur).expect("permutation of the elements")
}

impl ConsensusAlgorithm for Chanas {
    fn name(&self) -> String {
        "Chanas".to_owned()
    }

    fn produces_ties(&self) -> bool {
        false
    }

    fn run(&self, data: &Dataset, ctx: &mut AlgoContext) -> Ranking {
        chanas_core(data, ctx, false)
    }
}

impl ConsensusAlgorithm for ChanasBoth {
    fn name(&self) -> String {
        "ChanasBoth".to_owned()
    }

    fn produces_ties(&self) -> bool {
        false
    }

    fn run(&self, data: &Dataset, ctx: &mut AlgoContext) -> Ranking {
        chanas_core(data, ctx, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_ranking;
    use crate::score::classical_kemeny_score;

    fn data(lines: &[&str]) -> Dataset {
        Dataset::new(lines.iter().map(|l| parse_ranking(l).unwrap()).collect()).unwrap()
    }

    #[test]
    fn output_is_permutation() {
        let d = data(&["[{0,1},{2,3}]", "[{3},{0},{1,2}]"]);
        for seed in 0..5 {
            let r = Chanas.run(&d, &mut AlgoContext::seeded(seed));
            assert!(r.is_permutation());
            assert!(d.is_complete_ranking(&r));
            let rb = ChanasBoth.run(&d, &mut AlgoContext::seeded(seed));
            assert!(rb.is_permutation());
        }
    }

    #[test]
    fn unanimous_permutations_recovered() {
        let d = data(&["[{2},{0},{1}]", "[{2},{0},{1}]"]);
        let r = Chanas.run(&d, &mut AlgoContext::seeded(3));
        assert_eq!(r, parse_ranking("[{2},{0},{1}]").unwrap());
    }

    #[test]
    fn local_optimum_beats_start() {
        let d = data(&[
            "[{0},{1},{2},{3},{4}]",
            "[{1},{0},{2},{4},{3}]",
            "[{0},{2},{1},{3},{4}]",
        ]);
        let r = Chanas.run(&d, &mut AlgoContext::seeded(0));
        // The consensus must be at least as good as every input.
        let s = classical_kemeny_score(&r, &d);
        for input in d.rankings() {
            assert!(s <= classical_kemeny_score(input, &d));
        }
    }

    #[test]
    fn finds_exact_optimum_on_easy_instance() {
        // Strong majority order 0<1<2<3 with one dissenting ranking.
        let d = data(&[
            "[{0},{1},{2},{3}]",
            "[{0},{1},{2},{3}]",
            "[{0},{1},{2},{3}]",
            "[{3},{2},{1},{0}]",
        ]);
        for algo_both in [false, true] {
            let r = chanas_core(&d, &mut AlgoContext::seeded(1), algo_both);
            assert_eq!(r, parse_ranking("[{0},{1},{2},{3}]").unwrap());
        }
    }

    #[test]
    fn adjacent_swap_pass_is_monotone() {
        let d = data(&[
            "[{0},{1},{2},{3},{4}]",
            "[{4},{3},{2},{1},{0}]",
            "[{2},{0},{4},{1},{3}]",
        ]);
        let pairs = PairTable::build(&d);
        let mut perm: Vec<Element> = (0..5).map(Element).collect();
        let before = perm_score(&perm, &pairs);
        forward_pass(&mut perm, &pairs);
        assert!(perm_score(&perm, &pairs) <= before);
    }
}
