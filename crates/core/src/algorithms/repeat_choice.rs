//! RepeatChoice (§3.2, [Ailon 2010]; "Ailon2" in [Cohen-Boulakia et al.]).
//!
//! A 2-approximation derived from Pick-a-Perm: start from one input
//! ranking and *refine* its buckets with the order of the elements in the
//! other input rankings, visited in random order, until all inputs have
//! been used. The original then breaks any remaining buckets arbitrarily
//! to output a permutation; §4.1.2 notes that **removing this last step**
//! makes the algorithm produce rankings with ties — that is the variant
//! implemented here (elements still tied after all refinements stay tied).
//!
//! A simple implementation runs in `O(m · S(n))` per the paper.

use super::{AlgoContext, ConsensusAlgorithm};
use crate::dataset::Dataset;
use crate::element::Element;
use crate::ranking::Ranking;
use rand::seq::SliceRandom;

/// Tie-keeping RepeatChoice. Randomized: the visit order of the input
/// rankings comes from the context RNG (wrap in
/// [`super::BestOf`] for the paper's `RepeatChoiceMin`).
#[derive(Debug, Clone, Copy, Default)]
pub struct RepeatChoice;

/// Refine `buckets` by the bucket order of `by`: each bucket is split into
/// sub-buckets grouped by the elements' position in `by`, sub-buckets
/// ordered as `by` orders them. Elements `by` ties stay together.
fn refine(buckets: Vec<Vec<Element>>, by: &Ranking) -> Vec<Vec<Element>> {
    let mut out = Vec::with_capacity(buckets.len());
    for bucket in buckets {
        if bucket.len() == 1 {
            out.push(bucket);
            continue;
        }
        // Group by position in `by`, preserving ascending position order.
        let mut tagged: Vec<(usize, Element)> = bucket
            .into_iter()
            .map(|e| (by.bucket_of(e).expect("same support"), e))
            .collect();
        tagged.sort_unstable();
        let mut start = 0;
        while start < tagged.len() {
            let mut end = start;
            while end < tagged.len() && tagged[end].0 == tagged[start].0 {
                end += 1;
            }
            out.push(tagged[start..end].iter().map(|&(_, e)| e).collect());
            start = end;
        }
    }
    out
}

impl ConsensusAlgorithm for RepeatChoice {
    fn name(&self) -> String {
        "RepeatChoice".to_owned()
    }

    fn produces_ties(&self) -> bool {
        true // the §4.1.2 adaptation: the final arbitrary break is removed
    }

    fn run(&self, data: &Dataset, ctx: &mut AlgoContext) -> Ranking {
        let mut order: Vec<usize> = (0..data.m()).collect();
        order.shuffle(&mut ctx.rng);
        let first = data.ranking(order[0]);
        let mut buckets: Vec<Vec<Element>> = first.buckets().map(|b| b.to_vec()).collect();
        for &i in &order[1..] {
            // A prefix of the refinement chain is itself a valid (merely
            // coarser) consensus, so the loop is a legitimate stop point.
            if ctx.checkpoint().is_stop() {
                break;
            }
            buckets = refine(buckets, data.ranking(i));
        }
        Ranking::from_buckets(buckets).expect("refinement preserves validity")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_ranking;
    use crate::score::kemeny_score;

    fn data(lines: &[&str]) -> Dataset {
        Dataset::new(lines.iter().map(|l| parse_ranking(l).unwrap()).collect()).unwrap()
    }

    #[test]
    fn single_input_returned_verbatim() {
        let d = data(&["[{0},{1,2},{3}]"]);
        let r = RepeatChoice.run(&d, &mut AlgoContext::seeded(1));
        assert_eq!(&r, d.ranking(0));
    }

    #[test]
    fn refinement_splits_by_other_ranking() {
        // Start [{0,1,2}]; refine by [{2},{0},{1}] → [{2},{0},{1}].
        let start = vec![vec![Element(0), Element(1), Element(2)]];
        let by = parse_ranking("[{2},{0},{1}]").unwrap();
        let refined = refine(start, &by);
        assert_eq!(
            Ranking::from_buckets(refined).unwrap(),
            parse_ranking("[{2},{0},{1}]").unwrap()
        );
    }

    #[test]
    fn refinement_never_merges() {
        // Refinement can only split buckets: bucket count is monotone.
        let d = data(&["[{0,1},{2,3}]", "[{3},{0,1,2}]"]);
        let r = RepeatChoice.run(&d, &mut AlgoContext::seeded(7));
        // Whatever the visit order, {2,3} or {0,1} splits are the only
        // possible changes; 0 and 1 are tied in both inputs → stay tied.
        assert_eq!(r.bucket_of(Element(0)), r.bucket_of(Element(1)));
        assert!(d.is_complete_ranking(&r));
    }

    #[test]
    fn unanimously_tied_elements_stay_tied() {
        let d = data(&["[{0,1},{2}]", "[{2},{0,1}]", "[{0,1,2}]"]);
        for seed in 0..10 {
            let r = RepeatChoice.run(&d, &mut AlgoContext::seeded(seed));
            assert_eq!(
                r.bucket_of(Element(0)),
                r.bucket_of(Element(1)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn two_approximation_on_small_instance() {
        use crate::algorithms::exact::brute_force;
        let d = data(&["[{0},{1,2}]", "[{2},{0},{1}]", "[{1},{2},{0}]"]);
        let (opt, _) = brute_force(&d);
        // The 2-approximation holds in expectation; with the best of many
        // seeds it must comfortably hold.
        let best = (0..20)
            .map(|s| kemeny_score(&RepeatChoice.run(&d, &mut AlgoContext::seeded(s)), &d))
            .min()
            .unwrap();
        assert!(best <= 2 * opt, "best {best} > 2 × opt {opt}");
    }
}
