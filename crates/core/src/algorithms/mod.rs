//! The rank-aggregation algorithm suite (Table 1 of the paper).
//!
//! Every algorithm the paper re-implemented and evaluated (bold rows of
//! Table 1) is available through [`paper_algorithms`]; the remaining rows
//! (Chanas, ChanasBoth, BnB, MC4) plus a classic pairwise Copeland are
//! implemented as extensions in [`extended_algorithms`].
//!
//! | Name | Class | Produces ties | Module |
//! |------|-------|---------------|--------|
//! | Ailon 3/2 | \[K\] linear programming | with rounding | [`ailon`] |
//! | BioConsert | \[G\] local search | yes | [`bioconsert`] |
//! | BordaCount | \[P\] sort by score | adapted | [`borda`] |
//! | CopelandMethod | \[P\] sort by score | adapted | [`copeland`] |
//! | FaginDyn (Small/Large) | \[G\] dynamic programming | yes | [`fagin`] |
//! | KwikSort (+Min) | \[K\] divide & conquer | adapted (3-way pivot) | [`kwiksort`] |
//! | MEDRank(h) | \[P\] extract order | adapted | [`medrank`] |
//! | Pick-a-Perm | \[K\] naive | yes (returns an input) | [`pick_a_perm`] |
//! | RepeatChoice (+Min) | \[K\] sort by order | adapted | [`repeat_choice`] |
//! | ExactAlgorithm | branch & bound / LPB (§4.2) | yes | [`exact`] |
//! | Chanas / ChanasBoth | \[K\] local search | no | [`chanas`] |
//! | BnB | \[K\] branch & bound | no | [`bnb`] |
//! | MC4 | \[P\] hybrid (Markov chain) | yes | [`mc4`] |

pub mod ailon;
pub mod bioconsert;
pub mod bnb;
pub mod borda;
pub mod chanas;
pub mod copeland;
pub mod exact;
pub mod fagin;
pub mod kwiksort;
pub mod mc4;
pub mod medrank;
pub mod pick_a_perm;
pub mod repeat_choice;

use crate::dataset::Dataset;
use crate::element::Element;
use crate::pairs::PairTable;
use crate::ranking::Ranking;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Per-run context: seeded randomness, optional deadline, and outcome
/// flags.
///
/// The paper limits every algorithm to two hours per dataset (§6.2.4);
/// [`AlgoContext::deadline`] plays that role. Algorithms that hit the
/// deadline return their best effort and set [`AlgoContext::timed_out`].
#[derive(Debug)]
pub struct AlgoContext {
    /// Random source for the randomized algorithms (seeded for
    /// reproducibility).
    pub rng: StdRng,
    /// Absolute wall-clock cutoff, if any.
    pub deadline: Option<Instant>,
    /// Set by an algorithm that had to stop early.
    pub timed_out: bool,
    /// Set by exact solvers when optimality was *proved* (not just a best
    /// incumbent found).
    pub proved_optimal: bool,
}

impl AlgoContext {
    /// A context with a seeded RNG and no deadline.
    pub fn seeded(seed: u64) -> Self {
        AlgoContext {
            rng: StdRng::seed_from_u64(seed),
            deadline: None,
            timed_out: false,
            proved_optimal: false,
        }
    }

    /// A context with a time budget starting now.
    pub fn seeded_with_budget(seed: u64, budget: Duration) -> Self {
        let mut ctx = AlgoContext::seeded(seed);
        ctx.deadline = Some(Instant::now() + budget);
        ctx
    }

    /// `true` (and records the timeout) once the deadline has passed.
    #[inline]
    pub fn expired(&mut self) -> bool {
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                self.timed_out = true;
                return true;
            }
        }
        false
    }

    /// Clear the per-run outcome flags (harnesses reuse contexts).
    pub fn reset_flags(&mut self) {
        self.timed_out = false;
        self.proved_optimal = false;
    }
}

/// A consensus-ranking algorithm.
///
/// `run` must return a ranking over exactly the dataset's elements
/// (checked by `debug_assert`; also enforced by the integration tests for
/// every registered algorithm).
pub trait ConsensusAlgorithm: Send + Sync {
    /// Display name, matching the paper's tables (e.g. `"MEDRank(0.5)"`).
    fn name(&self) -> String;

    /// Whether the algorithm can place elements in the same bucket
    /// (Table 1's "can produce ties" column, after adaptation).
    fn produces_ties(&self) -> bool;

    /// Compute a consensus ranking for `data`.
    fn run(&self, data: &Dataset, ctx: &mut AlgoContext) -> Ranking;
}

/// Wrapper running a randomized base algorithm `runs` times and keeping the
/// best result by generalized Kemeny score — the paper's "Min" variants
/// (KwikSortMin, RepeatChoiceMin, §6.2.1).
pub struct BestOf {
    base: Box<dyn ConsensusAlgorithm>,
    runs: usize,
    name: String,
}

impl BestOf {
    /// Wrap `base`, running it `runs` times.
    pub fn new(base: Box<dyn ConsensusAlgorithm>, runs: usize, name: &str) -> Self {
        assert!(runs >= 1);
        BestOf {
            base,
            runs,
            name: name.to_owned(),
        }
    }
}

impl ConsensusAlgorithm for BestOf {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn produces_ties(&self) -> bool {
        self.base.produces_ties()
    }

    fn run(&self, data: &Dataset, ctx: &mut AlgoContext) -> Ranking {
        let pairs = PairTable::build(data);
        let mut best: Option<(u64, Ranking)> = None;
        for _ in 0..self.runs {
            let cand = self.base.run(data, ctx);
            let score = pairs.score(&cand);
            if best.as_ref().map_or(true, |(s, _)| score < *s) {
                best = Some((score, cand));
            }
            if ctx.expired() {
                break;
            }
        }
        best.expect("runs >= 1").1
    }
}

/// Sort elements by score and group equal scores into buckets — the
/// paper's §4.1.3 tie adaptation shared by the positional algorithms.
///
/// `ascending = true` ranks the smallest score first.
pub(crate) fn ranking_from_scores<T: Ord + Copy>(scores: &[T], ascending: bool) -> Ranking {
    let mut order: Vec<u32> = (0..scores.len() as u32).collect();
    if ascending {
        order.sort_by_key(|&id| scores[id as usize]);
    } else {
        order.sort_by_key(|&id| std::cmp::Reverse(scores[id as usize]));
    }
    let mut buckets: Vec<Vec<Element>> = Vec::new();
    for &id in &order {
        let start_new = match buckets.last() {
            None => true,
            Some(last) => {
                let prev = last[0].index();
                scores[prev] != scores[id as usize]
            }
        };
        if start_new {
            buckets.push(Vec::new());
        }
        buckets.last_mut().expect("just pushed").push(Element(id));
    }
    Ranking::from_buckets(buckets).expect("scores grouping is a valid ranking")
}

/// The algorithm set the paper evaluated (Table 4 / Table 5 rows), in the
/// tables' alphabetical order. `min_runs` configures the "Min" variants'
/// repeat count (the paper used "a large number of runs"; the harness
/// default is 20).
pub fn paper_algorithms(min_runs: usize) -> Vec<Box<dyn ConsensusAlgorithm>> {
    vec![
        Box::new(ailon::AilonThreeHalves::default()),
        Box::new(bioconsert::BioConsert::default()),
        Box::new(borda::BordaCount),
        Box::new(copeland::CopelandMethod),
        Box::new(fagin::FaginDyn::large()),
        Box::new(fagin::FaginDyn::small()),
        Box::new(kwiksort::KwikSort),
        Box::new(BestOf::new(Box::new(kwiksort::KwikSort), min_runs, "KwikSortMin")),
        Box::new(medrank::MedRank::new(0.5)),
        Box::new(medrank::MedRank::new(0.7)),
        Box::new(pick_a_perm::PickAPerm),
        Box::new(repeat_choice::RepeatChoice),
        Box::new(BestOf::new(
            Box::new(repeat_choice::RepeatChoice),
            min_runs,
            "RepeatChoiceMin",
        )),
    ]
}

/// The exact solver (reported as "ExactAlgorithm"/"ExactSolution" in the
/// paper's figures).
pub fn exact_algorithm() -> Box<dyn ConsensusAlgorithm> {
    Box::new(exact::ExactAlgorithm::default())
}

/// Non-bold Table 1 rows, implemented as extensions (see DESIGN.md §7).
pub fn extended_algorithms() -> Vec<Box<dyn ConsensusAlgorithm>> {
    vec![
        Box::new(chanas::Chanas),
        Box::new(chanas::ChanasBoth),
        Box::new(bnb::BranchAndBound::default()),
        Box::new(mc4::Mc4::default()),
        Box::new(copeland::CopelandPairwise),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranking_from_scores_groups_equal() {
        // scores: e0=5, e1=2, e2=5, e3=1 → ascending [{3},{1},{0,2}]
        let r = ranking_from_scores(&[5u64, 2, 5, 1], true);
        assert_eq!(r, Ranking::from_slices(&[&[3], &[1], &[0, 2]]).unwrap());
        let d = ranking_from_scores(&[5u64, 2, 5, 1], false);
        assert_eq!(d, Ranking::from_slices(&[&[0, 2], &[1], &[3]]).unwrap());
    }

    #[test]
    fn registry_names_are_unique_and_paper_spelled() {
        let names: Vec<String> = paper_algorithms(3).iter().map(|a| a.name()).collect();
        let expected = [
            "Ailon3/2",
            "BioConsert",
            "BordaCount",
            "CopelandMethod",
            "FaginLarge",
            "FaginSmall",
            "KwikSort",
            "KwikSortMin",
            "MEDRank(0.5)",
            "MEDRank(0.7)",
            "Pick-a-Perm",
            "RepeatChoice",
            "RepeatChoiceMin",
        ];
        assert_eq!(names, expected);
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
    }

    #[test]
    fn context_deadline_expiry() {
        let mut ctx = AlgoContext::seeded_with_budget(0, Duration::from_secs(0));
        assert!(ctx.expired());
        assert!(ctx.timed_out);
        ctx.reset_flags();
        assert!(!ctx.timed_out);
        let mut free = AlgoContext::seeded(0);
        assert!(!free.expired());
    }
}
