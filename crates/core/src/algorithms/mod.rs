//! The rank-aggregation algorithm suite (Table 1 of the paper).
//!
//! Every algorithm the paper re-implemented and evaluated (bold rows of
//! Table 1) is available through [`paper_algorithms`]; the remaining rows
//! (Chanas, ChanasBoth, BnB, MC4) plus a classic pairwise Copeland are
//! implemented as extensions in [`extended_algorithms`]. Both panels are
//! thin named presets over the typed [`crate::engine`] registry
//! ([`crate::engine::AlgoSpec`]); new callers should prefer the engine's
//! request/report API and treat [`ConsensusAlgorithm`] as the internal
//! kernel trait it now is.
//!
//! | Name | Class | Produces ties | Module |
//! |------|-------|---------------|--------|
//! | Ailon 3/2 | \[K\] linear programming | with rounding | [`ailon`] |
//! | BioConsert | \[G\] local search | yes | [`bioconsert`] |
//! | BordaCount | \[P\] sort by score | adapted | [`borda`] |
//! | CopelandMethod | \[P\] sort by score | adapted | [`copeland`] |
//! | FaginDyn (Small/Large) | \[G\] dynamic programming | yes | [`fagin`] |
//! | KwikSort (+Min) | \[K\] divide & conquer | adapted (3-way pivot) | [`kwiksort`] |
//! | MEDRank(h) | \[P\] extract order | adapted | [`medrank`] |
//! | Pick-a-Perm | \[K\] naive | yes (returns an input) | [`pick_a_perm`] |
//! | RepeatChoice (+Min) | \[K\] sort by order | adapted | [`repeat_choice`] |
//! | ExactAlgorithm | branch & bound / LPB (§4.2) | yes | [`exact`] |
//! | Chanas / ChanasBoth | \[K\] local search | no | [`chanas`] |
//! | BnB | \[K\] branch & bound | no | [`bnb`] |
//! | MC4 | \[P\] hybrid (Markov chain) | yes | [`mc4`] |
//!
//! # Contexts, parallelism, determinism
//!
//! [`AlgoContext`] is the per-run environment: seeded randomness, an
//! optional wall-clock deadline, outcome flags, and the shared
//! [`CostMatrix`] cache. It is designed for multi-threaded use:
//!
//! * outcome flags live behind atomics shared by every context cloned
//!   from the same run ([`AlgoContext::worker`]), so a worker hitting the
//!   deadline is visible to all its siblings and to the caller;
//! * [`AlgoContext::worker`]`(i)` derives a child context whose RNG stream
//!   depends only on the base seed and `i` — **not** on scheduling — which
//!   is what makes parallel multi-start runs reproducible;
//! * [`AlgoContext::cost_matrix`] returns the dataset's shared cost
//!   matrix, building it at most once per dataset per context family (see
//!   the [`crate::pairs`] module docs for the contract).
//!
//! # Anytime execution
//!
//! Every iterative algorithm polls [`AlgoContext::checkpoint`] at its
//! natural stopping points — one call that observes both the wall-clock
//! deadline and cooperative cancellation — and publishes improving
//! solutions through [`AlgoContext::offer_incumbent`]. The engine's job
//! API ([`crate::engine::Engine::submit`]) builds on exactly this surface:
//! streaming incumbents, harvestable best-so-far, prompt cancellation.
//! Offers are observational — they never influence the computation — so
//! the determinism contract above is unaffected.

pub mod ailon;
pub mod bioconsert;
pub mod bnb;
pub mod borda;
pub mod chanas;
pub mod copeland;
pub mod exact;
pub mod fagin;
pub mod kwiksort;
pub mod mc4;
pub mod medrank;
pub mod pick_a_perm;
pub mod repeat_choice;

use crate::dataset::Dataset;
use crate::element::Element;
use crate::engine::job::{CancelToken, IncumbentSink};
use crate::engine::{AlgoSpec, ExecPolicy, KernelLane};
use crate::pairs::CostMatrix;
use crate::parallel;
use crate::ranking::Ranking;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A previous consensus seeding a re-solve over an edited dataset
/// (DESIGN.md §13).
///
/// Carried by [`AlgoContext`] (set through
/// [`crate::engine::AggregationRequest::with_warm_start`], propagated to
/// every worker). Consumers and their guarantees:
///
/// * **BioConsert** treats the hint as one extra start — warm results are
///   never worse than cold at equal budget (the hint start only wins on
///   strict improvement);
/// * **Chanas / ChanasBoth** seed their descent from the tie-flattened
///   hint instead of a random input — results never score worse than the
///   flattened hint;
/// * **Exact / BnB** take `min(hint score, their own heuristic
///   incumbent)` as the initial upper bound, keeping whichever ranking
///   achieves it as the incumbent witness — a tight prior bound prunes
///   most of the search after a small edit;
/// * **BestOf** and the other wrappers inherit the hint through worker
///   contexts.
///
/// The hint must be a complete ranking of the run's dataset and `score`
/// must be its generalized Kemeny score against that dataset — the engine
/// validates both before attaching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarmStart {
    /// The prior consensus ranking.
    pub ranking: Ranking,
    /// Its generalized Kemeny score against the current dataset.
    pub score: u64,
}

/// Outcome flags shared by a context and all its workers — but, unlike
/// the pre-engine `SharedCtx`, *not* by sibling requests: the engine gives
/// every request its own flags while sharing only the [`MatrixCache`], so
/// one request's timeout can never be mis-attributed to a neighbour.
#[derive(Debug, Default)]
struct OutcomeFlags {
    /// Set by an algorithm that had to stop early.
    timed_out: AtomicBool,
    /// Set by exact solvers when optimality was *proved* (not just a best
    /// incumbent found).
    proved_optimal: AtomicBool,
    /// Set when a [`AlgoContext::checkpoint`] observed a cancellation
    /// request — the run stopped because the caller asked, not because
    /// time ran out.
    cancelled: AtomicBool,
    /// How many [`AlgoContext::checkpoint`] polls this run performed,
    /// summed across workers — the denominator of the per-checkpoint
    /// overhead argument (DESIGN.md §15): one relaxed add per poll, cheap
    /// enough to leave on unconditionally.
    checkpoints: AtomicU64,
}

/// What an algorithm should do after a [`AlgoContext::checkpoint`].
///
/// The checkpoint folds the two early-stop sources — the wall-clock
/// deadline and cooperative cancellation
/// ([`crate::engine::job::CancelToken`]) — into one answer, replacing the
/// earlier ad-hoc `expired()`/`set_timed_out()` discipline. `#[must_use]`:
/// ignoring a `Stop` keeps the run burning budget after the caller asked
/// it to stop.
#[must_use]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep computing.
    Continue,
    /// Stop at the nearest consistent point and return the best incumbent
    /// published so far (the checkpoint already recorded *why* in the
    /// outcome flags).
    Stop,
}

impl Control {
    /// `true` when the algorithm should stop now.
    #[inline]
    pub fn is_stop(self) -> bool {
        self == Control::Stop
    }

    /// `true` when the algorithm may keep computing.
    #[inline]
    pub fn is_continue(self) -> bool {
        self == Control::Continue
    }
}

/// Cache key: dataset shape plus a 128-bit content fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct MatrixKey {
    n: usize,
    m: usize,
    fp: (u64, u64),
}

impl MatrixKey {
    /// `O(m·n)` content fingerprint over every ranking's position vector —
    /// cheap next to the `O(m·n²)` build it guards against repeating.
    pub(crate) fn of(data: &Dataset) -> Self {
        let mut h1 = 0x9E37_79B9_7F4A_7C15u64;
        let mut h2 = 0xC2B2_AE3D_27D4_EB4Fu64;
        let mut absorb = |v: u64| {
            h1 = mix(h1 ^ v);
            h2 = mix(h2 ^ v.rotate_left(17) ^ 0xA5A5_A5A5_A5A5_A5A5);
        };
        absorb(data.n() as u64);
        absorb(data.m() as u64);
        for r in data.rankings() {
            for &p in r.positions() {
                absorb(p as u64);
            }
        }
        MatrixKey {
            n: data.n(),
            m: data.m(),
            fp: (h1, h2),
        }
    }
}

/// SplitMix64 finalizer — avalanching 64-bit mix.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Matrices kept per cache before FIFO eviction (the exact solver's block
/// decomposition touches several small sub-datasets; the engine's serving
/// traffic rotates through recent datasets).
const MATRIX_CACHE_CAP: usize = 8;

/// A fingerprint-keyed cache of built [`CostMatrix`]es, shareable across
/// contexts.
///
/// Every [`AlgoContext`] owns (an `Arc` to) one of these; a context and
/// all its [`AlgoContext::worker`]s share it, and the engine
/// ([`crate::engine::Engine`]) threads a single cache through *every*
/// request it serves, so concurrent requests over the same dataset pay for
/// at most one `O(m·n²)` build between them. Bounded FIFO eviction (8
/// entries).
#[derive(Debug, Default)]
pub struct MatrixCache {
    matrices: Mutex<Vec<(MatrixKey, Arc<CostMatrix>)>>,
    /// Builds actually performed (observability: cache hits don't count).
    builds: AtomicUsize,
}

impl MatrixCache {
    /// An empty cache.
    pub fn new() -> Self {
        MatrixCache::default()
    }

    /// The dataset's cost matrix, building it on first use.
    ///
    /// The cache lock is held across the build on purpose: when many
    /// concurrent requests ask for the same dataset, exactly one pays the
    /// `O(m·n²)` build and the rest block briefly and then share it.
    pub fn get(&self, data: &Dataset) -> Arc<CostMatrix> {
        self.get_with_flag(data).0
    }

    /// [`Self::get`], also reporting whether this call performed the
    /// `O(m·n²)` build (`true`) or found the matrix cached (`false`) —
    /// what the engine's telemetry uses to split matrix-build time from
    /// cache hits per job.
    pub fn get_with_flag(&self, data: &Dataset) -> (Arc<CostMatrix>, bool) {
        let key = MatrixKey::of(data);
        let mut cache = self.matrices.lock().expect("matrix cache poisoned");
        if let Some((_, matrix)) = cache.iter().find(|(k, _)| *k == key) {
            return (Arc::clone(matrix), false);
        }
        let matrix = Arc::new(CostMatrix::build(data));
        self.builds.fetch_add(1, Ordering::Relaxed);
        if cache.len() >= MATRIX_CACHE_CAP {
            cache.remove(0);
        }
        cache.push((key, Arc::clone(&matrix)));
        (matrix, true)
    }

    /// Prime the cache with an already-built matrix for `data` (e.g. a
    /// [`crate::session::DatasetSession`]'s delta-patched one), so the
    /// next [`MatrixCache::get`] is a hit instead of an `O(m·n²)` build.
    ///
    /// `matrix` must equal `CostMatrix::build(data)` bit for bit — a
    /// mismatched matrix would silently corrupt every consumer keyed to
    /// this dataset. The session's patches are property-tested to that
    /// contract, and debug builds re-verify it here.
    pub fn insert(&self, data: &Dataset, matrix: Arc<CostMatrix>) {
        debug_assert_eq!(
            *matrix,
            CostMatrix::build(data),
            "primed cost matrix must be bit-identical to a cold rebuild"
        );
        let key = MatrixKey::of(data);
        let mut cache = self.matrices.lock().expect("matrix cache poisoned");
        if cache.iter().any(|(k, _)| *k == key) {
            return;
        }
        if cache.len() >= MATRIX_CACHE_CAP {
            cache.remove(0);
        }
        cache.push((key, matrix));
    }

    /// How many `O(m·n²)` builds this cache has actually performed.
    pub fn builds(&self) -> usize {
        self.builds.load(Ordering::Relaxed)
    }

    /// Matrices currently resident.
    pub fn len(&self) -> usize {
        self.matrices.lock().expect("matrix cache poisoned").len()
    }

    /// Whether the cache holds no matrices yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cache key for `data` (dataset shape + content fingerprint) —
    /// what the engine groups batch requests by.
    pub(crate) fn fingerprint(data: &Dataset) -> MatrixKey {
        MatrixKey::of(data)
    }
}

/// Per-run context: seeded randomness, optional deadline, outcome flags,
/// and the shared cost-matrix cache.
///
/// The paper limits every algorithm to two hours per dataset (§6.2.4);
/// [`AlgoContext::deadline`] plays that role. Algorithms that hit the
/// deadline return their best effort and set the timeout flag (read it
/// with [`AlgoContext::timed_out`]).
#[derive(Debug)]
pub struct AlgoContext {
    /// Random source for the randomized algorithms (seeded for
    /// reproducibility).
    pub rng: StdRng,
    /// Absolute wall-clock cutoff, if any.
    pub deadline: Option<Instant>,
    /// Seed this context's RNG (and its workers' streams) derive from.
    seed: u64,
    /// Outcome flags shared with this context's workers only.
    flags: Arc<OutcomeFlags>,
    /// Cost-matrix cache — possibly shared much wider (engine-wide).
    cache: Arc<MatrixCache>,
    /// Where this run publishes improving incumbents, if anyone listens.
    sink: Option<Arc<IncumbentSink>>,
    /// Cooperative cancellation flag shared with the job's handle.
    cancel: CancelToken,
    /// Previous-consensus hint for warm-started re-solves, if any.
    warm: Option<Arc<WarmStart>>,
    /// The pairwise-cost lane this run resolved to (set by the engine;
    /// defaults to dense for bare contexts).
    lane: KernelLane,
}

impl AlgoContext {
    /// A context with a seeded RNG, no deadline, and a private matrix
    /// cache.
    pub fn seeded(seed: u64) -> Self {
        AlgoContext::with_cache(seed, Arc::new(MatrixCache::new()))
    }

    /// A context with a seeded RNG and an externally shared matrix cache —
    /// how the engine gives every request its own outcome flags while all
    /// requests reuse one set of cost-matrix builds.
    pub fn with_cache(seed: u64, cache: Arc<MatrixCache>) -> Self {
        AlgoContext {
            rng: StdRng::seed_from_u64(seed),
            deadline: None,
            seed,
            flags: Arc::new(OutcomeFlags::default()),
            cache,
            sink: None,
            cancel: CancelToken::new(),
            warm: None,
            lane: KernelLane::default(),
        }
    }

    /// A context with a time budget starting now.
    pub fn seeded_with_budget(seed: u64, budget: Duration) -> Self {
        let mut ctx = AlgoContext::seeded(seed);
        ctx.deadline = Some(Instant::now() + budget);
        ctx
    }

    /// Derive worker `stream`'s context: an independent RNG stream that is
    /// a pure function of `(base seed, stream)`, sharing this context's
    /// deadline, outcome flags, and matrix cache.
    ///
    /// This is the determinism contract for parallel runs: however work is
    /// scheduled across threads, worker `i` always sees the same stream,
    /// so — in a deadline-free context — "best of N parallel workers" is
    /// reproducible run to run and bit-identical to the sequential
    /// `for i in 0..N` loop. With a [`Self::deadline`] set, results are
    /// best-effort and may depend on which workers beat the cutoff.
    pub fn worker(&self, stream: u64) -> AlgoContext {
        let worker_seed = mix(self.seed ^ mix(stream.wrapping_add(0x9E37_79B9_7F4A_7C15)));
        AlgoContext {
            rng: StdRng::seed_from_u64(worker_seed),
            deadline: self.deadline,
            seed: worker_seed,
            flags: Arc::clone(&self.flags),
            cache: Arc::clone(&self.cache),
            sink: self.sink.clone(),
            cancel: self.cancel.clone(),
            warm: self.warm.clone(),
            lane: self.lane,
        }
    }

    /// The dataset's shared cost matrix, building it on first use.
    ///
    /// Matrices are cached in this context's [`MatrixCache`] — shared by
    /// its whole [`Self::worker`] family, and (under the engine) by every
    /// concurrent request — so `BestOf(BioConsert)` and the exact solver's
    /// incumbent heuristics all reuse one build instead of paying
    /// `O(m·n²)` per invocation.
    pub fn cost_matrix(&self, data: &Dataset) -> Arc<CostMatrix> {
        self.cache.get(data)
    }

    /// The cooperative control checkpoint every iterative algorithm polls
    /// at its natural stopping points (per sweep, per node-expansion
    /// stride, per cutting-plane round, per repeat).
    ///
    /// One call folds both early-stop sources together and records which
    /// one fired: a pending cancellation ([`Self::cancel_token`]) sets the
    /// cancelled flag, an expired [`Self::deadline`] sets the timed-out
    /// flag. On [`Control::Stop`] the algorithm should stop at the nearest
    /// consistent point and return its best incumbent. Cancellation takes
    /// precedence over the deadline (a cancelled run reports
    /// [`crate::engine::Outcome::Cancelled`], not `TimedOut`).
    #[inline]
    pub fn checkpoint(&self) -> Control {
        self.flags.checkpoints.fetch_add(1, Ordering::Relaxed);
        if self.cancel.is_cancelled() {
            self.flags.cancelled.store(true, Ordering::Relaxed);
            return Control::Stop;
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                self.flags.timed_out.store(true, Ordering::Relaxed);
                return Control::Stop;
            }
        }
        Control::Continue
    }

    /// Publish a candidate consensus to this run's incumbent sink, if one
    /// is attached. Only strict score improvements are recorded, so
    /// algorithms can offer freely (per sweep, per repeat, per
    /// branch-and-bound improvement) without checking the best themselves.
    /// A no-op — in particular, no clone — when nobody listens.
    #[inline]
    pub fn offer_incumbent(&self, ranking: &Ranking, score: u64) {
        if let Some(sink) = &self.sink {
            sink.offer(ranking, score);
        }
    }

    /// Publish a certified lower bound on the optimal Kemeny score to
    /// this run's incumbent sink, if one is attached. Only strict
    /// improvements (a *larger* bound) are recorded, so bounding solvers
    /// can offer freely — per branch-and-bound frontier update, per LP
    /// cutting-plane round — without tracking the best themselves. The
    /// caller vouches that **every** consensus of the run's dataset
    /// scores at least `lb`; bounds that are only valid for a
    /// sub-problem (a decomposition block, a permutation-only search
    /// space) must not be offered (see [`exact`] for how block bounds
    /// are summed into a whole-dataset bound instead). A no-op when
    /// nobody listens.
    #[inline]
    pub fn offer_lower_bound(&self, lb: u64) {
        if let Some(sink) = &self.sink {
            sink.offer_lower_bound(lb);
        }
    }

    /// Whether an incumbent sink is attached — lets algorithms skip
    /// building a snapshot `Ranking` for [`Self::offer_incumbent`] when
    /// nobody is listening.
    #[inline]
    pub fn has_sink(&self) -> bool {
        self.sink.is_some()
    }

    /// Whether the attached sink is being live-streamed (a
    /// [`crate::engine::JobHandle`] holds its event channel). Blocking
    /// `run`/`run_batch` record traces through a subscriber-less sink;
    /// algorithms gate work whose *only* value is an early streamed
    /// incumbent (not a better result) on this instead of [`Self::has_sink`].
    #[inline]
    pub fn has_subscriber(&self) -> bool {
        self.sink.as_ref().is_some_and(|s| s.has_subscriber())
    }

    /// Attach the incumbent sink this run should publish to. Workers
    /// derived *afterwards* share it; the engine attaches one per request.
    pub fn attach_sink(&mut self, sink: Arc<IncumbentSink>) {
        self.sink = Some(sink);
    }

    /// Detach the sink (returning it), muting [`Self::offer_incumbent`].
    ///
    /// The exact solver uses this around its block decomposition:
    /// sub-instance incumbents live in a remapped element space, so
    /// publishing them to the whole-dataset job would be wrong.
    pub fn take_sink(&mut self) -> Option<Arc<IncumbentSink>> {
        self.sink.take()
    }

    /// Restore a sink previously taken with [`Self::take_sink`].
    pub fn set_sink(&mut self, sink: Option<Arc<IncumbentSink>>) {
        self.sink = sink;
    }

    /// Attach a warm-start hint (a previous consensus over the run's
    /// dataset). Workers derived *afterwards* share it; the engine
    /// attaches one per warm-started request after validating it against
    /// the dataset.
    pub fn set_warm_start(&mut self, warm: Arc<WarmStart>) {
        self.warm = Some(warm);
    }

    /// The warm-start hint, if one is attached. Algorithms consult this
    /// to seed their search (see [`WarmStart`] for the per-consumer
    /// contract); observing it never weakens a result.
    #[inline]
    pub fn warm_start(&self) -> Option<&WarmStart> {
        self.warm.as_deref()
    }

    /// Pin the pairwise-cost lane for this run (the engine sets the
    /// resolved [`KernelLane`] before invoking the kernel; workers
    /// inherit it).
    pub fn set_lane(&mut self, lane: KernelLane) {
        self.lane = lane;
    }

    /// The pairwise-cost lane this run resolved to. Lane-aware kernels
    /// (MC4) consult it to pick their [`crate::positional::CostProvider`];
    /// bare contexts default to [`KernelLane::Dense`].
    #[inline]
    pub fn lane(&self) -> KernelLane {
        self.lane
    }

    /// The cancellation token [`Self::checkpoint`] observes. Clone it and
    /// call [`CancelToken::cancel`] from any thread to stop the run
    /// cooperatively.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Replace the cancellation token (the engine wires the job handle's
    /// token in before the run starts).
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.cancel = token;
    }

    /// Whether a checkpoint of this run observed a cancellation request.
    #[inline]
    pub fn cancelled(&self) -> bool {
        self.flags.cancelled.load(Ordering::Relaxed)
    }

    /// `true` (and records the timeout) once the deadline has passed.
    ///
    /// Prefer [`Self::checkpoint`] in algorithm loops — it also observes
    /// cancellation; `expired` remains for deadline-only call sites and
    /// tests.
    #[inline]
    pub fn expired(&self) -> bool {
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                self.flags.timed_out.store(true, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Whether any worker of this run stopped early.
    #[inline]
    pub fn timed_out(&self) -> bool {
        self.flags.timed_out.load(Ordering::Relaxed)
    }

    /// Record an early stop (deadline, size cap, "no result").
    #[inline]
    pub fn set_timed_out(&self) {
        self.flags.timed_out.store(true, Ordering::Relaxed);
    }

    /// Whether an exact solver *proved* optimality this run.
    #[inline]
    pub fn proved_optimal(&self) -> bool {
        self.flags.proved_optimal.load(Ordering::Relaxed)
    }

    /// Record whether optimality was proved.
    #[inline]
    pub fn set_proved_optimal(&self, proved: bool) {
        self.flags.proved_optimal.store(proved, Ordering::Relaxed);
    }

    /// How many [`Self::checkpoint`] polls this run has performed so far,
    /// across all its workers.
    #[inline]
    pub fn checkpoints(&self) -> u64 {
        self.flags.checkpoints.load(Ordering::Relaxed)
    }

    /// Clear the per-run outcome flags (harnesses reuse contexts).
    pub fn reset_flags(&self) {
        self.flags.timed_out.store(false, Ordering::Relaxed);
        self.flags.proved_optimal.store(false, Ordering::Relaxed);
        self.flags.cancelled.store(false, Ordering::Relaxed);
        self.flags.checkpoints.store(0, Ordering::Relaxed);
    }
}

/// A consensus-ranking algorithm.
///
/// `run` must return a ranking over exactly the dataset's elements
/// (checked by `debug_assert`; also enforced by the integration tests for
/// every registered algorithm).
pub trait ConsensusAlgorithm: Send + Sync {
    /// Display name, matching the paper's tables (e.g. `"MEDRank(0.5)"`).
    fn name(&self) -> String;

    /// Whether the algorithm can place elements in the same bucket
    /// (Table 1's "can produce ties" column, after adaptation).
    fn produces_ties(&self) -> bool;

    /// Compute a consensus ranking for `data`.
    fn run(&self, data: &Dataset, ctx: &mut AlgoContext) -> Ranking;
}

/// Wrapper running a randomized base algorithm `runs` times and keeping the
/// best result by generalized Kemeny score — the paper's "Min" variants
/// (KwikSortMin, RepeatChoiceMin, §6.2.1).
///
/// Repeats execute on parallel workers (one [`AlgoContext::worker`] stream
/// per repeat, so results are reproducible and thread-count independent)
/// and share the context's cost matrix instead of building one per repeat.
pub struct BestOf {
    base: Box<dyn ConsensusAlgorithm>,
    runs: usize,
    name: String,
    /// Force the sequential path (used by the determinism tests; the
    /// parallel path is bit-identical by construction).
    pub force_sequential: bool,
}

impl BestOf {
    /// Wrap `base`, running it `runs` times.
    pub fn new(base: Box<dyn ConsensusAlgorithm>, runs: usize, name: &str) -> Self {
        assert!(runs >= 1);
        BestOf {
            base,
            runs,
            name: name.to_owned(),
            force_sequential: false,
        }
    }
}

impl ConsensusAlgorithm for BestOf {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn produces_ties(&self) -> bool {
        self.base.produces_ties()
    }

    fn run(&self, data: &Dataset, ctx: &mut AlgoContext) -> Ranking {
        let pairs = ctx.cost_matrix(data);
        // A repeat costs at least one n² table scan; below the threshold
        // worker spawning would dominate the repeats themselves (same
        // gating idea as `CostMatrix::build`). Results are unaffected —
        // the two paths are bit-identical.
        let work = self.runs * data.n() * data.n();
        let threads = if self.force_sequential || work < 1 << 18 {
            1
        } else {
            parallel::num_threads()
        };
        let repeats: Vec<usize> = (0..self.runs).collect();
        let scored = parallel::par_map_slice(&repeats, threads, |_, &r| {
            let mut worker = ctx.worker(r as u64);
            if worker.checkpoint().is_stop() {
                return None;
            }
            let cand = self.base.run(data, &mut worker);
            let score = pairs.score(&cand);
            // Each finished repeat is an anytime incumbent: a cancelled or
            // timed-out BestOf job still hands back the best repeat that
            // beat the cutoff.
            worker.offer_incumbent(&cand, score);
            Some((score, cand))
        });
        scored
            .into_iter()
            .flatten()
            .min_by_key(|(score, _)| *score)
            .map(|(_, cand)| cand)
            // Every repeat expired before starting: fall back to one
            // best-effort run so the caller still gets a ranking.
            .unwrap_or_else(|| self.base.run(data, &mut ctx.worker(0)))
    }
}

/// Sort elements by score and group equal scores into buckets — the
/// paper's §4.1.3 tie adaptation shared by the positional algorithms.
///
/// `ascending = true` ranks the smallest score first.
pub(crate) fn ranking_from_scores<T: Ord + Copy>(scores: &[T], ascending: bool) -> Ranking {
    let mut order: Vec<u32> = (0..scores.len() as u32).collect();
    if ascending {
        order.sort_by_key(|&id| scores[id as usize]);
    } else {
        order.sort_by_key(|&id| std::cmp::Reverse(scores[id as usize]));
    }
    let mut buckets: Vec<Vec<Element>> = Vec::new();
    for &id in &order {
        let start_new = match buckets.last() {
            None => true,
            Some(last) => {
                let prev = last[0].index();
                scores[prev] != scores[id as usize]
            }
        };
        if start_new {
            buckets.push(Vec::new());
        }
        buckets.last_mut().expect("just pushed").push(Element(id));
    }
    Ranking::from_buckets(buckets).expect("scores grouping is a valid ranking")
}

/// The algorithm set the paper evaluated (Table 4 / Table 5 rows), in the
/// tables' alphabetical order. `min_runs` configures the "Min" variants'
/// repeat count (the paper used "a large number of runs"; the harness
/// default is 20).
pub fn paper_algorithms(min_runs: usize) -> Vec<Box<dyn ConsensusAlgorithm>> {
    build_panel(crate::engine::paper_panel(min_runs), ExecPolicy::parallel())
}

/// [`paper_algorithms`] with every multi-start member pinned to its
/// sequential path. Timing experiments use this so measured seconds stay
/// single-threaded (comparable to the paper's and across hosts); in
/// deadline-free runs results are bit-identical to the parallel panel's.
///
/// Residual caveat: the context's cost-matrix build still auto-parallelizes
/// past `CostMatrix::build`'s work threshold (`m·n² ≥ 2²²`, i.e. beyond the
/// harness's current sweep ranges); pre-build with
/// [`CostMatrix::build_with_threads`]`(data, 1)` if a future experiment
/// crosses it and needs strictly single-threaded seconds.
pub fn paper_algorithms_sequential(min_runs: usize) -> Vec<Box<dyn ConsensusAlgorithm>> {
    build_panel(
        crate::engine::paper_panel(min_runs),
        ExecPolicy::sequential(),
    )
}

/// Instantiate every spec of a panel under one execution policy.
fn build_panel(specs: Vec<AlgoSpec>, policy: ExecPolicy) -> Vec<Box<dyn ConsensusAlgorithm>> {
    specs.iter().map(|s| s.build(policy)).collect()
}

/// The exact solver (reported as "ExactAlgorithm"/"ExactSolution" in the
/// paper's figures).
pub fn exact_algorithm() -> Box<dyn ConsensusAlgorithm> {
    AlgoSpec::Exact.build(ExecPolicy::parallel())
}

/// Non-bold Table 1 rows, implemented as extensions (see DESIGN.md §7).
pub fn extended_algorithms() -> Vec<Box<dyn ConsensusAlgorithm>> {
    build_panel(crate::engine::extended_panel(), ExecPolicy::parallel())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranking_from_scores_groups_equal() {
        // scores: e0=5, e1=2, e2=5, e3=1 → ascending [{3},{1},{0,2}]
        let r = ranking_from_scores(&[5u64, 2, 5, 1], true);
        assert_eq!(r, Ranking::from_slices(&[&[3], &[1], &[0, 2]]).unwrap());
        let d = ranking_from_scores(&[5u64, 2, 5, 1], false);
        assert_eq!(d, Ranking::from_slices(&[&[0, 2], &[1], &[3]]).unwrap());
    }

    #[test]
    fn registry_names_are_unique_and_paper_spelled() {
        let names: Vec<String> = paper_algorithms(3).iter().map(|a| a.name()).collect();
        let expected = [
            "Ailon3/2",
            "BioConsert",
            "BordaCount",
            "CopelandMethod",
            "FaginLarge",
            "FaginSmall",
            "KwikSort",
            "KwikSortMin",
            "MEDRank(0.5)",
            "MEDRank(0.7)",
            "Pick-a-Perm",
            "RepeatChoice",
            "RepeatChoiceMin",
        ];
        assert_eq!(names, expected);
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
    }

    #[test]
    fn context_deadline_expiry() {
        let ctx = AlgoContext::seeded_with_budget(0, Duration::from_secs(0));
        assert!(ctx.expired());
        assert!(ctx.timed_out());
        ctx.reset_flags();
        assert!(!ctx.timed_out());
        let free = AlgoContext::seeded(0);
        assert!(!free.expired());
    }

    #[test]
    fn worker_streams_are_deterministic_and_distinct() {
        use rand::Rng;
        let base = AlgoContext::seeded(7);
        let mut a0 = base.worker(0);
        let mut a0_again = base.worker(0);
        let mut a1 = base.worker(1);
        let (x, y, z) = (
            a0.rng.random::<u64>(),
            a0_again.rng.random::<u64>(),
            a1.rng.random::<u64>(),
        );
        assert_eq!(x, y, "worker streams must be pure functions of (seed, i)");
        assert_ne!(x, z, "distinct workers must get distinct streams");
    }

    #[test]
    fn worker_flags_propagate_to_the_base_context() {
        let base = AlgoContext::seeded(3);
        let w = base.worker(5);
        assert!(!base.timed_out());
        w.set_timed_out();
        assert!(base.timed_out());
        w.set_proved_optimal(true);
        assert!(base.proved_optimal());
    }

    #[test]
    fn cost_matrix_is_cached_per_dataset_content() {
        use crate::parse::parse_ranking;
        let d1 = Dataset::new(vec![
            parse_ranking("[{0},{1},{2}]").unwrap(),
            parse_ranking("[{2},{0,1}]").unwrap(),
        ])
        .unwrap();
        // Same content, separate allocation: must hit the cache.
        let d1_copy = Dataset::new(vec![
            parse_ranking("[{0},{1},{2}]").unwrap(),
            parse_ranking("[{2},{0,1}]").unwrap(),
        ])
        .unwrap();
        let d2 = Dataset::new(vec![parse_ranking("[{1},{0},{2}]").unwrap()]).unwrap();
        let ctx = AlgoContext::seeded(0);
        let m1 = ctx.cost_matrix(&d1);
        let m1b = ctx.cost_matrix(&d1_copy);
        assert!(
            Arc::ptr_eq(&m1, &m1b),
            "content-equal datasets share one build"
        );
        let m2 = ctx.cost_matrix(&d2);
        assert!(!Arc::ptr_eq(&m1, &m2));
        // Workers see the same cache.
        let w = ctx.worker(9);
        assert!(Arc::ptr_eq(&m1, &w.cost_matrix(&d1)));
    }

    #[test]
    fn best_of_parallel_matches_sequential() {
        use crate::parse::parse_ranking;
        let d = Dataset::new(vec![
            parse_ranking("[{0,1},{2,3},{4}]").unwrap(),
            parse_ranking("[{4},{3},{2},{1},{0}]").unwrap(),
            parse_ranking("[{2},{0,4},{1,3}]").unwrap(),
        ])
        .unwrap();
        for seed in 0..4 {
            let par = BestOf::new(Box::new(kwiksort::KwikSort), 8, "KwikSortMin");
            let seq = BestOf {
                force_sequential: true,
                ..BestOf::new(Box::new(kwiksort::KwikSort), 8, "KwikSortMin")
            };
            let rp = par.run(&d, &mut AlgoContext::seeded(seed));
            let rs = seq.run(&d, &mut AlgoContext::seeded(seed));
            assert_eq!(rp, rs, "seed {seed}");
        }
    }
}
