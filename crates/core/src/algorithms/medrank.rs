//! MEDRank (§3.3, [Fagin, Kumar, Sivakumar 2003]), tie-adapted per §4.1.3.
//!
//! A Top-k strategy with no sorting step: the input rankings are read in
//! parallel, one bucket depth at a time. As soon as an element has been
//! seen in at least `h·m` rankings it is appended to the consensus; the
//! §4.1.3 tie adaptation reads whole buckets at once, and all elements
//! crossing the threshold at the same depth form a single consensus bucket.
//! Runs in `O(nm)`.
//!
//! §7.1.1 (fourth observation) finds MEDRank very sensitive to the
//! threshold: 0.5 is the value to prefer; the paper's tables report both
//! `MEDRank(0.5)` and `MEDRank(0.7)`.

use super::{AlgoContext, ConsensusAlgorithm};
use crate::dataset::Dataset;
use crate::element::Element;
use crate::ranking::Ranking;

/// MEDRank with threshold `h ∈ (0, 1)`.
#[derive(Debug, Clone, Copy)]
pub struct MedRank {
    h: f64,
}

impl MedRank {
    /// Create a MEDRank instance with the given threshold.
    ///
    /// # Panics
    /// Panics unless `0 < h < 1` (the paper's `h ∈ ]0; 1[`).
    pub fn new(h: f64) -> Self {
        assert!(h > 0.0 && h < 1.0, "MEDRank threshold must be in (0, 1)");
        MedRank { h }
    }

    /// The configured threshold.
    pub fn threshold(&self) -> f64 {
        self.h
    }
}

impl ConsensusAlgorithm for MedRank {
    fn name(&self) -> String {
        format!("MEDRank({})", self.h)
    }

    fn produces_ties(&self) -> bool {
        true
    }

    fn run(&self, data: &Dataset, ctx: &mut AlgoContext) -> Ranking {
        // One-shot kernel: the checkpoint records a pre-expired deadline
        // or pending cancel so the report's outcome is honest.
        let _ = ctx.checkpoint();
        let n = data.n();
        let m = data.m() as f64;
        // "as soon as an element has been read in h×m rankings": smallest
        // integer count ≥ h·m, at least 1.
        let need = (self.h * m).ceil().max(1.0) as u32;
        let max_depth = data
            .rankings()
            .iter()
            .map(|r| r.n_buckets())
            .max()
            .unwrap_or(0);

        let mut seen = vec![0u32; n];
        let mut placed = vec![false; n];
        let mut buckets: Vec<Vec<Element>> = Vec::new();
        let mut remaining = n;

        for depth in 0..max_depth {
            for r in data.rankings() {
                if depth < r.n_buckets() {
                    for &e in r.bucket(depth) {
                        seen[e.index()] += 1;
                    }
                }
            }
            let mut new_bucket = Vec::new();
            for id in 0..n {
                if !placed[id] && seen[id] >= need {
                    placed[id] = true;
                    new_bucket.push(Element(id as u32));
                }
            }
            if !new_bucket.is_empty() {
                remaining -= new_bucket.len();
                buckets.push(new_bucket);
            }
            if remaining == 0 {
                break;
            }
        }
        debug_assert_eq!(remaining, 0, "every element reaches count m >= h*m");
        Ranking::from_buckets(buckets).expect("buckets partition the elements")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_ranking;

    fn data(lines: &[&str]) -> Dataset {
        Dataset::new(lines.iter().map(|l| parse_ranking(l).unwrap()).collect()).unwrap()
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn threshold_must_be_fractional() {
        let _ = MedRank::new(1.0);
    }

    #[test]
    fn name_matches_paper_spelling() {
        assert_eq!(MedRank::new(0.5).name(), "MEDRank(0.5)");
        assert_eq!(MedRank::new(0.7).name(), "MEDRank(0.7)");
    }

    #[test]
    fn unanimous_inputs_reproduced() {
        let d = data(&["[{1},{0},{2}]", "[{1},{0},{2}]", "[{1},{0},{2}]"]);
        let r = MedRank::new(0.5).run(&d, &mut AlgoContext::seeded(0));
        assert_eq!(r, parse_ranking("[{1},{0},{2}]").unwrap());
    }

    #[test]
    fn majority_threshold_on_three_rankings() {
        // m = 3, h = 0.5 → need 2 sightings. Depth 1: 0 seen twice (r1, r2),
        // 1 seen once → consensus starts with {0}.
        let d = data(&["[{0},{1},{2}]", "[{0},{2},{1}]", "[{1},{0},{2}]"]);
        let r = MedRank::new(0.5).run(&d, &mut AlgoContext::seeded(0));
        assert_eq!(r.bucket(0), &[Element(0)]);
        assert!(d.is_complete_ranking(&r));
    }

    #[test]
    fn reads_whole_buckets_with_ties() {
        // The tie adaptation: {0,1} read together at depth 1 in both inputs
        // → they cross the threshold simultaneously and stay tied.
        let d = data(&["[{0,1},{2}]", "[{0,1},{2}]"]);
        let r = MedRank::new(0.5).run(&d, &mut AlgoContext::seeded(0));
        assert_eq!(r, parse_ranking("[{0,1},{2}]").unwrap());
    }

    #[test]
    fn higher_threshold_waits_longer() {
        // m = 4; h=0.7 → need 3. Element 0 leads in 2 rankings only, so at
        // depth 1 it has 2 < 3 sightings and cannot be placed yet.
        let d = data(&[
            "[{0},{1},{2}]",
            "[{0},{1},{2}]",
            "[{1},{0},{2}]",
            "[{1},{0},{2}]",
        ]);
        let r5 = MedRank::new(0.5).run(&d, &mut AlgoContext::seeded(0));
        let r7 = MedRank::new(0.7).run(&d, &mut AlgoContext::seeded(0));
        // h=0.5 (need 2): both 0 and 1 placed at depth 1 → tied.
        assert_eq!(r5.bucket(0).len(), 2);
        // h=0.7 (need 3): nobody placed until depth 2, then {0,1} together.
        assert_eq!(r7.bucket(0).len(), 2);
        assert!(d.is_complete_ranking(&r7));
    }

    #[test]
    fn all_elements_eventually_placed() {
        let d = data(&["[{0},{1},{2},{3},{4}]", "[{4},{3},{2},{1},{0}]"]);
        let r = MedRank::new(0.5).run(&d, &mut AlgoContext::seeded(0));
        assert!(d.is_complete_ranking(&r));
    }
}
