//! BordaCount (§3.3, [Borda 1781]), tie-adapted per §4.1.3.
//!
//! The position of an element in a ranking with ties is the number of
//! elements placed strictly before it, plus one — a formulation that
//! already "encompasses the presence of ties". An element's score is the
//! sum of its positions over all input rankings; elements are ranked by
//! ascending score, and (the §4.1.3 slight modification) elements with
//! *equal* scores are tied in the consensus.
//!
//! BordaCount cannot account for the cost of (un)tying: §4.1.3's example —
//! two elements tied in all but one input — still get distinct scores and
//! are untied in the consensus. The unification experiments (Figure 5)
//! show the consequences.

use super::{ranking_from_scores, AlgoContext, ConsensusAlgorithm};
use crate::dataset::Dataset;
use crate::positional::PositionalStats;
use crate::ranking::Ranking;

/// The BordaCount positional algorithm. Runs in `O(nm + n log n)`.
///
/// Matrix-free by construction: the score vector is one of the `O(m·n)`
/// [`PositionalStats`] accumulators, so the kernel runs identically on
/// either lane and never touches a [`crate::CostMatrix`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BordaCount;

/// Sum over rankings of (1 + number of elements strictly before `e`).
pub(crate) fn borda_scores(data: &Dataset) -> Vec<u64> {
    PositionalStats::compute(data).borda_scores().to_vec()
}

impl ConsensusAlgorithm for BordaCount {
    fn name(&self) -> String {
        "BordaCount".to_owned()
    }

    fn produces_ties(&self) -> bool {
        true // via the equal-score adaptation
    }

    fn run(&self, data: &Dataset, ctx: &mut AlgoContext) -> Ranking {
        // One-shot kernel: the checkpoint records a pre-expired deadline
        // or pending cancel so the report's outcome is honest.
        let _ = ctx.checkpoint();
        ranking_from_scores(&borda_scores(data), true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_ranking;

    fn data(lines: &[&str]) -> Dataset {
        Dataset::new(lines.iter().map(|l| parse_ranking(l).unwrap()).collect()).unwrap()
    }

    #[test]
    fn unanimous_permutations() {
        let d = data(&["[{0},{1},{2}]", "[{0},{1},{2}]"]);
        let r = BordaCount.run(&d, &mut AlgoContext::seeded(0));
        assert_eq!(r, parse_ranking("[{0},{1},{2}]").unwrap());
    }

    #[test]
    fn positions_count_strictly_before() {
        // In [{0,1},{2}]: both 0 and 1 have position 1, element 2 position 3.
        let d = data(&["[{0,1},{2}]"]);
        assert_eq!(borda_scores(&d), vec![1, 1, 3]);
    }

    #[test]
    fn equal_scores_become_ties() {
        // Two opposite permutations: all scores equal → everything tied.
        let d = data(&["[{0},{1},{2}]", "[{2},{1},{0}]"]);
        let r = BordaCount.run(&d, &mut AlgoContext::seeded(0));
        assert_eq!(r, parse_ranking("[{0,1,2}]").unwrap());
    }

    #[test]
    fn section_413_untying_example() {
        // x=0, y=1 tied in three rankings, untied in one: Borda untied them
        // although a very large majority ties them (the §4.1.3 weakness).
        let d = data(&["[{0,1},{2}]", "[{0,1},{2}]", "[{0,1},{2}]", "[{0},{1},{2}]"]);
        let r = BordaCount.run(&d, &mut AlgoContext::seeded(0));
        assert_ne!(
            r.bucket_of(crate::Element(0)),
            r.bucket_of(crate::Element(1)),
            "BordaCount is expected to untie x and y here"
        );
    }

    #[test]
    fn output_is_complete() {
        let d = data(&["[{2},{0,3},{1}]", "[{1},{3},{0,2}]"]);
        let r = BordaCount.run(&d, &mut AlgoContext::seeded(0));
        assert!(d.is_complete_ranking(&r));
    }
}
