//! Pick-a-Perm (§3.2, [Ailon, Charikar, Newman 2008]).
//!
//! The naive 2-approximation: return one of the input rankings. We
//! implement the de-randomized version of [Schalekamp & van Zuylen 2009]
//! that returns an input ranking with minimal generalized Kemeny score —
//! deterministic, and the variant whose 2-approximation guarantee is
//! worst-case rather than in expectation.
//!
//! Pick-a-Perm trivially "can produce ties" (Table 1): if an input has
//! ties, so may the output.

use super::{AlgoContext, ConsensusAlgorithm};
use crate::dataset::Dataset;
use crate::ranking::Ranking;

/// De-randomized Pick-a-Perm.
#[derive(Debug, Clone, Copy, Default)]
pub struct PickAPerm;

impl ConsensusAlgorithm for PickAPerm {
    fn name(&self) -> String {
        "Pick-a-Perm".to_owned()
    }

    fn produces_ties(&self) -> bool {
        true
    }

    fn run(&self, data: &Dataset, ctx: &mut AlgoContext) -> Ranking {
        // One-shot kernel: the checkpoint records a pre-expired deadline
        // or pending cancel so the report's outcome is honest.
        let _ = ctx.checkpoint();
        let pairs = ctx.cost_matrix(data);
        data.rankings()
            .iter()
            .min_by_key(|r| pairs.score(r))
            .expect("datasets are non-empty")
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_ranking;
    use crate::score::kemeny_score;

    fn data(lines: &[&str]) -> Dataset {
        Dataset::new(lines.iter().map(|l| parse_ranking(l).unwrap()).collect()).unwrap()
    }

    #[test]
    fn returns_an_input_ranking() {
        let d = data(&["[{0},{1},{2}]", "[{1},{0},{2}]", "[{2},{1},{0}]"]);
        let r = PickAPerm.run(&d, &mut AlgoContext::seeded(0));
        assert!(d.rankings().contains(&r));
    }

    #[test]
    fn returns_the_minimal_cost_input() {
        // r0 and r1 are close; r2 is their reversal — the winner must be
        // r0 or r1, never r2.
        let d = data(&[
            "[{0},{1},{2},{3}]",
            "[{0},{1},{3},{2}]",
            "[{3},{2},{1},{0}]",
        ]);
        let r = PickAPerm.run(&d, &mut AlgoContext::seeded(0));
        let score = kemeny_score(&r, &d);
        for input in d.rankings() {
            assert!(score <= kemeny_score(input, &d));
        }
        assert_ne!(&r, d.ranking(2));
    }

    #[test]
    fn two_approximation_on_small_instances() {
        // Guarantee: min-cost input ≤ 2 · optimum. Check against brute force.
        use crate::algorithms::exact::brute_force;
        let d = data(&["[{0},{1,2}]", "[{2},{0},{1}]", "[{1},{2},{0}]"]);
        let (opt_score, _) = brute_force(&d);
        let r = PickAPerm.run(&d, &mut AlgoContext::seeded(0));
        assert!(kemeny_score(&r, &d) <= 2 * opt_score);
    }

    #[test]
    fn propagates_input_ties() {
        let d = data(&["[{0,1,2}]"]);
        let r = PickAPerm.run(&d, &mut AlgoContext::seeded(0));
        assert_eq!(r.n_buckets(), 1);
    }
}
