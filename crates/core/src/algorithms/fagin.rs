//! FaginDyn (§3.1, [Fagin, Kumar, Mahdian, Sivakumar, Vee 2004]).
//!
//! One of the two approaches designed natively for ties. The elements are
//! first ordered by a positional score; a dynamic program then chooses the
//! optimal *bucketing* of that order: cutting the sorted sequence into
//! consecutive buckets so as to minimize the generalized Kemeny score
//! among all consensuses consistent with the fixed element order. Runs in
//! `O(nm + n²)` as stated in the paper.
//!
//! With the element order fixed, the score decomposes as
//! `Σ_{i<j} cost_before(eᵢ, eⱼ)  +  Σ_buckets W(bucket)` where
//! `W(a..b) = Σ_{a≤i<j≤b} (cost_tied(eᵢ,eⱼ) − cost_before(eᵢ,eⱼ))` —
//! so the DP minimizes the sum of `W` over the chosen buckets.
//!
//! The two variants of [Cohen-Boulakia, Denise, Hamel 2011] differ only in
//! DP tie-breaking: **FaginLarge** favours solutions with large buckets,
//! **FaginSmall** with small buckets. Figure 5 of the paper shows why this
//! matters: on unified datasets with big ending buckets, favouring small
//! buckets is a disadvantageous choice.

use super::{borda::borda_scores, AlgoContext, ConsensusAlgorithm};
use crate::dataset::Dataset;
use crate::element::Element;
use crate::ranking::Ranking;

/// The FaginDyn dynamic-programming aggregator.
#[derive(Debug, Clone, Copy)]
pub struct FaginDyn {
    prefer_large: bool,
}

impl FaginDyn {
    /// The variant favouring large buckets.
    pub fn large() -> Self {
        FaginDyn { prefer_large: true }
    }

    /// The variant favouring small buckets.
    pub fn small() -> Self {
        FaginDyn {
            prefer_large: false,
        }
    }
}

impl ConsensusAlgorithm for FaginDyn {
    fn name(&self) -> String {
        if self.prefer_large {
            "FaginLarge".to_owned()
        } else {
            "FaginSmall".to_owned()
        }
    }

    fn produces_ties(&self) -> bool {
        true
    }

    fn run(&self, data: &Dataset, ctx: &mut AlgoContext) -> Ranking {
        // One-shot DP (no valid early exit mid-table): the checkpoint
        // records a pre-expired deadline or pending cancel so the
        // report's outcome is honest.
        let _ = ctx.checkpoint();
        let n = data.n();
        let pairs = ctx.cost_matrix(data);

        // Fix the element order by Borda score (ascending), ties by id —
        // the positional order the DP refines into buckets.
        let scores = borda_scores(data);
        let mut order: Vec<Element> = (0..n as u32).map(Element).collect();
        order.sort_by_key(|e| (scores[e.index()], e.0));

        // delta(i, j): cost change if the (order-consistent) pair is tied
        // rather than strictly ordered — doubled to stay integral, with a
        // ±1 per-pair bias implementing the variants: FaginLarge treats
        // tying as half a disagreement cheaper (favouring large buckets),
        // FaginSmall as half a disagreement dearer. The bias is what makes
        // the two variants behave differently in the paper's experiments
        // (Table 5: 10.8% vs 4.7% average gap; Figure 5: FaginSmall
        // penalized by unification buckets).
        let bias: i64 = if self.prefer_large { -1 } else { 1 };
        let delta = |i: usize, j: usize| -> i64 {
            2 * (pairs.cost_tied(order[i], order[j]) as i64
                - pairs.cost_before(order[i], order[j]) as i64)
                + bias
        };

        // dp[i] = min Σ W over partitions of the first i ordered elements.
        let mut dp = vec![i64::MAX; n + 1];
        let mut parent = vec![0usize; n + 1];
        dp[0] = 0;
        // wcur[j] = W(j..i) for the current i (bucket = order[j..i]).
        let mut wcur = vec![0i64; n + 1];
        let mut suf = vec![0i64; n + 1];
        for i in 1..=n {
            // order[i-1] joins; update all W(j..i) incrementally.
            suf[i - 1] = 0;
            for k in (0..i - 1).rev() {
                suf[k] = suf[k + 1] + delta(k, i - 1);
            }
            wcur[i - 1] = 0;
            for j in 0..i - 1 {
                wcur[j] += suf[j];
            }
            for j in 0..i {
                let cand = dp[j].saturating_add(wcur[j]);
                // FaginLarge keeps the earliest cut (bigger final bucket) on
                // ties; FaginSmall the latest (smaller final bucket).
                let better = if self.prefer_large {
                    cand < dp[i]
                } else {
                    cand <= dp[i]
                };
                if better {
                    dp[i] = cand;
                    parent[i] = j;
                }
            }
        }

        // Reconstruct buckets.
        let mut cuts = Vec::new();
        let mut i = n;
        while i > 0 {
            cuts.push((parent[i], i));
            i = parent[i];
        }
        cuts.reverse();
        let buckets: Vec<Vec<Element>> = cuts
            .into_iter()
            .map(|(a, b)| order[a..b].to_vec())
            .collect();
        Ranking::from_buckets(buckets).expect("cuts partition the order")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_ranking;
    use crate::score::kemeny_score;

    fn data(lines: &[&str]) -> Dataset {
        Dataset::new(lines.iter().map(|l| parse_ranking(l).unwrap()).collect()).unwrap()
    }

    #[test]
    fn names() {
        assert_eq!(FaginDyn::large().name(), "FaginLarge");
        assert_eq!(FaginDyn::small().name(), "FaginSmall");
    }

    #[test]
    fn unanimous_inputs_reproduced() {
        let d = data(&["[{1},{0,2},{3}]", "[{1},{0,2},{3}]"]);
        for algo in [FaginDyn::large(), FaginDyn::small()] {
            let r = algo.run(&d, &mut AlgoContext::seeded(0));
            assert_eq!(r, parse_ranking("[{1},{0,2},{3}]").unwrap());
        }
    }

    #[test]
    fn tie_break_differs_between_variants() {
        // One ranking ties {0,1}, the other orders 0 before 1: tying and
        // ordering cost exactly the same (1), so the DP tie-break decides —
        // Large merges, Small splits.
        let d = data(&["[{0,1}]", "[{0},{1}]"]);
        let large = FaginDyn::large().run(&d, &mut AlgoContext::seeded(0));
        let small = FaginDyn::small().run(&d, &mut AlgoContext::seeded(0));
        assert_eq!(large.n_buckets(), 1, "FaginLarge should tie the pair");
        assert_eq!(small.n_buckets(), 2, "FaginSmall should split the pair");
        assert_eq!(kemeny_score(&large, &d), kemeny_score(&small, &d));
    }

    #[test]
    fn bucketing_beats_the_variants_extreme() {
        // Guaranteed by the biased DP objective: FaginSmall (ties dearer)
        // is never worse than keeping its element order fully split;
        // FaginLarge (ties cheaper) never worse than one giant bucket.
        let d = data(&["[{0},{1,2},{3}]", "[{1},{0},{3},{2}]", "[{0,3},{1},{2}]"]);
        let small = FaginDyn::small().run(&d, &mut AlgoContext::seeded(0));
        let perm: Vec<Element> = small.elements().collect();
        assert!(
            kemeny_score(&small, &d) <= kemeny_score(&Ranking::permutation(&perm).unwrap(), &d)
        );
        let large = FaginDyn::large().run(&d, &mut AlgoContext::seeded(0));
        let elems: Vec<Element> = large.elements().collect();
        assert!(
            kemeny_score(&large, &d) <= kemeny_score(&Ranking::single_bucket(elems).unwrap(), &d)
        );
        // And Large never uses more buckets than Small on the same data.
        assert!(large.n_buckets() <= small.n_buckets());
    }

    #[test]
    fn exact_on_consistent_order_instance() {
        use crate::algorithms::exact::brute_force;
        // The Borda order 0,1,2,3 is optimal here; the DP should then find
        // the exact optimum.
        let d = data(&["[{0},{1},{2},{3}]", "[{0},{1},{2},{3}]", "[{0},{1,2},{3}]"]);
        let (opt, _) = brute_force(&d);
        let r = FaginDyn::large().run(&d, &mut AlgoContext::seeded(0));
        assert_eq!(kemeny_score(&r, &d), opt);
    }

    #[test]
    fn outputs_complete() {
        let d = data(&["[{2},{0,3},{1}]", "[{1},{3},{0,2}]"]);
        for algo in [FaginDyn::large(), FaginDyn::small()] {
            assert!(d.is_complete_ranking(&algo.run(&d, &mut AlgoContext::seeded(0))));
        }
    }
}
