//! CopelandMethod (§3.3, [Copeland 1951]), tie-adapted per §4.1.3.
//!
//! In the paper's description, an element's score is the sum over the input
//! rankings of the number of elements placed strictly *after* it; elements
//! are ranked by descending score, equal scores tied (same `O(nm + S(n))`
//! bound as BordaCount). On permutations, Borda and Copeland scores are
//! complementary (`position + after = n - 1 + 1`) so the two methods agree —
//! exactly the paper's observation that they perform identically on
//! projected (tie-free) datasets and diverge on unified ones.
//!
//! [`CopelandPairwise`] additionally provides the classic tournament-style
//! Copeland rule (one point per pairwise majority win, half per pairwise
//! draw) as an extension.

use super::{ranking_from_scores, AlgoContext, ConsensusAlgorithm};
use crate::dataset::Dataset;
use crate::element::Element;
use crate::positional::PositionalStats;
use crate::ranking::Ranking;

/// The paper's positional CopelandMethod.
///
/// Matrix-free by construction: the score vector is one of the `O(m·n)`
/// [`PositionalStats`] accumulators, so the kernel runs identically on
/// either lane and never touches a [`crate::CostMatrix`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CopelandMethod;

impl ConsensusAlgorithm for CopelandMethod {
    fn name(&self) -> String {
        "CopelandMethod".to_owned()
    }

    fn produces_ties(&self) -> bool {
        true // via the equal-score adaptation
    }

    fn run(&self, data: &Dataset, ctx: &mut AlgoContext) -> Ranking {
        // One-shot kernel: the checkpoint records a pre-expired deadline
        // or pending cancel so the report's outcome is honest.
        let _ = ctx.checkpoint();
        ranking_from_scores(PositionalStats::compute(data).copeland_scores(), false)
    }
}

/// Classic pairwise Copeland (extension; not part of the paper's panel):
/// score = 2·(pairwise majority wins) + (pairwise draws), descending.
#[derive(Debug, Clone, Copy, Default)]
pub struct CopelandPairwise;

impl ConsensusAlgorithm for CopelandPairwise {
    fn name(&self) -> String {
        "CopelandPairwise".to_owned()
    }

    fn produces_ties(&self) -> bool {
        true
    }

    fn run(&self, data: &Dataset, ctx: &mut AlgoContext) -> Ranking {
        let _ = ctx.checkpoint();
        let pairs = ctx.cost_matrix(data);
        let n = data.n();
        let mut scores = vec![0u64; n];
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let (ea, eb) = (Element(a as u32), Element(b as u32));
                let (wa, wb) = (pairs.before(ea, eb), pairs.before(eb, ea));
                scores[a] += match wa.cmp(&wb) {
                    std::cmp::Ordering::Greater => 2,
                    std::cmp::Ordering::Equal => 1,
                    std::cmp::Ordering::Less => 0,
                };
            }
        }
        ranking_from_scores(&scores, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::borda::BordaCount;
    use crate::parse::parse_ranking;

    fn data(lines: &[&str]) -> Dataset {
        Dataset::new(lines.iter().map(|l| parse_ranking(l).unwrap()).collect()).unwrap()
    }

    #[test]
    fn unanimous_permutations() {
        let d = data(&["[{1},{0},{2}]", "[{1},{0},{2}]"]);
        let r = CopelandMethod.run(&d, &mut AlgoContext::seeded(0));
        assert_eq!(r, parse_ranking("[{1},{0},{2}]").unwrap());
    }

    #[test]
    fn agrees_with_borda_on_permutations() {
        // On tie-free inputs the two positional scores are complementary.
        let d = data(&[
            "[{0},{1},{2},{3}]",
            "[{2},{0},{3},{1}]",
            "[{1},{3},{0},{2}]",
        ]);
        let mut ctx = AlgoContext::seeded(0);
        assert_eq!(
            CopelandMethod.run(&d, &mut ctx),
            BordaCount.run(&d, &mut ctx)
        );
    }

    #[test]
    fn diverges_from_borda_with_ties() {
        // With ties, position (strictly-before + 1) and strictly-after are
        // no longer complementary: element 0 is tied with 1 in r1.
        let d = data(&["[{0,1},{2}]", "[{1},{0},{2}]"]);
        let mut ctx = AlgoContext::seeded(0);
        let borda = BordaCount.run(&d, &mut ctx);
        let cope = CopelandMethod.run(&d, &mut ctx);
        // Borda: scores 0→(1+2)=3, 1→(1+1)=2, 2→(3+3)=6  ⇒ [{1},{0},{2}]
        // Copeland: 0→(1+1)=2, 1→(1+2)=3, 2→0            ⇒ [{1},{0},{2}]
        // Same here; build a sharper case: 0 tied with 2 below.
        assert_eq!(borda, cope);
        let d2 = data(&["[{0,1,2}]", "[{0},{1},{2}]"]);
        // Borda: 0→1+1, 1→1+2, 2→1+3 ⇒ [{0},{1},{2}];
        // Copeland: 0→0+2, 1→0+1, 2→0 ⇒ [{0},{1},{2}] — still same order,
        // but scores differ in shape; verify totals directly.
        let r2 = CopelandMethod.run(&d2, &mut ctx);
        assert_eq!(r2, parse_ranking("[{0},{1},{2}]").unwrap());
    }

    #[test]
    fn pairwise_copeland_condorcet_winner_first() {
        // 2 is the Condorcet winner: beats 0 and 1 in a majority of inputs.
        let d = data(&["[{2},{0},{1}]", "[{2},{1},{0}]", "[{0},{1},{2}]"]);
        let r = CopelandPairwise.run(&d, &mut AlgoContext::seeded(0));
        assert_eq!(r.bucket_of(Element(2)), Some(0));
    }

    #[test]
    fn outputs_are_complete() {
        let d = data(&["[{2},{0,3},{1}]", "[{1},{3},{0,2}]"]);
        let mut ctx = AlgoContext::seeded(0);
        assert!(d.is_complete_ranking(&CopelandMethod.run(&d, &mut ctx)));
        assert!(d.is_complete_ranking(&CopelandPairwise.run(&d, &mut ctx)));
    }
}
