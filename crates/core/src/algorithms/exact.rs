//! Exact optimal consensus under the generalized Kendall-τ distance.
//!
//! Three independent solvers, cross-validated against each other in the
//! test suite:
//!
//! * [`ExactAlgorithm`] — a native best-first branch-and-bound that builds
//!   the consensus bucket by bucket with an admissible pairwise lower
//!   bound, seeded with a BioConsert incumbent. This is the solver the
//!   benchmark harness uses (the paper used CPLEX; see DESIGN.md §5).
//! * [`ExactLpb`] — the paper's §4.2 linear pseudo-boolean program,
//!   verbatim (variables `x_{a<b}`, `x_{a=b}`; constraints (1)–(3)),
//!   solved with the `lpsolve` substrate. Practical only for small `n`;
//!   exists to validate the formulation and the native solver.
//! * [`brute_force`] — enumerate all `Fubini(n)` bucket orders (tests
//!   only, `n ≤ 9`).
//!
//! The problem is NP-hard for `m ≥ 4` even (§4), so all solvers are
//! deadline-aware: on timeout they return the best incumbent with
//! [`AlgoContext::timed_out`] set and `proved_optimal` unset.

use super::{bioconsert, AlgoContext, ConsensusAlgorithm};
use crate::dataset::Dataset;
use crate::element::Element;
use crate::pairs::PairTable;
use crate::parallel;
use crate::ranking::Ranking;
use lpsolve::{BnbOptions, Cmp, Problem, Var};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Native branch-and-bound exact solver.
///
/// The proof search runs **in parallel** (DESIGN.md §11.1): the tree is
/// split at shallow depth into a DFS-ordered frontier of subtree roots,
/// workers steal subtrees through the parallel substrate's shared cursor,
/// one shared atomic incumbent bound prunes across all of them, and a
/// deterministic merge keeps the result **bit-identical** to the
/// sequential search for a fixed seed
/// (`tests/parallel_kernel_properties.rs`). While it searches, it feeds
/// the anytime lower-bound channel
/// ([`AlgoContext::offer_lower_bound`]): the root bound immediately, then
/// the frontier minimum every time a subtree completes, so a streaming
/// caller watches `Incumbent.gap` close toward a certified optimum.
#[derive(Debug, Clone)]
pub struct ExactAlgorithm {
    /// Hard cap on `n` (the bitmask state limits us to 64; the paper's own
    /// exact runs stop at n = 60).
    pub max_n: usize,
    /// Check the deadline every this many nodes (per worker).
    pub deadline_stride: u64,
    /// Split the instance into independently-solvable blocks first (§3.2
    /// mentions the polynomial preprocessing of [Betzler et al.] dividing
    /// the problem into smaller instances; see [`safe_blocks`]).
    pub decompose: bool,
    /// Pin the proof search to one worker (used by the determinism tests
    /// and the timing harness; the parallel path is bit-identical by
    /// construction, so only seconds change).
    pub force_sequential: bool,
    /// Explicit worker count for the subtree search; `None` sizes it from
    /// [`parallel::num_threads`]. The bench harness and the determinism
    /// tests set it so parallel-vs-sequential comparisons are meaningful
    /// even on narrow CI hosts.
    pub threads: Option<usize>,
}

impl Default for ExactAlgorithm {
    fn default() -> Self {
        ExactAlgorithm {
            max_n: 64,
            deadline_stride: 4096,
            decompose: true,
            force_sequential: false,
            threads: None,
        }
    }
}

/// Below this `n` the search tree is too small for a frontier split to
/// pay for its node clones; the solver runs the plain sequential path.
const SPLIT_MIN_N: usize = 10;

/// Subtree roots per worker the frontier split aims for — slack for the
/// work-stealing cursor to balance lopsided subtrees.
const SUBTREES_PER_WORKER: usize = 8;

/// Partition the elements into consecutive blocks such that some optimal
/// consensus orders every earlier-block element strictly before every
/// later-block element — so each block can be solved independently.
///
/// Safety argument: order elements by Borda score; a split between prefix
/// `P` and suffix `S` is *safe* when, for every cross pair `(a ∈ P, b ∈ S)`,
/// putting `a` strictly before `b` is weakly cheapest
/// (`before(a,b) ≥ max(before(b,a), tied(a,b))`). Given any consensus,
/// moving all of `S` after all of `P` while preserving the within-group
/// bucket orders changes only cross-pair costs, each to its minimum — so
/// the transformation never increases the generalized Kemeny score, and an
/// optimal consensus respecting every safe split exists.
pub fn safe_blocks(data: &Dataset) -> Vec<Vec<Element>> {
    safe_blocks_with(&PairTable::build(data), data)
}

/// [`safe_blocks`] over an already-built cost matrix (the solver passes
/// its context-shared one instead of paying a second `O(m·n²)` build).
fn safe_blocks_with(pairs: &PairTable, data: &Dataset) -> Vec<Vec<Element>> {
    let n = data.n();
    let scores = super::borda::borda_scores(data);
    let mut order: Vec<Element> = (0..n as u32).map(Element).collect();
    order.sort_by_key(|e| (scores[e.index()], e.0));

    let safe_cross =
        |a: Element, b: Element| pairs.before(a, b) >= pairs.before(b, a).max(pairs.tied(a, b));
    // ok_after[k] = the split between order[..=k] and order[k+1..] is safe.
    // Incremental check: a split is safe iff every cross pair is; walk
    // splits left to right keeping the set of "open" unsafe pairs would be
    // complex — at the exact solver's n ≤ 64 the direct O(n³) test is
    // instant and obviously correct.
    let mut blocks: Vec<Vec<Element>> = Vec::new();
    let mut start = 0usize;
    for k in 0..n - 1 {
        let safe = (start..=k).all(|i| ((k + 1)..n).all(|j| safe_cross(order[i], order[j])));
        if safe {
            blocks.push(order[start..=k].to_vec());
            start = k + 1;
        }
    }
    blocks.push(order[start..].to_vec());
    blocks
}

/// Restrict `data` to `block` (sorted by id), remapped to dense ids.
fn restrict_dataset(data: &Dataset, block: &[Element]) -> Dataset {
    let rankings: Vec<Ranking> = data
        .rankings()
        .iter()
        .map(|r| {
            let buckets: Vec<Vec<Element>> = r
                .buckets()
                .map(|b| {
                    b.iter()
                        .filter_map(|e| block.binary_search(e).ok().map(|i| Element(i as u32)))
                        .collect::<Vec<_>>()
                })
                .filter(|b: &Vec<Element>| !b.is_empty())
                .collect();
            Ranking::from_buckets(buckets).expect("restriction keeps validity")
        })
        .collect();
    Dataset::new(rankings).expect("same dense support per block")
}

/// Search state: one node of the bucket-by-bucket construction.
///
/// Canonical enumeration: a bucket's elements are added in increasing id
/// order (an element may only *join* the last bucket if its id exceeds the
/// bucket's maximum), so every bucket order is generated exactly once.
#[derive(Clone)]
struct Node {
    /// Bitmask of placed elements.
    placed: u64,
    /// Highest element id in the open (last) bucket; `u32::MAX` if none.
    max_last: u32,
    /// Cost of all decided pairs.
    g: u64,
    /// For unplaced `e`: cost against all placed if `e` starts a new
    /// bucket (everything placed ends up strictly before `e`).
    cost_new: Vec<u64>,
    /// For unplaced `e`: cost against all placed if `e` joins the open
    /// bucket.
    cost_join: Vec<u64>,
    /// For unplaced `e`: admissible lower bound on its cost against all
    /// placed elements (open-bucket members may still tie with `e`).
    forced: Vec<u64>,
    /// Σ over unplaced pairs of the per-pair minimum cost.
    rem: u64,
    /// Bucket index per element (valid where `placed`).
    assign: Vec<u32>,
    /// Next bucket index to open.
    next_bucket: u32,
}

impl Node {
    fn root(pairs: &PairTable) -> Self {
        let n = pairs.n();
        let mut rem = 0u64;
        for a in 0..n {
            for b in (a + 1)..n {
                rem += pairs.min_pair_cost(Element(a as u32), Element(b as u32)) as u64;
            }
        }
        Node {
            placed: 0,
            max_last: u32::MAX,
            g: 0,
            cost_new: vec![0; n],
            cost_join: vec![0; n],
            forced: vec![0; n],
            rem,
            assign: vec![0; n],
            next_bucket: 0,
        }
    }

    #[inline]
    fn is_placed(&self, id: usize) -> bool {
        self.placed >> id & 1 == 1
    }

    fn lower_bound(&self, n: usize) -> u64 {
        let mut lb = self.g + self.rem;
        for id in 0..n {
            if !self.is_placed(id) {
                lb += self.forced[id];
            }
        }
        lb
    }

    /// Child node: `e` starts a new bucket (closing the current one).
    fn place_new(&self, e: Element, pairs: &PairTable) -> Node {
        let n = pairs.n();
        let mut c = self.clone();
        c.g += self.cost_new[e.index()];
        c.placed |= 1 << e.index();
        c.max_last = e.0;
        c.assign[e.index()] = c.next_bucket;
        c.next_bucket += 1;
        for id in 0..n {
            if c.is_placed(id) {
                continue;
            }
            let x = Element(id as u32);
            let cb_ex = pairs.cost_before(e, x) as u64;
            let ct = pairs.cost_tied(x, e) as u64;
            // All previously placed elements are now strictly earlier.
            c.cost_join[id] = self.cost_new[id] + ct;
            c.cost_new[id] = self.cost_new[id] + cb_ex;
            c.forced[id] = self.cost_new[id] + ct.min(cb_ex);
            c.rem -= pairs.min_pair_cost(e, x) as u64;
        }
        c
    }

    /// Child node: `e` joins the open bucket (requires `e.0 > max_last`).
    fn place_join(&self, e: Element, pairs: &PairTable) -> Node {
        let n = pairs.n();
        debug_assert!(self.max_last != u32::MAX && e.0 > self.max_last);
        let mut c = self.clone();
        c.g += self.cost_join[e.index()];
        c.placed |= 1 << e.index();
        c.max_last = e.0;
        c.assign[e.index()] = c.next_bucket - 1;
        for id in 0..n {
            if c.is_placed(id) {
                continue;
            }
            let x = Element(id as u32);
            let cb_ex = pairs.cost_before(e, x) as u64;
            let ct = pairs.cost_tied(x, e) as u64;
            c.cost_new[id] += cb_ex;
            c.cost_join[id] += ct;
            c.forced[id] += ct.min(cb_ex);
            c.rem -= pairs.min_pair_cost(e, x) as u64;
        }
        c
    }

    /// Reversible in-place child move — what the subtree DFS uses instead
    /// of cloning four `O(n)` vectors per expanded node
    /// ([`Node::place_new`]/[`Node::place_join`] remain for the frontier
    /// split, whose nodes genuinely persist). The per-element values the
    /// move clobbers are pushed onto `saved`; [`Node::undo`] restores them
    /// and must be called with the returned tag in strict LIFO order.
    /// State after `apply(e, join, ..)` is element-wise identical to
    /// `place_new(e, ..)` / `place_join(e, ..)` (only `assign` slots of
    /// unplaced elements, which are never read, may differ).
    fn apply(
        &mut self,
        e: Element,
        join: bool,
        pairs: &PairTable,
        saved: &mut Vec<(u64, u64)>,
    ) -> Applied {
        let n = pairs.n();
        let tag = Applied {
            e,
            join,
            prev_max_last: self.max_last,
            saved_from: saved.len(),
        };
        if join {
            debug_assert!(self.max_last != u32::MAX && e.0 > self.max_last);
            self.g += self.cost_join[e.index()];
            self.assign[e.index()] = self.next_bucket - 1;
        } else {
            self.g += self.cost_new[e.index()];
            self.assign[e.index()] = self.next_bucket;
            self.next_bucket += 1;
        }
        self.placed |= 1 << e.index();
        self.max_last = e.0;
        for id in 0..n {
            if self.is_placed(id) {
                continue;
            }
            let x = Element(id as u32);
            let cb_ex = pairs.cost_before(e, x) as u64;
            let ct = pairs.cost_tied(x, e) as u64;
            saved.push((self.cost_join[id], self.forced[id]));
            if join {
                self.cost_new[id] += cb_ex;
                self.cost_join[id] += ct;
                self.forced[id] += ct.min(cb_ex);
            } else {
                let old_new = self.cost_new[id];
                self.cost_join[id] = old_new + ct;
                self.cost_new[id] = old_new + cb_ex;
                self.forced[id] = old_new + ct.min(cb_ex);
            }
            self.rem -= pairs.min_pair_cost(e, x) as u64;
        }
        tag
    }

    /// Exact inverse of [`Node::apply`]. `cost_new` reverses by
    /// subtraction; `cost_join`/`forced` (overwritten, not incremented, on
    /// a new-bucket move) restore from `saved`. The moved element's own
    /// `cost_new`/`cost_join` slots were skipped by `apply`'s loop (it was
    /// already placed), so the `g` delta reads back unchanged.
    fn undo(&mut self, tag: Applied, pairs: &PairTable, saved: &mut Vec<(u64, u64)>) {
        let n = pairs.n();
        let e = tag.e;
        let mut k = tag.saved_from;
        for id in 0..n {
            if self.is_placed(id) {
                continue;
            }
            let x = Element(id as u32);
            let cb_ex = pairs.cost_before(e, x) as u64;
            let (old_join, old_forced) = saved[k];
            k += 1;
            self.cost_new[id] -= cb_ex;
            self.cost_join[id] = old_join;
            self.forced[id] = old_forced;
            self.rem += pairs.min_pair_cost(e, x) as u64;
        }
        debug_assert_eq!(k, saved.len(), "undo must run in LIFO order");
        saved.truncate(tag.saved_from);
        self.placed &= !(1 << e.index());
        self.max_last = tag.prev_max_last;
        if tag.join {
            self.g -= self.cost_join[e.index()];
        } else {
            self.next_bucket -= 1;
            self.g -= self.cost_new[e.index()];
        }
    }
}

/// Undo record for one [`Node::apply`] move.
struct Applied {
    e: Element,
    join: bool,
    prev_max_last: u32,
    saved_from: usize,
}

/// The canonical child order of a node: `(immediate delta, element id,
/// join?)`, cheapest first — identical for the frontier split and the
/// in-subtree DFS, which is what makes the global exploration order (and
/// therefore the returned optimum among ties) a pure function of the
/// instance, independent of worker count and scheduling.
fn ordered_children(node: &Node, n: usize) -> Vec<(u64, u32, bool)> {
    let mut children: Vec<(u64, u32, bool)> = Vec::new();
    for id in 0..n {
        if node.is_placed(id) {
            continue;
        }
        children.push((node.cost_new[id], id as u32, false));
        if node.max_last != u32::MAX && (id as u32) > node.max_last {
            children.push((node.cost_join[id], id as u32, true));
        }
    }
    children.sort_unstable();
    children
}

/// Split the tree below `root` into a DFS-ordered frontier of subtree
/// roots, at most `target`-ish wide: repeatedly replace the shallowest
/// (leftmost-first) node by its ordered children, pruning children whose
/// lower bound cannot beat `bound`. Replacing a node by its in-order
/// children in place preserves global DFS order, so `frontier[i]` comes
/// strictly before `frontier[j]` in the sequential exploration whenever
/// `i < j` — the property the deterministic merge relies on. Returns an
/// empty frontier when everything prunes (the incumbent is optimal).
fn build_frontier(root: Node, pairs: &PairTable, n: usize, bound: u64, target: usize) -> Vec<Node> {
    let mut frontier = vec![root];
    // Heavy pruning can keep the frontier narrow forever; cap the work.
    let mut expansions = 4 * target;
    while frontier.len() < target && expansions > 0 {
        let Some(pick) = (0..frontier.len())
            .filter(|&i| (frontier[i].placed.count_ones() as usize) < n)
            .min_by_key(|&i| frontier[i].placed.count_ones())
        else {
            break; // every subtree root is already a leaf
        };
        expansions -= 1;
        let node = frontier.remove(pick);
        let mut at = pick;
        for (_, id, join) in ordered_children(&node, n) {
            let e = Element(id);
            let child = if join {
                node.place_join(e, pairs)
            } else {
                node.place_new(e, pairs)
            };
            if child.lower_bound(n) < bound {
                frontier.insert(at, child);
                at += 1;
            }
        }
        if frontier.is_empty() {
            break;
        }
    }
    frontier
}

/// One worker's exhaustive DFS over a single frontier subtree.
///
/// Pruning uses two bounds: `local_best` — this worker's own best within
/// the subtree, seeded with the heuristic incumbent, exactly the
/// sequential rule — and the shared atomic `global` bound, which other
/// workers tighten concurrently. The global prune is *non-strict*
/// (`lb > global` prunes) so it can never cut the path to the subtree's
/// first optimal leaf, which is what keeps the merged result bit-identical
/// to the sequential search (DESIGN.md §11.1 gives the argument).
struct SubtreeSearch<'a> {
    pairs: &'a PairTable,
    n: usize,
    /// Best score proved by *any* worker (plus the heuristic incumbent) —
    /// the one shared pruning bound of the parallel search.
    global: &'a AtomicU64,
    /// Set by whichever worker's checkpoint fires first; everyone else
    /// observes it at their stride and unwinds.
    aborted: &'a AtomicBool,
    local_best: u64,
    local_assign: Option<Vec<u32>>,
    nodes: u64,
    stride: u64,
    stop: bool,
    /// Clobbered-value stack for the undo-based expansion ([`Node::apply`]).
    saved: Vec<(u64, u64)>,
}

impl SubtreeSearch<'_> {
    fn dfs(&mut self, node: &mut Node, ctx: &AlgoContext) {
        self.nodes += 1;
        if self.nodes.is_multiple_of(self.stride)
            && (self.aborted.load(Ordering::Relaxed) || ctx.checkpoint().is_stop())
        {
            self.aborted.store(true, Ordering::Relaxed);
            self.stop = true;
        }
        if self.stop {
            return;
        }
        if node.placed.count_ones() as usize == self.n {
            if node.g < self.local_best {
                self.local_best = node.g;
                self.local_assign = Some(node.assign.clone());
                let prev = self.global.fetch_min(node.g, Ordering::Relaxed);
                // Snapshot only on a *global* improvement with a listening
                // sink (it is muted during block decomposition — no dead
                // allocations in the hot search loop; the sink dedups
                // under its own lock, so racing workers stay monotone).
                if node.g < prev && ctx.has_sink() {
                    ctx.offer_incumbent(
                        &Ranking::from_bucket_indices(node.assign.as_slice())
                            .expect("assignment is a partition"),
                        node.g,
                    );
                }
            }
            return;
        }
        let global_bound = self.global.load(Ordering::Relaxed);
        // Undo-based expansion: each child move is applied to the node in
        // place and exactly reversed after the recursion returns — the
        // child order, the bound values, and therefore the exploration
        // (and the returned optimum among ties) are bit-identical to the
        // former clone-per-child expansion; only the four vector
        // allocations per node are gone.
        for (_, id, join) in ordered_children(node, self.n) {
            let e = Element(id);
            let tag = node.apply(e, join, self.pairs, &mut self.saved);
            let lb = node.lower_bound(self.n);
            if lb < self.local_best && lb <= global_bound {
                self.dfs(node, ctx);
            }
            node.undo(tag, self.pairs, &mut self.saved);
            if self.stop {
                return;
            }
        }
    }
}

/// The whole-search lower bound at this moment: every unexplored leaf
/// lives under some not-yet-completed frontier subtree, so the optimum
/// is ≥ `min(best found, min over open subtree root bounds)` — the "max
/// over frontier minima" channel, made monotone by the sink. The single
/// source of this expression: both the running offers and the final
/// reported bound go through here, so the report can never desynchronize
/// from the event stream.
fn frontier_bound(best: u64, frontier_lbs: &[u64], done: &[AtomicBool]) -> u64 {
    let open = frontier_lbs
        .iter()
        .zip(done)
        .filter(|(_, d)| !d.load(Ordering::Relaxed))
        .map(|(lb, _)| *lb)
        .min();
    open.map_or(best, |m| m.min(best))
}

impl ExactAlgorithm {
    /// Solve, returning the consensus, its score, and whether optimality
    /// was proved (false only if the deadline was hit).
    pub fn solve(&self, data: &Dataset, ctx: &mut AlgoContext) -> (Ranking, u64, bool) {
        let n = data.n();
        assert!(
            n <= self.max_n && n <= 64,
            "ExactAlgorithm supports up to {} elements (dataset has {n})",
            self.max_n.min(64)
        );
        if !self.decompose {
            let (r, score, proved, _) = self.solve_monolithic(data, ctx);
            return (r, score, proved);
        }
        let pairs = ctx.cost_matrix(data);
        let blocks = safe_blocks_with(&pairs, data);
        if blocks.len() == 1 {
            let (r, score, proved, _) = self.solve_monolithic(data, ctx);
            return (r, score, proved);
        }
        // Sub-instance incumbents live in each block's remapped element
        // space — publishing them to the whole-dataset job would be
        // nonsense, so mute the sink for the decomposed solves and offer
        // only the assembled consensus below. So that a decomposed job is
        // still anytime (streams a harvestable consensus before the full
        // proof lands), first publish a whole-dataset heuristic incumbent —
        // but only when someone is actually streaming: a blocking
        // `Engine::run` has no subscriber and must not pay an extra
        // whole-dataset local search just for an early trace point.
        if ctx.has_subscriber() {
            let incumbent = bioconsert::BioConsert {
                force_sequential: true,
                ..bioconsert::BioConsert::default()
            }
            .run(data, ctx);
            ctx.offer_incumbent(&incumbent, pairs.score(&incumbent));
        }
        let sink = ctx.take_sink();
        // Cross-block pairs are strictly ordered block-before-block — by
        // construction of the safe split, that is each pair's cheapest
        // state.
        let mut total = 0u64;
        for i in 0..blocks.len() {
            for j in (i + 1)..blocks.len() {
                for &a in &blocks[i] {
                    for &b in &blocks[j] {
                        total += pairs.cost_before(a, b) as u64;
                    }
                }
            }
        }
        // Whole-dataset lower bound across the decomposition: the optimum
        // equals `cross-block total + Σ block optima` (the safe split is
        // optimum-preserving), so `cross total + Σ per-block bounds` is a
        // certified bound — each block floor starts at its root bound
        // (Σ per-pair minima; restriction preserves pairwise counts, so
        // the whole-dataset matrix prices it) and is replaced by the
        // block's own certified bound as its solve lands. Offered through
        // the *taken* sink directly: a block solve's `offer_lower_bound`
        // calls are muted with the rest of its context exactly so its
        // sub-instance bounds can never masquerade as whole-dataset ones
        // (the bogus-gap bug this sum replaces).
        let block_floor: Vec<u64> = blocks
            .iter()
            .map(|block| {
                let mut floor = 0u64;
                for (i, &a) in block.iter().enumerate() {
                    for &b in &block[i + 1..] {
                        floor += pairs.min_pair_cost(a, b) as u64;
                    }
                }
                floor
            })
            .collect();
        let mut lb_running: u64 = total + block_floor.iter().sum::<u64>();
        if let Some(s) = &sink {
            s.offer_lower_bound(lb_running);
        }
        let mut buckets: Vec<Vec<Element>> = Vec::new();
        let mut proved = true;
        for (bi, block) in blocks.iter().enumerate() {
            if block.len() == 1 {
                buckets.push(block.clone());
                continue;
            }
            let mut sorted = block.clone();
            sorted.sort_unstable();
            let sub = restrict_dataset(data, &sorted);
            let (r, score, p, sub_lb) = self.solve_monolithic(&sub, ctx);
            proved &= p;
            total += score;
            // `sub_lb ≥ block_floor[bi]` (both sit above the block's root
            // bound), so the floor-to-certified swap never underflows.
            lb_running += sub_lb - block_floor[bi];
            if let Some(s) = &sink {
                s.offer_lower_bound(lb_running);
            }
            for b in r.buckets() {
                buckets.push(b.iter().map(|&e| sorted[e.index()]).collect());
            }
        }
        let ranking = Ranking::from_buckets(buckets).expect("blocks partition the elements");
        debug_assert_eq!(pairs.score(&ranking), total);
        ctx.set_sink(sink);
        ctx.offer_incumbent(&ranking, total);
        (ranking, total, proved)
    }

    /// The branch-and-bound core, without decomposition: parallel
    /// work-stealing subtree exploration over a deterministic frontier
    /// split (DESIGN.md §11.1). Returns `(consensus, score, proved, lb)`
    /// where `lb` is the certified lower bound the search established —
    /// equal to `score` exactly when `proved`.
    fn solve_monolithic(&self, data: &Dataset, ctx: &mut AlgoContext) -> (Ranking, u64, bool, u64) {
        let n = data.n();
        let pairs = ctx.cost_matrix(data);

        // Incumbent from BioConsert (§7.1: its solutions are optimal in 68%
        // of uniform datasets, so the B&B mostly proves optimality).
        // Sequential multi-start: the incumbent is a small fraction of the
        // solve, and pinning it keeps the search's own parallelism the only
        // thread-count-dependent part.
        let mut incumbent = bioconsert::BioConsert {
            force_sequential: true,
            ..bioconsert::BioConsert::default()
        }
        .run(data, ctx);
        let mut incumbent_score = pairs.score(&incumbent);
        // Warm-started re-solve (DESIGN.md §13): a prior consensus that
        // still beats the fresh BioConsert start becomes the initial
        // bound, with its ranking kept as the witness — after a small
        // dataset edit it usually sits at or near the new optimum, so the
        // proof search mostly prunes. The hint is rescored here (a caller
        // score is never trusted as a bound) and skipped for decomposed
        // sub-instances, whose remapped element spaces make a
        // whole-dataset hint incomplete.
        if let Some(w) = ctx.warm_start() {
            if data.is_complete_ranking(&w.ranking) {
                let s = pairs.score(&w.ranking);
                if s < incumbent_score {
                    incumbent_score = s;
                    incumbent = w.ranking.clone();
                }
            }
        }
        let incumbent_assign: Vec<u32> = (0..n)
            .map(|id| incumbent.bucket_of(Element(id as u32)).expect("complete") as u32)
            .collect();

        let root = Node::root(&pairs);
        let root_lb = root.lower_bound(n);
        // The root bound is live before the first node expands: a
        // streaming subscriber gets a (coarse) certified gap immediately.
        ctx.offer_lower_bound(root_lb);
        if root_lb >= incumbent_score {
            // Every leaf scores ≥ the incumbent: it is optimal, no search.
            let ranking =
                Ranking::from_bucket_indices(&incumbent_assign).expect("assignment is a partition");
            return (ranking, incumbent_score, true, incumbent_score);
        }
        if ctx.checkpoint().is_stop() {
            let ranking =
                Ranking::from_bucket_indices(&incumbent_assign).expect("assignment is a partition");
            return (ranking, incumbent_score, false, root_lb);
        }

        let threads = if self.force_sequential {
            1
        } else {
            self.threads.unwrap_or_else(|| {
                if n < SPLIT_MIN_N {
                    1
                } else {
                    parallel::num_threads()
                }
            })
        };
        let target = if threads <= 1 {
            1
        } else {
            threads * SUBTREES_PER_WORKER
        };
        let frontier = build_frontier(root, &pairs, n, incumbent_score, target);
        if frontier.is_empty() {
            // Every subtree pruned against the incumbent: it is optimal.
            let ranking =
                Ranking::from_bucket_indices(&incumbent_assign).expect("assignment is a partition");
            return (ranking, incumbent_score, true, incumbent_score);
        }
        let frontier_lbs: Vec<u64> = frontier.iter().map(|nd| nd.lower_bound(n)).collect();
        let done: Vec<AtomicBool> = frontier.iter().map(|_| AtomicBool::new(false)).collect();
        let global = AtomicU64::new(incumbent_score);
        let aborted = AtomicBool::new(false);
        let shared_ctx: &AlgoContext = ctx;
        let results = parallel::par_map_slice(&frontier, threads, |i, subtree| {
            // A stop observed by any worker abandons the subtrees still
            // queued behind the cursor outright — without this, each of
            // them would expand up to `deadline_stride` nodes before its
            // own first checkpoint noticed, stretching cancellation
            // latency by frontier-width × stride.
            if aborted.load(Ordering::Relaxed) {
                return (incumbent_score, None);
            }
            let mut search = SubtreeSearch {
                pairs: &pairs,
                n,
                global: &global,
                aborted: &aborted,
                local_best: incumbent_score,
                local_assign: None,
                nodes: 0,
                stride: self.deadline_stride,
                stop: false,
                saved: Vec::new(),
            };
            // One clone per subtree root (the frontier slice is shared);
            // every node below it expands via apply/undo on this copy.
            let mut root = subtree.clone();
            search.dfs(&mut root, shared_ctx);
            if !search.stop {
                // Fully explored: this subtree's leaves can no longer pull
                // the optimum below the shared bound — tighten the
                // whole-search lower bound.
                done[i].store(true, Ordering::Relaxed);
                shared_ctx.offer_lower_bound(frontier_bound(
                    global.load(Ordering::Relaxed),
                    &frontier_lbs,
                    &done,
                ));
            }
            (search.local_best, search.local_assign)
        });

        // Deterministic merge: walk subtrees in DFS order with the same
        // strict-improvement rule the sequential search applies, so the
        // earliest subtree achieving the final best supplies the answer —
        // the very leaf the sequential DFS would have kept.
        let mut best_score = incumbent_score;
        let mut best_assign = incumbent_assign;
        for (score, assign) in results {
            if score < best_score {
                best_score = score;
                best_assign = assign.expect("improvement recorded with its assignment");
            }
        }
        let proved = !aborted.load(Ordering::Relaxed);
        let lb = frontier_bound(best_score, &frontier_lbs, &done);
        ctx.offer_lower_bound(lb);
        debug_assert!(!proved || lb == best_score);

        let ranking =
            Ranking::from_bucket_indices(&best_assign).expect("assignment is a partition");
        debug_assert_eq!(pairs.score(&ranking), best_score);
        (ranking, best_score, proved, lb)
    }
}

impl ConsensusAlgorithm for ExactAlgorithm {
    fn name(&self) -> String {
        "ExactAlgorithm".to_owned()
    }

    fn produces_ties(&self) -> bool {
        true
    }

    fn run(&self, data: &Dataset, ctx: &mut AlgoContext) -> Ranking {
        let (ranking, _, proved) = self.solve(data, ctx);
        ctx.set_proved_optimal(proved);
        ranking
    }
}

/// The §4.2 LPB formulation, verbatim, over the `lpsolve` substrate.
#[derive(Debug, Clone)]
pub struct ExactLpb {
    /// Size guard: the dense simplex B&B is practical only for small `n`.
    pub max_n: usize,
}

impl Default for ExactLpb {
    fn default() -> Self {
        ExactLpb { max_n: 10 }
    }
}

impl ExactLpb {
    /// Solve the LPB and return the optimal consensus with its score.
    pub fn solve(&self, data: &Dataset) -> (Ranking, u64) {
        let n = data.n();
        assert!(
            n <= self.max_n,
            "ExactLpb supports up to {} elements (dataset has {n})",
            self.max_n
        );
        let pairs = PairTable::build(data);
        let mut p = Problem::new();

        // x_{a<b} for every ordered pair; x_{a=b} for every unordered pair.
        let mut lt = vec![None::<Var>; n * n];
        let mut eq = vec![None::<Var>; n * n];
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let (ea, eb) = (Element(a as u32), Element(b as u32));
                // w_{b≤a}: rankings with b before or tied with a.
                let w_b_le_a = pairs.before(eb, ea) + pairs.tied(ea, eb);
                lt[a * n + b] = Some(p.add_var(w_b_le_a as f64, 0.0, 1.0));
            }
        }
        for a in 0..n {
            for b in (a + 1)..n {
                let (ea, eb) = (Element(a as u32), Element(b as u32));
                let w = pairs.before(ea, eb) + pairs.before(eb, ea);
                eq[a * n + b] = Some(p.add_var(w as f64, 0.0, 1.0));
            }
        }
        let ltv = |a: usize, b: usize| lt[a * n + b].expect("ordered pair var");
        let eqv = |a: usize, b: usize| eq[a.min(b) * n + a.max(b)].expect("unordered pair var");

        // (1) unique relation per pair.
        for a in 0..n {
            for b in (a + 1)..n {
                p.add_row(
                    &[(ltv(a, b), 1.0), (ltv(b, a), 1.0), (eqv(a, b), 1.0)],
                    Cmp::Eq,
                    1.0,
                );
            }
        }
        // (2) order transitivity for every ordered triple.
        for a in 0..n {
            for b in 0..n {
                for c in 0..n {
                    if a == b || b == c || a == c {
                        continue;
                    }
                    p.add_row(
                        &[(ltv(a, c), 1.0), (ltv(a, b), -1.0), (ltv(b, c), -1.0)],
                        Cmp::Ge,
                        -1.0,
                    );
                }
            }
        }
        // (3) bucket transitivity: for each unordered triple, each choice of
        // "middle" element b.
        for a in 0..n {
            for b in 0..n {
                for c in (a + 1)..n {
                    if b == a || b == c || c <= a {
                        continue;
                    }
                    p.add_row(
                        &[
                            (ltv(a, b), 2.0),
                            (ltv(b, a), 2.0),
                            (ltv(b, c), 2.0),
                            (ltv(c, b), 2.0),
                            (ltv(a, c), -1.0),
                            (ltv(c, a), -1.0),
                        ],
                        Cmp::Ge,
                        0.0,
                    );
                }
            }
        }

        let binaries: Vec<Var> = lt.iter().chain(eq.iter()).filter_map(|v| *v).collect();
        let sol = p
            .solve_binary(&binaries, &BnbOptions::default())
            .expect("the LPB always has a feasible point (any ranking)");

        // Reconstruct: an element's bucket level is the number of elements
        // strictly before it.
        let levels: Vec<u64> = (0..n)
            .map(|a| {
                (0..n)
                    .filter(|&b| b != a && sol.x[ltv(b, a).index()] > 0.5)
                    .count() as u64
            })
            .collect();
        let ranking = super::ranking_from_scores(&levels, true);
        let score = pairs.score(&ranking);
        debug_assert_eq!(score as f64, sol.objective.round());
        (ranking, score)
    }
}

impl ConsensusAlgorithm for ExactLpb {
    fn name(&self) -> String {
        "ExactLPB".to_owned()
    }

    fn produces_ties(&self) -> bool {
        true
    }

    fn run(&self, data: &Dataset, ctx: &mut AlgoContext) -> Ranking {
        let (ranking, score) = self.solve(data);
        ctx.set_proved_optimal(true);
        // The LPB solves to proven optimality in one shot: its score is
        // simultaneously the incumbent and the certified lower bound.
        ctx.offer_incumbent(&ranking, score);
        ctx.offer_lower_bound(score);
        ranking
    }
}

/// Enumerate every bucket order of the dataset's elements and return an
/// optimum. Test oracle only.
///
/// # Panics
/// Panics for `n > 9` (`Fubini(9) ≈ 7·10⁶` candidates is the practical
/// limit).
pub fn brute_force(data: &Dataset) -> (u64, Ranking) {
    let n = data.n();
    assert!(n <= 9, "brute force is limited to n <= 9 (got {n})");
    let pairs = PairTable::build(data);
    let mut best: Option<(u64, Vec<Vec<Element>>)> = None;
    let mut buckets: Vec<Vec<Element>> = Vec::new();
    enumerate(0, n, &mut buckets, &pairs, &mut best);
    let (score, buckets) = best.expect("n >= 1 has at least one bucket order");
    (
        score,
        Ranking::from_buckets(buckets).expect("enumeration yields valid rankings"),
    )
}

fn enumerate(
    next: usize,
    n: usize,
    buckets: &mut Vec<Vec<Element>>,
    pairs: &PairTable,
    best: &mut Option<(u64, Vec<Vec<Element>>)>,
) {
    if next == n {
        let r = Ranking::from_buckets(buckets.clone()).expect("valid partial construction");
        let score = pairs.score(&r);
        if best.as_ref().is_none_or(|(s, _)| score < *s) {
            *best = Some((score, buckets.clone()));
        }
        return;
    }
    let e = Element(next as u32);
    // Join any existing bucket…
    for i in 0..buckets.len() {
        buckets[i].push(e);
        enumerate(next + 1, n, buckets, pairs, best);
        buckets[i].pop();
    }
    // …or open a new bucket at any position.
    for i in 0..=buckets.len() {
        buckets.insert(i, vec![e]);
        enumerate(next + 1, n, buckets, pairs, best);
        buckets.remove(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_ranking;
    use crate::score::kemeny_score;
    use rand::Rng;

    fn data(lines: &[&str]) -> Dataset {
        Dataset::new(lines.iter().map(|l| parse_ranking(l).unwrap()).collect()).unwrap()
    }

    fn paper_dataset() -> Dataset {
        data(&["[{0},{3},{1,2}]", "[{0},{1,2},{3}]", "[{3},{0,2},{1}]"])
    }

    #[test]
    fn brute_force_finds_paper_optimum() {
        let (score, r) = brute_force(&paper_dataset());
        assert_eq!(score, 5);
        assert_eq!(r, parse_ranking("[{0},{3},{1,2}]").unwrap());
    }

    #[test]
    fn brute_force_enumerates_all_bucket_orders() {
        // Count leaves for n = 3 via a probe dataset: Fubini(3) = 13
        // distinct rankings; the optimum of identical inputs is the input.
        let d = data(&["[{0},{1},{2}]"]);
        let (score, r) = brute_force(&d);
        assert_eq!(score, 0);
        assert_eq!(&r, d.ranking(0));
    }

    #[test]
    fn native_bnb_matches_brute_force_on_paper_example() {
        let d = paper_dataset();
        let mut ctx = AlgoContext::seeded(1);
        let (r, score, proved) = ExactAlgorithm::default().solve(&d, &mut ctx);
        assert!(proved);
        assert_eq!(score, 5);
        assert_eq!(kemeny_score(&r, &d), 5);
    }

    #[test]
    fn lpb_matches_brute_force_on_paper_example() {
        let d = paper_dataset();
        let (r, score) = ExactLpb::default().solve(&d);
        assert_eq!(score, 5);
        assert_eq!(kemeny_score(&r, &d), 5);
    }

    #[test]
    fn three_solvers_agree_on_random_small_instances() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for trial in 0..8 {
            let n = rng.random_range(3..=5);
            let m = rng.random_range(2..=4);
            let rankings: Vec<Ranking> = (0..m)
                .map(|_| {
                    // Random bucket order: random bucket index per element,
                    // then compacted.
                    loop {
                        let idx: Vec<u32> = (0..n).map(|_| rng.random_range(0..n as u32)).collect();
                        let mut used: Vec<u32> = idx.clone();
                        used.sort_unstable();
                        used.dedup();
                        let remap: Vec<u32> = idx
                            .iter()
                            .map(|v| used.iter().position(|u| u == v).unwrap() as u32)
                            .collect();
                        if let Ok(r) = Ranking::from_bucket_indices(&remap) {
                            return r;
                        }
                    }
                })
                .collect();
            let d = Dataset::new(rankings).unwrap();
            let (bf_score, _) = brute_force(&d);
            let mut ctx = AlgoContext::seeded(trial);
            let (_, bnb_score, proved) = ExactAlgorithm::default().solve(&d, &mut ctx);
            assert!(proved, "trial {trial}");
            assert_eq!(bnb_score, bf_score, "native vs brute force, trial {trial}");
            let (_, lpb_score) = ExactLpb::default().solve(&d);
            assert_eq!(lpb_score, bf_score, "LPB vs brute force, trial {trial}");
        }
    }

    #[test]
    fn exact_beats_or_matches_every_heuristic() {
        use crate::algorithms::paper_algorithms;
        let d = data(&[
            "[{0},{1,2},{3},{4}]",
            "[{4},{1},{0,2,3}]",
            "[{2},{0},{1},{3,4}]",
        ]);
        let mut ctx = AlgoContext::seeded(5);
        let (_, opt, proved) = ExactAlgorithm::default().solve(&d, &mut ctx);
        assert!(proved);
        for algo in paper_algorithms(3) {
            let r = algo.run(&d, &mut ctx);
            assert!(
                kemeny_score(&r, &d) >= opt,
                "{} beat the proven optimum",
                algo.name()
            );
        }
    }

    #[test]
    fn handles_unanimous_dataset_with_zero_cost() {
        let d = data(&["[{1},{0,2}]", "[{1},{0,2}]"]);
        let mut ctx = AlgoContext::seeded(0);
        let (r, score, proved) = ExactAlgorithm::default().solve(&d, &mut ctx);
        assert!(proved);
        assert_eq!(score, 0);
        assert_eq!(&r, d.ranking(0));
    }

    #[test]
    fn decomposition_matches_monolithic() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(321);
        for trial in 0..10 {
            let n = rng.random_range(4..=7);
            let m = rng.random_range(2..=5);
            let rankings: Vec<Ranking> = (0..m)
                .map(|_| {
                    let idx: Vec<u32> = (0..n).map(|_| rng.random_range(0..n as u32)).collect();
                    let mut used = idx.clone();
                    used.sort_unstable();
                    used.dedup();
                    let remap: Vec<u32> = idx
                        .iter()
                        .map(|v| used.iter().position(|u| u == v).unwrap() as u32)
                        .collect();
                    Ranking::from_bucket_indices(&remap).unwrap()
                })
                .collect();
            let d = Dataset::new(rankings).unwrap();
            let with = ExactAlgorithm::default();
            let without = ExactAlgorithm {
                decompose: false,
                ..ExactAlgorithm::default()
            };
            let (_, s1, p1) = with.solve(&d, &mut AlgoContext::seeded(trial));
            let (_, s2, p2) = without.solve(&d, &mut AlgoContext::seeded(trial));
            assert!(p1 && p2);
            assert_eq!(s1, s2, "trial {trial}: decomposition changed the optimum");
        }
    }

    #[test]
    fn safe_blocks_detects_concatenated_instances() {
        // Two independent sub-instances glued together: {0,1} always
        // strictly before {2,3} in every ranking.
        let d = data(&["[{0},{1},{2},{3}]", "[{1},{0},{3},{2}]", "[{0,1},{2,3}]"]);
        let blocks = safe_blocks(&d);
        assert!(
            blocks.len() >= 2,
            "expected a split between {{0,1}} and {{2,3}}, got {blocks:?}"
        );
        let first: Vec<u32> = blocks[0].iter().map(|e| e.0).collect();
        assert!(first.iter().all(|&id| id <= 1));
    }

    #[test]
    fn decomposed_solve_streams_whole_dataset_bounds_only() {
        use crate::engine::job::IncumbentSink;
        use crate::engine::Event;
        use std::sync::mpsc;
        use std::sync::Arc;

        // Two glued sub-instances (a guaranteed safe split) with real
        // disagreement inside each block, so both block solves do work.
        let d = data(&[
            "[{0},{1},{2},{3},{4},{5}]",
            "[{2},{1},{0},{4},{5},{3}]",
            "[{1},{0,2},{3},{5},{4}]",
            "[{0,1,2},{3,4,5}]",
        ]);
        assert!(safe_blocks(&d).len() >= 2, "the split must actually fire");
        let whole_floor = PairTable::build(&d).lower_bound();

        let (tx, rx) = mpsc::channel();
        let sink = Arc::new(IncumbentSink::with_sender(tx));
        let mut ctx = AlgoContext::seeded(4);
        ctx.attach_sink(Arc::clone(&sink));
        let (_, score, proved) = ExactAlgorithm::default().solve(&d, &mut ctx);
        assert!(proved);
        drop(ctx);
        sink.close();

        let mut bounds: Vec<u64> = Vec::new();
        let mut scores: Vec<u64> = Vec::new();
        for event in rx.try_iter() {
            match event {
                Event::LowerBound { lower_bound, .. } => bounds.push(lower_bound),
                Event::Incumbent { score, .. } => scores.push(score),
                _ => {}
            }
        }
        assert!(!bounds.is_empty(), "decomposed solves must stream bounds");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must strictly increase: {bounds:?}"
        );
        // The audit this test pins: every streamed bound is a valid
        // *whole-dataset* bound — at least the all-pairs floor — never a
        // per-block bound leaked out of a muted sub-solve (those sit far
        // below the floor because they ignore every cross-block pair).
        assert!(
            bounds.iter().all(|&lb| lb >= whole_floor),
            "a sub-instance bound leaked: {bounds:?} (floor {whole_floor})"
        );
        assert!(
            bounds.iter().all(|&lb| lb <= score),
            "a bound exceeded the optimum: {bounds:?} (optimum {score})"
        );
        assert_eq!(
            sink.lower_bound(),
            Some(score),
            "a fully proved decomposition ends with lb == optimum"
        );
        assert!(
            scores.iter().all(|&s| s >= *bounds.last().unwrap()),
            "no incumbent may undercut a certified bound"
        );
    }

    #[test]
    fn safe_blocks_refuses_unsafe_splits() {
        // A Condorcet cycle: every split has a cross pair whose majority
        // points backwards, so no decomposition is possible.
        let d = data(&["[{0},{1},{2}]", "[{1},{2},{0}]", "[{2},{0},{1}]"]);
        assert_eq!(safe_blocks(&d).len(), 1);
    }

    #[test]
    fn timeout_returns_incumbent_unproved() {
        use std::time::Duration;
        // n = 12 uniform-ish data with a zero deadline: must return the
        // BioConsert incumbent immediately, unproved.
        let lines: Vec<String> = (0..4)
            .map(|k| {
                let mut ids: Vec<usize> = (0..12).collect();
                ids.rotate_left(k * 3);
                let parts: Vec<String> = ids.iter().map(|i| format!("{{{i}}}")).collect();
                format!("[{}]", parts.join(","))
            })
            .collect();
        let refs: Vec<&str> = lines.iter().map(|s| s.as_str()).collect();
        let d = data(&refs);
        let mut ctx = AlgoContext::seeded_with_budget(0, Duration::from_millis(0));
        let exact = ExactAlgorithm {
            deadline_stride: 1,
            ..ExactAlgorithm::default()
        };
        let (r, _, proved) = exact.solve(&d, &mut ctx);
        assert!(!proved);
        assert!(d.is_complete_ranking(&r));
    }
}
