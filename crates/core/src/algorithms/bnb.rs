//! BnB (§3.2, [Ali & Meilă 2012]) — extension, not part of the paper's
//! evaluated panel.
//!
//! A branch-and-bound over *permutations*: each node at depth `j` fixes the
//! first `j` elements of the output. The bound adds, to the cost of the
//! decided pairs, the per-pair minima of everything still open. §4.1.2
//! notes this algorithm was designed for permutations only — handling ties
//! would require a fully new algorithm (which is what
//! [`super::exact::ExactAlgorithm`] is).

use super::{AlgoContext, ConsensusAlgorithm};
use crate::dataset::Dataset;
use crate::element::Element;
use crate::pairs::PairTable;
use crate::ranking::Ranking;

/// Permutation-space branch-and-bound with a beam-width option (the paper
/// mentions heuristics "limiting the number of leaves expended").
#[derive(Debug, Clone)]
pub struct BranchAndBound {
    /// Past this size, fall back to the greedy incumbent (and flag the
    /// run as timed out) instead of searching.
    pub max_n: usize,
    /// Optional beam width: at each node expand only the `b` cheapest
    /// children. `None` = complete search (exact over permutations).
    pub beam: Option<usize>,
    /// Deadline check stride, in nodes.
    pub deadline_stride: u64,
}

impl Default for BranchAndBound {
    fn default() -> Self {
        BranchAndBound {
            max_n: 18,
            beam: None,
            deadline_stride: 4096,
        }
    }
}

struct Search<'a> {
    pairs: &'a PairTable,
    n: usize,
    beam: Option<usize>,
    best_score: u64,
    best_perm: Vec<Element>,
    prefix: Vec<Element>,
    placed: Vec<bool>,
    /// forced[e] = Σ_{f placed} cost_before(f, e).
    forced: Vec<u64>,
    /// Σ over open pairs of min(cost_before(a,b), cost_before(b,a)).
    rem: u64,
    /// Σ of forced[e] over unplaced e.
    forced_total: u64,
    g: u64,
    nodes: u64,
    stride: u64,
    aborted: bool,
}

impl Search<'_> {
    fn min2(&self, a: Element, b: Element) -> u64 {
        self.pairs
            .cost_before(a, b)
            .min(self.pairs.cost_before(b, a)) as u64
    }

    fn dfs(&mut self, ctx: &mut AlgoContext) {
        self.nodes += 1;
        if self.nodes.is_multiple_of(self.stride) && ctx.checkpoint().is_stop() {
            self.aborted = true;
        }
        if self.aborted {
            return;
        }
        if self.prefix.len() == self.n {
            if self.g < self.best_score {
                self.best_score = self.g;
                self.best_perm = self.prefix.clone();
                if ctx.has_sink() {
                    ctx.offer_incumbent(
                        &Ranking::permutation(&self.best_perm).expect("permutation"),
                        self.best_score,
                    );
                }
            }
            return;
        }
        let mut children: Vec<(u64, u32)> = (0..self.n)
            .filter(|&id| !self.placed[id])
            .map(|id| (self.forced[id], id as u32))
            .collect();
        children.sort_unstable();
        if let Some(b) = self.beam {
            children.truncate(b.max(1));
        }
        for (delta, id) in children {
            let e = Element(id);
            // Place e next: decided pairs (f placed, e) cost forced[e].
            let mut rem_delta = 0u64;
            let mut forced_delta = 0u64;
            for x in 0..self.n {
                if !self.placed[x] && x != id as usize {
                    let xe = Element(x as u32);
                    rem_delta += self.min2(e, xe);
                    forced_delta += self.pairs.cost_before(e, xe) as u64;
                }
            }
            self.g += delta;
            self.rem -= rem_delta;
            self.forced_total -= self.forced[id as usize];
            self.placed[id as usize] = true;
            self.prefix.push(e);
            for x in 0..self.n {
                if !self.placed[x] {
                    self.forced[x] += self.pairs.cost_before(e, Element(x as u32)) as u64;
                }
            }
            self.forced_total += forced_delta;

            if self.g + self.rem + self.forced_total < self.best_score {
                self.dfs(ctx);
            }

            // Undo.
            for x in 0..self.n {
                if !self.placed[x] {
                    self.forced[x] -= self.pairs.cost_before(e, Element(x as u32)) as u64;
                }
            }
            self.forced_total -= forced_delta;
            self.prefix.pop();
            self.placed[id as usize] = false;
            self.forced_total += self.forced[id as usize];
            self.rem += rem_delta;
            self.g -= delta;
            if self.aborted {
                return;
            }
        }
    }
}

/// Greedy incumbent: Borda order (ties broken by id) improved by adjacent
/// swap passes.
fn greedy_permutation(data: &Dataset, pairs: &PairTable) -> Vec<Element> {
    let scores = super::borda::borda_scores(data);
    let mut perm: Vec<Element> = (0..data.n() as u32).map(Element).collect();
    perm.sort_by_key(|e| (scores[e.index()], e.0));
    loop {
        let mut improved = false;
        for i in 0..perm.len().saturating_sub(1) {
            let (a, b) = (perm[i], perm[i + 1]);
            if pairs.before(b, a) > pairs.before(a, b) {
                perm.swap(i, i + 1);
                improved = true;
            }
        }
        if !improved {
            return perm;
        }
    }
}

fn perm_score(perm: &[Element], pairs: &PairTable) -> u64 {
    let mut acc = 0u64;
    for i in 0..perm.len() {
        for j in (i + 1)..perm.len() {
            acc += pairs.cost_before(perm[i], perm[j]) as u64;
        }
    }
    acc
}

impl BranchAndBound {
    /// Solve; returns the permutation, score and whether the search was
    /// complete (exact over the permutation space).
    pub fn solve(&self, data: &Dataset, ctx: &mut AlgoContext) -> (Ranking, u64, bool) {
        let n = data.n();
        let pairs = ctx.cost_matrix(data);
        let mut incumbent = greedy_permutation(data, &pairs);
        let mut incumbent_score = perm_score(&incumbent, &pairs);
        // Warm-started re-solve (DESIGN.md §13): the previous consensus,
        // flattened to a permutation, replaces the greedy incumbent when
        // strictly better — a tight initial bound prunes most of the
        // search after a small dataset edit. Without a hint the behavior
        // is bit-identical to before.
        if let Some(w) = ctx.warm_start() {
            if data.is_complete_ranking(&w.ranking) {
                let perm: Vec<Element> = w.ranking.elements().collect();
                let s = perm_score(&perm, &pairs);
                if s < incumbent_score {
                    incumbent = perm;
                    incumbent_score = s;
                }
            }
        }
        if ctx.has_sink() {
            ctx.offer_incumbent(
                &Ranking::permutation(&incumbent).expect("permutation"),
                incumbent_score,
            );
            // This search's own bounds (`min2`, over before/after only)
            // are valid for *permutations* but not for the generalized
            // problem — a tie can be cheaper than either order — so the
            // search never feeds the lower-bound channel and a completed
            // BnB never certifies optimality. The one bound that does
            // hold for bucket orders is the root's per-pair minima over
            // all three states ([`PairTable::lower_bound`]); offer it so
            // a BnB job still reports an honest (if coarse) gap.
            ctx.offer_lower_bound(pairs.lower_bound());
        }
        if n > self.max_n {
            ctx.set_timed_out();
            return (
                Ranking::permutation(&incumbent).expect("permutation"),
                incumbent_score,
                false,
            );
        }
        let mut rem = 0u64;
        for a in 0..n {
            for b in (a + 1)..n {
                rem += pairs
                    .cost_before(Element(a as u32), Element(b as u32))
                    .min(pairs.cost_before(Element(b as u32), Element(a as u32)))
                    as u64;
            }
        }
        let mut search = Search {
            pairs: &pairs,
            n,
            beam: self.beam,
            best_score: incumbent_score,
            best_perm: incumbent,
            prefix: Vec::with_capacity(n),
            placed: vec![false; n],
            forced: vec![0; n],
            rem,
            forced_total: 0,
            g: 0,
            nodes: 0,
            stride: self.deadline_stride,
            aborted: false,
        };
        search.dfs(ctx);
        let complete = !search.aborted && self.beam.is_none();
        (
            Ranking::permutation(&search.best_perm).expect("permutation"),
            search.best_score,
            complete,
        )
    }
}

impl ConsensusAlgorithm for BranchAndBound {
    fn name(&self) -> String {
        match self.beam {
            None => "BnB".to_owned(),
            Some(b) => format!("BnB(beam={b})"),
        }
    }

    fn produces_ties(&self) -> bool {
        false
    }

    fn run(&self, data: &Dataset, ctx: &mut AlgoContext) -> Ranking {
        let (r, _, complete) = self.solve(data, ctx);
        ctx.set_proved_optimal(false); // exact only over permutations, not ties
        let _ = complete;
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_ranking;

    fn data(lines: &[&str]) -> Dataset {
        Dataset::new(lines.iter().map(|l| parse_ranking(l).unwrap()).collect()).unwrap()
    }

    #[test]
    fn optimal_over_permutations() {
        // Compare against brute force restricted to permutations via the
        // exact solver over a permutation-only instance (no tie is ever
        // cheaper when inputs are permutations and m is odd... not in
        // general — so instead enumerate permutations directly).
        let d = data(&[
            "[{0},{1},{2},{3}]",
            "[{1},{3},{0},{2}]",
            "[{3},{0},{1},{2}]",
        ]);
        let pairs = PairTable::build(&d);
        // Enumerate all 24 permutations.
        let mut best = u64::MAX;
        let ids = [0u32, 1, 2, 3];
        let mut perm = ids;
        // Heap's algorithm, tiny n.
        fn heaps(k: usize, arr: &mut [u32; 4], pairs: &PairTable, best: &mut u64) {
            if k == 1 {
                let elems: Vec<Element> = arr.iter().map(|&i| Element(i)).collect();
                let s = perm_score(&elems, pairs);
                *best = (*best).min(s);
                return;
            }
            for i in 0..k {
                heaps(k - 1, arr, pairs, best);
                if k.is_multiple_of(2) {
                    arr.swap(i, k - 1);
                } else {
                    arr.swap(0, k - 1);
                }
            }
        }
        heaps(4, &mut perm, &pairs, &mut best);
        let (r, score, complete) = BranchAndBound::default().solve(&d, &mut AlgoContext::seeded(0));
        assert!(complete);
        assert_eq!(score, best);
        assert!(r.is_permutation());
    }

    #[test]
    fn beam_search_is_fast_and_valid() {
        let d = data(&["[{0},{1},{2},{3},{4},{5}]", "[{5},{4},{3},{2},{1},{0}]"]);
        let algo = BranchAndBound {
            beam: Some(2),
            ..BranchAndBound::default()
        };
        let (r, _, complete) = algo.solve(&d, &mut AlgoContext::seeded(0));
        assert!(!complete); // beam search never proves optimality
        assert!(d.is_complete_ranking(&r));
        assert_eq!(algo.name(), "BnB(beam=2)");
    }

    #[test]
    fn oversize_falls_back_to_greedy() {
        let lines: Vec<String> = (0..2)
            .map(|k| {
                let ids: Vec<String> = (0..25).map(|i| format!("{{{}}}", (i + k) % 25)).collect();
                format!("[{}]", ids.join(","))
            })
            .collect();
        let refs: Vec<&str> = lines.iter().map(|s| s.as_str()).collect();
        let d = data(&refs);
        let mut ctx = AlgoContext::seeded(0);
        let (r, _, complete) = BranchAndBound::default().solve(&d, &mut ctx);
        assert!(!complete);
        assert!(ctx.timed_out());
        assert!(d.is_complete_ranking(&r));
    }

    #[test]
    fn never_worse_than_greedy_incumbent() {
        let d = data(&[
            "[{2},{0},{3},{1}]",
            "[{0},{1},{2},{3}]",
            "[{3},{2},{1},{0}]",
        ]);
        let pairs = PairTable::build(&d);
        let greedy = greedy_permutation(&d, &pairs);
        let (_, score, _) = BranchAndBound::default().solve(&d, &mut AlgoContext::seeded(0));
        assert!(score <= perm_score(&greedy, &pairs));
    }
}
